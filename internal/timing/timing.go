// Package timing defines DRAM timing parameter sets.
//
// Parameters are expressed in DRAM command-clock cycles (tCK). The
// reference device is DDR3-1600 (tCK = 1.25 ns), matching Table 1 of the
// paper; the asymmetric fast-subarray set uses the CHARM-derived values
// the paper adopts (tRCD 8.75 ns, tRC 25 ns).
package timing

import (
	"fmt"

	"repro/internal/sim"
)

// Params is a complete DRAM timing parameter set in clock cycles.
//
// The subset modeled is the one that constrains a cycle-level
// close/open-page simulation: activation, column access, precharge,
// write recovery, bus turnaround, activation windows, and refresh.
type Params struct {
	TCK sim.Time // clock period (ps)

	CL  int64 // column (read) latency, ACT-independent CAS latency
	CWL int64 // column write latency
	BL  int64 // burst length in beats (data bus cycles = BL/2 on DDR)

	TRCD int64 // ACTIVATE -> internal READ/WRITE
	TRAS int64 // ACTIVATE -> PRECHARGE (restore complete)
	TRP  int64 // PRECHARGE -> ACTIVATE
	TRC  int64 // ACTIVATE -> ACTIVATE, same bank (== tRAS + tRP)

	TRTP int64 // READ -> PRECHARGE
	TWR  int64 // end of write burst -> PRECHARGE (write recovery)
	TWTR int64 // end of write burst -> READ, same rank
	TCCD int64 // column command -> column command
	TRRD int64 // ACTIVATE -> ACTIVATE, different banks same rank
	TFAW int64 // window for at most four ACTIVATEs per rank
	TRTR int64 // rank-to-rank data bus switch penalty

	TREFI int64 // average refresh interval
	TRFC  int64 // refresh cycle time
}

// Validate checks internal consistency of the parameter set.
func (p *Params) Validate() error {
	if p.TCK <= 0 {
		return fmt.Errorf("timing: tCK must be positive, got %d", p.TCK)
	}
	type nn struct {
		name string
		v    int64
	}
	for _, f := range []nn{
		{"CL", p.CL}, {"CWL", p.CWL}, {"BL", p.BL},
		{"tRCD", p.TRCD}, {"tRAS", p.TRAS}, {"tRP", p.TRP}, {"tRC", p.TRC},
		{"tRTP", p.TRTP}, {"tWR", p.TWR}, {"tWTR", p.TWTR}, {"tCCD", p.TCCD},
		{"tRRD", p.TRRD}, {"tFAW", p.TFAW}, {"tREFI", p.TREFI}, {"tRFC", p.TRFC},
	} {
		if f.v <= 0 {
			return fmt.Errorf("timing: %s must be positive, got %d", f.name, f.v)
		}
	}
	if p.TRC < p.TRAS+p.TRP {
		return fmt.Errorf("timing: tRC (%d) < tRAS+tRP (%d)", p.TRC, p.TRAS+p.TRP)
	}
	if p.TFAW < p.TRRD {
		return fmt.Errorf("timing: tFAW (%d) < tRRD (%d)", p.TFAW, p.TRRD)
	}
	if p.BL%2 != 0 {
		return fmt.Errorf("timing: burst length must be even on DDR, got %d", p.BL)
	}
	return nil
}

// BurstCycles returns the data-bus occupancy of one burst in clock cycles.
func (p *Params) BurstCycles() int64 { return p.BL / 2 }

// ReadLatency returns cycles from READ issue to the end of the data burst.
func (p *Params) ReadLatency() int64 { return p.CL + p.BurstCycles() }

// WriteLatency returns cycles from WRITE issue to the end of the data
// burst.
func (p *Params) WriteLatency() int64 { return p.CWL + p.BurstCycles() }

// Duration converts cycles of this parameter set to simulation time.
func (p *Params) Duration(cycles int64) sim.Time {
	return sim.Time(cycles) * p.TCK
}

// CyclesCeil converts a duration to cycles, rounding up.
func (p *Params) CyclesCeil(d sim.Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + p.TCK - 1) / p.TCK)
}

// tCK for DDR3-1600: 800 MHz command clock.
const tCK1600 = 1250 * sim.Picosecond

// DDR31600Slow returns the commodity (long bitline) parameter set of
// Table 1: tRCD 13.75 ns, tRC 48.75 ns. Derived values follow the Samsung
// 2Gb D-die DDR3-1600 datasheet the paper cites.
func DDR31600Slow() Params {
	return Params{
		TCK: tCK1600,
		CL:  11, CWL: 8, BL: 8,
		TRCD: 11, // 13.75 ns
		TRAS: 28, // 35 ns
		TRP:  11, // 13.75 ns
		TRC:  39, // 48.75 ns
		TRTP: 6, TWR: 12, TWTR: 6, TCCD: 4,
		TRRD: 5, TFAW: 24, TRTR: 2,
		TREFI: 6240, // 7.8 us
		TRFC:  128,  // 160 ns
	}
}

// DDR31600Fast returns the fast-subarray (128-cell bitline) set of
// Table 1: tRCD 8.75 ns, tRC 25 ns. Charge restore and precharge shrink
// proportionally with the shorter bitline.
func DDR31600Fast() Params {
	p := DDR31600Slow()
	p.TRCD = 7  // 8.75 ns
	p.TRAS = 13 // 16.25 ns (tRC - tRP)
	p.TRP = 7   // 8.75 ns
	p.TRC = 20  // 25 ns
	p.TRTP = 4
	p.TWR = 9
	return p
}

// DDR31600CHARMFast returns the CHARM variant of the fast set: shorter
// column access path on the fast level, modeled as CL/CWL reduced by two
// cycles (Son et al., ISCA 2013).
func DDR31600CHARMFast() Params {
	p := DDR31600Fast()
	p.CL -= 2
	p.CWL -= 2
	return p
}
