package timing

import (
	"testing"

	"repro/internal/sim"
)

func TestTable1SlowValues(t *testing.T) {
	p := DDR31600Slow()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 1: tRCD 13.75 ns, tRC 48.75 ns at tCK = 1.25 ns.
	if got := p.Duration(p.TRCD); got != sim.FromNS(13.75) {
		t.Errorf("tRCD = %v ps, want 13750", got)
	}
	if got := p.Duration(p.TRC); got != sim.FromNS(48.75) {
		t.Errorf("tRC = %v ps, want 48750", got)
	}
	if p.TRC != p.TRAS+p.TRP {
		t.Errorf("tRC (%d) != tRAS+tRP (%d)", p.TRC, p.TRAS+p.TRP)
	}
}

func TestTable1FastValues(t *testing.T) {
	p := DDR31600Fast()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 1: tRCD 8.75 ns, tRC 25 ns.
	if got := p.Duration(p.TRCD); got != sim.FromNS(8.75) {
		t.Errorf("fast tRCD = %v ps, want 8750", got)
	}
	if got := p.Duration(p.TRC); got != sim.FromNS(25) {
		t.Errorf("fast tRC = %v ps, want 25000", got)
	}
}

func TestFastStrictlyFaster(t *testing.T) {
	s, f := DDR31600Slow(), DDR31600Fast()
	if f.TRCD >= s.TRCD || f.TRAS >= s.TRAS || f.TRP >= s.TRP || f.TRC >= s.TRC {
		t.Fatal("fast set not strictly faster than slow set")
	}
	if f.TCK != s.TCK {
		t.Fatal("fast and slow sets must share the command clock")
	}
}

func TestCHARMFastReducesColumnLatency(t *testing.T) {
	f, c := DDR31600Fast(), DDR31600CHARMFast()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CL >= f.CL || c.CWL >= f.CWL {
		t.Fatal("CHARM set must reduce CL/CWL")
	}
	if c.TRCD != f.TRCD || c.TRC != f.TRC {
		t.Fatal("CHARM set must keep the fast row timings")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := func(mutate func(*Params)) {
		t.Helper()
		p := DDR31600Slow()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Error("invalid params accepted")
		}
	}
	bad(func(p *Params) { p.TCK = 0 })
	bad(func(p *Params) { p.CL = 0 })
	bad(func(p *Params) { p.TRC = p.TRAS }) // tRC < tRAS + tRP
	bad(func(p *Params) { p.TFAW = p.TRRD - 1 })
	bad(func(p *Params) { p.BL = 7 })
	bad(func(p *Params) { p.TREFI = -1 })
}

func TestDerivedLatencies(t *testing.T) {
	p := DDR31600Slow()
	if p.BurstCycles() != 4 {
		t.Errorf("BL8 burst = %d cycles, want 4", p.BurstCycles())
	}
	if p.ReadLatency() != p.CL+4 {
		t.Errorf("read latency = %d", p.ReadLatency())
	}
	if p.WriteLatency() != p.CWL+4 {
		t.Errorf("write latency = %d", p.WriteLatency())
	}
}

func TestCyclesCeil(t *testing.T) {
	p := DDR31600Slow()
	if p.CyclesCeil(0) != 0 {
		t.Error("zero duration should be zero cycles")
	}
	if p.CyclesCeil(1) != 1 {
		t.Error("1 ps must round up to 1 cycle")
	}
	if p.CyclesCeil(p.TCK) != 1 || p.CyclesCeil(p.TCK+1) != 2 {
		t.Error("exact/over boundary rounding wrong")
	}
}
