package workload

import "testing"

func TestCatalogProfilesValid(t *testing.T) {
	names := make(map[string]bool)
	for _, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		names[p.Name] = true
	}
	if len(names) != 10 {
		t.Fatalf("catalog has %d benchmarks, Table 2 lists 10", len(names))
	}
}

func TestCatalogMatchesTable2(t *testing.T) {
	want := []string{"astar", "cactusADM", "GemsFDTD", "lbm", "leslie3d",
		"libquantum", "mcf", "milc", "omnetpp", "soplex"}
	got := AllSingleNames()
	if len(got) != len(want) {
		t.Fatalf("got %d names", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestMixesMatchTable2(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 8 {
		t.Fatalf("%d mixes, Table 2 lists 8", len(mixes))
	}
	// Spot-check Table 2 contents.
	m1, err := LookupMix("M1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cactusADM", "mcf", "milc", "omnetpp"}
	for i, b := range want {
		if m1.Benchmarks[i] != b {
			t.Fatalf("M1 = %v, want %v", m1.Benchmarks, want)
		}
	}
	// Every mix references catalog benchmarks and has 4 entries.
	for _, m := range mixes {
		if len(m.Benchmarks) != 4 {
			t.Errorf("%s has %d benchmarks, want 4", m.Name, len(m.Benchmarks))
		}
		for _, b := range m.Benchmarks {
			if _, err := Lookup(b); err != nil {
				t.Errorf("%s references unknown benchmark %s", m.Name, b)
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := LookupMix("M99"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestCatalogGeneratorsRun(t *testing.T) {
	// Every catalog profile must generate cleanly over a region the size
	// the scaled experiments use.
	region := Region{Base: 0, Bytes: 1 << 30}
	for _, p := range Catalog() {
		p.FootprintBytes /= 8 // episode scaling
		gen, err := NewSynthetic(p, region, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var in Instr
		memOps := 0
		for i := 0; i < 50000; i++ {
			gen.Next(&in)
			if in.Mem {
				memOps++
				if !region.Contains(in.Addr) {
					t.Fatalf("%s: address out of region", p.Name)
				}
			}
		}
		if memOps == 0 {
			t.Fatalf("%s produced no memory accesses", p.Name)
		}
	}
}
