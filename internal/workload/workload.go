// Package workload produces deterministic synthetic instruction streams
// that stand in for the SPEC CPU2006 memory-bound subset of Table 2.
//
// Each benchmark is modeled as a mixture of access-pattern components —
// sequential streaming, fixed-stride walking, a skewed hot region, and
// dependent pointer chasing — parameterized to approximate the published
// MPKI, footprint, write ratio, and temporal-locality behaviour of the
// real benchmark. Hot regions drift across the footprint in phases,
// which is the program behaviour that separates dynamic (DAS) from
// static profiled (SAS/CHARM) management in the paper.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Instr is one instruction of a synthetic stream.
type Instr struct {
	// Mem marks a load or store; non-memory instructions only occupy
	// pipeline width.
	Mem bool
	// Write marks stores.
	Write bool
	// Dependent marks loads on a serial dependence chain (pointer
	// chasing): the core must wait for all older loads before issuing.
	Dependent bool
	// Addr is the physical byte address of a memory instruction.
	Addr uint64
}

// Generator yields an unbounded deterministic instruction stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next writes the next instruction into in.
	Next(in *Instr)
}

// Region is the physical address range a generator may touch.
type Region struct {
	Base  uint64
	Bytes uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Bytes
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	// MemFraction of instructions access memory.
	MemFraction float64
	// WriteFraction of memory accesses are stores.
	WriteFraction float64
	// FootprintBytes is the nominal data footprint.
	FootprintBytes uint64

	// Mixture weights over memory accesses (normalized internally).
	LocalWeight  float64 // cache-resident working set (stack, hot heap top)
	StreamWeight float64 // sequential small-step walk
	StrideWeight float64 // fixed large-stride walk
	HotWeight    float64 // skewed accesses into a hot region
	ChaseWeight  float64 // dependent uniform-random accesses

	// LocalBytes is the resident working-set size (default 128 KiB; it
	// should fit in the private caches so the component produces almost
	// no DRAM traffic and only dilutes MPKI, as the non-miss bulk of a
	// real program does).
	LocalBytes uint64
	// StreamStep is the byte step of the streaming walk (default 8).
	StreamStep uint64
	// StrideBytes is the stride of the strided walk (default 320).
	StrideBytes uint64
	// HotFraction is the hot region size as a fraction of footprint.
	HotFraction float64
	// HotSkew is the power-law exponent of hot accesses (>=1; larger
	// values concentrate accesses on fewer rows).
	HotSkew float64
	// PhaseInstr is the phase length in instructions; every phase the
	// hot region re-centers. Zero means a stationary hot region.
	PhaseInstr uint64
	// PhaseShiftFraction is how far (as a fraction of the footprint)
	// the hot region moves each phase.
	PhaseShiftFraction float64
	// PhaseOffsetInstr advances the phase clock, positioning the stream
	// mid-phase-schedule at instruction zero. Placing a phase boundary
	// just inside the measurement warm-up reproduces the paper's
	// observation that a sampled execution point lives in a phase the
	// lifetime profile underrepresents (Section 7.1).
	PhaseOffsetInstr uint64
	// NoScatter disables the row-granular physical scatter (below);
	// useful in unit tests that reason about exact addresses.
	NoScatter bool
}

// scatterRowBytes is the granularity of the physical scatter permutation:
// one DRAM row. An operating system allocates physical pages roughly
// randomly, so a program's virtually-contiguous working set is scattered
// across the physical row space; without this, synthetic hot regions
// would pile into a handful of migration groups in a way no real system
// exhibits.
const scatterRowBytes = 8 << 10

// Validate checks the profile is well-formed.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if p.MemFraction <= 0 || p.MemFraction >= 1 {
		return fmt.Errorf("workload %s: MemFraction must be in (0,1), got %v", p.Name, p.MemFraction)
	}
	if p.WriteFraction < 0 || p.WriteFraction > 1 {
		return fmt.Errorf("workload %s: WriteFraction must be in [0,1]", p.Name)
	}
	if p.FootprintBytes < 1<<20 {
		return fmt.Errorf("workload %s: footprint below 1 MiB", p.Name)
	}
	total := p.LocalWeight + p.StreamWeight + p.StrideWeight + p.HotWeight + p.ChaseWeight
	if total <= 0 {
		return fmt.Errorf("workload %s: no positive mixture weight", p.Name)
	}
	if p.HotWeight > 0 && (p.HotFraction <= 0 || p.HotFraction > 1) {
		return fmt.Errorf("workload %s: HotFraction must be in (0,1] when HotWeight > 0", p.Name)
	}
	return nil
}

// synth is the mixture-model generator.
type synth struct {
	p      Profile
	region Region
	rng    *sim.RNG

	// cumulative mixture thresholds in [0,1)
	cLocal, cStream, cStride, cHot float64

	streamPos uint64
	stridePos uint64
	hotBase   uint64 // offset of hot region within footprint
	hotBytes  uint64

	// Division-free stepping state. Next runs once per simulated
	// instruction, so the per-call modulo reductions are precomputed:
	// every walker position stays < FootprintBytes by conditional
	// subtraction (steps are pre-reduced mod footprint), and the phase
	// schedule is a countdown instead of a divisibility test.
	phaseLeft  uint64 // instructions until the next hot-region shift (0 = no phases)
	phaseShift uint64 // hot-region shift per phase, pre-reduced mod footprint
	streamStep uint64 // StreamStep mod footprint
	strideStep uint64 // StrideBytes mod footprint

	// rowPerm maps virtual row index -> physical row index within the
	// footprint (the OS page-allocation scatter).
	rowPerm []uint32
}

// NewSynthetic builds a generator for profile p over region, seeded
// deterministically.
func NewSynthetic(p Profile, region Region, seed uint64) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if region.Bytes < p.FootprintBytes {
		return nil, fmt.Errorf("workload %s: region %d B smaller than footprint %d B",
			p.Name, region.Bytes, p.FootprintBytes)
	}
	if p.LocalBytes == 0 {
		p.LocalBytes = 128 << 10
	}
	if p.StreamStep == 0 {
		p.StreamStep = 8
	}
	if p.StrideBytes == 0 {
		p.StrideBytes = 320
	}
	if p.HotSkew < 1 {
		p.HotSkew = 1
	}
	total := p.LocalWeight + p.StreamWeight + p.StrideWeight + p.HotWeight + p.ChaseWeight
	g := &synth{
		p:      p,
		region: region,
		rng:    sim.NewRNG(seed ^ hashName(p.Name)),
		cLocal: p.LocalWeight / total,
	}
	g.cStream = g.cLocal + p.StreamWeight/total
	g.cStride = g.cStream + p.StrideWeight/total
	g.cHot = g.cStride + p.HotWeight/total
	g.hotBytes = uint64(float64(p.FootprintBytes) * p.HotFraction)
	if g.hotBytes == 0 {
		g.hotBytes = 1 << 12
	}
	// Start the stream and stride walkers at distinct offsets so the
	// components do not trivially collide.
	g.stridePos = p.FootprintBytes / 2
	g.streamStep = p.StreamStep % p.FootprintBytes
	g.strideStep = p.StrideBytes % p.FootprintBytes
	if p.PhaseInstr > 0 {
		g.phaseShift = uint64(float64(p.FootprintBytes)*p.PhaseShiftFraction) % p.FootprintBytes
		// The k-th generated instruction shifts the phase when
		// (k + PhaseOffsetInstr) ≡ 0 (mod PhaseInstr); the first such
		// k ≥ 1 is PhaseInstr - PhaseOffsetInstr%PhaseInstr.
		g.phaseLeft = p.PhaseInstr - p.PhaseOffsetInstr%p.PhaseInstr
	}
	if !p.NoScatter {
		// Scatter the footprint's rows over the core's whole region, the
		// way OS page allocation spreads a program's working set over all
		// of physical memory. Migration groups partition the physical row
		// space, so without the spread a workload could only ever use the
		// fast slots of the groups its contiguous footprint overlaps.
		spanRows := region.Bytes / scatterRowBytes
		fpRows := (p.FootprintBytes + scatterRowBytes - 1) / scatterRowBytes
		if spanRows > uint64(int(^uint32(0))) {
			return nil, fmt.Errorf("workload %s: region too large for scatter permutation", p.Name)
		}
		perm := make([]uint32, spanRows)
		for i := range perm {
			perm[i] = uint32(i)
		}
		shuffle := sim.NewRNG(seed ^ 0xC0FFEE ^ hashName(p.Name))
		// Partial Fisher-Yates: only the first fpRows entries are used.
		for i := uint64(0); i < fpRows && i < spanRows-1; i++ {
			j := i + uint64(shuffle.Intn(int(spanRows-i)))
			perm[i], perm[j] = perm[j], perm[i]
		}
		g.rowPerm = perm[:fpRows]
	}
	return g, nil
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Name implements Generator.
func (g *synth) Name() string { return g.p.Name }

// Next implements Generator.
func (g *synth) Next(in *Instr) {
	if g.phaseLeft > 0 {
		g.phaseLeft--
		if g.phaseLeft == 0 {
			g.hotBase += g.phaseShift
			if g.hotBase >= g.p.FootprintBytes {
				g.hotBase -= g.p.FootprintBytes
			}
			g.phaseLeft = g.p.PhaseInstr
		}
	}
	*in = Instr{}
	if g.rng.Float64() >= g.p.MemFraction {
		return
	}
	in.Mem = true
	in.Write = g.rng.Float64() < g.p.WriteFraction
	u := g.rng.Float64()
	var off uint64
	switch {
	case u < g.cLocal:
		// Resident working set at the bottom of the footprint.
		off = g.rng.Uint64n(g.p.LocalBytes) &^ 7
	case u < g.cStream:
		off = g.streamPos
		if g.streamPos += g.streamStep; g.streamPos >= g.p.FootprintBytes {
			g.streamPos -= g.p.FootprintBytes
		}
	case u < g.cStride:
		off = g.stridePos
		if g.stridePos += g.strideStep; g.stridePos >= g.p.FootprintBytes {
			g.stridePos -= g.p.FootprintBytes
		}
	case u < g.cHot:
		off = g.hotOffset()
	default:
		// Pointer chase: uniform random, serially dependent, 8-byte
		// aligned like a pointer load.
		off = g.rng.Uint64n(g.p.FootprintBytes) &^ 7
		in.Dependent = !in.Write
	}
	// Every component already reduces its offset below the footprint;
	// only an oversized LocalBytes can exceed it, and then the (cold)
	// reduction matches the old unconditional modulo.
	if off >= g.p.FootprintBytes {
		off %= g.p.FootprintBytes
	}
	in.Addr = g.region.Base + g.scatter(off)
}

// scatter applies the physical row permutation to a footprint offset,
// yielding an offset within the whole region.
func (g *synth) scatter(off uint64) uint64 {
	if g.rowPerm == nil {
		return off
	}
	row := off / scatterRowBytes
	return uint64(g.rowPerm[row])*scatterRowBytes + off%scatterRowBytes
}

// hotOffset draws a power-law-skewed offset within the drifting hot
// region: rank = N * u^skew concentrates mass near rank 0; the rank is
// then spread over the hot region at 64-byte granularity.
func (g *synth) hotOffset() uint64 {
	u := g.rng.Float64()
	for i := 1.0; i < g.p.HotSkew; i++ {
		u *= g.rng.Float64()
	}
	blocks := g.hotBytes >> 6
	if blocks == 0 {
		blocks = 1
	}
	rank := uint64(u * float64(blocks))
	if rank >= blocks {
		rank = blocks - 1
	}
	// hotBase < footprint and rank<<6 < hotBytes <= footprint, so one
	// conditional subtraction replaces the modulo.
	off := g.hotBase + rank<<6
	if off >= g.p.FootprintBytes {
		off -= g.p.FootprintBytes
	}
	return off
}
