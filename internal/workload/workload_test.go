package workload

import (
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	return Profile{
		Name: "test", MemFraction: 0.3, WriteFraction: 0.25,
		FootprintBytes: 8 << 20,
		LocalWeight:    0.5, StreamWeight: 0.2, StrideWeight: 0.1,
		HotWeight: 0.15, ChaseWeight: 0.05,
		HotFraction: 0.125, HotSkew: 1,
		PhaseInstr: 100000, PhaseShiftFraction: 0.125,
	}
}

func testRegion() Region { return Region{Base: 1 << 30, Bytes: 64 << 20} }

func TestGeneratorDeterminism(t *testing.T) {
	a, err := NewSynthetic(testProfile(), testRegion(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSynthetic(testProfile(), testRegion(), 7)
	var ia, ib Instr
	for i := 0; i < 100000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a, _ := NewSynthetic(testProfile(), testRegion(), 1)
	b, _ := NewSynthetic(testProfile(), testRegion(), 2)
	var ia, ib Instr
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia.Mem && ib.Mem && ia.Addr == ib.Addr {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestAddressesStayInRegion(t *testing.T) {
	region := testRegion()
	gen, err := NewSynthetic(testProfile(), region, 3)
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	for i := 0; i < 200000; i++ {
		gen.Next(&in)
		if in.Mem && !region.Contains(in.Addr) {
			t.Fatalf("address %#x outside region [%#x, %#x)", in.Addr,
				region.Base, region.Base+region.Bytes)
		}
	}
}

func TestMemFractionApproximate(t *testing.T) {
	gen, _ := NewSynthetic(testProfile(), testRegion(), 5)
	var in Instr
	memOps, writes := 0, 0
	const n = 300000
	for i := 0; i < n; i++ {
		gen.Next(&in)
		if in.Mem {
			memOps++
			if in.Write {
				writes++
			}
		}
	}
	memFrac := float64(memOps) / n
	if memFrac < 0.28 || memFrac > 0.32 {
		t.Fatalf("mem fraction %.3f, want ~0.30", memFrac)
	}
	wFrac := float64(writes) / float64(memOps)
	if wFrac < 0.22 || wFrac > 0.28 {
		t.Fatalf("write fraction %.3f, want ~0.25", wFrac)
	}
}

func TestDependentOnlyOnChaseLoads(t *testing.T) {
	p := testProfile()
	p.ChaseWeight = 0
	gen, _ := NewSynthetic(p, testRegion(), 5)
	var in Instr
	for i := 0; i < 100000; i++ {
		gen.Next(&in)
		if in.Dependent {
			t.Fatal("dependent instruction without chase component")
		}
	}
}

func TestPhaseDriftMovesHotRegion(t *testing.T) {
	p := testProfile()
	p.NoScatter = true
	p.LocalWeight, p.StreamWeight, p.StrideWeight, p.ChaseWeight = 0, 0, 0, 0
	p.HotWeight = 1
	p.MemFraction = 0.99
	gen, _ := NewSynthetic(p, testRegion(), 5)
	sample := func(n int) (lo, hi uint64) {
		var in Instr
		lo = ^uint64(0)
		for i := 0; i < n; i++ {
			gen.Next(&in)
			if !in.Mem {
				continue
			}
			if in.Addr < lo {
				lo = in.Addr
			}
			if in.Addr > hi {
				hi = in.Addr
			}
		}
		return
	}
	lo1, hi1 := sample(int(p.PhaseInstr) / 2)
	// skip to the next phase
	var in Instr
	for i := uint64(0); i < p.PhaseInstr; i++ {
		gen.Next(&in)
	}
	lo2, hi2 := sample(int(p.PhaseInstr) / 2)
	if lo2 < hi1 && hi2 > lo1 && lo1 == lo2 {
		t.Fatalf("hot region did not move: [%#x,%#x] then [%#x,%#x]", lo1, hi1, lo2, hi2)
	}
	if lo2 == lo1 {
		t.Fatal("hot base unchanged across a phase boundary")
	}
}

func TestPhaseOffsetShiftsSchedule(t *testing.T) {
	p := testProfile()
	p.NoScatter = true
	p.LocalWeight, p.StreamWeight, p.StrideWeight, p.ChaseWeight = 0, 0, 0, 0
	p.HotWeight = 1
	base, _ := NewSynthetic(p, testRegion(), 5)
	p.PhaseOffsetInstr = p.PhaseInstr - 1
	off, _ := NewSynthetic(p, testRegion(), 5)
	// The offset generator crosses a boundary after 1 instruction, the
	// base one only after PhaseInstr; their address streams must differ
	// within the first phase length.
	var ia, ib Instr
	differ := false
	for i := uint64(0); i < p.PhaseInstr/2; i++ {
		base.Next(&ia)
		off.Next(&ib)
		if ia.Mem && ib.Mem && ia.Addr != ib.Addr {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("phase offset had no effect")
	}
}

func TestScatterIsInjective(t *testing.T) {
	p := testProfile()
	gen, _ := NewSynthetic(p, testRegion(), 9)
	s := gen.(*synth)
	if s.rowPerm == nil {
		t.Fatal("scatter disabled by default")
	}
	seen := make(map[uint32]bool)
	for _, v := range s.rowPerm {
		if seen[v] {
			t.Fatalf("scatter permutation repeats row %d", v)
		}
		seen[v] = true
		if uint64(v) >= testRegion().Bytes/scatterRowBytes {
			t.Fatalf("scatter target %d outside region", v)
		}
	}
}

func TestNoScatterIdentity(t *testing.T) {
	p := testProfile()
	p.NoScatter = true
	p.LocalWeight, p.StrideWeight, p.HotWeight, p.ChaseWeight = 0, 0, 0, 0
	p.StreamWeight = 1
	p.StreamStep = 8
	p.MemFraction = 0.99
	gen, _ := NewSynthetic(p, testRegion(), 9)
	var in Instr
	var last uint64
	for i := 0; i < 1000; i++ {
		gen.Next(&in)
		if !in.Mem {
			continue
		}
		if last != 0 && in.Addr != last+p.StreamStep {
			t.Fatalf("stream not sequential without scatter: %#x then %#x", last, in.Addr)
		}
		last = in.Addr
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := func(mutate func(*Profile)) {
		t.Helper()
		p := testProfile()
		mutate(&p)
		if _, err := NewSynthetic(p, testRegion(), 1); err == nil {
			t.Error("invalid profile accepted")
		}
	}
	bad(func(p *Profile) { p.Name = "" })
	bad(func(p *Profile) { p.MemFraction = 0 })
	bad(func(p *Profile) { p.MemFraction = 1.5 })
	bad(func(p *Profile) { p.WriteFraction = -0.1 })
	bad(func(p *Profile) { p.FootprintBytes = 1000 })
	bad(func(p *Profile) {
		p.LocalWeight, p.StreamWeight, p.StrideWeight, p.HotWeight, p.ChaseWeight = 0, 0, 0, 0, 0
	})
	bad(func(p *Profile) { p.HotFraction = 0 })
	bad(func(p *Profile) { p.FootprintBytes = 128 << 20 }) // exceeds region
}

func TestAddressAlignmentProperty(t *testing.T) {
	gen, _ := NewSynthetic(testProfile(), testRegion(), 11)
	check := func(steps uint8) bool {
		var in Instr
		for i := 0; i < int(steps)+1; i++ {
			gen.Next(&in)
			if in.Mem && in.Dependent && in.Addr%8 != 0 {
				return false // pointer loads must be 8-byte aligned
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
