package workload

import "fmt"

// Catalog returns the ten single-programmed workload profiles of Table 2.
//
// Footprints are nominal full-scale (8 GB system) values; the experiment
// harness scales them with simulated memory capacity so short episodes
// exercise the same footprint-to-fast-level pressure as the paper's
// 100M-instruction samples (see DESIGN.md). PhaseInstr is expressed per
// 100M instructions and scaled with the episode length the same way.
//
// Calibration targets, per benchmark, are (a) the published MPKI of the
// SPEC CPU2006 original on a 4 MB LLC, (b) a DRAM-visible access mix
// whose hot set exceeds the LLC but fits the fast level within a phase,
// and (c) phase drift whose union over a run exceeds the fast level, the
// program behaviour Section 7.1 credits for dynamic beating static.
func Catalog() []Profile {
	return []Profile{
		{
			Name: "astar", MemFraction: 0.25, WriteFraction: 0.20,
			FootprintBytes: 1280 << 20,
			LocalWeight:    0.984, HotWeight: 0.0095, ChaseWeight: 0.0005,
			HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "cactusADM", MemFraction: 0.30, WriteFraction: 0.25,
			FootprintBytes: 1600 << 20,
			LocalWeight:    0.980, HotWeight: 0.010, StrideWeight: 0.0045,
			StrideBytes: 192, HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "GemsFDTD", MemFraction: 0.35, WriteFraction: 0.30,
			FootprintBytes: 2000 << 20,
			LocalWeight:    0.925, HotWeight: 0.020, StrideWeight: 0.0165, StreamWeight: 0.0295,
			StreamStep: 16, StrideBytes: 128, HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "lbm", MemFraction: 0.40, WriteFraction: 0.45,
			FootprintBytes: 1280 << 20,
			LocalWeight:    0.638, StreamWeight: 0.323, HotWeight: 0.027,
			StreamStep: 8, HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "leslie3d", MemFraction: 0.33, WriteFraction: 0.30,
			FootprintBytes: 1200 << 20,
			LocalWeight:    0.948, HotWeight: 0.028, StrideWeight: 0.012,
			StrideBytes: 256, HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "libquantum", MemFraction: 0.30, WriteFraction: 0.25,
			FootprintBytes: 96 << 20,
			LocalWeight:    0.330, StreamWeight: 0.655, StrideWeight: 0.015,
			StreamStep: 8, StrideBytes: 16*1024 + 192,
			PhaseInstr: 0,
		},
		{
			Name: "mcf", MemFraction: 0.35, WriteFraction: 0.15,
			FootprintBytes: 2400 << 20,
			LocalWeight:    0.897, HotWeight: 0.082, ChaseWeight: 0.0005,
			HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "milc", MemFraction: 0.32, WriteFraction: 0.30,
			FootprintBytes: 2000 << 20,
			LocalWeight:    0.910, HotWeight: 0.062, ChaseWeight: 0.0010,
			HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "omnetpp", MemFraction: 0.30, WriteFraction: 0.30,
			FootprintBytes: 1280 << 20,
			LocalWeight:    0.914, HotWeight: 0.057, ChaseWeight: 0.0010,
			HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
		{
			Name: "soplex", MemFraction: 0.33, WriteFraction: 0.20,
			FootprintBytes: 1600 << 20,
			LocalWeight:    0.904, HotWeight: 0.055, StrideWeight: 0.016,
			StrideBytes: 640, HotFraction: 0.125, HotSkew: 1,
			PhaseInstr: 240_000_000, PhaseShiftFraction: 0.125, PhaseOffsetInstr: 230_000_000,
		},
	}
}

// Lookup returns the catalog profile with the given name.
func Lookup(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Mix is a named multi-programmed workload set (Table 2, M1-M8).
type Mix struct {
	Name       string
	Benchmarks []string
}

// Mixes returns the eight multi-programmed sets of Table 2.
func Mixes() []Mix {
	return []Mix{
		{"M1", []string{"cactusADM", "mcf", "milc", "omnetpp"}},
		{"M2", []string{"cactusADM", "GemsFDTD", "lbm", "mcf"}},
		{"M3", []string{"cactusADM", "lbm", "leslie3d", "omnetpp"}},
		{"M4", []string{"astar", "cactusADM", "lbm", "milc"}},
		{"M5", []string{"astar", "libquantum", "omnetpp", "soplex"}},
		{"M6", []string{"GemsFDTD", "leslie3d", "libquantum", "soplex"}},
		{"M7", []string{"leslie3d", "libquantum", "milc", "soplex"}},
		{"M8", []string{"lbm", "libquantum", "mcf", "soplex"}},
	}
}

// LookupMix returns the mix with the given name.
func LookupMix(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// AllSingleNames returns the benchmark names in catalog order.
func AllSingleNames() []string {
	ps := Catalog()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
