package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if g := Gmean([]float64{1, 1, 1}); g != 1 {
		t.Fatalf("gmean of ones = %v", g)
	}
	if g := Gmean(nil); g != 0 {
		t.Fatalf("gmean of empty = %v", g)
	}
}

func TestGmeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero input")
		}
	}()
	Gmean([]float64{1, 0})
}

func TestGmeanErr(t *testing.T) {
	if g, err := GmeanErr([]float64{2, 8}); err != nil || math.Abs(g-4) > 1e-12 {
		t.Fatalf("GmeanErr(2,8) = %v, %v", g, err)
	}
	if g, err := GmeanErr(nil); err != nil || g != 0 {
		t.Fatalf("GmeanErr(empty) = %v, %v", g, err)
	}
	for _, bad := range [][]float64{{1, 0}, {1, -2}, {math.NaN()}} {
		if _, err := GmeanErr(bad); err == nil {
			t.Errorf("GmeanErr(%v) returned no error", bad)
		}
	}
	// The error names the offending value and index for diagnosis.
	_, err := GmeanErr([]float64{1, 2, -3})
	if err == nil || !strings.Contains(err.Error(), "-3") || !strings.Contains(err.Error(), "index 2") {
		t.Fatalf("error lacks value/index context: %v", err)
	}
	if _, err := GmeanImprovementErr([]float64{1.1, 0}); err == nil {
		t.Fatal("GmeanImprovementErr accepted a zero ratio")
	}
	if imp, err := GmeanImprovementErr([]float64{1.1, 1.21}); err != nil || imp <= 0 {
		t.Fatalf("GmeanImprovementErr = %v, %v", imp, err)
	}
}

func TestGmeanImprovement(t *testing.T) {
	// Two workloads at +10% and +21% -> gmean ratio 1.1533... -> 15.3%.
	got := GmeanImprovement([]float64{1.10, 1.21})
	want := (math.Sqrt(1.10*1.21) - 1) * 100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("improvement %v, want %v", got, want)
	}
}

func TestGmeanBetweenMinMaxProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)/1000 + 0.5
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Gmean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

func TestDist(t *testing.T) {
	d := Dist{RowBuffer: 50, Fast: 30, Slow: 20}
	rb, f, s := d.Fractions()
	if rb != 0.5 || f != 0.3 || s != 0.2 {
		t.Fatalf("fractions %v %v %v", rb, f, s)
	}
	if d.Total() != 100 {
		t.Fatalf("total %d", d.Total())
	}
	if m := d.FastLevelMissRatio(); m != 0.4 {
		t.Fatalf("fast-level miss ratio %v, want 0.4 (20 of 50 opens)", m)
	}
	var empty Dist
	rb, f, s = empty.Fractions()
	if rb != 0 || f != 0 || s != 0 || empty.FastLevelMissRatio() != 0 {
		t.Fatal("empty dist must be all zeros")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "22")
	out := tbl.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "beta-longer") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows = 5 lines
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the first column width.
	if !strings.HasPrefix(lines[2], "----") {
		t.Fatalf("no separator:\n%s", out)
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.1234) != "12.34%" {
		t.Fatalf("percent formatting: %s", Percent(0.1234))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("sorted keys: %v", keys)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("x,y", `q"z`)
	tbl.AddRow("plain", "2")
	got := tbl.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\nplain,2\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // unsorted on purpose; input must not be mutated
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {0.95, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); got != c.want {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.q, got, c.want)
		}
	}
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element p99 = %v, want 7", got)
	}
	// Nearest rank returns an actual observation.
	if got := Percentile(xs, 0.73); got != 4 {
		t.Errorf("p73 of 1..5 = %v, want 4 (ceil(0.73*5) = 4th)", got)
	}
}

func TestPercentileErr(t *testing.T) {
	cases := []struct {
		name    string
		xs      []float64
		q       float64
		want    float64
		wantErr bool
	}{
		{name: "empty", xs: nil, q: 0.5, wantErr: true},
		{name: "empty slice", xs: []float64{}, q: 0.99, wantErr: true},
		{name: "single p0", xs: []float64{7}, q: 0, want: 7},
		{name: "single p50", xs: []float64{7}, q: 0.5, want: 7},
		{name: "single p100", xs: []float64{7}, q: 1, want: 7},
		{name: "duplicates p50", xs: []float64{2, 2, 2, 2}, q: 0.5, want: 2},
		{name: "duplicates mixed", xs: []float64{1, 3, 3, 3, 9}, q: 0.5, want: 3},
		{name: "duplicates p99", xs: []float64{1, 3, 3, 3, 9}, q: 0.99, want: 9},
		{name: "zero value is data", xs: []float64{0, 0}, q: 0.95, want: 0},
		{name: "clamp low", xs: []float64{4, 8}, q: -1, want: 4},
		{name: "clamp high", xs: []float64{4, 8}, q: 2, want: 8},
	}
	for _, c := range cases {
		got, err := PercentileErr(c.xs, c.q)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: PercentileErr(%v, %v) = %v, want error", c.name, c.xs, c.q, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: PercentileErr(%v, %v) = %v, want %v", c.name, c.xs, c.q, got, c.want)
		}
	}
	// The delegating Percentile maps the error case to 0.
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}
