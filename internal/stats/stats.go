// Package stats provides the derived metrics and text-table rendering the
// experiment harness uses to regenerate the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gmean returns the geometric mean of xs; it panics on non-positive
// inputs because the paper's gmean columns are over positive speedups.
// Rendering paths that aggregate measured (possibly degenerate) values
// should use GmeanErr instead and surface the error.
func Gmean(xs []float64) float64 {
	g, err := GmeanErr(xs)
	if err != nil {
		panic("stats: " + err.Error())
	}
	return g
}

// GmeanErr returns the geometric mean of xs, or an error naming the
// first non-positive input (a geometric mean is only defined over
// positive values). An empty slice yields 0 with no error, matching
// Gmean.
func GmeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("gmean over non-positive value %v at index %d", x, i)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// GmeanImprovement converts per-workload speedup ratios (design IPC /
// baseline IPC) into the paper's "performance improvement" percentage.
// Like Gmean it panics on non-positive ratios; figure rendering uses
// GmeanImprovementErr.
func GmeanImprovement(ratios []float64) float64 {
	return (Gmean(ratios) - 1) * 100
}

// GmeanImprovementErr is GmeanImprovement with the error path of
// GmeanErr: a run that produced a zero or negative IPC ratio (a
// crashed or degenerate measurement) becomes a diagnosable error
// instead of a panic in the middle of figure rendering.
func GmeanImprovementErr(ratios []float64) (float64, error) {
	g, err := GmeanErr(ratios)
	if err != nil {
		return 0, err
	}
	return (g - 1) * 100, nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percent formats a fraction as a percentage string.
func Percent(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// Percentile returns the q-quantile (0 <= q <= 1) of xs by the
// nearest-rank method on a sorted copy: the smallest element such that
// at least q of the sample is <= it. Nearest rank returns an actual
// observation (no interpolation), so p99 of a latency sample is a
// latency that really occurred. An empty sample yields 0; q is clamped.
// Callers that must distinguish "no data" from a genuine zero quantile
// should use PercentileErr.
func Percentile(xs []float64, q float64) float64 {
	p, err := PercentileErr(xs, q)
	if err != nil {
		return 0
	}
	return p
}

// PercentileErr is Percentile with an explicit empty-sample error: a
// percentile of nothing is undefined, and reporting paths that print
// quantiles of measured samples should surface that instead of a
// silent 0.
func PercentileErr(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1], nil
}

// Dist is a three-way access-location distribution (Figures 7c/7f/8b).
type Dist struct {
	RowBuffer, Fast, Slow uint64
}

// Total returns the access count.
func (d Dist) Total() uint64 { return d.RowBuffer + d.Fast + d.Slow }

// Fractions returns the normalized distribution; all zeros when empty.
func (d Dist) Fractions() (rb, fast, slow float64) {
	t := d.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(d.RowBuffer) / float64(t), float64(d.Fast) / float64(t), float64(d.Slow) / float64(t)
}

// FastLevelMissRatio is the fraction of row-opening accesses that landed
// on the slow level (Figure 8b's "miss ratio of the fast level").
func (d Dist) FastLevelMissRatio() float64 {
	opens := d.Fast + d.Slow
	if opens == 0 {
		return 0
	}
	return float64(d.Slow) / float64(opens)
}

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV form (fields quoted when
// they contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (deterministic output).
func SortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
