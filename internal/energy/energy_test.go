package energy

import (
	"testing"

	"repro/internal/area"
)

func defaultModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(area.Default(), 8192, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBitlineScaling is the model's core claim: short-bitline fast
// subarrays cost proportionally less to sense, restore and precharge.
func TestBitlineScaling(t *testing.T) {
	m := defaultModel(t)
	p := area.Default()
	ratio := float64(p.SlowBitlineCells) / float64(p.FastBitlineCells) // 4x
	for _, c := range []struct {
		name       string
		slow, fast int64
	}{
		{"ACT", m.ActPJ[ClassSlow], m.ActPJ[ClassFast]},
		{"PRE", m.PrePJ[ClassSlow], m.PrePJ[ClassFast]},
	} {
		if c.slow <= 0 || c.fast <= 0 {
			t.Fatalf("%s energies must be positive, got slow=%d fast=%d", c.name, c.slow, c.fast)
		}
		got := float64(c.slow) / float64(c.fast)
		// Integer truncation keeps the ratio within a fraction of a percent.
		if got < ratio*0.99 || got > ratio*1.01 {
			t.Errorf("%s slow:fast energy ratio = %.3f, want ~%.1f (bitline-length scaling)", c.name, got, ratio)
		}
	}
	// Column commands have a fixed I/O term, so fast is cheaper but not 4x.
	if m.RdPJ[ClassFast] >= m.RdPJ[ClassSlow] {
		t.Errorf("fast RD (%d pJ) not cheaper than slow RD (%d pJ)", m.RdPJ[ClassFast], m.RdPJ[ClassSlow])
	}
	if m.WrPJ[ClassFast] >= m.WrPJ[ClassSlow] {
		t.Errorf("fast WR (%d pJ) not cheaper than slow WR (%d pJ)", m.WrPJ[ClassFast], m.WrPJ[ClassSlow])
	}
	if m.WrPJ[ClassSlow] <= m.RdPJ[ClassSlow] {
		t.Errorf("WR (%d pJ) should cost more than RD (%d pJ): write drivers swing the full array path", m.WrPJ[ClassSlow], m.RdPJ[ClassSlow])
	}
}

// TestKnownValues pins the Table 1 geometry's energy table so silent
// arithmetic drift is caught (these exact integers also seed the
// committed figure and doc tables).
func TestKnownValues(t *testing.T) {
	m := defaultModel(t)
	want := Model{
		ActPJ:        [2]int64{ClassSlow: 15099, ClassFast: 3774},
		PrePJ:        [2]int64{ClassSlow: 7549, ClassFast: 1887},
		RdPJ:         [2]int64{ClassSlow: 11288, ClassFast: 10502},
		WrPJ:         [2]int64{ClassSlow: 13848, ClassFast: 13062},
		RefPJ:        181184,
		MigPJ:        69725,
		BackgroundMW: 50,
	}
	if *m != want {
		t.Errorf("model = %+v, want %+v", *m, want)
	}
}

func TestBackgroundExactness(t *testing.T) {
	m := defaultModel(t)
	// 1 mW over 1 ns is exactly 1 pJ: 4 ranks at 50 mW for 1 ms.
	if got, want := m.BackgroundPJ(4, 1_000_000), int64(4*50*1_000_000); got != want {
		t.Errorf("BackgroundPJ(4, 1e6 ns) = %d, want %d", got, want)
	}
	if m.BackgroundPJ(-1, 10) != 0 || m.BackgroundPJ(2, -10) != 0 {
		t.Error("negative ranks/elapsed must price to zero")
	}
}

// TestBreakdownConservation: a Breakdown priced from counts must sum
// exactly (integer ==) to the per-term products.
func TestBreakdownConservation(t *testing.T) {
	m := defaultModel(t)
	c := Counts{
		ActSlow: 101, ActFast: 73, PreSlow: 99, PreFast: 71,
		RdSlow: 1234, RdFast: 4321, WrSlow: 55, WrFast: 44,
		Ref: 17, Mig: 9,
	}
	b := m.Breakdown(c, 4, 123_456)
	sum := b.ActSlowPJ + b.ActFastPJ + b.PreSlowPJ + b.PreFastPJ +
		b.RdSlowPJ + b.RdFastPJ + b.WrSlowPJ + b.WrFastPJ +
		b.RefPJ + b.MigPJ + b.BackgroundPJ
	if sum != b.TotalPJ() {
		t.Errorf("component sum %d != TotalPJ %d", sum, b.TotalPJ())
	}
	if b.DynamicPJ()+b.BackgroundPJ != b.TotalPJ() {
		t.Errorf("DynamicPJ+BackgroundPJ = %d, want %d", b.DynamicPJ()+b.BackgroundPJ, b.TotalPJ())
	}
	if b.ActSlowPJ != 101*m.ActPJ[ClassSlow] || b.MigPJ != 9*m.MigPJ {
		t.Error("per-term pricing mismatch")
	}
	if b.BackgroundPJ != m.BackgroundPJ(4, 123_456) {
		t.Error("background pricing mismatch")
	}
}

func TestNewModelValidation(t *testing.T) {
	p := area.Default()
	if _, err := NewModel(p, 0, 64); err == nil {
		t.Error("zero row bytes must be rejected")
	}
	if _, err := NewModel(p, 8192, 0); err == nil {
		t.Error("zero block bytes must be rejected")
	}
	if _, err := NewModel(p, 64, 8192); err == nil {
		t.Error("block larger than row must be rejected")
	}
	bad := p
	bad.FastBitlineCells = p.SlowBitlineCells + 1
	if _, err := NewModel(bad, 8192, 64); err == nil {
		t.Error("invalid area params must be rejected")
	}
}
