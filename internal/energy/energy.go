// Package energy implements the analytical DESTINY/NVSim-style energy
// model of the asymmetric device: per-command energies (ACT/PRE/RD/WR)
// scaled by bitline length so short-bitline fast subarrays are cheaper
// to sense and restore, plus refresh, migration-transfer and
// background/standby power. It consumes the same physical-design
// parameters internal/area uses for the silicon-area model, so the two
// analytic models stay in lock-step over one geometry description.
//
// All dynamic energies are exact integer picojoules and background
// power is an integer milliwatt rate (1 mW sustained for 1 ns of
// simulated time is exactly 1 pJ), so every downstream accumulation —
// telemetry counters, per-request attribution, figure totals — is exact
// integer arithmetic with a conservation invariant that can be checked
// with == rather than a float tolerance. The model is pure accounting:
// nothing in it ever feeds back into command timing, so enabling energy
// metering cannot perturb a simulation.
package energy

import (
	"fmt"

	"repro/internal/area"
)

// Class indexes the per-class energy tables. The values deliberately
// match dram.RowClass (slow=0, fast=1); the dram package converts with
// a plain int cast. energy cannot import dram (dram builds its model
// from this package), so the correspondence is by value, not by type.
const (
	ClassSlow = 0
	ClassFast = 1
)

// Physical constants of the model. The sensing terms come from the
// standard C·Vdd² arithmetic DESTINY/NVSim apply per bitline: a DRAM
// cell contributes ~200 aF of bitline capacitance, and at Vdd = 1.5 V
// (DDR3) a full-swing sense+restore dissipates C·Vdd² = 450 aJ per
// cell of bitline length per bit of row width. Precharge equalizes the
// bitline pair at half swing, costing half that. Column accesses pay a
// per-bit I/O + on-die bus term plus a local-dataline term that scales
// with subarray height (the column path crosses the whole bitline).
const (
	actCellAJ = 450  // aJ per (row bit x bitline cell): full-swing sense+restore
	preCellAJ = 225  // aJ per (row bit x bitline cell): half-swing equalize
	rdIOPJ    = 20   // pJ per bit burst on the DQ pins + on-die bus (read)
	wrIOPJ    = 25   // pJ per bit received and driven into the array (write)
	colCellAJ = 4000 // aJ per (column bit x bitline cell): local dataline/CSL drive

	// refRowCycles calibrates one REF command as this many slow-row
	// ACT+PRE cycles (a REF walks several rows per bank internally);
	// eight keeps the model consistent with the Section 7.7 coarse
	// proxy's 8:1 REF:ACT weight.
	refRowCycles = 8

	// migTransferFJ is the energy of moving one bit across the
	// migration cells between a slow and a fast subarray (short local
	// wires, no I/O): 100 fJ/bit.
	migTransferFJ = 100

	// backgroundMWPerRank is the standby/refresh-idle power of one rank
	// (peripheral clocking, DLL, leakage): 50 mW, the usual order for a
	// DDR3 x8 rank's IDD2N floor.
	backgroundMWPerRank = 50
)

// Model holds the per-command energies of one device in integer
// picojoules, indexed by class (ClassSlow/ClassFast) where the command
// touches a subarray.
type Model struct {
	// ActPJ is the energy of one ACT: sensing and restoring every bit
	// of the row through its bitline. Proportional to bitline length,
	// which is the whole energy argument for short-bitline subarrays.
	ActPJ [2]int64
	// PrePJ is the energy of one PRE: equalizing the open row's
	// bitlines back to Vdd/2.
	PrePJ [2]int64
	// RdPJ is the energy of one RD burst (one cache block): I/O plus
	// the column path through the subarray.
	RdPJ [2]int64
	// WrPJ is the energy of one WR burst.
	WrPJ [2]int64
	// RefPJ is the energy of one REF command (per rank).
	RefPJ int64
	// MigPJ is the energy of one DAS-DRAM migration swap: two row
	// cycles on each side plus the inter-subarray transfer of both rows.
	MigPJ int64
	// BackgroundMW is the standby power of one rank in milliwatts.
	// Milliwatt-nanoseconds are picojoules exactly, so background
	// energy stays on the integer accounting path.
	BackgroundMW int64
}

// NewModel derives the per-command energy table from the physical
// design parameters (bitline lengths) and the device geometry (row and
// block sizes in bytes).
func NewModel(p area.Params, rowBytes, blockBytes int) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rowBytes <= 0 || blockBytes <= 0 {
		return nil, fmt.Errorf("energy: row (%d) and block (%d) bytes must be positive", rowBytes, blockBytes)
	}
	if blockBytes > rowBytes {
		return nil, fmt.Errorf("energy: block (%d B) larger than row (%d B)", blockBytes, rowBytes)
	}
	rowBits := int64(rowBytes) * 8
	blockBits := int64(blockBytes) * 8
	cells := [2]int64{ClassSlow: int64(p.SlowBitlineCells), ClassFast: int64(p.FastBitlineCells)}
	m := &Model{BackgroundMW: backgroundMWPerRank}
	for c, n := range cells {
		m.ActPJ[c] = rowBits * n * actCellAJ / 1_000_000
		m.PrePJ[c] = rowBits * n * preCellAJ / 1_000_000
		m.RdPJ[c] = blockBits*rdIOPJ + blockBits*n*colCellAJ/1_000_000
		m.WrPJ[c] = blockBits*wrIOPJ + blockBits*n*colCellAJ/1_000_000
	}
	m.RefPJ = refRowCycles * (m.ActPJ[ClassSlow] + m.PrePJ[ClassSlow])
	// A swap is two full row cycles on each side (read out + restore on
	// both the slow and the fast subarray) plus moving both rows across
	// the migration cells.
	m.MigPJ = 2*(m.ActPJ[ClassSlow]+m.PrePJ[ClassSlow]) +
		2*(m.ActPJ[ClassFast]+m.PrePJ[ClassFast]) +
		2*rowBits*migTransferFJ/1000
	return m, nil
}

// BackgroundPJ returns the standby energy of ranks ranks held for
// elapsed nanoseconds of simulated time: mW x ns = pJ, exactly.
func (m *Model) BackgroundPJ(ranks int, elapsedNS int64) int64 {
	if ranks < 0 || elapsedNS < 0 {
		return 0
	}
	return m.BackgroundMW * int64(ranks) * elapsedNS
}

// Breakdown is the exact integer-picojoule energy decomposition of one
// run, split the same way the telemetry counters split: per command
// kind, per class where the command touches a subarray, plus the
// background term.
type Breakdown struct {
	ActSlowPJ, ActFastPJ int64
	PreSlowPJ, PreFastPJ int64
	RdSlowPJ, RdFastPJ   int64
	WrSlowPJ, WrFastPJ   int64
	RefPJ, MigPJ         int64
	BackgroundPJ         int64
}

// DynamicPJ returns the command-driven (non-background) energy.
func (b Breakdown) DynamicPJ() int64 {
	return b.ActSlowPJ + b.ActFastPJ + b.PreSlowPJ + b.PreFastPJ +
		b.RdSlowPJ + b.RdFastPJ + b.WrSlowPJ + b.WrFastPJ + b.RefPJ + b.MigPJ
}

// TotalPJ returns dynamic plus background energy.
func (b Breakdown) TotalPJ() int64 { return b.DynamicPJ() + b.BackgroundPJ }

// Counts are the per-command, per-class event counts a Breakdown is
// computed from (the dram device's command statistics, split by class).
type Counts struct {
	ActSlow, ActFast uint64
	PreSlow, PreFast uint64
	RdSlow, RdFast   uint64
	WrSlow, WrFast   uint64
	Ref, Mig         uint64
}

// Breakdown prices a run's command counts plus background occupancy
// (ranks held for elapsedNS nanoseconds of simulated time).
func (m *Model) Breakdown(c Counts, ranks int, elapsedNS int64) Breakdown {
	return Breakdown{
		ActSlowPJ:    int64(c.ActSlow) * m.ActPJ[ClassSlow],
		ActFastPJ:    int64(c.ActFast) * m.ActPJ[ClassFast],
		PreSlowPJ:    int64(c.PreSlow) * m.PrePJ[ClassSlow],
		PreFastPJ:    int64(c.PreFast) * m.PrePJ[ClassFast],
		RdSlowPJ:     int64(c.RdSlow) * m.RdPJ[ClassSlow],
		RdFastPJ:     int64(c.RdFast) * m.RdPJ[ClassFast],
		WrSlowPJ:     int64(c.WrSlow) * m.WrPJ[ClassSlow],
		WrFastPJ:     int64(c.WrFast) * m.WrPJ[ClassFast],
		RefPJ:        int64(c.Ref) * m.RefPJ,
		MigPJ:        int64(c.Mig) * m.MigPJ,
		BackgroundPJ: m.BackgroundPJ(ranks, elapsedNS),
	}
}
