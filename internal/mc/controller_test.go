package mc

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/timing"
)

func newMC(t *testing.T, migLatNS float64) (*Controller, *sim.Engine, *dram.Device) {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := dram.New(dram.Config{
		Geometry:         dram.Geometry{Channels: 1, Ranks: 1, Banks: 4, Rows: 128, Columns: 16, BlockSize: 64},
		Slow:             timing.DDR31600Slow(),
		Fast:             timing.DDR31600Fast(),
		MigrationLatency: sim.FromNS(migLatNS),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(DefaultConfig(), eng, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, eng, dev
}

// readSync issues a read and steps until done, returning the service
// kind and the latency.
func readSync(t *testing.T, ctl *Controller, eng *sim.Engine, coord dram.Coord, cls dram.RowClass) (ServiceKind, sim.Time) {
	t.Helper()
	start := eng.Now()
	var kind ServiceKind
	done := false
	ctl.Enqueue(&Request{Coord: coord, Class: cls, Core: 0, Done: func(k ServiceKind) { kind = k; done = true }})
	for !done {
		if !eng.Step() {
			t.Fatal("engine drained before read completed")
		}
	}
	return kind, eng.Now() - start
}

func TestReadCompletesWithSaneLatency(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	kind, lat := readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	if kind != ServiceSlow {
		t.Fatalf("first read served %v, want slow", kind)
	}
	// ACT(13.75) + CL(13.75) + burst(5) = 32.5 ns plus scheduling grain.
	if lat < sim.FromNS(30) || lat > sim.FromNS(45) {
		t.Fatalf("cold read latency %v ns", lat.NS())
	}
}

func TestRowBufferHitFasterAndCounted(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	_, cold := readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	kind, hit := readSync(t, ctl, eng, dram.Coord{Row: 5, Column: 3}, dram.RowSlow)
	if kind != ServiceRowBuffer {
		t.Fatalf("row hit served %v", kind)
	}
	if hit >= cold {
		t.Fatalf("row hit (%v ns) not faster than cold (%v ns)", hit.NS(), cold.NS())
	}
	if ctl.Stats.ServedRowBuffer != 1 || ctl.Stats.ServedSlow != 1 {
		t.Fatalf("service counters: %+v", ctl.Stats)
	}
}

func TestFastClassUsesFastTiming(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	_, slow := readSync(t, ctl, eng, dram.Coord{Bank: 0, Row: 5}, dram.RowSlow)
	kind, fast := readSync(t, ctl, eng, dram.Coord{Bank: 1, Row: 5}, dram.RowFast)
	if kind != ServiceFast {
		t.Fatalf("fast read served %v", kind)
	}
	if fast >= slow {
		t.Fatalf("fast open (%v) not faster than slow open (%v)", fast.NS(), slow.NS())
	}
}

func TestConflictPrechargesAndReopens(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	kind, lat := readSync(t, ctl, eng, dram.Coord{Row: 9}, dram.RowSlow)
	if kind != ServiceSlow {
		t.Fatalf("conflict read served %v", kind)
	}
	// Must pay (residual tRAS +) tRP + tRCD + CL: well above a hit.
	if lat < sim.FromNS(40) {
		t.Fatalf("row conflict suspiciously fast: %v ns", lat.NS())
	}
}

func TestPostedWritesCompleteImmediately(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	done := false
	ctl.Enqueue(&Request{Coord: dram.Coord{Row: 3}, Class: dram.RowSlow, Write: true, Core: 0,
		Done: func(ServiceKind) { done = true }})
	if !done {
		t.Fatal("write not posted")
	}
	// The write must still reach the device eventually.
	eng.RunUntil(eng.Now() + sim.FromNS(5000))
	if dev := ctl.Device().CollectStats(); dev.Writes != 1 {
		t.Fatalf("device writes = %d, want 1", dev.Writes)
	}
	if ctl.Stats.Writes != 1 {
		t.Fatalf("controller writes = %d", ctl.Stats.Writes)
	}
}

func TestWritesDrainOpportunistically(t *testing.T) {
	ctl, eng, dev := newMC(t, 0)
	for i := 0; i < 5; i++ {
		ctl.Enqueue(&Request{Coord: dram.Coord{Bank: i % 4, Row: i}, Class: dram.RowSlow, Write: true, Core: 0})
	}
	eng.RunUntil(eng.Now() + sim.FromNS(5000))
	if s := dev.CollectStats(); s.Writes != 5 {
		t.Fatalf("drained %d of 5 writes", s.Writes)
	}
}

func TestMigrationReservesDrainsAndCompletes(t *testing.T) {
	ctl, eng, dev := newMC(t, 146.25)
	// Open a row on bank 2, then request a migration there.
	readSync(t, ctl, eng, dram.Coord{Bank: 2, Row: 7}, dram.RowSlow)
	migDone := false
	ctl.Migrate(0, 0, 2, 9, func() { migDone = true })
	for !migDone {
		if !eng.Step() {
			t.Fatal("migration never completed")
		}
	}
	if s := dev.CollectStats(); s.Migrations != 1 {
		t.Fatal("device migration not issued")
	}
	if ctl.Stats.Migrations != 1 {
		t.Fatal("controller migration not counted")
	}
	// Bank usable again afterwards.
	readSync(t, ctl, eng, dram.Coord{Bank: 2, Row: 1}, dram.RowSlow)
}

func TestMigrationFromOpenSourceRowSkipsPrecharge(t *testing.T) {
	ctl, eng, dev := newMC(t, 146.25)
	readSync(t, ctl, eng, dram.Coord{Bank: 1, Row: 7}, dram.RowSlow)
	preBefore := dev.CollectStats().Precharges
	migDone := false
	// Source row 7 is the open row: active-start, no precharge needed.
	ctl.Migrate(0, 0, 1, 7, func() { migDone = true })
	for !migDone {
		if !eng.Step() {
			t.Fatal("migration never completed")
		}
	}
	if dev.CollectStats().Precharges != preBefore {
		t.Fatal("active-start migration issued a precharge")
	}
}

func TestReadsOnOtherBanksProceedDuringMigration(t *testing.T) {
	ctl, eng, _ := newMC(t, 5000) // long migration on bank 0
	readSync(t, ctl, eng, dram.Coord{Bank: 0, Row: 7}, dram.RowSlow)
	ctl.Migrate(0, 0, 0, 7, nil)
	// A read on bank 3 must complete long before the migration ends.
	_, lat := readSync(t, ctl, eng, dram.Coord{Bank: 3, Row: 1}, dram.RowSlow)
	if lat > sim.FromNS(500) {
		t.Fatalf("unrelated bank starved during migration: %v ns", lat.NS())
	}
}

func TestRefreshEventuallyIssued(t *testing.T) {
	ctl, eng, dev := newMC(t, 0)
	// Give the controller something to start its ticker, then run past
	// several tREFI periods.
	readSync(t, ctl, eng, dram.Coord{Row: 1}, dram.RowSlow)
	eng.RunUntil(eng.Now() + 3*sim.Time(7800)*sim.Nanosecond)
	if s := dev.CollectStats(); s.Refreshes < 2 {
		t.Fatalf("only %d refreshes after 3 tREFI", s.Refreshes)
	}
}

func TestPerCoreServiceAccounting(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	readSync(t, ctl, eng, dram.Coord{Row: 1}, dram.RowSlow)
	done := false
	ctl.Enqueue(&Request{Coord: dram.Coord{Row: 1, Column: 2}, Class: dram.RowSlow, Core: 1,
		Done: func(ServiceKind) { done = true }})
	for !done && eng.Step() {
	}
	if ctl.Stats.PerCore[0][ServiceSlow] != 1 {
		t.Fatalf("core 0 accounting: %v", ctl.Stats.PerCore[0])
	}
	if ctl.Stats.PerCore[1][ServiceRowBuffer] != 1 {
		t.Fatalf("core 1 accounting: %v", ctl.Stats.PerCore[1])
	}
}

func TestMetaTrafficSeparated(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	done := false
	ctl.Enqueue(&Request{Coord: dram.Coord{Row: 1}, Class: dram.RowSlow, Meta: true, Core: -1,
		Done: func(ServiceKind) { done = true }})
	for !done && eng.Step() {
	}
	if ctl.Stats.MetaReads != 1 || ctl.Stats.Reads != 0 {
		t.Fatalf("meta accounting wrong: %+v", ctl.Stats)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	ctl, eng, _ := newMC(t, 0)
	// Open row 5.
	readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	// Enqueue an older conflicting request and a younger row hit
	// back-to-back; the row hit should be served first (FR-FCFS).
	var order []int
	ctl.Enqueue(&Request{Coord: dram.Coord{Row: 9}, Class: dram.RowSlow, Core: 0,
		Done: func(ServiceKind) { order = append(order, 9) }})
	ctl.Enqueue(&Request{Coord: dram.Coord{Row: 5, Column: 7}, Class: dram.RowSlow, Core: 0,
		Done: func(ServiceKind) { order = append(order, 5) }})
	for len(order) < 2 {
		if !eng.Step() {
			t.Fatal("drained")
		}
	}
	if order[0] != 5 {
		t.Fatalf("service order %v, want row hit (5) first", order)
	}
}

func TestStarvationLimitBoundsReordering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StarvationLimit = sim.FromNS(200)
	eng := sim.NewEngine()
	dev, _ := dram.New(dram.Config{
		Geometry: dram.Geometry{Channels: 1, Ranks: 1, Banks: 4, Rows: 128, Columns: 16, BlockSize: 64},
		Slow:     timing.DDR31600Slow(),
		Fast:     timing.DDR31600Fast(),
	})
	ctl, _ := New(cfg, eng, dev, 1)
	readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	// One conflicting victim plus a stream of row hits that would starve
	// it forever without the limit.
	victimDone := false
	var victimAt sim.Time
	ctl.Enqueue(&Request{Coord: dram.Coord{Row: 9}, Class: dram.RowSlow, Core: 0,
		Done: func(ServiceKind) { victimDone = true; victimAt = eng.Now() }})
	hits := 0
	var feed func()
	feed = func() {
		if victimDone || hits > 200 {
			return
		}
		hits++
		ctl.Enqueue(&Request{Coord: dram.Coord{Row: 5, Column: hits % 16}, Class: dram.RowSlow, Core: 0,
			Done: func(ServiceKind) { feed() }})
	}
	feed()
	start := eng.Now()
	for !victimDone {
		if !eng.Step() {
			t.Fatal("drained")
		}
	}
	if victimAt-start > sim.FromNS(2000) {
		t.Fatalf("victim starved for %v ns despite limit", (victimAt - start).NS())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{WindowSize: 0, WriteHigh: 32, WriteLow: 8, StarvationLimit: 1},
		{WindowSize: 32, WriteHigh: 8, WriteLow: 8, StarvationLimit: 1},
		{WindowSize: 32, WriteHigh: 32, WriteLow: 8, StarvationLimit: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestClosedPagePolicyClosesRows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosedPage = true
	eng := sim.NewEngine()
	dev, _ := dram.New(dram.Config{
		Geometry: dram.Geometry{Channels: 1, Ranks: 1, Banks: 4, Rows: 128, Columns: 16, BlockSize: 64},
		Slow:     timing.DDR31600Slow(),
		Fast:     timing.DDR31600Fast(),
	})
	ctl, _ := New(cfg, eng, dev, 1)
	readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	// With nothing queued, the policy precharges the row shortly after.
	eng.RunUntil(eng.Now() + sim.FromNS(200))
	if dev.Channel(0).Rank(0).Bank(0).HasOpenRow() {
		t.Fatal("closed-page policy left the row open")
	}
	// A repeat access must re-activate (no row-buffer hit).
	kind, _ := readSync(t, ctl, eng, dram.Coord{Row: 5, Column: 2}, dram.RowSlow)
	if kind != ServiceSlow {
		t.Fatalf("closed-page repeat served %v, want a fresh slow open", kind)
	}
}

func TestOpenPageKeepsRows(t *testing.T) {
	ctl, eng, dev := newMC(t, 0)
	readSync(t, ctl, eng, dram.Coord{Row: 5}, dram.RowSlow)
	eng.RunUntil(eng.Now() + sim.FromNS(500))
	if !dev.Channel(0).Rank(0).Bank(0).HasOpenRow() {
		t.Fatal("open-page policy closed an idle row")
	}
}
