package mc

import (
	"repro/internal/dram"
	"repro/internal/sim"
)

// horizon computes, for a tick at time t that issued nothing, the
// earliest future time any candidate command could become issuable. The
// next-event scheduler sleeps until then.
//
// The fold is deliberately over-inclusive: a horizon earlier than the
// true enabling time just produces a spurious tick that issues nothing
// and recomputes, which is always safe. The fatal direction is a missed
// enabling time, so every *time-driven* transition that can unblock a
// command contributes a term:
//
//   - per-bank/rank/bus timing for every windowed read and write
//     (tRCD, tCCD, tRP, tRAS, tRC, tRRD, tFAW, tWTR, bus turnaround);
//   - migration readiness, including the grace-window expiry that forces
//     a conflicting row closed;
//   - refresh: every quiet rank's next due time (the transition that
//     sets refreshPending), and for draining ranks the drain PREs and
//     the all-banks-quiet instant;
//   - closed-page precharge readiness for open rows nobody wants.
//
// Queue-driven transitions (new enqueues, drain-mode watermark flips,
// starvation onset, grace expiry *restricting* demand) need no term:
// enqueues wake the channel themselves, and the rest only restrict or
// re-prioritize — while the channel sleeps nothing issues, so a
// restriction taking effect mid-sleep changes nothing.
func (cc *chanCtl) horizon(t sim.Time) sim.Time {
	h := dram.Never
	geo := cc.ctl.dev.Geometry()

	// Refresh. A pending rank progresses by draining open banks and then
	// refreshing; a quiet rank's next transition is its due time.
	for r := 0; r < cc.ch.Ranks(); r++ {
		if !cc.refreshPending[r] {
			h = minTime(h, cc.ch.Rank(r).NextRefreshDue())
			continue
		}
		if e := cc.ch.EarliestRefresh(t, r); e != dram.Never {
			h = minTime(h, e)
			continue
		}
		// Some plain open row blocks the refresh; it gets precharged as
		// soon as its bank allows.
		for b := 0; b < geo.Banks; b++ {
			if cc.ch.Rank(r).Bank(b).HasOpenRow() {
				if e := cc.ch.EarliestPrecharge(t, r, b); e != dram.Never {
					h = minTime(h, e)
				}
			}
		}
	}

	// Migrations on non-refreshing ranks.
	for _, op := range cc.migQ {
		if cc.refreshPending[op.rank] {
			continue
		}
		if e := cc.ch.EarliestMigrate(t, op.rank, op.bank, op.row); e != dram.Never {
			h = minTime(h, e)
			continue
		}
		// A different open row blocks the swap. It is precharged once the
		// bank allows — but queued hits on it hold the PRE off until the
		// grace window runs out.
		bank := cc.ch.Rank(op.rank).Bank(op.bank)
		if !bank.HasOpenRow() {
			continue
		}
		e := cc.ch.EarliestPrecharge(t, op.rank, op.bank)
		if e == dram.Never {
			continue
		}
		if t-op.enqueued < migGrace && cc.pendingRowHit(op.rank, op.bank, bank.OpenRow()) {
			if g := op.enqueued + migGrace; g > e {
				e = g
			}
		}
		h = minTime(h, e)
	}

	// Lazy migration-expiry probes. Bank state is observed lazily: an
	// active-start migration's open row closes at the first can* query at
	// or past busyUntil, and the dispatch scan's behavior at later ticks
	// depends on whether an earlier silent tick already resolved the
	// transition (a conflict request spends its scan slot on the closing
	// CanPrecharge probe when it hasn't). The per-cycle poller always
	// probes at the first cycle past busyUntil, so the next-event build
	// must tick there too — the tick replays the same silent scan, keeping
	// the two builds' staleness patterns (and hence command picks)
	// identical.
	for r := 0; r < cc.ch.Ranks(); r++ {
		for b := 0; b < geo.Banks; b++ {
			if e := cc.ch.MigOpenEnd(r, b); e > t {
				h = minTime(h, e)
			}
		}
	}

	// Windowed demand requests.
	for _, req := range cc.window(cc.readQ) {
		h = minTime(h, cc.reqHorizon(t, req, false))
	}
	for _, req := range cc.window(cc.writeQ) {
		h = minTime(h, cc.reqHorizon(t, req, true))
	}

	// Closed-page: open rows nobody wants are precharged as soon as their
	// banks allow. (The old polling scheduler simply never slept while
	// any row was open; sleeping until the precharge horizon is the fix.)
	if cc.ctl.cfg.ClosedPage {
		for r := 0; r < cc.ch.Ranks(); r++ {
			for b := 0; b < geo.Banks; b++ {
				bank := cc.ch.Rank(r).Bank(b)
				if !bank.HasOpenRow() || cc.bankReserved(r, b) {
					continue
				}
				if cc.pendingRowHit(r, b, bank.OpenRow()) {
					continue
				}
				if e := cc.ch.EarliestPrecharge(t, r, b); e != dram.Never {
					h = minTime(h, e)
				}
			}
		}
	}
	return h
}

// reqHorizon returns the earliest time req's next command (column on a
// row hit, PRE on a conflict, ACT on an idle bank) could issue, assuming
// the bank state frozen at t. Banks under an overdue refresh contribute
// nothing: the refresh fold owns that rank's progress.
func (cc *chanCtl) reqHorizon(t sim.Time, req *Request, isWrite bool) sim.Time {
	rank, bankIdx := req.Coord.Rank, req.Coord.Bank
	if cc.refreshPending[rank] {
		return dram.Never
	}
	bank := cc.ch.Rank(rank).Bank(bankIdx)
	if bank.HasOpenRow() {
		if bank.OpenRow() == req.Coord.Row {
			var e sim.Time
			if isWrite {
				e = cc.ch.EarliestWrite(t, rank, bankIdx)
			} else {
				e = cc.ch.EarliestRead(t, rank, bankIdx)
			}
			if e != dram.Never {
				return e
			}
			// The row is held by a migration that completes before the
			// other constraints clear: once it closes, req needs an ACT.
			return cc.ch.EarliestActivate(t, rank, bankIdx, req.Class)
		}
		if e := cc.ch.EarliestPrecharge(t, rank, bankIdx); e != dram.Never {
			return e
		}
		// Migration-held conflicting row: expires into idle, then ACT.
		return cc.ch.EarliestActivate(t, rank, bankIdx, req.Class)
	}
	return cc.ch.EarliestActivate(t, rank, bankIdx, req.Class)
}

// minTime returns the smaller of two times.
func minTime(a, b sim.Time) sim.Time {
	if b < a {
		return b
	}
	return a
}
