// Package mc implements the memory controller of Table 1: per-channel
// 32-entry scheduling windows, FR-FCFS command scheduling with an
// open-page policy, posted writes with watermark-based draining, refresh
// management, and DAS-DRAM migration operations that reserve a bank,
// drain it, and occupy it for the migration latency.
package mc

import (
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/telemetry/reqtrace"
)

// ServiceKind classifies where a request was serviced, feeding the
// access-location breakdowns of Figures 7c/7f/8b.
type ServiceKind uint8

const (
	// ServiceRowBuffer means the request hit an already-open row.
	ServiceRowBuffer ServiceKind = iota
	// ServiceFast means the request opened a fast-subarray row.
	ServiceFast
	// ServiceSlow means the request opened a slow-subarray row.
	ServiceSlow
)

// String labels the service kind.
func (k ServiceKind) String() string {
	switch k {
	case ServiceRowBuffer:
		return "row-buffer"
	case ServiceFast:
		return "fast"
	default:
		return "slow"
	}
}

// Request is one DRAM-bound access, post-translation: the coordinate is
// physical and the class tells the device which timing set the row uses.
type Request struct {
	Coord dram.Coord
	Class dram.RowClass
	Write bool
	Meta  bool // translation-table traffic
	Core  int
	// Done fires when the data burst completes (reads) or the write is
	// issued to the device (writes). May be nil.
	Done func(served ServiceKind)
	// Release fires when the controller permanently lets go of the
	// request — after Done for reads, at write issue for posted writes —
	// so a producer recycling request storage knows exactly when reuse is
	// safe. May be nil. Like Done it must be bound once per pooled slot,
	// never allocated per request, or the recycling saves nothing. In a
	// sharded run writes release on the memory-side shard while reads
	// release on the processor side; a shared freelist needs a lock.
	Release func()
	// Trace carries the sampled flight-recorder span across the
	// translation boundary; nil means untraced.
	Trace *reqtrace.Span

	enqueued  sim.Time
	firstOpen bool        // an ACT was issued for this request
	doneKind  ServiceKind // kind latched at issue for the Done event
}

// fireDone is the trampoline the controller schedules read completions
// through: the service kind is latched into the request at issue time,
// so completion needs no per-request closure.
func fireDone(a, _ any) {
	r := a.(*Request)
	r.Done(r.doneKind)
	// The burst-end event is the controller's last touch of a read:
	// it left the queues and the traced ring at issue, so the slot can
	// go back to its producer now. Done runs first — it may read the
	// request's fields and must not observe a recycled slot.
	if r.Release != nil {
		r.Release()
	}
}

// migOp is one pending migration (promotion swap) on a specific bank.
// row is the physical source row being promoted: if it is already open,
// the swap starts straight out of the row buffer.
type migOp struct {
	channel, rank, bank, row int
	done                     func()
	enqueued                 sim.Time
}
