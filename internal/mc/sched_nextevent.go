//go:build !mc_polltick

package mc

import (
	"repro/internal/sim"
)

// Next-event tick scheduling (the default): a tick that issues a command
// chains a tick at the next DRAM cycle, exactly like the old per-cycle
// ticker; a tick that issues nothing computes the earliest future time
// any candidate command could become issuable (horizon.go) and sleeps
// until then instead of polling every cycle.
//
// Byte-identity with the mc_polltick polling scheduler needs more than
// per-channel timing: when two channels tick at the same instant, the
// commands they issue schedule completions whose engine-sequence order
// follows the tick order, and same-instant completions on different
// channels are observable through shared downstream state (fills waking
// cores, the DAS manager). Three rules make the orders identical:
//
//  1. Ticks fire after every same-timestamp queue mutation. Every event
//     that reaches Enqueue/Migrate is delivered by an event scheduled
//     more than one DRAM period before it fires (the shortest hop in the
//     system is the LLC lookup latency), so a tick event scheduled
//     during the previous cycle — or at the current instant by the wake
//     a mutation itself triggers — always fires after the mutations.
//     Long sleeps therefore double-hop: the wake event fires at the
//     horizon and schedules the real tick with a fresh sequence number.
//
//  2. Same-instant ticks across channels run inside ONE coalesced
//     controller event, in ascending chainKey order. A polling Ticker
//     keeps its chain position (its events stay ahead of younger chains
//     at shared instants) until it fully stops, and a restart re-enters
//     behind every live chain; chainKey records exactly that age, so the
//     coalesced order reproduces the polling order no matter when the
//     next-event tick events themselves were scheduled.
//
//  3. Channels stop and restart exactly where the polling build does:
//     the shared idleQuiet predicate decides stopping, a stop schedules
//     the same refresh-deadline wake event the polling build schedules
//     (a real event, so its delivery order against same-instant enqueues
//     matches), and only a restart — never a horizon wake, which the
//     polling build doesn't have — assigns a fresh chainKey.

// ctlSched is the controller-level scheduler state: one coalesced tick
// event serves every channel due at an instant.
type ctlSched struct {
	eng   *sim.Engine
	clock sim.Clock
	// keyGen hands out chainKeys; a channel keeps its key until it fully
	// stops and restarts.
	keyGen uint64
	// tickAt is the target of the most recent coalesced tick event, for
	// dedup only (-1 = none pending); per-channel dueAt decides what runs.
	tickAt sim.Time
}

// initCtlSched prepares the coalesced tick state.
func (c *Controller) initCtlSched(eng *sim.Engine, clock sim.Clock) {
	c.sched = ctlSched{eng: eng, clock: clock, tickAt: -1}
}

// chanSched is the per-channel next-event state.
type chanSched struct {
	// chainKey orders same-instant ticks across channels (rule 2).
	chainKey uint64
	// running mirrors the polling Ticker's running flag: false only after
	// an idleQuiet stop, until the next wake restarts the chain.
	running bool
	// dueAt is the instant of this channel's next tick (-1 = none). Tick
	// targets never exceed one cycle out; longer waits go through wake
	// events (rule 1).
	dueAt sim.Time
	// lastTick is the instant of this channel's most recent tick (-1 =
	// never); see chanRestartWake.
	lastTick sim.Time
	// wakeAt is the earliest in-flight horizon wake instant (-1 = none),
	// deduplicating wake-ups across consecutive idle ticks.
	wakeAt sim.Time
}

// initSched prepares next-event scheduling state.
func (cc *chanCtl) initSched(eng *sim.Engine, clock sim.Clock) {
	cc.sched = chanSched{dueAt: -1, lastTick: -1, wakeAt: -1}
}

// wake requests a tick at the current cycle edge (Enqueue/Migrate call
// this, as does the refresh-deadline wake of a stopped channel). If the
// channel had fully stopped, this is the chain restart: it re-enters the
// tick order behind every channel that kept ticking, exactly like a
// polling Ticker restarted by the same call.
func (cc *chanCtl) wake() {
	s := &cc.sched
	cs := &cc.ctl.sched
	if !s.running {
		s.running = true
		cs.keyGen++
		s.chainKey = cs.keyGen
	}
	cc.ensureDue(cs.clock.NextEdge(cs.eng.Now()))
}

// ensureDue marks the channel due at `at` unless an earlier tick is
// already arranged, and makes sure a coalesced event covers it.
func (cc *chanCtl) ensureDue(at sim.Time) {
	s := &cc.sched
	if s.dueAt >= 0 && s.dueAt <= at {
		return
	}
	s.dueAt = at
	cc.ctl.ensureTick(at)
}

// ensureTick schedules the coalesced tick event at `at` unless a pending
// event fires at or before it. Targets are always within one cycle of
// now, so a pending event's sequence number always exceeds that of any
// event delivering a same-instant queue mutation (rule 1).
func (c *Controller) ensureTick(at sim.Time) {
	cs := &c.sched
	if cs.tickAt >= cs.eng.Now() && cs.tickAt <= at {
		return
	}
	cs.tickAt = at
	cs.eng.ScheduleCallAt(at, ctlTick, c, nil)
}

// ctlTick runs every channel due at this instant in ascending chainKey
// order (rule 2). Duplicate events for one instant are harmless: the
// first one ticks the due channels, later ones find nothing due.
func ctlTick(a, _ any) {
	c := a.(*Controller)
	cs := &c.sched
	t := cs.eng.Now()
	if t >= cs.tickAt {
		cs.tickAt = -1
	}
	for {
		var next *chanCtl
		for _, cc := range c.chans {
			if cc.sched.dueAt != t {
				continue
			}
			if next == nil || cc.sched.chainKey < next.sched.chainKey {
				next = cc
			}
		}
		if next == nil {
			return
		}
		next.tickOne(t)
	}
}

// tickOne runs one scheduling cycle for this channel and arranges the
// next: chained at the next cycle while commands flow (or while the
// horizon is that close), slept-through otherwise, fully stopped when
// the channel is idleQuiet.
func (cc *chanCtl) tickOne(t sim.Time) {
	s := &cc.sched
	cs := &cc.ctl.sched
	s.dueAt = -1
	s.lastTick = t
	next := t + cs.clock.Period()
	if cc.dispatch(t) {
		cc.ensureDue(next)
		return
	}
	if cc.idleQuiet(t) {
		// Full stop, exactly where the polling ticker stops (rule 3). The
		// refresh-deadline wake restarts the chain unless an enqueue gets
		// there first.
		s.running = false
		delay := cc.earliestRefreshDue() - t
		if delay < 0 {
			delay = 0
		}
		cs.eng.ScheduleCall(delay, chanRestartWake, cc, nil)
		return
	}
	h := cc.horizon(t)
	if h <= next {
		// Due next cycle (or overdue: a past horizon degrades to polling,
		// never to a missed command).
		cc.ensureDue(next)
		return
	}
	wakeAt := cs.clock.NextEdge(h)
	if s.wakeAt >= 0 && s.wakeAt <= wakeAt && s.wakeAt > t {
		return // an earlier wake is already in flight
	}
	s.wakeAt = wakeAt
	cs.eng.ScheduleCall(wakeAt-t, chanHorizonWake, cc, nil)
}

// chanRestartWake is the refresh-deadline wake of a fully stopped
// channel — the same event the polling build schedules on stop, so its
// delivery order against same-instant enqueues matches. Via wake() it
// restarts the chain if the channel is still stopped and is a no-op
// spurious tick otherwise.
//
// The lastTick guard covers a coalescing artifact: in the polling build
// a stale wake firing at an instant where the channel also ticks always
// fires BEFORE that tick (wakes are scheduled at strictly earlier
// instants than the fresh Start-scheduled tick events they could race,
// so their sequence numbers are smaller), and finds the ticker running —
// a no-op. Here the channel's tick can ride a coalesced event scheduled
// earlier than the stale wake, inverting that order; if the wake then
// fired it would re-arm a second tick at an instant the channel already
// ticked (two commands in one cycle) or spuriously restart a chain that
// stopped this instant. Skipping reproduces the polling no-op exactly.
func chanRestartWake(a, _ any) {
	cc := a.(*chanCtl)
	if cc.sched.lastTick == cc.ctl.sched.eng.Now() {
		return
	}
	cc.wake()
}

// chanHorizonWake resumes a sleeping (but not stopped) channel at its
// timing horizon. It must NOT restart the chain: the polling build has
// no such event, and the channel's polling ticker would have kept its
// chain position straight through the sleep. It fires at the horizon
// instant, possibly before same-instant queue mutations — harmless,
// because it only schedules the real tick via ensureDue.
func chanHorizonWake(a, _ any) {
	cc := a.(*chanCtl)
	s := &cc.sched
	cs := &cc.ctl.sched
	now := cs.eng.Now()
	if s.wakeAt >= 0 && now >= s.wakeAt {
		s.wakeAt = -1
	}
	if !s.running {
		return // stale: the channel fully stopped after this was scheduled
	}
	cc.ensureDue(cs.clock.NextEdge(now))
}
