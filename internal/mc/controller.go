package mc

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/sim"
)

// Config parameterizes the controller.
type Config struct {
	// WindowSize is the per-channel scheduling window (Table 1: 32).
	WindowSize int
	// WriteHigh/WriteLow are the write-queue drain watermarks.
	WriteHigh, WriteLow int
	// StarvationLimit promotes the oldest request over row hits once it
	// has waited this long, bounding FR-FCFS starvation.
	StarvationLimit sim.Time
	// ClosedPage switches from Table 1's open-page policy to a
	// closed-page policy: rows are precharged as soon as no queued
	// request targets them (an ablation knob; the paper's row-buffer
	// locality argument assumes open page).
	ClosedPage bool
}

// DefaultConfig returns the Table 1 controller configuration.
func DefaultConfig() Config {
	return Config{
		WindowSize:      32,
		WriteHigh:       32,
		WriteLow:        8,
		StarvationLimit: sim.FromNS(1000),
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.WindowSize <= 0 {
		return fmt.Errorf("mc: window size must be positive")
	}
	if c.WriteHigh <= 0 || c.WriteLow < 0 || c.WriteLow >= c.WriteHigh {
		return fmt.Errorf("mc: watermarks must satisfy 0 <= low < high")
	}
	if c.StarvationLimit <= 0 {
		return fmt.Errorf("mc: starvation limit must be positive")
	}
	return nil
}

// Stats counts controller activity (demand traffic unless noted).
type Stats struct {
	Reads, Writes   uint64
	ServedRowBuffer uint64
	ServedFast      uint64
	ServedSlow      uint64
	MetaReads       uint64
	MetaWrites      uint64
	Migrations      uint64
	ReadLatencySum  sim.Time // enqueue -> data burst end, demand reads
	// ReadLatHist buckets demand-read latencies (ns): <50, <100, <200,
	// <500, <1000, >=1000.
	ReadLatHist [6]uint64
	MigWaitSum  sim.Time // migration enqueue -> issue
	// PerCore breaks down demand accesses by service kind, indexed by
	// core then ServiceKind.
	PerCore [][3]uint64
}

// Controller is the multi-channel memory controller.
type Controller struct {
	cfg   Config
	eng   *sim.Engine
	dev   *dram.Device
	chans []*chanCtl

	// tel is the live instrument set (nil = telemetry off, the default;
	// see AttachTelemetry).
	tel *mcTelemetry

	// sched is the controller-level part of the per-build-tag tick
	// scheduler (empty for the mc_polltick polling build).
	sched ctlSched

	// shard, when non-nil, is the memory-side shard of a parallel run:
	// completions crossing back to the processor side (read Done events,
	// migration commits) are posted through it instead of scheduled on
	// the local engine (see SetShard).
	shard *sim.Shard

	Stats Stats
}

// New builds a controller for dev with cores per-core stat slots.
func New(cfg Config, eng *sim.Engine, dev *dram.Device, cores int) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, eng: eng, dev: dev}
	if cores > 0 {
		c.Stats.PerCore = make([][3]uint64, cores)
	}
	clock := sim.NewClock(dev.ClockPeriod())
	c.initCtlSched(eng, clock)
	for i := 0; i < dev.Channels(); i++ {
		cc := &chanCtl{
			ctl: c,
			idx: i,
			ch:  dev.Channel(i),
		}
		geo := dev.Geometry()
		cc.reserved = make([]bool, geo.Ranks*geo.Banks)
		cc.refreshPending = make([]bool, geo.Ranks)
		cc.pendR = make([]int32, geo.Ranks*geo.Banks)
		cc.pendW = make([]int32, geo.Ranks*geo.Banks)
		cc.initSched(eng, clock)
		c.chans = append(c.chans, cc)
	}
	return c, nil
}

// Device returns the attached DRAM model.
func (c *Controller) Device() *dram.Device { return c.dev }

// Reset rewinds the controller to its just-constructed state for
// in-place reuse (exp.SystemPool), adopting cfg's window and watermark
// settings. The engine and device are retained — reset them first — and
// the channel count is pinned by the device's geometry. Queues empty
// with their backing arrays kept (entries zeroed so released requests
// are collectable), the per-bank window indexes and reservations clear,
// and both per-build-tag tick schedulers re-initialize exactly as New
// left them. Telemetry and any parallel-shard binding detach; re-attach
// per run.
func (c *Controller) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	c.cfg = cfg
	c.tel = nil
	c.shard = nil
	perCore := c.Stats.PerCore
	c.Stats = Stats{}
	for i := range perCore {
		perCore[i] = [3]uint64{}
	}
	c.Stats.PerCore = perCore
	clock := sim.NewClock(c.dev.ClockPeriod())
	c.initCtlSched(c.eng, clock)
	for _, cc := range c.chans {
		clearPtrs(&cc.readQ)
		clearPtrs(&cc.writeQ)
		clearPtrs(&cc.migQ)
		clearPtrs(&cc.traced)
		for i := range cc.reserved {
			cc.reserved[i] = false
		}
		for i := range cc.refreshPending {
			cc.refreshPending[i] = false
		}
		for i := range cc.pendR {
			cc.pendR[i] = 0
		}
		for i := range cc.pendW {
			cc.pendW[i] = 0
		}
		cc.drain = false
		cc.sched = chanSched{}
		cc.initSched(c.eng, clock)
	}
	return nil
}

// clearPtrs empties a pointer-typed queue keeping its backing array,
// zeroing the entries so the pooled slice does not pin dead requests.
func clearPtrs[T any](q *[]*T) {
	clear(*q)
	*q = (*q)[:0]
}

// SetShard marks the controller as running on the memory-side shard of
// a parallel simulation. Everything the controller schedules for itself
// (channel ticks, refresh) stays on its own engine; only the events it
// owes the processor side — read completions and migration commits —
// are posted through s so they cross domains with the sender-ordered
// key the sequential engine would have assigned.
func (c *Controller) SetShard(s *sim.Shard) { c.shard = s }

// callFunc is the trampoline for posting a plain func() across shards.
func callFunc(a, _ any) { a.(func())() }

// Enqueue adds a translated request to its channel's queue. Writes are
// posted: Done fires immediately.
func (c *Controller) Enqueue(req *Request) {
	cc := c.chans[req.Coord.Channel]
	req.enqueued = c.eng.Now()
	if req.Trace != nil {
		req.Trace.StampEnqueue(req.enqueued)
		if !req.Write {
			cc.traced = append(cc.traced, req)
		}
	}
	if req.Write {
		cc.writeQ = append(cc.writeQ, req)
		if len(cc.writeQ) <= c.cfg.WindowSize {
			cc.notePend(req, 1)
		}
		if req.Done != nil {
			done := req.Done
			req.Done = nil
			done(ServiceRowBuffer) // posted; kind recorded at issue
		}
	} else {
		cc.readQ = append(cc.readQ, req)
		if len(cc.readQ) <= c.cfg.WindowSize {
			cc.notePend(req, 1)
		}
	}
	cc.wake()
}

// Migrate schedules a migration (promotion swap) on the given bank. The
// bank is reserved: new activations are withheld, the open row is closed,
// and once precharged the migration occupies the bank for the device's
// migration latency. done fires at completion.
func (c *Controller) Migrate(channel, rank, bank, row int, done func()) {
	cc := c.chans[channel]
	cc.migQ = append(cc.migQ, &migOp{
		channel: channel, rank: rank, bank: bank, row: row,
		done: done, enqueued: c.eng.Now(),
	})
	cc.reserved[rank*c.dev.Geometry().Banks+bank] = true
	cc.wake()
}

// QueueDepths reports total queued reads and writes (diagnostics).
func (c *Controller) QueueDepths() (reads, writes int) {
	for _, cc := range c.chans {
		reads += len(cc.readQ)
		writes += len(cc.writeQ)
	}
	return
}

// Describe renders the controller's queued work — oldest read/write per
// channel with its age, plus pending migrations — for watchdog stall
// reports.
func (c *Controller) Describe() string {
	now := c.eng.Now()
	var b strings.Builder
	for i, cc := range c.chans {
		if len(cc.readQ) == 0 && len(cc.writeQ) == 0 && len(cc.migQ) == 0 {
			continue
		}
		fmt.Fprintf(&b, "channel %d: %d reads, %d writes, %d migrations\n",
			i, len(cc.readQ), len(cc.writeQ), len(cc.migQ))
		if len(cc.readQ) > 0 {
			r := cc.readQ[0]
			fmt.Fprintf(&b, "  oldest read: rank %d bank %d row %d class %v core %d, waiting %.0f ns\n",
				r.Coord.Rank, r.Coord.Bank, r.Coord.Row, r.Class, r.Core, (now - r.enqueued).NS())
		}
		if len(cc.writeQ) > 0 {
			w := cc.writeQ[0]
			fmt.Fprintf(&b, "  oldest write: rank %d bank %d row %d, waiting %.0f ns\n",
				w.Coord.Rank, w.Coord.Bank, w.Coord.Row, (now - w.enqueued).NS())
		}
		for _, op := range cc.migQ {
			fmt.Fprintf(&b, "  migration: rank %d bank %d row %d, waiting %.0f ns\n",
				op.rank, op.bank, op.row, (now - op.enqueued).NS())
		}
	}
	return b.String()
}

// PendingMigrations reports queued migration operations.
func (c *Controller) PendingMigrations() int {
	n := 0
	for _, cc := range c.chans {
		n += len(cc.migQ)
	}
	return n
}

// ResetStats zeroes the counters (warm-up boundary).
func (c *Controller) ResetStats() {
	perCore := c.Stats.PerCore
	c.Stats = Stats{}
	if perCore != nil {
		for i := range perCore {
			perCore[i] = [3]uint64{}
		}
		c.Stats.PerCore = perCore
	}
}

// chanCtl schedules one channel.
type chanCtl struct {
	ctl *Controller
	idx int
	ch  *dram.Channel

	readQ  []*Request
	writeQ []*Request
	migQ   []*migOp

	// traced holds queued reads carrying a reqtrace span, so refresh and
	// migration occupancy can be credited to the requests they block
	// without scanning the whole read queue (empty unless sampling is on).
	traced []*Request

	reserved       []bool // rank*banks+bank -> migration reservation
	refreshPending []bool // rank -> refresh overdue, drain it
	drain          bool   // write-drain mode

	// pendR/pendW index the scheduling window by bank: entry
	// rank*banks+bank counts windowed reads/writes targeting that bank.
	// Window membership is positional (the first WindowSize queue
	// entries), so the counts depend only on enqueue/remove order, never
	// on bank state — pendingRowHit and closeIdleRows consult them to
	// skip whole banks without scanning the window.
	pendR, pendW []int32

	// sched is the per-build-tag tick scheduler: next-event by default,
	// per-cycle polling under -tags mc_polltick.
	sched chanSched
}

// bankIndex flattens (rank, bank) for the reservation and pending maps.
func (cc *chanCtl) bankIndex(rank, bank int) int {
	return rank*cc.ctl.dev.Geometry().Banks + bank
}

// notePend adjusts the window index when a request enters (+1) or leaves
// (-1) the scheduling window.
func (cc *chanCtl) notePend(req *Request, delta int32) {
	idx := cc.bankIndex(req.Coord.Rank, req.Coord.Bank)
	if req.Write {
		cc.pendW[idx] += delta
	} else {
		cc.pendR[idx] += delta
	}
}

// idleQuiet reports whether the channel has nothing at all to do at
// time t: no queued demand or migrations, no refresh pending or due on
// any rank, and (closed page) no rows left open. Both tick schedulers
// stop ticking exactly when this holds — sharing the predicate keeps
// their stop (and therefore restart-order) behavior identical.
func (cc *chanCtl) idleQuiet(t sim.Time) bool {
	if len(cc.readQ) > 0 || len(cc.writeQ) > 0 || len(cc.migQ) > 0 {
		return false
	}
	for r := 0; r < cc.ch.Ranks(); r++ {
		if cc.refreshPending[r] || cc.ch.RefreshDue(t, r) {
			return false
		}
	}
	if cc.ctl.cfg.ClosedPage {
		for r := 0; r < cc.ch.Ranks(); r++ {
			for b := 0; b < cc.ctl.dev.Geometry().Banks; b++ {
				if cc.ch.Rank(r).Bank(b).HasOpenRow() {
					return false
				}
			}
		}
	}
	return true
}

// earliestRefreshDue returns the earliest future refresh deadline on the
// channel; a fully stopped scheduler arranges to wake then.
func (cc *chanCtl) earliestRefreshDue() sim.Time {
	var earliest sim.Time = -1
	for r := 0; r < cc.ch.Ranks(); r++ {
		due := cc.ch.Rank(r).NextRefreshDue()
		if earliest < 0 || due < earliest {
			earliest = due
		}
	}
	return earliest
}

// bankReserved reports whether (rank, bank) is held for a migration.
func (cc *chanCtl) bankReserved(rank, bank int) bool {
	return cc.reserved[rank*cc.ctl.dev.Geometry().Banks+bank]
}

// bankBlocked reports whether (rank, bank) refuses new demand row
// commands at time t. A migration reservation only hard-blocks once its
// grace window has expired: before that, demand scheduling proceeds
// normally and the migration starts opportunistically (it still has
// priority whenever the bank is ready for it).
func (cc *chanCtl) bankBlocked(rank, bank int, t sim.Time) bool {
	if !cc.bankReserved(rank, bank) {
		return false
	}
	for _, op := range cc.migQ {
		if op.rank == rank && op.bank == bank {
			return t-op.enqueued >= migGrace
		}
	}
	return true
}

// dispatch issues at most one command on this channel for the cycle at
// time t, in strict priority order (refresh, migration, row-hit columns,
// row commands, closed-page precharges), and reports whether a command
// issued. Both tick schedulers (next-event and mc_polltick polling) run
// exactly this sequence, so the command stream is decided here alone.
func (cc *chanCtl) dispatch(t sim.Time) bool {
	if cc.issueRefresh(t) {
		return true
	}
	if cc.issueMigration(t) {
		return true
	}
	cc.updateDrainMode()
	if cc.issueColumn(t) {
		return true
	}
	if cc.issueRowCommand(t) {
		return true
	}
	if cc.ctl.cfg.ClosedPage && cc.closeIdleRows(t) {
		return true
	}
	return false
}

// closeIdleRows implements the closed-page policy: precharge any open
// row with no queued demand for it.
func (cc *chanCtl) closeIdleRows(t sim.Time) bool {
	for r := 0; r < cc.ch.Ranks(); r++ {
		for b := 0; b < cc.ctl.dev.Geometry().Banks; b++ {
			bank := cc.ch.Rank(r).Bank(b)
			if !bank.HasOpenRow() || cc.bankReserved(r, b) {
				continue
			}
			if cc.pendingRowHit(r, b, bank.OpenRow()) {
				continue
			}
			if cc.ch.CanPrecharge(t, r, b) {
				cls := bank.OpenClass()
				cc.ch.Precharge(t, r, b)
				if tel := cc.ctl.tel; tel != nil {
					tel.notePRE(t, cc.idx, r, b, cls, false)
				}
				return true
			}
		}
	}
	return false
}

// issueRefresh gives overdue refreshes absolute priority: the rank is
// drained (open banks precharged) and refreshed.
func (cc *chanCtl) issueRefresh(t sim.Time) bool {
	for r := 0; r < cc.ch.Ranks(); r++ {
		if !cc.refreshPending[r] {
			if cc.ch.RefreshDue(t, r) {
				cc.refreshPending[r] = true
			} else {
				continue
			}
		}
		if cc.ch.CanRefresh(t, r) {
			cc.ch.Refresh(t, r)
			cc.refreshPending[r] = false
			if tel := cc.ctl.tel; tel != nil {
				tel.noteREF(t, cc.idx, r)
			}
			if len(cc.traced) > 0 {
				p := cc.ctl.dev.SlowParams()
				cc.creditBlocked(r, -1, p.Duration(p.TRFC), true)
			}
			return true
		}
		for b := 0; b < cc.ctl.dev.Geometry().Banks; b++ {
			bank := cc.ch.Rank(r).Bank(b)
			if bank.HasOpenRow() && cc.ch.CanPrecharge(t, r, b) {
				cls := bank.OpenClass()
				cc.ch.Precharge(t, r, b)
				if tel := cc.ctl.tel; tel != nil {
					tel.notePRE(t, cc.idx, r, b, cls, false)
				}
				return true
			}
		}
		// Rank is draining (tRAS etc. pending); hold its new commands but
		// let other ranks use the cycle.
	}
	return false
}

// migGrace is how long a pending migration lets queued row hits drain
// before forcing its bank closed. Promotions follow an access to the
// very row being promoted, so sibling hits are usually in flight;
// slamming the row shut immediately costs more than the migration
// itself.
const migGrace = 600 * sim.Nanosecond

// issueMigration drives pending migrations on reserved banks.
func (cc *chanCtl) issueMigration(t sim.Time) bool {
	for qi, op := range cc.migQ {
		if cc.refreshPending[op.rank] {
			continue
		}
		if cc.ch.CanMigrate(t, op.rank, op.bank, op.row) {
			end := cc.ch.Migrate(t, op.rank, op.bank)
			if len(cc.traced) > 0 {
				cc.creditBlocked(op.rank, op.bank, end-t, false)
			}
			cc.ctl.Stats.Migrations++
			cc.ctl.Stats.MigWaitSum += t - op.enqueued
			if tel := cc.ctl.tel; tel != nil {
				tel.noteMIG(t, end, cc.idx, op.rank, op.bank, op.row)
			}
			cc.migQ = append(cc.migQ[:qi], cc.migQ[qi+1:]...)
			cc.unreserve(op)
			done := op.done
			if done != nil {
				if sh := cc.ctl.shard; sh != nil {
					sh.PostCall(end, callFunc, done, nil)
				} else {
					cc.ctl.eng.ScheduleAt(end, done)
				}
			}
			return true
		}
		bank := cc.ch.Rank(op.rank).Bank(op.bank)
		if bank.HasOpenRow() && bank.OpenRow() != op.row && cc.ch.CanPrecharge(t, op.rank, op.bank) {
			// A different row blocks the swap; drain its queued hits for a
			// grace period, then close it.
			if t-op.enqueued < migGrace && cc.pendingRowHit(op.rank, op.bank, bank.OpenRow()) {
				continue
			}
			cls := bank.OpenClass()
			cc.ch.Precharge(t, op.rank, op.bank)
			if tel := cc.ctl.tel; tel != nil {
				tel.notePRE(t, cc.idx, op.rank, op.bank, cls, false)
			}
			return true
		}
	}
	return false
}

// creditBlocked attributes a refresh (whole rank, bank < 0) or migration
// (one bank) occupancy window of length d to every traced read still
// waiting on the blocked bank(s). Convention: all queued traced reads
// are credited, including those beyond the scheduling window — they are
// blocked by the occupancy all the same.
func (cc *chanCtl) creditBlocked(rank, bank int, d sim.Time, refresh bool) {
	em := cc.ctl.dev.EnergyModel()
	for _, req := range cc.traced {
		if req.Coord.Rank != rank || (bank >= 0 && req.Coord.Bank != bank) || !req.Trace.Waiting() {
			continue
		}
		if refresh {
			req.Trace.CreditRefresh(d, em.RefPJ)
		} else {
			req.Trace.CreditMigration(d, em.MigPJ)
		}
	}
}

// dropTraced removes req from the traced list once its data burst is
// scheduled (no further bank-wait credit applies).
func (cc *chanCtl) dropTraced(req *Request) {
	for i, r := range cc.traced {
		if r == req {
			cc.traced = append(cc.traced[:i], cc.traced[i+1:]...)
			return
		}
	}
}

// pendingRowHit reports whether any windowed request targets the open
// row of (rank, bank). The window index answers the common case — no
// windowed request touches the bank at all — without a scan.
func (cc *chanCtl) pendingRowHit(rank, bank, row int) bool {
	if idx := cc.bankIndex(rank, bank); cc.pendR[idx] == 0 && cc.pendW[idx] == 0 {
		return false
	}
	for _, req := range cc.window(cc.readQ) {
		if req.Coord.Rank == rank && req.Coord.Bank == bank && req.Coord.Row == row {
			return true
		}
	}
	for _, req := range cc.window(cc.writeQ) {
		if req.Coord.Rank == rank && req.Coord.Bank == bank && req.Coord.Row == row {
			return true
		}
	}
	return false
}

// unreserve releases a bank reservation unless another queued migration
// targets the same bank.
func (cc *chanCtl) unreserve(op *migOp) {
	for _, other := range cc.migQ {
		if other.rank == op.rank && other.bank == op.bank {
			return
		}
	}
	cc.reserved[op.rank*cc.ctl.dev.Geometry().Banks+op.bank] = false
}

// updateDrainMode applies the write watermarks.
func (cc *chanCtl) updateDrainMode() {
	if !cc.drain && len(cc.writeQ) >= cc.ctl.cfg.WriteHigh {
		cc.drain = true
	}
	if cc.drain && len(cc.writeQ) <= cc.ctl.cfg.WriteLow {
		cc.drain = false
	}
}

// window returns the scheduling window over q.
func (cc *chanCtl) window(q []*Request) []*Request {
	if len(q) > cc.ctl.cfg.WindowSize {
		return q[:cc.ctl.cfg.WindowSize]
	}
	return q
}

// schedulable reports whether req's bank accepts new demand commands at
// time t.
func (cc *chanCtl) schedulable(req *Request, t sim.Time) bool {
	return !cc.refreshPending[req.Coord.Rank] && !cc.bankBlocked(req.Coord.Rank, req.Coord.Bank, t)
}

// starving reports whether the oldest read has waited past the limit, in
// which case row hits yield to it. A request whose bank is held by a
// migration or refresh cannot be served no matter what, so it must not
// freeze the channel: scheduling proceeds normally around it.
func (cc *chanCtl) starving(t sim.Time) bool {
	return len(cc.readQ) > 0 &&
		t-cc.readQ[0].enqueued > cc.ctl.cfg.StarvationLimit &&
		cc.schedulable(cc.readQ[0], t)
}

// issueColumn tries to issue a row-hit column command (first half of
// FR-FCFS). Writes take priority in drain mode; otherwise reads first and
// writes only opportunistically when no read is queued. A starving oldest
// read narrows the window to itself so younger row hits stop overtaking
// it (but it can still issue its own column command).
func (cc *chanCtl) issueColumn(t sim.Time) bool {
	if cc.starving(t) {
		return cc.issueColumnFrom(t, cc.readQ[:1], false)
	}
	if cc.drain {
		return cc.issueColumnFrom(t, cc.writeQ, true) || cc.issueColumnFrom(t, cc.readQ, false)
	}
	if cc.issueColumnFrom(t, cc.readQ, false) {
		return true
	}
	if len(cc.readQ) == 0 && len(cc.writeQ) > 0 {
		return cc.issueColumnFrom(t, cc.writeQ, true)
	}
	return false
}

// issueColumnFrom issues the oldest row-hit request from q. Row hits are
// allowed on banks reserved for migration (the row is open anyway and
// the hit delays nothing the migration needs); only an overdue refresh
// blocks them.
func (cc *chanCtl) issueColumnFrom(t sim.Time, q []*Request, isWrite bool) bool {
	for _, req := range cc.window(q) {
		if cc.refreshPending[req.Coord.Rank] {
			continue
		}
		bank := cc.ch.Rank(req.Coord.Rank).Bank(req.Coord.Bank)
		if !bank.HasOpenRow() || bank.OpenRow() != req.Coord.Row {
			continue
		}
		if isWrite {
			if !cc.ch.CanWrite(t, req.Coord.Rank, req.Coord.Bank) {
				continue
			}
			end := cc.ch.Write(t, req.Coord.Rank, req.Coord.Bank)
			if tel := cc.ctl.tel; tel != nil {
				tel.noteColumn(t, end, cc.idx, req, true)
			}
		} else {
			if !cc.ch.CanRead(t, req.Coord.Rank, req.Coord.Bank) {
				continue
			}
			end := cc.ch.Read(t, req.Coord.Rank, req.Coord.Bank)
			if tel := cc.ctl.tel; tel != nil {
				tel.noteColumn(t, end, cc.idx, req, false)
			}
			if req.Trace != nil {
				cls := cc.ch.Rank(req.Coord.Rank).Bank(req.Coord.Bank).OpenClass()
				req.Trace.StampRead(t, end, cc.ctl.dev.EnergyModel().RdPJ[cls])
				cc.dropTraced(req)
			}
			cc.completeRead(req, end)
		}
		cc.account(req, isWrite)
		cc.remove(req, isWrite)
		if isWrite && req.Release != nil {
			// Posted writes already fired Done at enqueue; leaving the
			// write queue is the controller's last touch.
			req.Release()
		}
		return true
	}
	return false
}

// issueRowCommand serves the oldest request needing a PRE or ACT (second
// half of FR-FCFS). Drain mode reverses the read/write priority; outside
// drain mode writes only open rows when no read is waiting.
func (cc *chanCtl) issueRowCommand(t sim.Time) bool {
	if cc.starving(t) {
		return cc.issueRowCommandFrom(t, cc.readQ[:1])
	}
	if cc.drain {
		return cc.issueRowCommandFrom(t, cc.writeQ) || cc.issueRowCommandFrom(t, cc.readQ)
	}
	if cc.issueRowCommandFrom(t, cc.readQ) {
		return true
	}
	if len(cc.readQ) == 0 {
		return cc.issueRowCommandFrom(t, cc.writeQ)
	}
	return false
}

// issueRowCommandFrom issues a PRE or ACT for the oldest conflicting
// request in q.
func (cc *chanCtl) issueRowCommandFrom(t sim.Time, q []*Request) bool {
	for _, req := range cc.window(q) {
		if !cc.schedulable(req, t) {
			continue
		}
		bank := cc.ch.Rank(req.Coord.Rank).Bank(req.Coord.Bank)
		if bank.HasOpenRow() {
			if bank.OpenRow() == req.Coord.Row {
				continue // row hit handled by issueColumn
			}
			if cc.ch.CanPrecharge(t, req.Coord.Rank, req.Coord.Bank) {
				cls := bank.OpenClass()
				cc.ch.Precharge(t, req.Coord.Rank, req.Coord.Bank)
				if tel := cc.ctl.tel; tel != nil {
					tel.notePRE(t, cc.idx, req.Coord.Rank, req.Coord.Bank, cls, true)
				}
				if req.Trace != nil {
					req.Trace.StampPre(t, cc.ctl.dev.EnergyModel().PrePJ[cls])
				}
				return true
			}
			continue
		}
		if cc.ch.CanActivate(t, req.Coord.Rank, req.Coord.Bank, req.Class) {
			cc.ch.Activate(t, req.Coord.Rank, req.Coord.Bank, req.Coord.Row, req.Class)
			req.firstOpen = true
			if tel := cc.ctl.tel; tel != nil {
				tel.noteACT(t, cc.idx, req)
			}
			if req.Trace != nil {
				req.Trace.StampAct(t, cc.ctl.dev.EnergyModel().ActPJ[req.Class])
			}
			return true
		}
	}
	return false
}

// completeRead schedules the request's Done at the data burst end.
func (cc *chanCtl) completeRead(req *Request, end sim.Time) {
	if !req.Meta {
		lat := end - req.enqueued
		cc.ctl.Stats.ReadLatencySum += lat
		ns := lat.NS()
		switch {
		case ns < 50:
			cc.ctl.Stats.ReadLatHist[0]++
		case ns < 100:
			cc.ctl.Stats.ReadLatHist[1]++
		case ns < 200:
			cc.ctl.Stats.ReadLatHist[2]++
		case ns < 500:
			cc.ctl.Stats.ReadLatHist[3]++
		case ns < 1000:
			cc.ctl.Stats.ReadLatHist[4]++
		default:
			cc.ctl.Stats.ReadLatHist[5]++
		}
	}
	if req.Done != nil {
		req.doneKind = cc.serviceKind(req)
		if sh := cc.ctl.shard; sh != nil {
			sh.PostCall(end, fireDone, req, nil)
		} else {
			cc.ctl.eng.ScheduleCallAt(end, fireDone, req, nil)
		}
	} else if req.Release != nil {
		// No completion to wait for: the slot is free as soon as the
		// column command issues.
		req.Release()
	}
}

// serviceKind classifies how req was served.
func (cc *chanCtl) serviceKind(req *Request) ServiceKind {
	if !req.firstOpen {
		return ServiceRowBuffer
	}
	if req.Class == dram.RowFast {
		return ServiceFast
	}
	return ServiceSlow
}

// account updates the service statistics at issue time.
func (cc *chanCtl) account(req *Request, isWrite bool) {
	s := &cc.ctl.Stats
	if req.Meta {
		if isWrite {
			s.MetaWrites++
		} else {
			s.MetaReads++
		}
		return
	}
	if isWrite {
		s.Writes++
	} else {
		s.Reads++
	}
	kind := cc.serviceKind(req)
	switch kind {
	case ServiceRowBuffer:
		s.ServedRowBuffer++
		if tel := cc.ctl.tel; tel != nil {
			tel.rowHits.Inc()
		}
	case ServiceFast:
		s.ServedFast++
	case ServiceSlow:
		s.ServedSlow++
	}
	if req.Core >= 0 && req.Core < len(s.PerCore) {
		s.PerCore[req.Core][kind]++
	}
}

// remove deletes req from its queue and maintains the window index:
// requests are only ever issued (and hence removed) from inside the
// scheduling window, so the departure frees a window slot that the
// request at position WindowSize, if any, slides into.
func (cc *chanCtl) remove(req *Request, isWrite bool) {
	q := &cc.readQ
	if isWrite {
		q = &cc.writeQ
	}
	for i, r := range *q {
		if r == req {
			cc.notePend(req, -1)
			if len(*q) > cc.ctl.cfg.WindowSize {
				cc.notePend((*q)[cc.ctl.cfg.WindowSize], 1)
			}
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
}
