//go:build mc_polltick

package mc

import (
	"repro/internal/sim"
)

// This file is the pre-next-event tick scheduler, kept compilable behind
// -tags mc_polltick as the cross-check reference (the same pattern as
// internal/sim's sim_refheap queue): a per-cycle Ticker polls dispatch
// whenever work is queued, and the only sleep is the all-queues-empty
// case with a refresh-deadline wake-up. scripts/check.sh byte-compares
// figures rendered under this scheduler against the default next-event
// build; the command streams must be identical.

// ctlSched has no controller-level state in the polling build.
type ctlSched struct{}

// initCtlSched is a no-op: each channel's Ticker is self-contained.
func (c *Controller) initCtlSched(eng *sim.Engine, clock sim.Clock) {}

// chanSched is the polling scheduler's state: one per-cycle ticker.
type chanSched struct {
	ticker *sim.Ticker
}

// initSched attaches the per-cycle ticker.
func (cc *chanCtl) initSched(eng *sim.Engine, clock sim.Clock) {
	cc.sched.ticker = sim.NewTicker(eng, clock, cc.tick)
}

// wake ensures the scheduler is ticking.
func (cc *chanCtl) wake() { cc.sched.ticker.Start() }

// tick issues at most one command on this channel per DRAM cycle.
func (cc *chanCtl) tick() {
	t := cc.ctl.eng.Now()
	if !cc.dispatch(t) {
		cc.maybeSleep(t)
	}
}

// maybeSleep stops the ticker when there is no work, arranging a wake-up
// for the next refresh deadline.
func (cc *chanCtl) maybeSleep(t sim.Time) {
	if !cc.idleQuiet(t) {
		return
	}
	cc.sched.ticker.Stop()
	// Earliest future refresh deadline restarts the scheduler.
	if earliest := cc.earliestRefreshDue(); earliest >= 0 {
		delay := earliest - t
		if delay < 0 {
			delay = 0
		}
		cc.ctl.eng.ScheduleCall(delay, chanWake, cc, nil)
	}
}

// chanWake is the trampoline for refresh-deadline wake-ups (a cc.wake
// method value would allocate at every sleep/wake transition).
func chanWake(a, _ any) { a.(*chanCtl).wake() }
