package mc

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// mcTelemetry is the controller's live instrument set. The controller
// keeps it behind a nil pointer so the uninstrumented hot path pays one
// branch per site; every field is additionally nil-receiver-safe, so a
// trace-only or metrics-only attachment works without special cases.
type mcTelemetry struct {
	rowHits      *telemetry.Counter
	rowMisses    *telemetry.Counter
	rowConflicts *telemetry.Counter
	readLat      *telemetry.Histogram // demand-read enqueue -> burst end, ns
	writeLat     *telemetry.Histogram // write enqueue -> burst end, ns

	trace *telemetry.TraceRecorder
	dev   *dram.Device

	ranks, banks, bankTracks int

	// energyTID is the cumulative-energy counter track (numbered after
	// the bank and rank-refresh tracks); cumEnergyPJ is the running total
	// it samples, advanced by every traced DRAM command at its issue time.
	energyTID   int
	cumEnergyPJ int64
}

// AttachTelemetry wires the controller's metrics into reg and its DRAM
// command events into trace. Either may be disabled (nil registry /
// recorder); when both are, the controller stays uninstrumented. Call
// once at assembly time, before traffic.
func (c *Controller) AttachTelemetry(reg *telemetry.Registry, trace *telemetry.TraceRecorder) {
	if !reg.Enabled() && trace == nil {
		return
	}
	g := c.dev.Geometry()
	tel := &mcTelemetry{
		rowHits:      reg.Counter("mc.row_hits"),
		rowMisses:    reg.Counter("mc.row_misses"),
		rowConflicts: reg.Counter("mc.row_conflicts"),
		readLat:      reg.Histogram("mc.read_latency_ns"),
		writeLat:     reg.Histogram("mc.write_latency_ns"),
		trace:        trace,
		dev:          c.dev,
		ranks:        g.Ranks,
		banks:        g.Banks,
		bankTracks:   g.Channels * g.Ranks * g.Banks,
	}
	tel.energyTID = tel.bankTracks + g.Channels*g.Ranks
	for i, cc := range c.chans {
		cc := cc
		reg.Sample(fmt.Sprintf("mc.queue.ch%d.read", i), func() int64 { return int64(len(cc.readQ)) })
		reg.Sample(fmt.Sprintf("mc.queue.ch%d.write", i), func() int64 { return int64(len(cc.writeQ)) })
		reg.Sample(fmt.Sprintf("mc.queue.ch%d.mig", i), func() int64 { return int64(len(cc.migQ)) })
	}
	if trace != nil {
		for ch := 0; ch < g.Channels; ch++ {
			for r := 0; r < g.Ranks; r++ {
				for b := 0; b < g.Banks; b++ {
					trace.DefineTrack(tel.bankTID(ch, r, b), fmt.Sprintf("ch%d/rk%d/bk%d", ch, r, b))
				}
				trace.DefineTrack(tel.rankTID(ch, r), fmt.Sprintf("ch%d/rk%d refresh", ch, r))
			}
		}
		trace.DefineTrack(tel.energyTID, "DRAM energy (cumulative pJ)")
	}
	c.tel = tel
}

// bankTID is the global per-bank trace track id.
func (tl *mcTelemetry) bankTID(channel, rank, bank int) int {
	return (channel*tl.ranks+rank)*tl.banks + bank
}

// rankTID is the per-rank refresh track id (numbered after all banks).
func (tl *mcTelemetry) rankTID(channel, rank int) int {
	return tl.bankTracks + channel*tl.ranks + rank
}

// noteEnergy advances the cumulative dynamic-energy counter by pj and
// samples it on the energy track at time t. Trace-only: the metrics-side
// energy counters live on the device's telemetry.
func (tl *mcTelemetry) noteEnergy(t sim.Time, pj int64) {
	tl.cumEnergyPJ += pj
	tl.trace.Counter("energy_pj", int64(t), tl.energyTID, tl.cumEnergyPJ)
}

// noteACT records a demand row-miss activation.
func (tl *mcTelemetry) noteACT(t sim.Time, channel int, req *Request) {
	tl.rowMisses.Inc()
	if tl.trace == nil {
		return
	}
	p := tl.dev.SlowParams()
	name := "ACT"
	if req.Class == dram.RowFast {
		p = tl.dev.FastParams()
		name = "ACT fast"
	}
	tl.trace.Duration(name, int64(t), int64(p.Duration(p.TRCD)),
		tl.bankTID(channel, req.Coord.Rank, req.Coord.Bank), int64(req.Coord.Row))
	tl.noteEnergy(t, tl.dev.EnergyModel().ActPJ[req.Class])
}

// notePRE records a precharge on a bank track. cls is the class of the
// row being closed; conflict marks demand row-conflict precharges (the
// FR-FCFS second half), as opposed to refresh/migration/policy drains.
func (tl *mcTelemetry) notePRE(t sim.Time, channel, rank, bank int, cls dram.RowClass, conflict bool) {
	if conflict {
		tl.rowConflicts.Inc()
	}
	if tl.trace == nil {
		return
	}
	p := tl.dev.SlowParams()
	if cls == dram.RowFast {
		p = tl.dev.FastParams()
	}
	tl.trace.Duration("PRE", int64(t), int64(p.Duration(p.TRP)),
		tl.bankTID(channel, rank, bank), -1)
	tl.noteEnergy(t, tl.dev.EnergyModel().PrePJ[cls])
}

// noteColumn records a RD or WR burst [t, end) and its request latency.
func (tl *mcTelemetry) noteColumn(t, end sim.Time, channel int, req *Request, isWrite bool) {
	lat := uint64((end - req.enqueued) / sim.Nanosecond)
	name := "RD"
	if isWrite {
		tl.writeLat.Observe(lat)
		name = "WR"
	} else {
		tl.readLat.Observe(lat)
	}
	if tl.trace != nil {
		tl.trace.Duration(name, int64(t), int64(end-t),
			tl.bankTID(channel, req.Coord.Rank, req.Coord.Bank), int64(req.Coord.Row))
		em := tl.dev.EnergyModel()
		if isWrite {
			tl.noteEnergy(t, em.WrPJ[req.Class])
		} else {
			tl.noteEnergy(t, em.RdPJ[req.Class])
		}
	}
	if req.Trace != nil && !isWrite {
		// Lets reqtrace link a Perfetto flow arrow from the core's REQ
		// slice into this bank's RD slice.
		req.Trace.SetBankTID(tl.bankTID(channel, req.Coord.Rank, req.Coord.Bank))
	}
}

// noteREF records a refresh occupying [t, t+tRFC) on the rank track.
func (tl *mcTelemetry) noteREF(t sim.Time, channel, rank int) {
	if tl.trace == nil {
		return
	}
	p := tl.dev.SlowParams()
	tl.trace.Duration("REF", int64(t), int64(p.Duration(p.TRFC)), tl.rankTID(channel, rank), -1)
	tl.noteEnergy(t, tl.dev.EnergyModel().RefPJ)
}

// noteMIG records a migration swap occupying [t, end) on the bank track.
func (tl *mcTelemetry) noteMIG(t, end sim.Time, channel, rank, bank, row int) {
	if tl.trace == nil {
		return
	}
	tl.trace.Duration("MIG", int64(t), int64(end-t), tl.bankTID(channel, rank, bank), int64(row))
	tl.noteEnergy(t, tl.dev.EnergyModel().MigPJ)
}
