package fault

import "testing"

func TestValidateRejectsBadRates(t *testing.T) {
	for _, c := range []Config{
		{WeakRowRate: -0.1},
		{MigFailRate: 1.5},
		{TagCorruptRate: 2},
		{TableCorruptRate: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
		if _, err := NewInjector(c); err == nil {
			t.Fatalf("injector for %+v accepted", c)
		}
	}
	if err := (&Config{WeakRowRate: 1, MigFailRate: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnabled(t *testing.T) {
	if (&Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if !(&Config{TableCorruptRate: 0.01}).Enabled() {
		t.Fatal("nonzero config disabled")
	}
}

func TestWeakRowDeterministicAndOrderFree(t *testing.T) {
	a, _ := NewInjector(Config{Seed: 7, WeakRowRate: 0.3})
	b, _ := NewInjector(Config{Seed: 7, WeakRowRate: 0.3})
	// Query b in reverse order: the defect map must not depend on
	// query order.
	const n = 4096
	got := make([]bool, n)
	for r := 0; r < n; r++ {
		got[r] = a.WeakRow(uint64(r))
	}
	for r := n - 1; r >= 0; r-- {
		if b.WeakRow(uint64(r)) != got[r] {
			t.Fatalf("row %d weak decision depends on query order", r)
		}
	}
	// Repeat queries are stable.
	for r := 0; r < n; r++ {
		if a.WeakRow(uint64(r)) != got[r] {
			t.Fatalf("row %d weak decision unstable", r)
		}
	}
}

func TestWeakRowRateApproximate(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 42, WeakRowRate: 0.25})
	weak := 0
	const n = 1 << 16
	for r := 0; r < n; r++ {
		if inj.WeakRow(uint64(r)) {
			weak++
		}
	}
	frac := float64(weak) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("weak fraction %.3f far from configured 0.25", frac)
	}
}

func TestWeakRowSeedChangesMap(t *testing.T) {
	a, _ := NewInjector(Config{Seed: 1, WeakRowRate: 0.5})
	b, _ := NewInjector(Config{Seed: 2, WeakRowRate: 0.5})
	same := 0
	const n = 1024
	for r := 0; r < n; r++ {
		if a.WeakRow(uint64(r)) == b.WeakRow(uint64(r)) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical defect maps")
	}
}

func TestExtremeRates(t *testing.T) {
	all, _ := NewInjector(Config{WeakRowRate: 1, MigFailRate: 1})
	none, _ := NewInjector(Config{})
	for r := 0; r < 64; r++ {
		if !all.WeakRow(uint64(r)) {
			t.Fatal("rate 1 missed a row")
		}
		if none.WeakRow(uint64(r)) {
			t.Fatal("rate 0 marked a row weak")
		}
		if !all.MigrationFails() {
			t.Fatal("rate 1 migration succeeded")
		}
		if none.MigrationFails() || none.TagEntryCorrupt() || none.TableBlockCorrupt() {
			t.Fatal("rate 0 injected a fault")
		}
	}
	if all.Stats.MigFailures != 64 {
		t.Fatalf("failure count %d, want 64", all.Stats.MigFailures)
	}
	if none.Stats != (Stats{}) {
		t.Fatalf("zero-rate injector counted faults: %+v", none.Stats)
	}
}

func TestRollStreamDeterministic(t *testing.T) {
	a, _ := NewInjector(Config{Seed: 9, MigFailRate: 0.5, TagCorruptRate: 0.3})
	b, _ := NewInjector(Config{Seed: 9, MigFailRate: 0.5, TagCorruptRate: 0.3})
	for k := 0; k < 1000; k++ {
		if a.MigrationFails() != b.MigrationFails() {
			t.Fatalf("migration roll %d diverged", k)
		}
		if a.TagEntryCorrupt() != b.TagEntryCorrupt() {
			t.Fatalf("tag roll %d diverged", k)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}
