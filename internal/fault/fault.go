// Package fault implements deterministic, seed-driven fault injection
// for the DAS management path. The paper's hardware additions — short-
// bitline fast subarrays, migration (isolation-transistor) lanes, and
// the DRAM-resident translation table — are exactly the structures a
// real device ships with weak cells and marginal timing, so robustness
// experiments model three fault classes:
//
//   - weak fast rows: a fast-subarray physical row whose short-bitline
//     sensing margin is inadequate; the row still stores data but must
//     be sensed with conservative (slow) timing and must never be a
//     promotion target (manufacturing defect, static per device);
//   - migration failures: an in-flight row swap whose restore fails
//     verification and must be retried or abandoned (marginal isolation
//     transistor or lane coupling, probabilistic per operation);
//   - translation corruption: a tag-cache entry that fails its parity
//     check, or a fetched translation-table block that fails ECC, both
//     of which must be re-fetched through the LLC path rather than
//     allowed to misdirect a request (probabilistic per access).
//
// Every decision is driven either by a stateless hash of the fault seed
// (weak rows: the defect map is a fixed property of the device) or by a
// private sim.RNG stream (per-operation faults), so a run is exactly
// reproducible from its configuration.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// Config parameterizes the injector. The zero value (all rates zero)
// models a perfect device and injects nothing.
type Config struct {
	// Seed drives both the static weak-row map and the per-operation
	// fault stream. Zero is remapped by sim.NewRNG; callers normally
	// derive it from the workload seed so fault and workload streams
	// stay decoupled.
	Seed uint64
	// WeakRowRate is the probability that any given fast-subarray
	// physical row is weak (sensed at slow timing, fenced from
	// promotion). Static per device.
	WeakRowRate float64
	// MigFailRate is the probability that one migration operation fails
	// at completion and must be retried.
	MigFailRate float64
	// TagCorruptRate is the probability that a tag-cache hit is found
	// parity-corrupt, invalidating the entry and forcing a table
	// re-fetch through the LLC.
	TagCorruptRate float64
	// TableCorruptRate is the probability that a fetched translation-
	// table block fails ECC and is re-fetched.
	TableCorruptRate float64
}

// Validate checks that every rate is a probability.
func (c *Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"weak-row", c.WeakRowRate},
		{"migration-failure", c.MigFailRate},
		{"tag-corruption", c.TagCorruptRate},
		{"table-corruption", c.TableCorruptRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

// Enabled reports whether any fault class can fire.
func (c *Config) Enabled() bool {
	return c.WeakRowRate > 0 || c.MigFailRate > 0 ||
		c.TagCorruptRate > 0 || c.TableCorruptRate > 0
}

// Stats counts injected faults (decisions that returned true).
type Stats struct {
	MigFailures      uint64
	TagCorruptions   uint64
	TableCorruptions uint64
}

// Injector makes fault decisions for one simulated system. It is not
// safe for concurrent use; each System owns its own injector, matching
// the single-threaded discrete-event engine.
type Injector struct {
	cfg      Config
	weakSeed uint64
	rng      *sim.RNG

	Stats Stats
}

// NewInjector builds an injector for cfg.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	// The weak-row map gets its own derived seed so that changing a
	// per-operation rate never reshuffles which rows are weak.
	return &Injector{cfg: cfg, weakSeed: rng.Uint64(), rng: rng.Split()}, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// WeakRow reports whether physical row physRow is weak. The decision is
// a stateless hash of (seed, physRow): stable across queries and query
// orders, modeling a fixed manufacturing defect map.
func (i *Injector) WeakRow(physRow uint64) bool {
	if i.cfg.WeakRowRate <= 0 {
		return false
	}
	if i.cfg.WeakRowRate >= 1 {
		return true
	}
	x := physRow ^ i.weakSeed
	// SplitMix64 finalizer: full-avalanche mix of the row id.
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return float64(x>>11)/(1<<53) < i.cfg.WeakRowRate
}

// MigrationFails rolls one migration-failure decision.
func (i *Injector) MigrationFails() bool {
	return i.roll(i.cfg.MigFailRate, &i.Stats.MigFailures)
}

// TagEntryCorrupt rolls one tag-cache parity decision.
func (i *Injector) TagEntryCorrupt() bool {
	return i.roll(i.cfg.TagCorruptRate, &i.Stats.TagCorruptions)
}

// TableBlockCorrupt rolls one table-block ECC decision.
func (i *Injector) TableBlockCorrupt() bool {
	return i.roll(i.cfg.TableCorruptRate, &i.Stats.TableCorruptions)
}

// roll decides one per-operation fault at the given rate.
func (i *Injector) roll(rate float64, hits *uint64) bool {
	if rate <= 0 {
		return false
	}
	if rate < 1 && i.rng.Float64() >= rate {
		return false
	}
	*hits++
	return true
}
