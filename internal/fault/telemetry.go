package fault

import (
	"repro/internal/telemetry"
)

// AttachTelemetry exposes the injector's fired-fault counters on reg,
// sampled from Stats at snapshot time. These count *injected* faults
// (decisions that returned true); the management path's counters (see
// core.FaultStats, exported as core.faults.*) count how each one was
// *absorbed* — retried, re-fetched, pinned, or fenced. Comparing the
// two is the quickest way to check that degradation stayed graceful.
func (i *Injector) AttachTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Sample("fault.injected.mig_failures", func() int64 { return int64(i.Stats.MigFailures) })
	reg.Sample("fault.injected.tag_corruptions", func() int64 { return int64(i.Stats.TagCorruptions) })
	reg.Sample("fault.injected.table_corruptions", func() int64 { return int64(i.Stats.TableCorruptions) })
}
