package telemetry

import "testing"

// TestQuantileEmptyHistogram: no observations must yield 0 at every q,
// including the degenerate and out-of-range ones.
func TestQuantileEmptyHistogram(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.95, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %d, want 0", got)
	}
}

// TestQuantileSingleBucket: identical observations land in one log2
// bucket, so every quantile reports that bucket's upper bound.
func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(5) // bits.Len64(5) = 3 -> bucket 3, bound 7
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-bucket Quantile(%v) = %d, want 7", q, got)
		}
	}
	// A single zero observation sits in bucket 0 with bound 0.
	var z Histogram
	z.Observe(0)
	if got := z.Quantile(1); got != 0 {
		t.Fatalf("zero-value Quantile(1) = %d, want 0", got)
	}
}

// TestQuantileP50P95P99 exercises the cumulative walk the waterfall
// report relies on: 90 small, 9 medium, 1 large observation.
func TestQuantileP50P95P99(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket 2, bound 3
	}
	for i := 0; i < 9; i++ {
		h.Observe(100) // bucket 7, bound 127
	}
	h.Observe(5000) // bucket 13, bound 8191

	if got := h.Quantile(0.50); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	// need = ceil(0.95*100) = 95 > 90, so p95 falls in the medium bucket.
	if got := h.Quantile(0.95); got != 127 {
		t.Fatalf("p95 = %d, want 127", got)
	}
	// need = 99, cumulative reaches 99 in the medium bucket too.
	if got := h.Quantile(0.99); got != 127 {
		t.Fatalf("p99 = %d, want 127", got)
	}
	if got := h.Quantile(1); got != 8191 {
		t.Fatalf("p100 = %d, want 8191", got)
	}
	// Out-of-range q clamps rather than misindexing.
	if got := h.Quantile(2); got != 8191 {
		t.Fatalf("Quantile(2) = %d, want 8191", got)
	}
	if got := h.Quantile(-0.5); got != 3 {
		t.Fatalf("Quantile(-0.5) = %d, want 3 (clamped to the first bucket reached)", got)
	}
}

// TestQuantileMergePreserved: quantiles over a merged histogram match
// observing the union directly (the explain aggregates rely on Merge).
func TestQuantileMergePreserved(t *testing.T) {
	var a, b, union Histogram
	for i := 0; i < 50; i++ {
		a.Observe(10)
		union.Observe(10)
	}
	for i := 0; i < 50; i++ {
		b.Observe(1000)
		union.Observe(1000)
	}
	a.Merge(&b)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 1} {
		if got, want := a.Quantile(q), union.Quantile(q); got != want {
			t.Fatalf("merged Quantile(%v) = %d, union = %d", q, got, want)
		}
	}
}
