package telemetry

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestPublisherShutdown exercises the graceful-shutdown path dasbench
// uses on SIGINT/SIGTERM: serve, answer a request, shut down, and
// verify the listener is really gone and repeat calls are safe.
func TestPublisherShutdown(t *testing.T) {
	p := NewPublisher()
	p.Publish("run", []Metric{{Name: "x", Value: 1}})
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("live server unreachable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics -> %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}

	// Idempotent: a second shutdown (dasbench defers one unconditionally
	// after the signal handler may already have run) is a no-op.
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	// Never-served and nil publishers shut down cleanly too.
	if err := NewPublisher().Shutdown(ctx); err != nil {
		t.Fatalf("unserved shutdown: %v", err)
	}
	var np *Publisher
	if err := np.Shutdown(ctx); err != nil {
		t.Fatalf("nil shutdown: %v", err)
	}
}

// TestPublisherConcurrentPublish hammers Publish against snapshot
// reads; run under -race (scripts/check.sh does) to validate the
// locking around the run map and the srv handoff in Shutdown.
func TestPublisherConcurrentPublish(t *testing.T) {
	p := NewPublisher()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			labels := []string{"run-a", "run-b"}
			for n := 0; n < 200; n++ {
				p.Publish(labels[(id+n)%2], []Metric{{Name: "m", Value: float64(n)}})
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 200; n++ {
			if _, err := p.snapshotJSON(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := p.snapshotJSON(); err != nil {
		t.Fatal(err)
	}
}
