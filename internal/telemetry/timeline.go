package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Timeline records per-epoch snapshots of one run's registry. The host
// run loop calls Snap whenever simulated time crosses an epoch boundary
// (and once more at run end), so recording adds no simulation events
// and cannot perturb ordering. One Timeline belongs to one run.
type Timeline struct {
	// Label identifies the run in merged output (design, benchmarks and
	// sweep parameters; unique per run within a session).
	Label string
	// IntervalPS is the epoch length in picoseconds of simulated time.
	IntervalPS int64

	epochs []Epoch
}

// Epoch is one snapshot: every registry metric at a simulated instant.
type Epoch struct {
	// AtPS is the simulated time of the snapshot in picoseconds.
	AtPS int64
	// Metrics is sorted by name (see Registry.Snapshot).
	Metrics []Metric
}

// Snap appends a snapshot of the given registries (merged and sorted by
// metric name; see SnapshotAll) at simulated time atPS. Sharded runs
// pass one registry per shard.
func (t *Timeline) Snap(atPS int64, regs ...*Registry) {
	if t == nil {
		return
	}
	t.epochs = append(t.epochs, Epoch{AtPS: atPS, Metrics: SnapshotAll(nil, regs...)})
}

// Epochs returns the recorded snapshots in simulated-time order.
func (t *Timeline) Epochs() []Epoch {
	if t == nil {
		return nil
	}
	return t.epochs
}

// sortTimelines orders runs by label so merged output is independent of
// host scheduling (runs execute in parallel; labels are unique).
func sortTimelines(ts []*Timeline) []*Timeline {
	sorted := make([]*Timeline, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			sorted = append(sorted, t)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	return sorted
}

// EncodeTimelinesCSV writes merged timelines as long-form CSV
// (run,epoch_ns,metric,value), runs sorted by label, epochs by time,
// metrics by name: byte-deterministic for a deterministic simulation.
func EncodeTimelinesCSV(w io.Writer, ts []*Timeline) error {
	if _, err := io.WriteString(w, "run,epoch_ns,metric,value\n"); err != nil {
		return err
	}
	var b strings.Builder
	for _, t := range sortTimelines(ts) {
		label := csvField(t.Label)
		for _, e := range t.epochs {
			ns := formatPSinNS(e.AtPS)
			for _, m := range e.Metrics {
				b.Reset()
				b.WriteString(label)
				b.WriteByte(',')
				b.WriteString(ns)
				b.WriteByte(',')
				b.WriteString(csvField(m.Name))
				b.WriteByte(',')
				b.WriteString(formatValue(m.Value))
				b.WriteByte('\n')
				if _, err := io.WriteString(w, b.String()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// timelineJSON is the JSON shape of one run's timeline.
type timelineJSON struct {
	Run         string      `json:"run"`
	IntervalNS  float64     `json:"interval_ns"`
	EpochsCount int         `json:"epochs"`
	Series      []epochJSON `json:"series"`
}

type epochJSON struct {
	EpochNS float64            `json:"epoch_ns"`
	Metrics map[string]float64 `json:"metrics"`
}

// EncodeTimelinesJSON writes merged timelines as indented JSON, runs
// sorted by label. Metric maps marshal with sorted keys (encoding/json
// guarantees it), so output is byte-deterministic.
func EncodeTimelinesJSON(w io.Writer, ts []*Timeline) error {
	out := make([]timelineJSON, 0, len(ts))
	for _, t := range sortTimelines(ts) {
		tj := timelineJSON{
			Run:         t.Label,
			IntervalNS:  float64(t.IntervalPS) / 1000,
			EpochsCount: len(t.epochs),
		}
		for _, e := range t.epochs {
			m := make(map[string]float64, len(e.Metrics))
			for _, mt := range e.Metrics {
				m[mt.Name] = mt.Value
			}
			tj.Series = append(tj.Series, epochJSON{EpochNS: float64(e.AtPS) / 1000, Metrics: m})
		}
		out = append(out, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// formatPSinNS renders picoseconds as a nanosecond decimal without
// float formatting artifacts (e.g. 1500 ps -> "1.5").
func formatPSinNS(ps int64) string {
	whole, frac := ps/1000, ps%1000
	if frac == 0 {
		return strconv.FormatInt(whole, 10)
	}
	s := strconv.FormatInt(whole, 10) + "." + fmt.Sprintf("%03d", frac)
	return strings.TrimRight(s, "0")
}

// formatValue renders a metric value compactly (integers without a
// decimal point; histogram means with up to 6 significant decimals).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// csvField quotes a CSV field when needed (RFC-4180-ish, matching
// stats.Table.CSV).
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}
