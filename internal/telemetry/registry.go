// Package telemetry is the simulator's observability layer: a
// deterministic, zero-alloc-at-steady-state metrics registry plus two
// sinks (an interval timeline and a Chrome trace-event exporter).
//
// Design constraints, in priority order:
//
//  1. Provably free when off. A nil *Registry hands out nil
//     instruments, and every instrument method is nil-receiver-safe, so
//     instrumented hot paths pay one predictable branch and zero
//     allocations when telemetry is disabled (held to that by
//     TestDisabledInstrumentsAllocateNothing).
//  2. Never perturbs simulation ordering. Instruments only mutate
//     host-side counters; nothing here schedules engine events, draws
//     from an RNG, or touches component state. Snapshots are driven by
//     the host run loop at deterministic simulated times.
//  3. Deterministic output. Snapshot order is sorted by metric name and
//     sampled functions read single-threaded simulator state, so two
//     runs of the same configuration emit byte-identical telemetry
//     regardless of host parallelism.
//
// One Registry belongs to one simulated system, mirroring the
// single-threaded discrete-event engine: registration and instrument
// updates need no locking.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Kind discriminates instrument types in a registry listing.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindSampled
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSampled:
		return "sampled"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Registry owns a simulated system's instruments. The zero value is not
// useful: use New for an enabled registry or keep a nil pointer for a
// disabled one (a nil Registry is the documented "off" state and every
// method on it is safe).
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	sampled  []*Sampled

	kinds map[string]Kind
}

// New returns an enabled, empty registry.
func New() *Registry {
	return &Registry{kinds: make(map[string]Kind)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// register claims name for kind. Re-registering a name with a different
// kind is a programmer error on the assembly path (never data-driven),
// so it panics like the engine's scheduling invariants do.
func (r *Registry) register(name string, kind Kind) bool {
	if prev, ok := r.kinds[name]; ok {
		if prev != kind {
			panic(fmt.Sprintf("telemetry: %q re-registered as %v (was %v)", name, kind, prev))
		}
		return false
	}
	r.kinds[name] = kind
	return true
}

// Counter returns the named monotonic counter, creating it on first use.
// On a nil registry it returns nil, which is a valid no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if !r.register(name, KindCounter) {
		for _, c := range r.counters {
			if c.name == name {
				return c
			}
		}
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-registry
// calls return a nil no-op instrument.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if !r.register(name, KindGauge) {
		for _, g := range r.gauges {
			if g.name == name {
				return g
			}
		}
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the named fixed-log2-bucket histogram, creating it
// on first use. Nil-registry calls return a nil no-op instrument.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if !r.register(name, KindHistogram) {
		for _, h := range r.hists {
			if h.name == name {
				return h
			}
		}
	}
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// Sample registers a function polled at snapshot time. Use it to expose
// state that already has a counter elsewhere (component Stats structs,
// queue lengths) without adding hot-path work: the cost moves to the
// epoch boundary. fn runs on the simulator goroutine only.
func (r *Registry) Sample(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	if !r.register(name, KindSampled) {
		return
	}
	r.sampled = append(r.sampled, &Sampled{name: name, fn: fn})
}

// Reset rewinds the registry for reuse across pooled-machine runs:
// counter, gauge, and histogram values zero while their registrations
// (and the instrument pointers components hold) survive, so re-attached
// components keep working without re-registering. Sampled functions are
// removed entirely — they capture run-scoped state (component Stats,
// queue closures) that a new run must not poll — and their names free
// up for re-registration. Safe on a nil (disabled) registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, h := range r.hists {
		h.count, h.sum = 0, 0
		h.buckets = [HistogramBuckets]uint64{}
	}
	for _, s := range r.sampled {
		delete(r.kinds, s.name)
	}
	clear(r.sampled)
	r.sampled = r.sampled[:0]
}

// Metric is one flattened snapshot value.
type Metric struct {
	Name  string
	Value float64
}

// Snapshot appends the current value of every instrument to dst and
// returns it, sorted by name. Histograms flatten into .count, .sum,
// .mean, .p50 and .p99 entries. The result is deterministic: same
// instruments, same updates, same bytes.
func (r *Registry) Snapshot(dst []Metric) []Metric {
	if r == nil {
		return dst
	}
	start := len(dst)
	for _, c := range r.counters {
		dst = append(dst, Metric{c.name, float64(c.v)})
	}
	for _, g := range r.gauges {
		dst = append(dst, Metric{g.name, float64(g.v)})
	}
	for _, s := range r.sampled {
		dst = append(dst, Metric{s.name, float64(s.fn())})
	}
	for _, h := range r.hists {
		dst = append(dst,
			Metric{h.name + ".count", float64(h.count)},
			Metric{h.name + ".sum", float64(h.sum)},
			Metric{h.name + ".mean", h.Mean()},
			Metric{h.name + ".p50", float64(h.Quantile(0.50))},
			Metric{h.name + ".p99", float64(h.Quantile(0.99))},
		)
	}
	s := dst[start:]
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return dst
}

// SnapshotAll appends a merged snapshot of every registry (nil entries
// are skipped) to dst, sorted by name across all of them. The parallel
// engine gives each shard a private registry so instruments never cross
// goroutines; components register disjoint metric names, so the merged
// snapshot is byte-identical to the single-registry sequential one.
func SnapshotAll(dst []Metric, regs ...*Registry) []Metric {
	start := len(dst)
	for _, r := range regs {
		dst = r.Snapshot(dst)
	}
	s := dst[start:]
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return dst
}

// Counter is a monotonic event counter. All methods are safe on a nil
// receiver (the disabled instrument) and allocate nothing.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on the nil instrument).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name ("" on the nil instrument).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value instrument. All methods are nil-receiver-safe
// and allocate nothing.
type Gauge struct {
	name string
	v    int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current value (0 on the nil instrument).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HistogramBuckets is the fixed bucket count of every histogram: bucket
// i holds the values whose binary length is i, i.e. bucket 0 holds 0,
// bucket i>0 holds [2^(i-1), 2^i). 64-bit values therefore always land
// in a bucket and Observe never branches on the value's magnitude.
const HistogramBuckets = 65

// Histogram counts observations in fixed log2 buckets. Observe is O(1),
// allocation-free and nil-receiver-safe; the trade-off is coarse (power
// of two) quantiles, which is exactly enough to tell a 100 ns read tail
// from a 10 us one without per-run configuration.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	buckets [HistogramBuckets]uint64
}

// Observe records v.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count of bucket i (test and sink access).
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[i]
}

// BucketUpperBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i-1 for i>0 (saturating at the top bucket).
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper bound of the bucket where the cumulative
// count first reaches q of the total (q clamped to [0,1]; 0 when empty).
// The answer over-reports by at most 2x — the price of log2 buckets.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(h.count)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i < HistogramBuckets; i++ {
		cum += h.buckets[i]
		if cum >= need {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(HistogramBuckets - 1)
}

// Merge adds o's observations into h (both may be nil; merging
// different-named histograms is allowed and keeps h's name).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Sampled is a snapshot-time polled metric.
type Sampled struct {
	name string
	fn   func() int64
}
