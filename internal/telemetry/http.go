package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Publisher is the race-safe bridge between running simulations and the
// debug HTTP endpoint: runs publish their final snapshots when they
// complete, and the HTTP handler only ever reads published (immutable)
// data under the lock. Live registries are never exposed — they belong
// to the single-threaded simulator goroutines.
type Publisher struct {
	mu   sync.Mutex
	runs map[string][]Metric
	srv  *http.Server
}

// NewPublisher returns an empty publisher.
func NewPublisher() *Publisher {
	return &Publisher{runs: make(map[string][]Metric)}
}

// Publish stores a completed run's snapshot under its label.
func (p *Publisher) Publish(label string, metrics []Metric) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs[label] = metrics
}

// snapshotJSON renders every published run, labels sorted.
func (p *Publisher) snapshotJSON() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	labels := make([]string, 0, len(p.runs))
	for l := range p.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	type runJSON struct {
		Run     string             `json:"run"`
		Metrics map[string]float64 `json:"metrics"`
	}
	out := make([]runJSON, 0, len(labels))
	for _, l := range labels {
		m := make(map[string]float64, len(p.runs[l]))
		for _, mt := range p.runs[l] {
			m[mt.Name] = mt.Value
		}
		out = append(out, runJSON{Run: l, Metrics: m})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Handler returns the debug mux: /metrics (completed-run metric dumps),
// /debug/vars (expvar: cmdline + memstats) and /debug/pprof/* (live
// profiling, the point of the endpoint on long sweeps).
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		data, err := p.snapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		w.Write([]byte("\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "dasbench debug endpoint\n  /metrics\n  /debug/vars\n  /debug/pprof/\n")
	})
	return mux
}

// Serve listens on addr and serves the debug endpoint until Shutdown
// (or process exit). It returns the bound address (useful with ":0") or
// an error if the listener cannot be created; serving errors after that
// are dropped, matching net/http debug-endpoint convention.
func (p *Publisher) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: http listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: p.Handler()}
	p.mu.Lock()
	p.srv = srv
	p.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown gracefully closes the listener started by Serve, letting
// in-flight requests finish within ctx's deadline. Safe on a nil
// publisher or one that never served; idempotent.
func (p *Publisher) Shutdown(ctx context.Context) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	srv := p.srv
	p.srv = nil
	p.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
