// Package jobtrace records service-level lifecycle spans: one span per
// dasserve job, decomposed into canonicalize → cache probe → queue wait
// → worker run → render with telescoping timestamps. It is the service
// twin of internal/mc/reqtrace — the same invariant discipline (phase
// components sum exactly to the span total, enforced at Finish) applied
// to wall-clock job time instead of simulated request time.
//
// Unlike the simulation-side telemetry (single-threaded by contract),
// the recorder is shared across HTTP handler and worker goroutines, so
// every stamp takes a mutex. That cost is per job transition — a
// handful of lock acquisitions per simulation lasting milliseconds to
// minutes — not per simulated event, so "off the hot path" holds by
// construction.
package jobtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultDepth is the completed-span ring capacity used by NewRecorder
// when given a non-positive depth.
const DefaultDepth = 256

// Recorder owns every live and recently-completed span. All methods are
// safe for concurrent use and safe on a nil receiver (the disabled
// state: Begin returns a nil *Span whose stamps are no-ops).
type Recorder struct {
	mu    sync.Mutex
	clock func() time.Time
	epoch time.Time
	depth int
	seq   uint64

	live map[string]*Span // first live span per key hash
	last map[string]*Span // most recent completed span per key hash
	done []*Span          // completed ring, oldest first, len <= depth

	violations uint64
}

// NewRecorder returns an enabled recorder keeping the last depth
// completed spans (DefaultDepth when depth <= 0).
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	now := time.Now()
	return &Recorder{
		clock: time.Now,
		epoch: now,
		depth: depth,
		live:  make(map[string]*Span),
		last:  make(map[string]*Span),
	}
}

// SetClock replaces the wall clock (tests inject a fake to make phase
// durations exact). Must be called before any Begin.
func (r *Recorder) SetClock(fn func() time.Time) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.clock = fn
	r.epoch = fn()
	r.mu.Unlock()
}

// Violations returns how many completed spans failed the telescoping
// invariant (components must sum exactly to the span total). Always 0
// unless the host clock steps backwards mid-span.
func (r *Recorder) Violations() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.violations
}

// Begin starts a span at the moment the request was received. The span
// is invisible to Lookup until StampCanon names it.
func (r *Recorder) Begin() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return &Span{r: r, seq: r.seq, recv: r.clock()}
}

// Span is one job's lifecycle. The six stamps telescope: an unset
// intermediate stamp collapses onto its predecessor, making that phase
// zero-width, so the five phase durations always sum exactly to
// done-recv. Stamp methods are nil-receiver-safe and must be called in
// lifecycle order.
type Span struct {
	r    *Recorder
	seq  uint64
	key  string // key hash hex, set by StampCanon
	kind string

	recv  time.Time // request received
	canon time.Time // canonicalization done (key known)
	admit time.Time // cache probe + admission decision done
	start time.Time // dequeued by a worker (or wait on another job's flight began)
	run   time.Time // simulation finished, render begins
	done  time.Time // response bytes final

	outcome string
	bytes   int
}

// StampCanon marks canonicalization complete and names the span; from
// here it is visible to Lookup under key (typically the %016x key hash).
func (s *Span) StampCanon(key, kind string) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.canon = s.r.clock()
	s.key, s.kind = key, kind
	if _, ok := s.r.live[key]; !ok {
		s.r.live[key] = s
	}
	s.r.mu.Unlock()
}

// StampAdmit marks the cache probe and admission decision complete.
func (s *Span) StampAdmit() {
	if s != nil {
		s.stamp(&s.admit)
	}
}

// StampStart marks the queue wait over: a worker dequeued the job (or,
// for a coalesced request, the wait on the owning flight began).
func (s *Span) StampStart() {
	if s != nil {
		s.stamp(&s.start)
	}
}

// StampRun marks the simulation complete and rendering begun.
func (s *Span) StampRun() {
	if s != nil {
		s.stamp(&s.run)
	}
}

func (s *Span) stamp(t *time.Time) {
	s.r.mu.Lock()
	*t = s.r.clock()
	s.r.mu.Unlock()
}

// Finish closes the span with its outcome ("done", "failed", "hit",
// "coalesced", "shed", ...) and response size, verifies the telescoping
// invariant, and retires it into the completed ring.
func (s *Span) Finish(outcome string, bytes int) {
	if s == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	s.done = r.clock()
	s.outcome, s.bytes = outcome, bytes
	var sum time.Duration
	for _, d := range s.phases() {
		if d < 0 {
			r.violations++
		}
		sum += d
	}
	if sum != s.done.Sub(s.recv) {
		r.violations++
	}
	if r.live[s.key] == s {
		delete(r.live, s.key)
	}
	if s.key != "" {
		r.last[s.key] = s
	}
	r.done = append(r.done, s)
	if len(r.done) > r.depth {
		r.done = r.done[len(r.done)-r.depth:]
	}
}

// Drop abandons a span that never became a job (parse/validation
// failures): it is removed from the live index and not retired.
func (s *Span) Drop() {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	if s.r.live[s.key] == s {
		delete(s.r.live, s.key)
	}
	s.r.mu.Unlock()
}

// phases returns the five phase durations in order: canonicalize,
// probe, queue, run, render. Callers hold r.mu.
func (s *Span) phases() [5]time.Duration {
	t0 := s.recv
	t1 := orElse(s.canon, t0)
	t2 := orElse(s.admit, t1)
	t3 := orElse(s.start, t2)
	t4 := orElse(s.run, t3)
	end := orElse(s.done, t4)
	return [5]time.Duration{
		t1.Sub(t0), t2.Sub(t1), t3.Sub(t2), t4.Sub(t3), end.Sub(t4),
	}
}

func orElse(t, fallback time.Time) time.Time {
	if t.IsZero() {
		return fallback
	}
	return t
}

// PhaseNames names the five phases of a span in order, matching the
// Snapshot fields and the Perfetto child slices.
var PhaseNames = [5]string{"canonicalize", "probe", "queue", "run", "render"}

// Snapshot is the JSON view of one span for /jobs/<key>.
type Snapshot struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Outcome string `json:"outcome,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Recv    string `json:"recv"` // RFC3339Nano wall time of arrival

	CanonicalizeUS float64 `json:"canonicalize_us"`
	ProbeUS        float64 `json:"probe_us"`
	QueueUS        float64 `json:"queue_us"`
	RunUS          float64 `json:"run_us"`
	RenderUS       float64 `json:"render_us"`
	TotalUS        float64 `json:"total_us"`
}

// snapshotLocked builds a Snapshot; callers hold r.mu.
func (s *Span) snapshotLocked(now time.Time) Snapshot {
	ph := s.phases()
	state := "canonicalizing"
	switch {
	case !s.done.IsZero():
		state = s.outcome
	case !s.run.IsZero():
		state = "rendering"
	case !s.start.IsZero():
		state = "running"
	case !s.admit.IsZero():
		state = "queued"
	}
	end := orElse(s.done, now)
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return Snapshot{
		Key:            s.key,
		Kind:           s.kind,
		State:          state,
		Outcome:        s.outcome,
		Bytes:          s.bytes,
		Recv:           s.recv.Format(time.RFC3339Nano),
		CanonicalizeUS: us(ph[0]),
		ProbeUS:        us(ph[1]),
		QueueUS:        us(ph[2]),
		RunUS:          us(ph[3]),
		RenderUS:       us(ph[4]),
		TotalUS:        us(end.Sub(s.recv)),
	}
}

// Lookup returns the span snapshot for key: the live span if one is in
// flight, otherwise the most recently completed one.
func (r *Recorder) Lookup(key string) (Snapshot, bool) {
	if r == nil {
		return Snapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.live[key]; ok {
		return s.snapshotLocked(r.clock()), true
	}
	if s, ok := r.last[key]; ok {
		return s.snapshotLocked(r.clock()), true
	}
	return Snapshot{}, false
}

// Completed returns snapshots of the completed ring, oldest first.
func (r *Recorder) Completed() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	out := make([]Snapshot, 0, len(r.done))
	for _, s := range r.done {
		out = append(out, s.snapshotLocked(now))
	}
	return out
}

// EncodeTrace writes the completed spans as a Chrome/Perfetto
// trace-event JSON array: one track (tid) per span, an enclosing slice
// for the whole job and a child slice per non-zero phase. Timestamps
// are microseconds since the recorder epoch, so concurrent jobs line up
// on one shared timeline.
func (r *Recorder) EncodeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	type ev struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  uint64         `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	us := func(t time.Time) float64 { return float64(t.Sub(r.epoch).Nanoseconds()) / 1e3 }
	evs := []ev{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "dasserve jobs"},
	}}
	for _, s := range r.done {
		evs = append(evs, ev{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: s.seq,
			Args: map[string]any{"name": fmt.Sprintf("job %s %s", s.key, s.kind)},
		})
		evs = append(evs, ev{
			Name: fmt.Sprintf("%s (%s)", s.kind, s.outcome), Ph: "X", Pid: 1, Tid: s.seq,
			Ts: us(s.recv), Dur: float64(s.done.Sub(s.recv).Nanoseconds()) / 1e3,
			Args: map[string]any{"key": s.key, "outcome": s.outcome, "bytes": s.bytes},
		})
		ph := s.phases()
		t := s.recv
		for i, d := range ph {
			if d > 0 {
				evs = append(evs, ev{
					Name: PhaseNames[i], Ph: "X", Pid: 1, Tid: s.seq,
					Ts: us(t), Dur: float64(d.Nanoseconds()) / 1e3,
				})
			}
			t = t.Add(d)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
