package jobtrace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic wall clock advancing by step per read.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestSpanTelescopes(t *testing.T) {
	r := NewRecorder(8)
	r.SetClock(newFakeClock(time.Millisecond).Now)
	sp := r.Begin()
	sp.StampCanon("00000000deadbeef", "figure:7a")
	sp.StampAdmit()
	sp.StampStart()
	sp.StampRun()
	sp.Finish("done", 42)
	if v := r.Violations(); v != 0 {
		t.Fatalf("telescoping invariant violated %d times", v)
	}
	snap, ok := r.Lookup("00000000deadbeef")
	if !ok {
		t.Fatal("completed span not found by Lookup")
	}
	if snap.State != "done" || snap.Bytes != 42 || snap.Kind != "figure:7a" {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	sum := snap.CanonicalizeUS + snap.ProbeUS + snap.QueueUS + snap.RunUS + snap.RenderUS
	if sum != snap.TotalUS {
		t.Fatalf("phases sum %v != total %v", sum, snap.TotalUS)
	}
	// Each of the five stamped phases is exactly one fake-clock step.
	for name, us := range map[string]float64{
		"canonicalize": snap.CanonicalizeUS, "probe": snap.ProbeUS,
		"queue": snap.QueueUS, "run": snap.RunUS, "render": snap.RenderUS,
	} {
		if us != 1000 {
			t.Errorf("phase %s = %vus, want 1000us", name, us)
		}
	}
}

func TestUnsetStampsCollapse(t *testing.T) {
	r := NewRecorder(8)
	r.SetClock(newFakeClock(time.Millisecond).Now)
	// A cache hit: only canon and admit are ever stamped.
	sp := r.Begin()
	sp.StampCanon("k1", "figure:table2")
	sp.StampAdmit()
	sp.Finish("hit", 10)
	if v := r.Violations(); v != 0 {
		t.Fatalf("violations: %d", v)
	}
	snap, _ := r.Lookup("k1")
	if snap.QueueUS != 0 || snap.RunUS != 0 {
		t.Fatalf("unstamped phases should be zero-width: %+v", snap)
	}
	sum := snap.CanonicalizeUS + snap.ProbeUS + snap.QueueUS + snap.RunUS + snap.RenderUS
	if sum != snap.TotalUS {
		t.Fatalf("phases sum %v != total %v", sum, snap.TotalUS)
	}
}

func TestLiveLookupAndStates(t *testing.T) {
	r := NewRecorder(8)
	r.SetClock(newFakeClock(time.Millisecond).Now)
	sp := r.Begin()
	sp.StampCanon("k2", "design:das")
	if snap, ok := r.Lookup("k2"); !ok || snap.State != "canonicalizing" {
		t.Fatalf("want live canonicalizing span, got %+v ok=%v", snap, ok)
	}
	sp.StampAdmit()
	if snap, _ := r.Lookup("k2"); snap.State != "queued" {
		t.Fatalf("want queued, got %q", snap.State)
	}
	sp.StampStart()
	if snap, _ := r.Lookup("k2"); snap.State != "running" {
		t.Fatalf("want running, got %q", snap.State)
	}
	sp.StampRun()
	if snap, _ := r.Lookup("k2"); snap.State != "rendering" {
		t.Fatalf("want rendering, got %q", snap.State)
	}
	sp.Finish("done", 1)
	if snap, _ := r.Lookup("k2"); snap.State != "done" {
		t.Fatalf("want done, got %q", snap.State)
	}
}

func TestRingBoundedAndOrdered(t *testing.T) {
	r := NewRecorder(4)
	r.SetClock(newFakeClock(time.Microsecond).Now)
	for i := 0; i < 10; i++ {
		sp := r.Begin()
		sp.StampCanon("key", "figure:7a")
		sp.Finish("done", i)
	}
	got := r.Completed()
	if len(got) != 4 {
		t.Fatalf("ring length %d, want 4", len(got))
	}
	for i, snap := range got {
		if snap.Bytes != 6+i {
			t.Fatalf("ring out of order: got bytes %d at %d", snap.Bytes, i)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	sp := r.Begin()
	sp.StampCanon("k", "x")
	sp.StampAdmit()
	sp.StampStart()
	sp.StampRun()
	sp.Finish("done", 0)
	sp.Drop()
	if _, ok := r.Lookup("k"); ok {
		t.Fatal("nil recorder should find nothing")
	}
	if r.Completed() != nil || r.Violations() != 0 {
		t.Fatal("nil recorder should be empty")
	}
	var buf bytes.Buffer
	if err := r.EncodeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil trace = %q", buf.String())
	}
}

func TestDropRemovesLive(t *testing.T) {
	r := NewRecorder(4)
	sp := r.Begin()
	sp.StampCanon("k3", "figure:7a")
	sp.Drop()
	if _, ok := r.Lookup("k3"); ok {
		t.Fatal("dropped span still visible")
	}
	if len(r.Completed()) != 0 {
		t.Fatal("dropped span retired into ring")
	}
}

func TestEncodeTraceValidJSON(t *testing.T) {
	r := NewRecorder(8)
	r.SetClock(newFakeClock(time.Millisecond).Now)
	for i := 0; i < 3; i++ {
		sp := r.Begin()
		sp.StampCanon("k", "figure:7a")
		sp.StampAdmit()
		sp.StampStart()
		sp.StampRun()
		sp.Finish("done", 100)
	}
	var buf bytes.Buffer
	if err := r.EncodeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var slices, meta int
	for _, e := range evs {
		switch e["ph"] {
		case "X":
			slices++
		case "M":
			meta++
		}
	}
	// 3 jobs x (1 enclosing + 5 phase slices), 1 process + 3 thread metas.
	if slices != 18 || meta != 4 {
		t.Fatalf("got %d slices %d metadata events, want 18 and 4", slices, meta)
	}
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := r.Begin()
			sp.StampCanon("shared", "figure:7a")
			sp.StampAdmit()
			sp.StampStart()
			sp.StampRun()
			sp.Finish("done", 1)
		}()
	}
	wg.Wait()
	if v := r.Violations(); v != 0 {
		t.Fatalf("violations under concurrency: %d", v)
	}
	if got := len(r.Completed()); got != 16 {
		t.Fatalf("completed %d spans, want 16", got)
	}
}
