package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func promTestRegistry() *Registry {
	r := New()
	r.Counter("serve.jobs.done").Add(7)
	r.Gauge("serve.jobs.running").Set(2)
	r.Sample("sim.events_executed", func() int64 { return 12345 })
	h := r.Histogram("serve.queue.wait_us")
	for _, v := range []uint64{0, 1, 2, 5, 9, 17, 1000, 1_000_000} {
		h.Observe(v)
	}
	return r
}

func TestEncodePrometheusDeterministicAndValid(t *testing.T) {
	r := promTestRegistry()
	var a, b bytes.Buffer
	if err := EncodePrometheus(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := EncodePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("repeated encodes differ:\n%s\n--\n%s", a.Bytes(), b.Bytes())
	}
	if err := ValidateExposition(a.Bytes()); err != nil {
		t.Fatalf("encoder output rejected by validator: %v\n%s", err, a.Bytes())
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE serve_jobs_done counter",
		"# TYPE serve_jobs_running gauge",
		"# TYPE sim_events_executed gauge",
		"# TYPE serve_queue_wait_us histogram",
		"serve_queue_wait_us_bucket{le=\"+Inf\"} 8",
		"serve_queue_wait_us_count 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEncodePrometheusNilAndMultiRegistry(t *testing.T) {
	r1 := New()
	r1.Counter("a.one").Inc()
	r2 := New()
	r2.Counter("b.two").Add(2)
	var buf bytes.Buffer
	if err := EncodePrometheus(&buf, nil, r2, nil, r1); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("multi-registry output invalid: %v\n%s", err, buf.Bytes())
	}
	// Families are sorted across registries regardless of argument order.
	out := buf.String()
	if strings.Index(out, "a_one") > strings.Index(out, "b_two") {
		t.Fatalf("families not sorted across registries:\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"serve.queue.wait_us": "serve_queue_wait_us",
		"par.up.busy_ns":      "par_up_busy_ns",
		"9lives":              "_9lives",
		"ok:name_1":           "ok:name_1",
		"weird-chars now":     "weird_chars_now",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before HELP": "foo 1\n",
		"TYPE without HELP":  "# TYPE foo counter\nfoo 1\n",
		"unsorted families": "# HELP b b\n# TYPE b counter\nb 1\n" +
			"# HELP a a\n# TYPE a counter\na 1\n",
		"negative counter": "# HELP c c\n# TYPE c counter\nc -1\n",
		"non-cumulative buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"le not increasing": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"inf != count": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"foreign sample in family": "# HELP a a\n# TYPE a gauge\nb 1\n",
		"family with no samples":   "# HELP a a\n# TYPE a counter\n",
	}
	for name, data := range cases {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted invalid exposition:\n%s", name, data)
		}
	}
}

func TestValidateExpositionAcceptsEmpty(t *testing.T) {
	if err := ValidateExposition(nil); err != nil {
		t.Fatalf("empty exposition should be valid: %v", err)
	}
}

// energyTestRegistry registers the same instrument set the dram device
// attaches for energy metering: the ten per-command picojoule counters,
// the background sample, and a per-request energy histogram like the
// flight recorder's.
func energyTestRegistry() *Registry {
	r := New()
	r.Counter("dram.energy_pj.act_slow").Add(15099 * 3)
	r.Counter("dram.energy_pj.act_fast").Add(3774 * 5)
	r.Counter("dram.energy_pj.pre_slow").Add(7549 * 3)
	r.Counter("dram.energy_pj.pre_fast").Add(1887 * 5)
	r.Counter("dram.energy_pj.rd_slow").Add(11288 * 2)
	r.Counter("dram.energy_pj.rd_fast").Add(10502 * 6)
	r.Counter("dram.energy_pj.wr_slow").Add(13848)
	r.Counter("dram.energy_pj.wr_fast").Add(13062 * 2)
	r.Counter("dram.energy_pj.ref").Add(181184)
	r.Counter("dram.energy_pj.mig").Add(69725 * 2)
	r.Sample("dram.energy_pj.background", func() int64 { return 50 * 4 * 123456 })
	h := r.Histogram("req.energy_pj")
	for _, v := range []uint64{0, 3774, 15099, 26387, 69725, 181184} {
		h.Observe(v)
	}
	return r
}

// TestEncodePrometheusEnergyFamilies: the energy counter and histogram
// families scrape byte-identically, pass the self-validator, and keep
// cumulative le buckets monotone.
func TestEncodePrometheusEnergyFamilies(t *testing.T) {
	r := energyTestRegistry()
	var a, b bytes.Buffer
	if err := EncodePrometheus(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := EncodePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("repeated energy scrapes differ:\n%s\n--\n%s", a.Bytes(), b.Bytes())
	}
	if err := ValidateExposition(a.Bytes()); err != nil {
		t.Fatalf("energy exposition rejected by validator: %v\n%s", err, a.Bytes())
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE dram_energy_pj_act_slow counter",
		"# TYPE dram_energy_pj_act_fast counter",
		"# TYPE dram_energy_pj_ref counter",
		"# TYPE dram_energy_pj_mig counter",
		"# TYPE dram_energy_pj_background gauge",
		"# TYPE req_energy_pj histogram",
		"dram_energy_pj_act_slow 45297",
		"dram_energy_pj_background 24691200",
		"req_energy_pj_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("energy exposition missing %q:\n%s", want, out)
		}
	}
	// le-bucket monotonicity of the energy histogram, checked directly in
	// addition to the validator's structural pass.
	var last uint64
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "req_energy_pj_bucket{") {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, last)
		}
		last = n
		seen++
	}
	if seen < 2 {
		t.Fatalf("energy histogram rendered %d buckets, want >= 2:\n%s", seen, out)
	}
}
