package telemetry

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the log2 bucketing at its edges:
// bucket 0 holds only value 0, bucket i (1..63) holds [2^(i-1), 2^i),
// and bucket 64 holds everything from 2^63 up.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 62, 63},
		{1<<63 - 1, 63},
		{1 << 63, 64},
		{math.MaxUint64, 64},
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.v)
		for i := 0; i < HistogramBuckets; i++ {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.Bucket(i); got != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", tc.v, i, got, want)
			}
		}
		if ub := BucketUpperBound(tc.bucket); tc.v > ub {
			t.Errorf("Observe(%d): landed in bucket %d with upper bound %d", tc.v, tc.bucket, ub)
		}
		if tc.bucket > 0 {
			if lb := BucketUpperBound(tc.bucket - 1); tc.v <= lb {
				t.Errorf("Observe(%d): previous bucket's bound %d already covers it", tc.v, lb)
			}
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%d, want 100/5050", h.Count(), h.Sum())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	// Quantiles report the bucket upper bound covering the rank: the
	// median of 1..100 ranks into bucket 6 ([32,64)), p99 into [64,128).
	if q := h.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	if q := h.Quantile(0.99); q != 127 {
		t.Fatalf("p99 = %d, want 127", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for v := uint64(0); v < 50; v++ {
		a.Observe(v)
		b.Observe(v * 1000)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	want := uint64(0)
	for v := uint64(0); v < 50; v++ {
		want += v + v*1000
	}
	if a.Sum() != want {
		t.Fatalf("merged sum = %d, want %d", a.Sum(), want)
	}
}

// TestDisabledRegistryIsNil pins the disabled fast path: a nil registry
// hands out nil instruments and every operation on them is a no-op.
func TestDisabledRegistryIsNil(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	r.Sample("s", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if snap := r.Snapshot(nil); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}

// TestDisabledInstrumentsAllocateNothing is the zero-alloc property the
// package doc promises: recording into disabled (nil) instruments must
// not allocate, ever — it is a single branch.
func TestDisabledInstrumentsAllocateNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var tr *TraceRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(1)
		h.Observe(123456)
		tr.Duration("RD", 0, 10, 3, 42)
		tr.Instant("fault", 5, 3, -1)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %v bytes/op, want 0", allocs)
	}
}

// TestEnabledInstrumentsAllocateNothing: steady-state recording into
// live counters/gauges/histograms is allocation-free too (registration
// allocates; observation must not).
func TestEnabledInstrumentsAllocateNothing(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(-4)
		h.Observe(77)
	})
	if allocs != 0 {
		t.Fatalf("live instruments allocated %v bytes/op in steady state, want 0", allocs)
	}
}

func TestRegistryReregistrationReturnsSameInstrument(t *testing.T) {
	r := New()
	a := r.Counter("dup")
	b := r.Counter("dup")
	if a != b {
		t.Fatal("same-kind re-registration returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind re-registration did not panic")
		}
	}()
	r.Histogram("dup")
}

// TestSnapshotDeterministic: snapshots of identically used registries
// are identical, sorted by name, and stable across repeated sessions.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b.count").Add(5)
		r.Gauge("a.gauge").Set(-2)
		h := r.Histogram("c.lat")
		h.Observe(10)
		h.Observe(1000)
		r.Sample("d.sampled", func() int64 { return 99 })
		return r
	}
	s1 := build().Snapshot(nil)
	s2 := build().Snapshot(nil)
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("snapshots diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
		if i > 0 && s1[i-1].Name >= s1[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s1[i-1].Name, s1[i].Name)
		}
	}
	// Spot-check the flattened histogram series.
	want := map[string]float64{
		"a.gauge": -2, "b.count": 5, "d.sampled": 99,
		"c.lat.count": 2, "c.lat.sum": 1010, "c.lat.mean": 505,
	}
	got := make(map[string]float64, len(s1))
	for _, m := range s1 {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

// TestRegistryReset pins the pooled-machine reuse contract: values zero
// while counter/gauge/histogram registrations (and the pointers
// components hold) survive, and sampled functions — which capture
// run-scoped state — are removed and may re-register.
func TestRegistryReset(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	v := int64(7)
	r.Sample("s", func() int64 { return v })
	c.Add(3)
	g.Set(-5)
	h.Observe(100)

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("instrument values survived Reset: c=%d g=%d h.count=%d h.sum=%d",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if c2 := r.Counter("c"); c2 != c {
		t.Fatalf("counter registration did not survive Reset")
	}
	snap := r.Snapshot(nil)
	for _, m := range snap {
		if m.Name == "s" {
			t.Fatalf("sampled metric survived Reset: %+v", snap)
		}
	}
	// The freed name re-registers with a new function.
	w := int64(9)
	r.Sample("s", func() int64 { return w })
	found := false
	for _, m := range r.Snapshot(nil) {
		if m.Name == "s" && m.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-registered sampled metric missing after Reset")
	}
	// Nil registry: Reset is a safe no-op.
	var nilReg *Registry
	nilReg.Reset()
}
