// Prometheus text exposition for Registry instruments.
//
// EncodePrometheus renders the classic text format (version 0.0.4:
// `# HELP` / `# TYPE` comments followed by samples) straight from the
// registry's live instruments — no intermediate Snapshot, so histograms
// keep their full bucket resolution instead of the flattened
// count/sum/p50/p99 view. Output is deterministic: families are sorted
// by exposition name, bucket bounds are the registry's fixed log2
// ladder, and floats render with strconv's shortest round-trip form.
// Two encodes of the same instrument state are byte-identical, which is
// what lets the /metrics tests diff repeated scrapes.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promFamily is one metric family staged for encoding.
type promFamily struct {
	name string // sanitized exposition name
	orig string // registry name, shown in HELP
	kind Kind
	val  float64    // counter/gauge/sampled value
	hist *Histogram // set for KindHistogram
}

// EncodePrometheus writes every instrument of regs (nil entries are
// skipped) to w in Prometheus text exposition format. Counters map to
// `counter`, gauges and sampled functions to `gauge`, histograms to
// native `histogram` families with cumulative le buckets, _sum and
// _count. Families are emitted in sorted exposition-name order; the
// caller must serialize access to the registries (instruments are
// single-threaded by contract).
func EncodePrometheus(w io.Writer, regs ...*Registry) error {
	var fams []promFamily
	seen := make(map[string]bool)
	add := func(f promFamily) {
		// Disjoint-name registries are the norm (the parallel engine's
		// per-shard split); on a collision the first family wins so the
		// output stays valid exposition format.
		if seen[f.name] {
			return
		}
		seen[f.name] = true
		fams = append(fams, f)
	}
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, c := range r.counters {
			add(promFamily{name: promName(c.name), orig: c.name, kind: KindCounter, val: float64(c.v)})
		}
		for _, g := range r.gauges {
			add(promFamily{name: promName(g.name), orig: g.name, kind: KindGauge, val: float64(g.v)})
		}
		for _, s := range r.sampled {
			add(promFamily{name: promName(s.name), orig: s.name, kind: KindSampled, val: float64(s.fn())})
		}
		for _, h := range r.hists {
			add(promFamily{name: promName(h.name), orig: h.name, kind: KindHistogram, hist: h})
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		typ := "gauge"
		switch f.kind {
		case KindCounter:
			typ = "counter"
		case KindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.orig)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, typ)
		if f.kind != KindHistogram {
			fmt.Fprintf(bw, "%s %s\n", f.name, promFloat(f.val))
			continue
		}
		h := f.hist
		// Cumulative buckets over the fixed log2 ladder, truncated past
		// the highest non-empty bucket (the +Inf bucket always closes
		// the family and equals _count by construction).
		top := 0
		for i := 0; i < HistogramBuckets; i++ {
			if h.buckets[i] > 0 {
				top = i
			}
		}
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += h.buckets[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", f.name, promFloat(float64(BucketUpperBound(i))), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", f.name, h.count)
		fmt.Fprintf(bw, "%s_sum %d\n", f.name, h.sum)
		fmt.Fprintf(bw, "%s_count %d\n", f.name, h.count)
	}
	return bw.Flush()
}

// promName sanitizes a registry name ("serve.queue.wait_us") into a
// valid exposition metric name ("serve_queue_wait_us"): every rune
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_'
// prefix. The mapping is deterministic, so sorted registry names stay
// sorted families (dots sort like underscores for our metric set).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders v the way the exposition format expects: shortest
// round-trip decimal, with integral values as plain integers.
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition checks data against the subset of the Prometheus
// text format EncodePrometheus emits, strictly enough to catch real
// regressions: every family opens with HELP then TYPE, family names are
// strictly increasing (deterministic ordering), sample names belong to
// the declared family, histogram buckets are cumulative with strictly
// increasing le bounds ending at +Inf, and the +Inf bucket equals
// _count. It is self-contained on purpose — the repo must not grow a
// client_model dependency just to test its own scrape output.
func ValidateExposition(data []byte) error {
	lines := strings.Split(string(data), "\n")
	type famState struct {
		name      string
		typ       string
		samples   int
		lastLe    float64
		lastCum   uint64
		infSeen   bool
		infVal    uint64
		countSeen bool
		count     uint64
	}
	var cur *famState
	var prevFam string
	closeFam := func() error {
		if cur == nil {
			return nil
		}
		if cur.samples == 0 {
			return fmt.Errorf("family %s: declared but has no samples", cur.name)
		}
		if cur.typ == "histogram" {
			if !cur.infSeen {
				return fmt.Errorf("family %s: histogram missing +Inf bucket", cur.name)
			}
			if !cur.countSeen {
				return fmt.Errorf("family %s: histogram missing _count", cur.name)
			}
			if cur.infVal != cur.count {
				return fmt.Errorf("family %s: +Inf bucket %d != _count %d", cur.name, cur.infVal, cur.count)
			}
		}
		cur = nil
		return nil
	}
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if err := closeFam(); err != nil {
				return err
			}
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := fields[0]
			if name == "" {
				return fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			if prevFam != "" && name <= prevFam {
				return fmt.Errorf("line %d: family %s not strictly after %s (ordering must be deterministic)", lineNo, name, prevFam)
			}
			prevFam = name
			cur = &famState{name: name, lastLe: math.Inf(-1)}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			if cur == nil || cur.name != fields[0] {
				return fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, fields[0])
			}
			if cur.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, cur.name)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
				cur.typ = fields[1]
			default:
				return fmt.Errorf("line %d: unsupported type %q", lineNo, fields[1])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		// Sample line: name[{labels}] value
		if cur == nil || cur.typ == "" {
			return fmt.Errorf("line %d: sample before HELP/TYPE: %q", lineNo, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		nameAndLabels, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", lineNo, valStr, err)
		}
		name := nameAndLabels
		labels := ""
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				return fmt.Errorf("line %d: unterminated label set %q", lineNo, nameAndLabels)
			}
			name, labels = nameAndLabels[:i], nameAndLabels[i+1:len(nameAndLabels)-1]
		}
		switch cur.typ {
		case "counter", "gauge":
			if name != cur.name {
				return fmt.Errorf("line %d: sample %s inside family %s", lineNo, name, cur.name)
			}
			if cur.typ == "counter" && val < 0 {
				return fmt.Errorf("line %d: counter %s is negative (%v)", lineNo, name, val)
			}
		case "histogram":
			switch name {
			case cur.name + "_bucket":
				le := strings.TrimPrefix(labels, "le=")
				le = strings.Trim(le, `"`)
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				var bound float64
				if le == "+Inf" {
					bound = math.Inf(1)
				} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bad le bound %q: %v", lineNo, le, err)
				}
				if cur.infSeen {
					return fmt.Errorf("line %d: bucket after +Inf in %s", lineNo, cur.name)
				}
				if bound <= cur.lastLe {
					return fmt.Errorf("line %d: le bounds not strictly increasing in %s (%v after %v)", lineNo, cur.name, bound, cur.lastLe)
				}
				cum := uint64(val)
				if float64(cum) != val || val < 0 {
					return fmt.Errorf("line %d: bucket count %v is not a non-negative integer", lineNo, val)
				}
				if cum < cur.lastCum {
					return fmt.Errorf("line %d: bucket counts not cumulative in %s (%d after %d)", lineNo, cur.name, cum, cur.lastCum)
				}
				cur.lastLe, cur.lastCum = bound, cum
				if math.IsInf(bound, 1) {
					cur.infSeen, cur.infVal = true, cum
				}
			case cur.name + "_sum":
				// value may be any float
			case cur.name + "_count":
				cur.countSeen, cur.count = true, uint64(val)
			default:
				return fmt.Errorf("line %d: sample %s inside histogram family %s", lineNo, name, cur.name)
			}
		}
		cur.samples++
	}
	return closeFam()
}
