package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampleTimelines() []*Timeline {
	mk := func(label string) *Timeline {
		tl := &Timeline{Label: label, IntervalPS: 1_000_000}
		r := New()
		c := r.Counter("cmds")
		c.Add(3)
		tl.Snap(1_000_000, r)
		c.Add(4)
		tl.Snap(2_500_000, r) // 2.5 µs: exercises fractional ns formatting? (ps->ns = 2500)
		return tl
	}
	// Deliberately out of label order to prove the encoder sorts.
	return []*Timeline{mk("run-b"), mk("run-a")}
}

func TestTimelineCSVDeterministicAndSorted(t *testing.T) {
	var a, b bytes.Buffer
	if err := EncodeTimelinesCSV(&a, sampleTimelines()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTimelinesCSV(&b, sampleTimelines()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV output not deterministic across encodes")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if lines[0] != "run,epoch_ns,metric,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "run-a,") {
		t.Fatalf("runs not sorted by label: first data row %q", lines[1])
	}
	if !strings.Contains(a.String(), "run-a,1000,cmds,3") {
		t.Fatalf("missing expected row in:\n%s", a.String())
	}
}

func TestTimelineJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeTimelinesJSON(&buf, sampleTimelines()); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Run    string `json:"run"`
		Epochs int    `json:"epochs"`
		Series []struct {
			EpochNS float64            `json:"epoch_ns"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc) != 2 || doc[0].Run != "run-a" || doc[1].Run != "run-b" {
		t.Fatalf("runs wrong or unsorted: %+v", doc)
	}
	if doc[0].Epochs != 2 || doc[0].Series[1].Metrics["cmds"] != 7 {
		t.Fatalf("epoch content wrong: %+v", doc[0])
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`say "hi"`:   `"say ""hi"""`,
		"line\nfeed": "\"line\nfeed\"",
	}
	for in, want := range cases {
		if got := csvField(in); got != want {
			t.Errorf("csvField(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatPSExact(t *testing.T) {
	if got := formatPSinNS(1500); got != "1.5" {
		t.Errorf("formatPSinNS(1500) = %q, want 1.5", got)
	}
	if got := formatPSinNS(2_000_000); got != "2000" {
		t.Errorf("formatPSinNS(2000000) = %q, want 2000", got)
	}
	if got := formatMicros(1_234_567); got != "1.234567" {
		t.Errorf("formatMicros = %q, want 1.234567", got)
	}
	if got := formatMicros(3_000_000); got != "3" {
		t.Errorf("formatMicros = %q, want 3", got)
	}
}

// TestTraceEncodeSchema validates a synthetic recorder against the
// Chrome trace-event shape and pins pid assignment (sorted labels),
// track metadata, instant scope, and the drop-count annotation.
func TestTraceEncodeSchema(t *testing.T) {
	r1 := NewTraceRecorder("zz-late")
	r1.DefineTrack(0, "bank0")
	r1.Duration("RD", 1_000_000, 500_000, 0, 17)
	r2 := NewTraceRecorder("aa-early")
	r2.MaxEvents = 1
	r2.Duration("ACT", 0, 2_000_000, 3, -1)
	r2.Instant("fault", 5, 3, -1) // over cap: dropped
	if r2.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r2.Dropped())
	}

	var buf bytes.Buffer
	if err := EncodeTrace(&buf, []*TraceRecorder{r1, nil, r2}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var procs []string
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" && e["name"] == "process_name" {
			procs = append(procs, e["args"].(map[string]any)["name"].(string))
		}
	}
	if len(procs) != 2 || !strings.HasPrefix(procs[0], "aa-early") || procs[1] != "zz-late" {
		t.Fatalf("process metadata wrong: %v", procs)
	}
	if !strings.Contains(procs[0], "[1 events dropped]") {
		t.Fatalf("drop count not surfaced in process name: %q", procs[0])
	}
	for _, e := range doc.TraceEvents {
		if e["name"] == "RD" {
			if e["ts"].(float64) != 1 || e["dur"].(float64) != 0.5 {
				t.Fatalf("RD ts/dur wrong: %v", e)
			}
			if e["args"].(map[string]any)["row"].(float64) != 17 {
				t.Fatalf("RD row arg wrong: %v", e)
			}
		}
	}
	// Deterministic bytes across encodes.
	var again bytes.Buffer
	if err := EncodeTrace(&again, []*TraceRecorder{r1, nil, r2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("trace encoding not deterministic")
	}
}

func TestPublisherEndpoint(t *testing.T) {
	p := NewPublisher()
	p.Publish("run-b", []Metric{{Name: "x", Value: 2}})
	p.Publish("run-a", []Metric{{Name: "y", Value: 3}})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var runs []struct {
		Run     string             `json:"run"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Run != "run-a" || runs[0].Metrics["y"] != 3 {
		t.Fatalf("metrics dump wrong: %+v", runs)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s -> %d", path, resp.StatusCode)
		}
	}
	// nil publisher publish is a safe no-op.
	var np *Publisher
	np.Publish("x", nil)
}
