package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TraceRecorder buffers one run's Chrome trace events (DRAM commands,
// migrations, fault events) for later export. Like every instrument in
// this package it is nil-receiver-safe: a nil recorder is the disabled
// state and recording into it is a no-op branch.
//
// Tracks: the exporter maps one run to one Perfetto "process" (pid) and
// each recorder-defined track — typically one per DRAM bank — to a
// "thread" (tid). Events must carry track ids previously named with
// DefineTrack; undeclared tracks still render, just unnamed.
//
// Recording appends to a slice in engine order (single-threaded per
// run), so export is deterministic. The buffer is capped: beyond
// MaxEvents the recorder counts drops instead of growing, and the
// exporter emits the drop count as run metadata rather than silently
// truncating.
type TraceRecorder struct {
	// Label identifies the run (same key as its Timeline).
	Label string
	// MaxEvents caps the buffer (DefaultMaxEvents when 0).
	MaxEvents int

	events  []traceEvent
	tracks  []trackName
	dropped uint64
}

// DefaultMaxEvents bounds one run's trace buffer (~56 B/event, so the
// default is roughly 110 MB of host memory at worst).
const DefaultMaxEvents = 2_000_000

// tracePhase is the Chrome trace-event "ph" field.
type tracePhase byte

const (
	phaseComplete  tracePhase = 'X' // duration event (ts + dur)
	phaseInstant   tracePhase = 'i' // instant event
	phaseFlowStart tracePhase = 's' // flow arrow origin
	phaseFlowEnd   tracePhase = 'f' // flow arrow destination
	phaseCounter   tracePhase = 'C' // counter sample (args:{value})
)

// traceEvent is one buffered event. Names must be static strings (the
// recorder stores, never copies or concatenates, so recording does not
// allocate beyond slice growth).
type traceEvent struct {
	name  string
	ph    tracePhase
	tsPS  int64
	durPS int64
	tid   int
	// row is an optional "row" argument; negative means absent. Flow
	// events reuse it as the flow id (pairing a start with its end).
	row int64
}

type trackName struct {
	tid  int
	name string
}

// NewTraceRecorder returns an enabled recorder for a run label.
func NewTraceRecorder(label string) *TraceRecorder {
	return &TraceRecorder{Label: label}
}

// DefineTrack names a track (Perfetto thread) for this run.
func (r *TraceRecorder) DefineTrack(tid int, name string) {
	if r == nil {
		return
	}
	r.tracks = append(r.tracks, trackName{tid: tid, name: name})
}

// Duration records a complete event spanning [tsPS, tsPS+durPS) on
// track tid. name must be a static string; row < 0 omits the argument.
func (r *TraceRecorder) Duration(name string, tsPS, durPS int64, tid int, row int64) {
	r.record(traceEvent{name: name, ph: phaseComplete, tsPS: tsPS, durPS: durPS, tid: tid, row: row})
}

// Instant records a point event on track tid. name must be a static
// string; row < 0 omits the argument.
func (r *TraceRecorder) Instant(name string, tsPS int64, tid int, row int64) {
	r.record(traceEvent{name: name, ph: phaseInstant, tsPS: tsPS, tid: tid, row: row})
}

// FlowStart records the origin of a flow arrow at tsPS on track tid.
// Perfetto binds flow events by (name, id): emit a FlowEnd with the
// same name and id on the destination track, and place both inside
// enclosing duration slices so the arrow has anchors to attach to.
func (r *TraceRecorder) FlowStart(name string, tsPS int64, tid int, id int64) {
	r.record(traceEvent{name: name, ph: phaseFlowStart, tsPS: tsPS, tid: tid, row: id})
}

// FlowEnd records the destination of a flow arrow (see FlowStart).
func (r *TraceRecorder) FlowEnd(name string, tsPS int64, tid int, id int64) {
	r.record(traceEvent{name: name, ph: phaseFlowEnd, tsPS: tsPS, tid: tid, row: id})
}

// Counter records a counter sample at tsPS on track tid: the Perfetto
// UI renders the samples of one (name, tid) series as a filled area
// chart over time. name must be a static string.
func (r *TraceRecorder) Counter(name string, tsPS int64, tid int, value int64) {
	r.record(traceEvent{name: name, ph: phaseCounter, tsPS: tsPS, tid: tid, row: value})
}

func (r *TraceRecorder) record(e traceEvent) {
	if r == nil {
		return
	}
	max := r.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(r.events) >= max {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Len reports buffered events.
func (r *TraceRecorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped reports events discarded after the buffer cap was reached.
func (r *TraceRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// EncodeTrace writes recorders as one Chrome trace-event JSON document
// (the Perfetto UI and chrome://tracing both load it). Runs sort by
// label and map to pids 1..n; timestamps convert from picoseconds of
// simulated time to the format's microseconds. Output is
// byte-deterministic for a deterministic simulation.
func EncodeTrace(w io.Writer, recs []*TraceRecorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	live := make([]*TraceRecorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Label < live[j].Label })

	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for pid, r := range live {
		pid := pid + 1
		name := r.Label
		if r.dropped > 0 {
			name = fmt.Sprintf("%s [%d events dropped]", name, r.dropped)
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jsonString(name)))
		for _, t := range r.tracks {
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, t.tid, jsonString(t.name)))
		}
		for i := range r.events {
			e := &r.events[i]
			var b strings.Builder
			b.WriteString(`{"name":`)
			b.WriteString(jsonString(e.name))
			b.WriteString(`,"ph":"`)
			b.WriteByte(byte(e.ph))
			b.WriteString(`","ts":`)
			b.WriteString(formatMicros(e.tsPS))
			if e.ph == phaseComplete {
				b.WriteString(`,"dur":`)
				b.WriteString(formatMicros(e.durPS))
			}
			if e.ph == phaseInstant {
				b.WriteString(`,"s":"t"`)
			}
			flow := e.ph == phaseFlowStart || e.ph == phaseFlowEnd
			if flow {
				// Flow events bind by (cat, name, id); bp:"e" attaches the
				// arrow head to the enclosing slice rather than the next one.
				b.WriteString(`,"cat":"flow","id":"`)
				b.WriteString(strconv.FormatInt(e.row, 10))
				b.WriteString(`"`)
				if e.ph == phaseFlowEnd {
					b.WriteString(`,"bp":"e"`)
				}
			}
			b.WriteString(`,"pid":`)
			b.WriteString(strconv.Itoa(pid))
			b.WriteString(`,"tid":`)
			b.WriteString(strconv.Itoa(e.tid))
			if e.ph == phaseCounter {
				// Counters reuse row as the sampled value and may
				// legitimately be zero (or, defensively, negative).
				b.WriteString(`,"args":{"value":`)
				b.WriteString(strconv.FormatInt(e.row, 10))
				b.WriteString(`}`)
			} else if e.row >= 0 && !flow {
				b.WriteString(`,"args":{"row":`)
				b.WriteString(strconv.FormatInt(e.row, 10))
				b.WriteString(`}`)
			}
			b.WriteString(`}`)
			emit(b.String())
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// formatMicros renders picoseconds as the trace format's microseconds,
// exact to the picosecond (10^-6 us) without float rounding.
func formatMicros(ps int64) string {
	whole, frac := ps/1_000_000, ps%1_000_000
	if frac == 0 {
		return strconv.FormatInt(whole, 10)
	}
	s := strconv.FormatInt(whole, 10) + "." + fmt.Sprintf("%06d", frac)
	return strings.TrimRight(s, "0")
}

// jsonString renders a JSON string literal (labels contain no control
// characters in practice, but quote defensively).
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
