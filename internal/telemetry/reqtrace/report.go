package reqtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Aggregate accumulates attribution across recorders (one explain run
// merges every workload of a design into one vector). The zero value is
// ready to use.
type Aggregate struct {
	Requests         uint64
	Violations       uint64
	EnergyViolations uint64
	totalSumPS       int64
	compSumPS        [NumComponents]int64
	totalHist        telemetry.Histogram
	energySumPJ      int64
	energyCompSumPJ  [NumComponents]int64
}

// AddTo merges this recorder's aggregation into a.
func (r *Recorder) AddTo(a *Aggregate) {
	if r == nil || a == nil {
		return
	}
	a.Requests += r.count
	a.Violations += r.violations
	a.EnergyViolations += r.energyViolations
	a.totalSumPS += r.totalSumPS
	a.energySumPJ += r.energySumPJ
	for i := range r.compSumPS {
		a.compSumPS[i] += r.compSumPS[i]
		a.energyCompSumPJ[i] += r.energyCompSumPJ[i]
	}
	a.totalHist.Merge(&r.totalHist)
}

// TotalMeanNS returns the mean end-to-end latency in nanoseconds.
func (a *Aggregate) TotalMeanNS() float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.totalSumPS) / float64(a.Requests) / psPerNS
}

// ComponentMeanNS returns component c's mean per request (ns).
func (a *Aggregate) ComponentMeanNS(c Component) float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.compSumPS[c]) / float64(a.Requests) / psPerNS
}

// TotalQuantileNS returns the merged q-quantile of end-to-end latency
// in nanoseconds.
func (a *Aggregate) TotalQuantileNS(q float64) uint64 {
	return a.totalHist.Quantile(q)
}

// EnergyMeanPJ returns the mean attributed energy per request (pJ).
func (a *Aggregate) EnergyMeanPJ() float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.energySumPJ) / float64(a.Requests)
}

// ComponentEnergyMeanPJ returns component c's mean attributed energy
// per request (pJ).
func (a *Aggregate) ComponentEnergyMeanPJ(c Component) float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.energyCompSumPJ[c]) / float64(a.Requests)
}

// EnergySumPJ returns the merged attributed energy (exact integer pJ).
func (a *Aggregate) EnergySumPJ() int64 { return a.energySumPJ }

// ComponentEnergySumPJ returns component c's merged attributed energy
// (exact integer pJ).
func (a *Aggregate) ComponentEnergySumPJ(c Component) int64 {
	return a.energyCompSumPJ[c]
}

// EncodeCSV writes every recorder's waterfall as long-form CSV:
// one "total" row per run followed by one row per component, runs
// sorted by label so merged output is independent of completion order.
// The energy_pj column is an exact integer picojoule sum: the component
// rows of a run sum to its total row with ==, which is the
// conservation property check.sh gates on.
func EncodeCSV(w io.Writer, recs []*Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<14)
	if _, err := bw.WriteString(
		"run,requests,violations,energy_violations,component,sum_ns,mean_ns,share_pct,p50_ns,p95_ns,p99_ns,energy_pj,energy_mean_pj\n"); err != nil {
		return err
	}
	for _, r := range sortedLive(recs) {
		totalSum := float64(r.totalSumPS) / psPerNS
		fmt.Fprintf(bw, "%s,%d,%d,%d,total,%.3f,%.3f,100.00,%d,%d,%d,%d,%.1f\n",
			csvField(r.label), r.count, r.violations, r.energyViolations,
			totalSum, r.TotalMeanNS(),
			r.totalHist.Quantile(0.50), r.totalHist.Quantile(0.95), r.totalHist.Quantile(0.99),
			r.energySumPJ, r.EnergyMeanPJ())
		for c := Component(0); c < NumComponents; c++ {
			share := 0.0
			if totalSum > 0 {
				share = 100 * r.ComponentSumNS(c) / totalSum
			}
			fmt.Fprintf(bw, "%s,%d,%d,%d,%v,%.3f,%.3f,%.2f,%d,%d,%d,%d,%.1f\n",
				csvField(r.label), r.count, r.violations, r.energyViolations, c,
				r.ComponentSumNS(c), r.ComponentMeanNS(c), share,
				r.compHist[c].Quantile(0.50), r.compHist[c].Quantile(0.95), r.compHist[c].Quantile(0.99),
				r.energyCompSumPJ[c], r.ComponentEnergyMeanPJ(c))
		}
	}
	return bw.Flush()
}

// componentJSON is one component's aggregated attribution.
type componentJSON struct {
	Name         string  `json:"name"`
	SumNS        float64 `json:"sum_ns"`
	MeanNS       float64 `json:"mean_ns"`
	SharePct     float64 `json:"share_pct"`
	P50NS        uint64  `json:"p50_ns"`
	P95NS        uint64  `json:"p95_ns"`
	P99NS        uint64  `json:"p99_ns"`
	EnergyPJ     int64   `json:"energy_pj"`
	EnergyMeanPJ float64 `json:"energy_mean_pj"`
}

// runJSON is one run's waterfall document.
type runJSON struct {
	Run              string          `json:"run"`
	Requests         uint64          `json:"requests"`
	Violations       uint64          `json:"violations"`
	EnergyViolations uint64          `json:"energy_violations"`
	Total            componentJSON   `json:"total"`
	Components       []componentJSON `json:"components"`
}

// EncodeJSON writes every recorder's waterfall as one JSON array, runs
// sorted by label.
func EncodeJSON(w io.Writer, recs []*Recorder) error {
	out := make([]runJSON, 0, len(recs))
	for _, r := range sortedLive(recs) {
		totalSum := float64(r.totalSumPS) / psPerNS
		doc := runJSON{
			Run: r.label, Requests: r.count, Violations: r.violations,
			EnergyViolations: r.energyViolations,
			Total: componentJSON{
				Name: "total", SumNS: totalSum, MeanNS: r.TotalMeanNS(), SharePct: 100,
				P50NS: r.totalHist.Quantile(0.50), P95NS: r.totalHist.Quantile(0.95), P99NS: r.totalHist.Quantile(0.99),
				EnergyPJ: r.energySumPJ, EnergyMeanPJ: r.EnergyMeanPJ(),
			},
		}
		for c := Component(0); c < NumComponents; c++ {
			share := 0.0
			if totalSum > 0 {
				share = 100 * r.ComponentSumNS(c) / totalSum
			}
			doc.Components = append(doc.Components, componentJSON{
				Name: c.String(), SumNS: r.ComponentSumNS(c), MeanNS: r.ComponentMeanNS(c), SharePct: share,
				P50NS: r.compHist[c].Quantile(0.50), P95NS: r.compHist[c].Quantile(0.95), P99NS: r.compHist[c].Quantile(0.99),
				EnergyPJ: r.energyCompSumPJ[c], EnergyMeanPJ: r.ComponentEnergyMeanPJ(c),
			})
		}
		out = append(out, doc)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// sortedLive returns the non-nil recorders sorted by label.
func sortedLive(recs []*Recorder) []*Recorder {
	live := make([]*Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].label < live[j].label })
	return live
}

// csvField quotes a CSV field when it needs it (labels may contain
// commas from sweep keys).
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
