package reqtrace

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// finishAndCheck finishes sp and asserts the sum invariant held.
func finishAndCheck(t *testing.T, r *Recorder, sp *Span, done sim.Time) {
	t.Helper()
	before := r.Violations()
	r.Finish(sp, done)
	if r.Violations() != before {
		t.Fatalf("invariant violation: %s", r.FirstViolation())
	}
}

func TestBreakdownCacheHit(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(100))
	// No stamps at all: the request hit a cache level.
	finishAndCheck(t, r, sp, sim.FromNS(104))
	if got := r.ComponentSumNS(CompCache); got != 4 {
		t.Fatalf("cache hit: cache component = %v ns, want 4", got)
	}
	if got := r.TotalMeanNS(); got != 4 {
		t.Fatalf("total mean = %v ns, want 4", got)
	}
}

func TestBreakdownCoalesced(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	sp.StampMerge(sim.FromNS(10))
	sp.StampMerge(sim.FromNS(25)) // second merge must not win
	finishAndCheck(t, r, sp, sim.FromNS(80))
	if c, f := r.ComponentSumNS(CompCache), r.ComponentSumNS(CompFill); c != 10 || f != 70 {
		t.Fatalf("coalesced: cache=%v fill=%v, want 10/70", c, f)
	}
}

func TestBreakdownFullServicePath(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(1, sim.FromNS(0))
	sp.StampXlat(sim.FromNS(20))
	sp.StampEnqueue(sim.FromNS(50))
	sp.CreditRefresh(sim.FromNS(30), 800)
	sp.CreditMigration(sim.FromNS(10), 300)
	sp.StampPre(sim.FromNS(150), 75)
	sp.StampAct(sim.FromNS(165), 150)
	sp.StampRead(sim.FromNS(180), sim.FromNS(195), 110)
	finishAndCheck(t, r, sp, sim.FromNS(200))
	want := map[Component]float64{
		CompCache:     20, // issue -> xlat
		CompXlat:      30, // xlat -> enqueue
		CompQueue:     60, // enqueue -> PRE (100) minus credits (40)
		CompRefresh:   30, //
		CompMigration: 10, //
		CompConflict:  15, // PRE -> ACT
		CompService:   30, // ACT -> burst end
		CompFill:      5,  // burst end -> done
	}
	var sum float64
	for c, w := range want {
		if got := r.ComponentSumNS(c); got != w {
			t.Fatalf("%v = %v ns, want %v", c, got, w)
		}
		sum += w
	}
	if sum != 200 {
		t.Fatalf("test vector inconsistent: components sum to %v, want 200", sum)
	}
	// The energy ledger must telescope too: per-component sums reproduce
	// the independently accumulated total, with zero violations.
	if r.EnergyViolations() != 0 {
		t.Fatalf("energy violation: %s", r.FirstEnergyViolation())
	}
	wantE := map[Component]int64{
		CompConflict:  75,
		CompService:   260, // ACT 150 + RD 110
		CompRefresh:   800,
		CompMigration: 300,
	}
	var esum int64
	for c := Component(0); c < NumComponents; c++ {
		if got := r.ComponentEnergySumPJ(c); got != wantE[c] {
			t.Fatalf("%v energy = %d pJ, want %d", c, got, wantE[c])
		}
		esum += r.ComponentEnergySumPJ(c)
	}
	if esum != r.EnergySumPJ() || r.EnergySumPJ() != 1435 {
		t.Fatalf("energy sum = %d pJ, total = %d pJ, want both 1435", esum, r.EnergySumPJ())
	}
	if got := r.EnergyMeanPJ(); got != 1435 {
		t.Fatalf("energy mean = %v pJ, want 1435", got)
	}
}

func TestBreakdownRowHit(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	sp.StampEnqueue(sim.FromNS(10))
	// Row already open: straight to the column read, no PRE/ACT.
	sp.StampRead(sim.FromNS(40), sim.FromNS(55), 110)
	finishAndCheck(t, r, sp, sim.FromNS(60))
	if q, s := r.ComponentSumNS(CompQueue), r.ComponentSumNS(CompService); q != 30 || s != 15 {
		t.Fatalf("row hit: queue=%v service=%v, want 30/15", q, s)
	}
	if c := r.ComponentSumNS(CompConflict); c != 0 {
		t.Fatalf("row hit: conflict=%v, want 0", c)
	}
}

func TestBreakdownLastActWins(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	sp.StampEnqueue(sim.FromNS(0))
	sp.StampPre(sim.FromNS(10), 75)
	sp.StampAct(sim.FromNS(20), 150)
	// A sibling stole the bank; re-open for this request later.
	sp.StampAct(sim.FromNS(80), 150)
	sp.StampRead(sim.FromNS(90), sim.FromNS(100), 110)
	finishAndCheck(t, r, sp, sim.FromNS(100))
	// Conflict extends from the first PRE to the final ACT.
	if c := r.ComponentSumNS(CompConflict); c != 70 {
		t.Fatalf("conflict = %v ns, want 70", c)
	}
	if s := r.ComponentSumNS(CompService); s != 20 {
		t.Fatalf("service = %v ns, want 20", s)
	}
	// Both activations' energy accumulates even though only the last ACT
	// time wins.
	if got := r.ComponentEnergySumPJ(CompService); got != 410 {
		t.Fatalf("service energy = %d pJ, want 410 (two ACTs + RD)", got)
	}
	if r.EnergyViolations() != 0 {
		t.Fatalf("energy violation: %s", r.FirstEnergyViolation())
	}
}

func TestCreditClampKeepsQueueNonNegative(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	sp.StampEnqueue(sim.FromNS(10))
	// Over-credit far beyond the actual wait window.
	sp.CreditRefresh(sim.FromNS(500), 800)
	sp.CreditMigration(sim.FromNS(500), 300)
	sp.StampRead(sim.FromNS(50), sim.FromNS(60), 110)
	finishAndCheck(t, r, sp, sim.FromNS(60))
	if q := r.ComponentSumNS(CompQueue); q != 0 {
		t.Fatalf("queue = %v ns, want 0 after clamp", q)
	}
	if ref := r.ComponentSumNS(CompRefresh); ref != 40 {
		t.Fatalf("refresh clamped to %v ns, want 40 (the whole wait)", ref)
	}
	if mig := r.ComponentSumNS(CompMigration); mig != 0 {
		t.Fatalf("migration = %v ns, want 0 (refresh consumed the wait)", mig)
	}
	// Time credits clamp; energy does not (the blocking commands really
	// did spend those joules), so the ledger still telescopes.
	if ref, mig := r.ComponentEnergySumPJ(CompRefresh), r.ComponentEnergySumPJ(CompMigration); ref != 800 || mig != 300 {
		t.Fatalf("credit energy = %d/%d pJ, want 800/300 (unclamped)", ref, mig)
	}
	if r.EnergyViolations() != 0 {
		t.Fatalf("energy violation: %s", r.FirstEnergyViolation())
	}
}

func TestViolationCountedNotPanicked(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(100))
	// done before issue: impossible, must be flagged.
	r.Finish(sp, sim.FromNS(50))
	if r.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", r.Violations())
	}
	if r.FirstViolation() == "" || !strings.Contains(r.FirstViolation(), "core 0") {
		t.Fatalf("first violation = %q", r.FirstViolation())
	}
}

func TestSamplingDeterministicAndSpread(t *testing.T) {
	a := NewRecorder("a", 64, 12345)
	b := NewRecorder("b", 64, 12345)
	offsets := make(map[uint64]int)
	for core := 0; core < 16; core++ {
		oa, ob := a.OffsetFor(core), b.OffsetFor(core)
		if oa != ob {
			t.Fatalf("core %d: offsets differ for equal seeds (%d vs %d)", core, oa, ob)
		}
		if oa >= 64 {
			t.Fatalf("core %d: offset %d out of range", core, oa)
		}
		offsets[oa]++
	}
	if len(offsets) < 2 {
		t.Fatalf("all 16 cores sample in lockstep: offsets %v", offsets)
	}
	if c := NewRecorder("c", 64, 999); c.OffsetFor(0) == a.OffsetFor(0) && c.OffsetFor(1) == a.OffsetFor(1) && c.OffsetFor(2) == a.OffsetFor(2) {
		t.Fatal("different seeds produced identical offset streams")
	}
	if n := NewRecorder("n", 0, 1).SampleN(); n != 1 {
		t.Fatalf("sampleN clamp: %d, want 1", n)
	}
}

func TestSpanPoolRecycles(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	r.Finish(sp, sim.FromNS(10))
	sp2 := r.Begin(1, sim.FromNS(20))
	if sp2 != sp {
		t.Fatal("pooled span not recycled")
	}
	// The recycled span must be fully re-armed.
	if sp2.Waiting() {
		t.Fatal("recycled span still looks enqueued")
	}
	finishAndCheck(t, r, sp2, sim.FromNS(30))
	if r.Requests() != 2 {
		t.Fatalf("requests = %d, want 2", r.Requests())
	}
}

func TestNilSpanStampsAreNoOps(t *testing.T) {
	var sp *Span
	sp.StampMerge(1)
	sp.StampXlat(1)
	sp.StampEnqueue(1)
	sp.StampPre(1, 10)
	sp.StampAct(1, 10)
	sp.StampRead(1, 2, 10)
	sp.CreditRefresh(1, 10)
	sp.CreditMigration(1, 10)
	sp.SetBankTID(3)
	if sp.Waiting() {
		t.Fatal("nil span reports waiting")
	}
}

func TestFinishEmitsTraceFlow(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	tr := telemetry.NewTraceRecorder("run")
	r.AttachTrace(tr, 100)
	sp := r.Begin(2, sim.FromNS(0))
	sp.StampEnqueue(sim.FromNS(5))
	sp.StampRead(sim.FromNS(20), sim.FromNS(30), 110)
	sp.SetBankTID(7)
	finishAndCheck(t, r, sp, sim.FromNS(35))
	// REQ duration + flow start + flow end.
	if tr.Len() != 3 {
		t.Fatalf("trace events = %d, want 3", tr.Len())
	}
	var out strings.Builder
	if err := telemetry.EncodeTrace(&out, []*telemetry.TraceRecorder{tr}); err != nil {
		t.Fatal(err)
	}
	enc := out.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"f"`, `"cat":"flow"`, `"bp":"e"`, `"name":"REQ"`} {
		if !strings.Contains(enc, want) {
			t.Fatalf("encoded trace missing %s:\n%s", want, enc)
		}
	}
}

func TestEncodersDeterministicAndSorted(t *testing.T) {
	build := func() []*Recorder {
		// Construct in reverse label order; encoders must sort.
		rb := NewRecorder("b-run", 1, 1)
		sp := rb.Begin(0, 0)
		sp.StampEnqueue(sim.FromNS(2))
		sp.StampRead(sim.FromNS(10), sim.FromNS(12), 110)
		rb.Finish(sp, sim.FromNS(14))
		ra := NewRecorder("a-run", 1, 1)
		sp = ra.Begin(0, 0)
		ra.Finish(sp, sim.FromNS(3))
		return []*Recorder{rb, nil, ra}
	}
	var csv1, csv2, json1 strings.Builder
	if err := EncodeCSV(&csv1, build()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeCSV(&csv2, build()); err != nil {
		t.Fatal(err)
	}
	if csv1.String() != csv2.String() {
		t.Fatal("CSV encoding not deterministic")
	}
	if err := EncodeJSON(&json1, build()); err != nil {
		t.Fatal(err)
	}
	aIdx := strings.Index(csv1.String(), "a-run")
	bIdx := strings.Index(csv1.String(), "b-run")
	if aIdx < 0 || bIdx < 0 || aIdx > bIdx {
		t.Fatalf("CSV runs not sorted by label:\n%s", csv1.String())
	}
	if !strings.Contains(csv1.String(), "run,requests,violations,energy_violations,component,sum_ns,mean_ns,share_pct,p50_ns,p95_ns,p99_ns,energy_pj,energy_mean_pj") {
		t.Fatalf("CSV header missing:\n%s", csv1.String())
	}
	if !strings.Contains(json1.String(), `"name": "total"`) {
		t.Fatalf("JSON missing total component:\n%s", json1.String())
	}
}

func TestAggregateMerges(t *testing.T) {
	r1 := NewRecorder("x", 1, 1)
	sp := r1.Begin(0, 0)
	r1.Finish(sp, sim.FromNS(10))
	r2 := NewRecorder("y", 1, 1)
	sp = r2.Begin(0, 0)
	sp.StampEnqueue(sim.FromNS(5))
	sp.StampRead(sim.FromNS(10), sim.FromNS(20), 110)
	r2.Finish(sp, sim.FromNS(30))
	var agg Aggregate
	r1.AddTo(&agg)
	r2.AddTo(&agg)
	if agg.Requests != 2 {
		t.Fatalf("requests = %d, want 2", agg.Requests)
	}
	if got := agg.TotalMeanNS(); got != 20 {
		t.Fatalf("merged mean = %v ns, want 20", got)
	}
	if got := agg.EnergySumPJ(); got != 110 {
		t.Fatalf("merged energy = %d pJ, want 110", got)
	}
	if got := agg.ComponentEnergySumPJ(CompService); got != 110 {
		t.Fatalf("merged service energy = %d pJ, want 110", got)
	}
	if got := agg.EnergyMeanPJ(); got != 55 {
		t.Fatalf("merged energy mean = %v pJ, want 55", got)
	}
	if got := agg.ComponentEnergyMeanPJ(CompService); got != 55 {
		t.Fatalf("merged service energy mean = %v pJ, want 55", got)
	}
}

func TestEnergyViolationCounted(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	sp.StampEnqueue(sim.FromNS(5))
	sp.StampRead(sim.FromNS(10), sim.FromNS(20), 110)
	// Simulate a buggy stamp site that bumps the running total without
	// attributing the energy to any component: the ledger must catch it.
	sp.eTotalPJ += 7
	r.Finish(sp, sim.FromNS(25))
	if r.EnergyViolations() != 1 {
		t.Fatalf("energy violations = %d, want 1", r.EnergyViolations())
	}
	if msg := r.FirstEnergyViolation(); !strings.Contains(msg, "total=117pJ") || !strings.Contains(msg, "sum=110pJ") {
		t.Fatalf("first energy violation = %q", msg)
	}
	// The latency decomposition is independent and must still hold.
	if r.Violations() != 0 {
		t.Fatalf("latency violations = %d, want 0", r.Violations())
	}
}

func TestSpanPoolResetsEnergyLedger(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	sp := r.Begin(0, sim.FromNS(0))
	sp.StampEnqueue(sim.FromNS(1))
	sp.StampPre(sim.FromNS(2), 75)
	sp.StampAct(sim.FromNS(3), 150)
	sp.StampRead(sim.FromNS(4), sim.FromNS(5), 110)
	r.Finish(sp, sim.FromNS(6))
	sp2 := r.Begin(0, sim.FromNS(10))
	if sp2 != sp {
		t.Fatal("pooled span not recycled")
	}
	finishAndCheck(t, r, sp2, sim.FromNS(12))
	// The recycled span was a pure cache hit: no stale energy may leak.
	if got := r.EnergySumPJ(); got != 335 {
		t.Fatalf("energy after recycle = %d pJ, want 335 (first span only)", got)
	}
	if r.EnergyViolations() != 0 {
		t.Fatalf("energy violation: %s", r.FirstEnergyViolation())
	}
}

func TestEnergyQuantile(t *testing.T) {
	r := NewRecorder("run", 1, 42)
	for i := 0; i < 4; i++ {
		sp := r.Begin(0, sim.FromNS(0))
		sp.StampEnqueue(sim.FromNS(1))
		sp.StampRead(sim.FromNS(2), sim.FromNS(3), 100)
		r.Finish(sp, sim.FromNS(4))
	}
	if q := r.EnergyQuantilePJ(0.5); q < 100 || q > 256 {
		t.Fatalf("p50 energy = %d pJ, want within [100,256] (log2 bucket bound)", q)
	}
	var nilRec *Recorder
	if nilRec.EnergyQuantilePJ(0.5) != 0 || nilRec.EnergySumPJ() != 0 || nilRec.EnergyViolations() != 0 {
		t.Fatal("nil recorder energy accessors must be zero")
	}
}
