// Package reqtrace is the per-request flight recorder: a sampled,
// zero-alloc-at-steady-state span that follows one demand load end to
// end — ROB issue, cache walk, MSHR merge, controller queue admission,
// bank-state waits (row conflict, refresh blocking, migration stall),
// the data burst, and the fill back up the hierarchy — and decomposes
// its total latency exactly into named components.
//
// Design constraints match the telemetry package it extends:
//
//  1. Free when off. Components hold a *Span pointer per request; the
//     nil pointer is the untraced state, so every instrumentation site
//     is one predictable branch. Spans are pooled by the Recorder and
//     recycled at Finish, so steady-state tracing allocates nothing.
//  2. Never perturbs simulation. Stamping writes host-side fields at
//     times the simulation already computed; nothing here schedules
//     events or draws randomness. Sampling uses a deterministic
//     seed-derived stride, so the traced-request set — and therefore
//     figure output — is identical with tracing on or off.
//  3. Exact attribution. The component vector of a finished span sums
//     to its end-to-end latency by construction (the decomposition
//     telescopes over the stamped transitions); Finish verifies the sum
//     and counts violations instead of silently misattributing.
//
// Alongside latency, every stamp that corresponds to a DRAM command
// carries that command's energy in integer picojoules (priced by
// internal/energy through the device). The span accumulates the energy
// twice — once into the per-component ledger and once into an
// independent running total — and Finish checks the two agree exactly,
// mirroring the latency telescoping invariant: a new stamp site that
// updates one side but not the other is caught as a counted violation
// rather than a silent attribution hole. Blocking commands (refresh,
// migration) attribute their full command energy to each sampled
// request they blocked: sampled spans are a sparse causal view of the
// machine, not a partition of its energy.
package reqtrace

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Component indexes one slice of a request's end-to-end latency.
type Component int

const (
	// CompCache is time above DRAM before any DAS translation wait:
	// cache lookup latencies, MSHR admission queueing, and — for
	// requests that hit a cache level — the entire round trip.
	CompCache Component = iota
	// CompXlat is time a DAS-design request waited on a translation
	// table-block fetch before it could be steered to the controller.
	CompXlat
	// CompQueue is controller queue residency before the request's first
	// DRAM command, minus the refresh and migration windows below.
	CompQueue
	// CompRefresh is queue wait attributable to tRFC refresh windows
	// issued on the request's rank while it waited.
	CompRefresh
	// CompMigration is queue wait attributable to migration swaps
	// occupying the request's bank while it waited (the DAS
	// migration-shadow cost).
	CompMigration
	// CompConflict is the row-conflict penalty: first PRE issued for the
	// request until its row is opened (or read, for a hit under a
	// sibling's activation).
	CompConflict
	// CompService is the tRCD+CL service slice: the request's row
	// activation (or its column command, on a row-buffer hit) to the end
	// of its data burst.
	CompService
	// CompFill is time from data availability back to completion: for
	// MSHR-coalesced requests, the wait on the leader's in-flight fill;
	// for leaders, the (synchronous) fill path itself.
	CompFill

	// NumComponents sizes component-indexed arrays.
	NumComponents
)

var componentNames = [NumComponents]string{
	"cache", "xlat", "queue", "refresh", "migration", "conflict", "service", "fill",
}

// String names the component as it appears in reports and sinks.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// unset marks a stage transition that never happened.
const unset = sim.Time(-1)

// Span is one traced request's stamp record. Components keep a *Span on
// the request they carry (nil = untraced) and stamp stage transitions
// as the simulation reaches them; every stamp method is nil-receiver
// safe so call sites stay a single branch.
type Span struct {
	core   int
	issued sim.Time

	mergedAt  sim.Time // coalesced into an in-flight MSHR fill
	xlatAt    sim.Time // began waiting on a translation-table fetch
	enqAt     sim.Time // admitted to a controller read queue
	preAt     sim.Time // first PRE issued for this request (row conflict)
	actAt     sim.Time // last ACT issued for this request
	rdAt      sim.Time // column read issued
	burstEnd  sim.Time // data burst end
	refCredit sim.Time // refresh windows overlapping the queue wait
	migCredit sim.Time // migration windows overlapping the queue wait
	bankTID   int      // serving bank's trace track (-1 until the burst)

	// Energy ledger (integer picojoules). Each stamp adds its command's
	// energy to the matching component field AND to eTotalPJ; Finish
	// verifies the component sum equals eTotalPJ exactly.
	ePrePJ   int64 // conflict precharges issued for this request
	eActPJ   int64 // activations issued for this request
	eRdPJ    int64 // the column read burst
	eRefPJ   int64 // refresh commands that blocked this request
	eMigPJ   int64 // migration swaps that blocked this request
	eTotalPJ int64 // independent running total of all of the above
}

// reset re-arms a pooled span for a new request.
func (sp *Span) reset(core int, at sim.Time) {
	*sp = Span{
		core: core, issued: at,
		mergedAt: unset, xlatAt: unset, enqAt: unset,
		preAt: unset, actAt: unset, rdAt: unset, burstEnd: unset,
		bankTID: -1,
	}
}

// StampMerge records coalescing into an in-flight fill (first one wins:
// a request merges at most once on its way down).
func (sp *Span) StampMerge(t sim.Time) {
	if sp != nil && sp.mergedAt == unset {
		sp.mergedAt = t
	}
}

// StampXlat records the start of a translation-table fetch wait.
func (sp *Span) StampXlat(t sim.Time) {
	if sp != nil && sp.xlatAt == unset {
		sp.xlatAt = t
	}
}

// StampEnqueue records admission to a controller read queue.
func (sp *Span) StampEnqueue(t sim.Time) {
	if sp != nil && sp.enqAt == unset {
		sp.enqAt = t
	}
}

// StampPre records a row-conflict precharge issued for this request,
// costing pj picojoules. The first PRE's time wins — later re-closes (a
// sibling stealing the bank) extend the conflict window rather than
// restarting it — but every PRE's energy accumulates.
func (sp *Span) StampPre(t sim.Time, pj int64) {
	if sp == nil {
		return
	}
	if sp.preAt == unset {
		sp.preAt = t
	}
	sp.ePrePJ += pj
	sp.eTotalPJ += pj
}

// StampAct records an activation issued for this request, costing pj
// picojoules. The last ACT's time wins: if the opened row is closed by
// an intervening conflict, service is measured from the activation that
// actually fed the burst. Every ACT's energy accumulates.
func (sp *Span) StampAct(t sim.Time, pj int64) {
	if sp != nil {
		sp.actAt = t
		sp.eActPJ += pj
		sp.eTotalPJ += pj
	}
}

// StampRead records the column read and its data burst end, costing pj
// picojoules.
func (sp *Span) StampRead(t, end sim.Time, pj int64) {
	if sp != nil && sp.rdAt == unset {
		sp.rdAt = t
		sp.burstEnd = end
		sp.eRdPJ += pj
		sp.eTotalPJ += pj
	}
}

// CreditRefresh attributes a refresh occupancy window to this span's
// queue wait, along with the blocking REF command's energy.
func (sp *Span) CreditRefresh(d sim.Time, pj int64) {
	if sp != nil {
		sp.refCredit += d
		sp.eRefPJ += pj
		sp.eTotalPJ += pj
	}
}

// CreditMigration attributes a migration occupancy window to this
// span's queue wait, along with the blocking swap's energy.
func (sp *Span) CreditMigration(d sim.Time, pj int64) {
	if sp != nil {
		sp.migCredit += d
		sp.eMigPJ += pj
		sp.eTotalPJ += pj
	}
}

// Waiting reports whether the span is queued at the controller with no
// DRAM command issued for it yet — the state in which refresh and
// migration windows on its rank/bank are what it is waiting for.
func (sp *Span) Waiting() bool {
	return sp != nil && sp.enqAt != unset &&
		sp.preAt == unset && sp.actAt == unset && sp.rdAt == unset
}

// SetBankTID records the serving bank's trace track id for Perfetto
// flow linking.
func (sp *Span) SetBankTID(tid int) {
	if sp != nil && sp.bankTID < 0 {
		sp.bankTID = tid
	}
}

// breakdown decomposes the span's end-to-end latency. The decomposition
// telescopes over the stamped transitions, so the components sum to
// done-issued exactly:
//
//	hit/merged:  cache = merged-issued, fill = done-merged
//	serviced:    cache|xlat up to enqueue, queue/refresh/migration up to
//	             the first command, conflict to the activation, service
//	             to the burst end, fill to done
//
// Refresh and migration credits are occupancy windows issued while the
// request waited; they are disjoint and end before the first command by
// the device's own timing rules, so they partition the queue wait. The
// clamp is defensive: if an attribution bug ever over-credits, the
// credits are reduced deterministically rather than driving the queue
// component negative.
func (sp *Span) breakdown(done sim.Time) (comps [NumComponents]sim.Time, total sim.Time) {
	total = done - sp.issued
	switch {
	case sp.mergedAt != unset:
		comps[CompCache] = sp.mergedAt - sp.issued
		comps[CompFill] = done - sp.mergedAt
	case sp.enqAt == unset:
		comps[CompCache] = total
	default:
		if sp.xlatAt != unset {
			comps[CompCache] = sp.xlatAt - sp.issued
			comps[CompXlat] = sp.enqAt - sp.xlatAt
		} else {
			comps[CompCache] = sp.enqAt - sp.issued
		}
		first, open := sp.rdAt, sp.rdAt
		if sp.actAt != unset {
			first, open = sp.actAt, sp.actAt
		}
		if sp.preAt != unset {
			first = sp.preAt
			comps[CompConflict] = open - sp.preAt
		}
		wait := first - sp.enqAt
		ref, mig := sp.refCredit, sp.migCredit
		if ref > wait {
			ref = wait
		}
		if mig > wait-ref {
			mig = wait - ref
		}
		comps[CompRefresh] = ref
		comps[CompMigration] = mig
		comps[CompQueue] = wait - ref - mig
		comps[CompService] = sp.burstEnd - open
		comps[CompFill] = done - sp.burstEnd
	}
	return comps, total
}

// energyBreakdown decomposes the span's DRAM energy over the same
// component axis as the latency decomposition. Only components that
// correspond to DRAM commands carry energy (cache/xlat/queue/fill are
// SRAM/bookkeeping time the model does not price, so they are zero):
// conflict is the closing precharges, service is the activation plus
// the burst, refresh/migration are the blocking commands credited to
// the wait.
func (sp *Span) energyBreakdown() (comps [NumComponents]int64, total int64) {
	comps[CompConflict] = sp.ePrePJ
	comps[CompService] = sp.eActPJ + sp.eRdPJ
	comps[CompRefresh] = sp.eRefPJ
	comps[CompMigration] = sp.eMigPJ
	return comps, sp.eTotalPJ
}

// Recorder owns one run's spans: the pool, the sampling parameters, and
// the per-component aggregation the waterfall reports render. Like a
// Registry it belongs to one single-threaded simulated system and needs
// no locking.
type Recorder struct {
	label   string
	sampleN uint64
	seed    uint64

	trace     *telemetry.TraceRecorder
	trackBase int
	flowSeq   int64

	pool []*Span

	count      uint64
	totalSumPS int64
	compSumPS  [NumComponents]int64
	totalHist  telemetry.Histogram
	compHist   [NumComponents]telemetry.Histogram
	violations uint64
	firstBad   string

	// Energy aggregation (integer picojoules) over the same component
	// axis, with its own violation counter for the ledger-vs-total check.
	energySumPJ      int64
	energyCompSumPJ  [NumComponents]int64
	energyHist       telemetry.Histogram
	energyViolations uint64
	firstBadEnergy   string
}

// NewRecorder builds a recorder tracing one in sampleN demand loads per
// core (clamped up to 1). seed derives each core's deterministic stride
// offset, so different seeds sample different request populations while
// any single configuration samples identically on every host.
func NewRecorder(label string, sampleN int, seed uint64) *Recorder {
	if sampleN < 1 {
		sampleN = 1
	}
	return &Recorder{label: label, sampleN: uint64(sampleN), seed: seed}
}

// Label returns the run label.
func (r *Recorder) Label() string { return r.label }

// SampleN returns the sampling stride (trace one load in N).
func (r *Recorder) SampleN() uint64 { return r.sampleN }

// OffsetFor returns core's stride offset in [0, SampleN), derived from
// the seed by a splitmix64 finalizer so cores do not sample in lockstep.
func (r *Recorder) OffsetFor(core int) uint64 {
	return mix64(r.seed, uint64(core)) % r.sampleN
}

// mix64 is the splitmix64 finalizer over seed and a stream index.
func mix64(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AttachTrace links finished spans into a Chrome trace: each request
// renders as a REQ slice on its core's track (trackBase+core) with a
// flow arrow to the RD burst on the serving bank's track.
func (r *Recorder) AttachTrace(tr *telemetry.TraceRecorder, trackBase int) {
	r.trace = tr
	r.trackBase = trackBase
}

// Begin starts a span for a sampled load issued by core at time at,
// recycling a pooled record when one is free.
func (r *Recorder) Begin(core int, at sim.Time) *Span {
	var sp *Span
	if n := len(r.pool); n > 0 {
		sp = r.pool[n-1]
		r.pool = r.pool[:n-1]
	} else {
		sp = new(Span)
	}
	sp.reset(core, at)
	return sp
}

// Finish completes a span at time done: the latency is decomposed,
// verified against the sum invariant, aggregated, emitted to the trace,
// and the record returned to the pool. The caller must drop its span
// pointer afterwards.
func (r *Recorder) Finish(sp *Span, done sim.Time) {
	comps, total := sp.breakdown(done)
	var sum sim.Time
	bad := false
	for _, c := range comps {
		sum += c
		if c < 0 {
			bad = true
		}
	}
	if sum != total {
		bad = true
	}
	if bad {
		r.violations++
		if r.firstBad == "" {
			r.firstBad = fmt.Sprintf(
				"core %d issued=%dps done=%dps total=%dps sum=%dps components=%v",
				sp.core, int64(sp.issued), int64(done), int64(total), int64(sum), comps)
		}
	}
	ecomps, etotal := sp.energyBreakdown()
	var esum int64
	ebad := false
	for _, e := range ecomps {
		esum += e
		if e < 0 {
			ebad = true
		}
	}
	if esum != etotal || etotal < 0 {
		ebad = true
	}
	if ebad {
		r.energyViolations++
		if r.firstBadEnergy == "" {
			r.firstBadEnergy = fmt.Sprintf(
				"core %d total=%dpJ sum=%dpJ components=%v",
				sp.core, etotal, esum, ecomps)
		}
	}
	r.count++
	r.totalSumPS += int64(total)
	r.totalHist.Observe(nonNegNS(total))
	for i := range comps {
		r.compSumPS[i] += int64(comps[i])
		r.compHist[i].Observe(nonNegNS(comps[i]))
	}
	r.energySumPJ += etotal
	if etotal >= 0 {
		r.energyHist.Observe(uint64(etotal))
	}
	for i, e := range ecomps {
		r.energyCompSumPJ[i] += e
	}
	if r.trace != nil {
		tid := r.trackBase + sp.core
		r.trace.Duration("REQ", int64(sp.issued), int64(done-sp.issued), tid, -1)
		if sp.rdAt != unset && sp.bankTID >= 0 {
			r.flowSeq++
			r.trace.FlowStart("req", int64(sp.rdAt), tid, r.flowSeq)
			r.trace.FlowEnd("req", int64(sp.rdAt), sp.bankTID, r.flowSeq)
		}
	}
	r.pool = append(r.pool, sp)
}

// nonNegNS converts a component to whole nanoseconds, clamping the
// (violation-counted) negative case so histogram buckets stay sane.
func nonNegNS(t sim.Time) uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t / sim.Nanosecond)
}

// Requests reports finished spans.
func (r *Recorder) Requests() uint64 {
	if r == nil {
		return 0
	}
	return r.count
}

// Violations reports spans whose components failed the sum invariant.
func (r *Recorder) Violations() uint64 {
	if r == nil {
		return 0
	}
	return r.violations
}

// FirstViolation describes the first invariant failure ("" when none).
func (r *Recorder) FirstViolation() string {
	if r == nil {
		return ""
	}
	return r.firstBad
}

// EnergyViolations reports spans whose energy ledger disagreed with the
// independently accumulated energy total.
func (r *Recorder) EnergyViolations() uint64 {
	if r == nil {
		return 0
	}
	return r.energyViolations
}

// FirstEnergyViolation describes the first energy-invariant failure
// ("" when none).
func (r *Recorder) FirstEnergyViolation() string {
	if r == nil {
		return ""
	}
	return r.firstBadEnergy
}

// EnergySumPJ returns the total attributed energy across finished spans
// in exact integer picojoules.
func (r *Recorder) EnergySumPJ() int64 {
	if r == nil {
		return 0
	}
	return r.energySumPJ
}

// EnergyMeanPJ returns the mean attributed energy per request (pJ).
func (r *Recorder) EnergyMeanPJ() float64 {
	if r == nil || r.count == 0 {
		return 0
	}
	return float64(r.energySumPJ) / float64(r.count)
}

// ComponentEnergySumPJ returns component c's attributed energy across
// finished spans in exact integer picojoules.
func (r *Recorder) ComponentEnergySumPJ(c Component) int64 {
	if r == nil {
		return 0
	}
	return r.energyCompSumPJ[c]
}

// ComponentEnergyMeanPJ returns component c's mean attributed energy
// per request (pJ).
func (r *Recorder) ComponentEnergyMeanPJ(c Component) float64 {
	if r == nil || r.count == 0 {
		return 0
	}
	return float64(r.energyCompSumPJ[c]) / float64(r.count)
}

// EnergyQuantilePJ returns the q-quantile of per-request attributed
// energy in picojoules (log2-bucket upper bound).
func (r *Recorder) EnergyQuantilePJ(q float64) uint64 {
	if r == nil {
		return 0
	}
	return r.energyHist.Quantile(q)
}

// TotalMeanNS returns the mean end-to-end latency in nanoseconds.
func (r *Recorder) TotalMeanNS() float64 {
	if r == nil || r.count == 0 {
		return 0
	}
	return float64(r.totalSumPS) / float64(r.count) / psPerNS
}

// ComponentMeanNS returns component c's mean contribution per request
// in nanoseconds.
func (r *Recorder) ComponentMeanNS(c Component) float64 {
	if r == nil || r.count == 0 {
		return 0
	}
	return float64(r.compSumPS[c]) / float64(r.count) / psPerNS
}

// ComponentSumNS returns component c's total across requests (ns).
func (r *Recorder) ComponentSumNS(c Component) float64 {
	if r == nil {
		return 0
	}
	return float64(r.compSumPS[c]) / psPerNS
}

// TotalQuantileNS returns the q-quantile of end-to-end latency in
// nanoseconds (log2-bucket upper bound; see telemetry.Histogram).
func (r *Recorder) TotalQuantileNS(q float64) uint64 {
	if r == nil {
		return 0
	}
	return r.totalHist.Quantile(q)
}

// ComponentQuantileNS returns the q-quantile of component c (ns).
func (r *Recorder) ComponentQuantileNS(c Component, q float64) uint64 {
	if r == nil {
		return 0
	}
	return r.compHist[c].Quantile(q)
}

const psPerNS = 1000
