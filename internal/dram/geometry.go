// Package dram models a DDR3-class DRAM subsystem at command/cycle level:
// channels, ranks, banks, per-bank row state machines, inter-command
// timing constraints, refresh, and the asymmetric fast/slow subarray
// timing the paper proposes. Migration operations (DAS-DRAM) occupy a
// bank for their configured latency.
package dram

import (
	"fmt"
	"math/bits"
)

// Geometry describes the physical organization of the memory system.
type Geometry struct {
	Channels  int // independent channels
	Ranks     int // ranks per channel
	Banks     int // banks per rank
	Rows      int // rows per bank
	Columns   int // cache blocks per row
	BlockSize int // bytes per cache block (memory bus burst)
}

// Default8GB returns the Table 1 organization: two 4 GB DIMMs on two
// channels, 2 ranks per channel, 8 banks per rank, 8 KB rows.
func Default8GB() Geometry {
	return Geometry{
		Channels:  2,
		Ranks:     2,
		Banks:     8,
		Rows:      32768,
		Columns:   128,
		BlockSize: 64,
	}
}

// Validate checks that all dimensions are positive powers of two (the
// address codec requires it).
func (g Geometry) Validate() error {
	type dim struct {
		name string
		v    int
	}
	for _, d := range []dim{
		{"channels", g.Channels}, {"ranks", g.Ranks}, {"banks", g.Banks},
		{"rows", g.Rows}, {"columns", g.Columns}, {"block size", g.BlockSize},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("dram: %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	return nil
}

// Capacity returns total bytes across all channels.
func (g Geometry) Capacity() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.Columns) * uint64(g.BlockSize)
}

// RowBytes returns the size of one row in bytes.
func (g Geometry) RowBytes() uint64 { return uint64(g.Columns) * uint64(g.BlockSize) }

// TotalRows returns the number of rows across the whole system.
func (g Geometry) TotalRows() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) * uint64(g.Rows)
}

// TotalBanks returns the number of banks across the whole system.
func (g Geometry) TotalBanks() int { return g.Channels * g.Ranks * g.Banks }

// Coord identifies one cache block within the memory system.
type Coord struct {
	Channel, Rank, Bank, Row, Column int
}

// log2 of a power of two. Decode sits on the per-access hot path (five
// calls per address), so this must compile to a single bit-scan rather
// than a shift loop.
func log2(v int) uint {
	if v <= 1 {
		return 0
	}
	return uint(bits.Len(uint(v)) - 1)
}

// Decode maps a physical byte address to its coordinate. The bit layout,
// from least significant, is offset : column : channel : bank : rank :
// row — channel bits below bank/rank so consecutive rows of blocks
// stripe across channels, while row bits on top preserves row-buffer
// locality for sequential streams (the usual open-page mapping).
func (g Geometry) Decode(addr uint64) Coord {
	a := addr >> log2(g.BlockSize)
	c := Coord{}
	c.Column = int(a & uint64(g.Columns-1))
	a >>= log2(g.Columns)
	c.Channel = int(a & uint64(g.Channels-1))
	a >>= log2(g.Channels)
	c.Bank = int(a & uint64(g.Banks-1))
	a >>= log2(g.Banks)
	c.Rank = int(a & uint64(g.Ranks-1))
	a >>= log2(g.Ranks)
	c.Row = int(a & uint64(g.Rows-1))
	return c
}

// Encode is the inverse of Decode (with zero block offset).
func (g Geometry) Encode(c Coord) uint64 {
	a := uint64(c.Row)
	a = a<<log2(g.Ranks) | uint64(c.Rank)
	a = a<<log2(g.Banks) | uint64(c.Bank)
	a = a<<log2(g.Channels) | uint64(c.Channel)
	a = a<<log2(g.Columns) | uint64(c.Column)
	return a << log2(g.BlockSize)
}

// BankID flattens (channel, rank, bank) into a dense index.
func (g Geometry) BankID(c Coord) int {
	return (c.Channel*g.Ranks+c.Rank)*g.Banks + c.Bank
}

// RowID flattens (channel, rank, bank, row) into a dense global row index.
func (g Geometry) RowID(c Coord) uint64 {
	return uint64(g.BankID(c))*uint64(g.Rows) + uint64(c.Row)
}

// RowCoord reconstructs the coordinate of a global row index (column 0).
func (g Geometry) RowCoord(rowID uint64) Coord {
	row := int(rowID % uint64(g.Rows))
	b := int(rowID / uint64(g.Rows))
	bank := b % g.Banks
	b /= g.Banks
	rank := b % g.Ranks
	ch := b / g.Ranks
	return Coord{Channel: ch, Rank: rank, Bank: bank, Row: row}
}
