package dram

import (
	"repro/internal/sim"
	"repro/internal/timing"
)

// bankState is the row-buffer state of one bank.
type bankState uint8

const (
	bankIdle   bankState = iota // all rows precharged
	bankActive                  // a row is open in the row buffer
)

// Bank models one DRAM bank's row buffer and timing constraints. All
// "next*" fields are earliest-allowed absolute issue times.
type Bank struct {
	state   bankState
	openRow int
	openCls RowClass
	rowPar  *timing.Params // param set of the open (or last opened) row

	nextActivate  sim.Time // same-bank ACT->ACT (tRC) and PRE->ACT (tRP)
	nextRead      sim.Time // tRCD after ACT, tCCD after column commands
	nextWrite     sim.Time
	nextPrecharge sim.Time // tRAS after ACT, tRTP/tWR after columns
	busyUntil     sim.Time // migration/refresh occupancy window
	migOpen       bool     // active-start migration: open row serves hits

	// Statistics. The *Fast counters split each command count by the
	// class of the row involved (the energy model prices the two classes
	// differently); slow counts are the difference.
	Activates      uint64
	ActivatesFast  uint64
	Reads          uint64
	ReadsFast      uint64
	Writes         uint64
	WritesFast     uint64
	Precharges     uint64
	PrechargesFast uint64
	Migrations     uint64
}

// State helpers.

// HasOpenRow reports whether a row is open.
func (b *Bank) HasOpenRow() bool { return b.state == bankActive }

// OpenRow returns the open row index; only meaningful when HasOpenRow.
func (b *Bank) OpenRow() int { return b.openRow }

// OpenClass returns the class of the open row.
func (b *Bank) OpenClass() RowClass { return b.openCls }

// Busy reports whether the bank is occupied by a migration at time t.
func (b *Bank) Busy(t sim.Time) bool { return t < b.busyUntil }

// lazyExpire closes the row of an active-start migration once the swap
// has completed (the restore leaves the bank precharged). Banks are
// passive, so the transition happens lazily on the next query.
func (b *Bank) lazyExpire(t sim.Time) {
	if b.migOpen && t >= b.busyUntil {
		b.migOpen = false
		b.state = bankIdle
	}
}

// canActivate checks bank-local constraints for an ACT at time t.
func (b *Bank) canActivate(t sim.Time) bool {
	b.lazyExpire(t)
	return b.state == bankIdle && t >= b.nextActivate && t >= b.busyUntil
}

// activate applies an ACT of row/cls with parameter set p at time t.
func (b *Bank) activate(t sim.Time, row int, cls RowClass, p *timing.Params) {
	b.state = bankActive
	b.openRow = row
	b.openCls = cls
	b.rowPar = p
	b.nextRead = t + p.Duration(p.TRCD)
	b.nextWrite = t + p.Duration(p.TRCD)
	b.nextPrecharge = t + p.Duration(p.TRAS)
	b.nextActivate = t + p.Duration(p.TRC)
	b.Activates++
	if cls == RowFast {
		b.ActivatesFast++
	}
}

// canRead checks bank-local constraints for a RD at time t. Reads need
// no busy-window check: a migrating bank is only readable while its
// source row sits in the row buffer (migOpen), which is exactly the case
// the paper's migration circuit keeps servable.
func (b *Bank) canRead(t sim.Time) bool {
	b.lazyExpire(t)
	return b.state == bankActive && t >= b.nextRead
}

// read applies a RD at time t and returns the time the data burst ends.
func (b *Bank) read(t sim.Time) sim.Time {
	p := b.rowPar
	if pre := t + p.Duration(p.TRTP); pre > b.nextPrecharge {
		b.nextPrecharge = pre
	}
	if col := t + p.Duration(p.TCCD); col > b.nextRead {
		b.nextRead = col
	}
	if col := t + p.Duration(p.TCCD); col > b.nextWrite {
		b.nextWrite = col
	}
	b.Reads++
	if b.openCls == RowFast {
		b.ReadsFast++
	}
	return t + p.Duration(p.ReadLatency())
}

// canWrite checks bank-local constraints for a WR at time t. Writes to a
// migrating row buffer are NOT allowed: the restore is in flight and a
// column write would be lost.
func (b *Bank) canWrite(t sim.Time) bool {
	b.lazyExpire(t)
	return b.state == bankActive && t >= b.nextWrite && !b.migOpen
}

// write applies a WR at time t and returns the time the data burst ends.
func (b *Bank) write(t sim.Time) sim.Time {
	p := b.rowPar
	burstEnd := t + p.Duration(p.WriteLatency())
	if pre := burstEnd + p.Duration(p.TWR); pre > b.nextPrecharge {
		b.nextPrecharge = pre
	}
	if col := t + p.Duration(p.TCCD); col > b.nextRead {
		b.nextRead = col
	}
	if col := t + p.Duration(p.TCCD); col > b.nextWrite {
		b.nextWrite = col
	}
	b.Writes++
	if b.openCls == RowFast {
		b.WritesFast++
	}
	return burstEnd
}

// canPrecharge checks bank-local constraints for a PRE at time t.
func (b *Bank) canPrecharge(t sim.Time) bool {
	b.lazyExpire(t)
	return b.state == bankActive && t >= b.nextPrecharge && t >= b.busyUntil
}

// precharge applies a PRE at time t.
func (b *Bank) precharge(t sim.Time) {
	p := b.rowPar
	b.state = bankIdle
	if act := t + p.Duration(p.TRP); act > b.nextActivate {
		b.nextActivate = act
	}
	b.Precharges++
	if b.openCls == RowFast {
		b.PrechargesFast++
	}
}

// canMigrate checks whether a swap of srcRow can start at time t: either
// the bank is precharged (the migration performs its own activations) or
// srcRow itself is open with its restore complete (the swap continues
// straight out of the row buffer).
func (b *Bank) canMigrate(t sim.Time, srcRow int) bool {
	b.lazyExpire(t)
	if t < b.busyUntil {
		return false
	}
	if b.state == bankIdle {
		return t >= b.nextActivate
	}
	return b.openRow == srcRow && t >= b.nextPrecharge
}

// migrate occupies the bank for d starting at t. If the source row is
// open (active start), it keeps serving reads until the swap completes;
// either way the bank ends precharged at t+d.
func (b *Bank) migrate(t sim.Time, d sim.Time) {
	b.busyUntil = t + d
	if b.busyUntil > b.nextActivate {
		b.nextActivate = b.busyUntil
	}
	if b.state == bankActive {
		b.migOpen = true
	}
	b.Migrations++
}

// blockUntil forbids any command before t (used by refresh).
func (b *Bank) blockUntil(t sim.Time) {
	if t > b.nextActivate {
		b.nextActivate = t
	}
	if t > b.busyUntil {
		b.busyUntil = t
	}
}
