package dram

// CommandKind enumerates DRAM commands the controller can issue.
type CommandKind uint8

const (
	// CmdActivate opens a row into the bank's row buffer.
	CmdActivate CommandKind = iota
	// CmdRead bursts one cache block from the open row.
	CmdRead
	// CmdWrite bursts one cache block into the open row.
	CmdWrite
	// CmdPrecharge closes the open row.
	CmdPrecharge
	// CmdRefresh refreshes one rank (all banks must be precharged).
	CmdRefresh
	// CmdMigrate performs a DAS-DRAM in-bank row migration/swap step,
	// occupying the bank for the configured migration latency.
	CmdMigrate
)

// String returns the conventional mnemonic.
func (k CommandKind) String() string {
	switch k {
	case CmdActivate:
		return "ACT"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdPrecharge:
		return "PRE"
	case CmdRefresh:
		return "REF"
	case CmdMigrate:
		return "MIG"
	default:
		return "UNKNOWN"
	}
}

// RowClass distinguishes the two subarray speed grades of an asymmetric
// device. Homogeneous devices use a single class everywhere.
type RowClass uint8

const (
	// RowSlow is a commodity long-bitline row.
	RowSlow RowClass = iota
	// RowFast is a short-bitline fast-subarray row.
	RowFast
)

// String labels the class.
func (c RowClass) String() string {
	if c == RowFast {
		return "fast"
	}
	return "slow"
}
