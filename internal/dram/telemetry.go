package dram

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// deviceTelemetry is the device's live instrument set: per-command
// counts and per-command-class timing occupancy (how much bank time, in
// picoseconds, each command class consumed). All fields are
// nil-receiver-safe instruments, but the device keeps the whole struct
// behind a nil pointer so the uninstrumented hot path pays exactly one
// branch per command.
type deviceTelemetry struct {
	act, actFast, rd, wr, pre, ref, mig          *telemetry.Counter
	occACT, occRD, occWR, occPRE, occREF, occMIG *telemetry.Counter
}

// AttachTelemetry registers the device's command counters and occupancy
// sums on reg. Call once at assembly time, before traffic; a nil
// registry leaves the device uninstrumented (the default).
func (d *Device) AttachTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	d.tel = &deviceTelemetry{
		act:     reg.Counter("dram.cmd.act"),
		actFast: reg.Counter("dram.cmd.act_fast"),
		rd:      reg.Counter("dram.cmd.rd"),
		wr:      reg.Counter("dram.cmd.wr"),
		pre:     reg.Counter("dram.cmd.pre"),
		ref:     reg.Counter("dram.cmd.ref"),
		mig:     reg.Counter("dram.cmd.mig"),
		occACT:  reg.Counter("dram.occupancy_ps.act"),
		occRD:   reg.Counter("dram.occupancy_ps.rd"),
		occWR:   reg.Counter("dram.occupancy_ps.wr"),
		occPRE:  reg.Counter("dram.occupancy_ps.pre"),
		occREF:  reg.Counter("dram.occupancy_ps.ref"),
		occMIG:  reg.Counter("dram.occupancy_ps.mig"),
	}
}

// noteActivate records an ACT of class cls whose row-open takes tRCD.
func (t *deviceTelemetry) noteActivate(cls RowClass, trcd sim.Time) {
	t.act.Inc()
	if cls == RowFast {
		t.actFast.Inc()
	}
	t.occACT.Add(uint64(trcd))
}
