package dram

import (
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// deviceTelemetry is the device's live instrument set: per-command
// counts, per-command-class timing occupancy (how much bank time, in
// picoseconds, each command class consumed), and per-command energy in
// integer picojoules (priced by the device's energy model, split by
// subarray class where the command touches one). All fields are
// nil-receiver-safe instruments, but the device keeps the whole struct
// behind a nil pointer so the uninstrumented hot path pays exactly one
// branch per command.
type deviceTelemetry struct {
	act, actFast, rd, wr, pre, ref, mig          *telemetry.Counter
	occACT, occRD, occWR, occPRE, occREF, occMIG *telemetry.Counter

	// Energy counters, indexed by RowClass where per-class. em is the
	// device's pricing table (never nil while tel is attached).
	em                   *energy.Model
	eAct, ePre, eRd, eWr [2]*telemetry.Counter
	eRef, eMig           *telemetry.Counter
}

// AttachTelemetry registers the device's command counters, occupancy
// sums and energy counters on reg. Call once at assembly time, before
// traffic; a nil registry leaves the device uninstrumented (the
// default).
func (d *Device) AttachTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	d.tel = &deviceTelemetry{
		act:     reg.Counter("dram.cmd.act"),
		actFast: reg.Counter("dram.cmd.act_fast"),
		rd:      reg.Counter("dram.cmd.rd"),
		wr:      reg.Counter("dram.cmd.wr"),
		pre:     reg.Counter("dram.cmd.pre"),
		ref:     reg.Counter("dram.cmd.ref"),
		mig:     reg.Counter("dram.cmd.mig"),
		occACT:  reg.Counter("dram.occupancy_ps.act"),
		occRD:   reg.Counter("dram.occupancy_ps.rd"),
		occWR:   reg.Counter("dram.occupancy_ps.wr"),
		occPRE:  reg.Counter("dram.occupancy_ps.pre"),
		occREF:  reg.Counter("dram.occupancy_ps.ref"),
		occMIG:  reg.Counter("dram.occupancy_ps.mig"),
		em:      d.emodel,
		eAct: [2]*telemetry.Counter{
			RowSlow: reg.Counter("dram.energy_pj.act_slow"),
			RowFast: reg.Counter("dram.energy_pj.act_fast"),
		},
		ePre: [2]*telemetry.Counter{
			RowSlow: reg.Counter("dram.energy_pj.pre_slow"),
			RowFast: reg.Counter("dram.energy_pj.pre_fast"),
		},
		eRd: [2]*telemetry.Counter{
			RowSlow: reg.Counter("dram.energy_pj.rd_slow"),
			RowFast: reg.Counter("dram.energy_pj.rd_fast"),
		},
		eWr: [2]*telemetry.Counter{
			RowSlow: reg.Counter("dram.energy_pj.wr_slow"),
			RowFast: reg.Counter("dram.energy_pj.wr_fast"),
		},
		eRef: reg.Counter("dram.energy_pj.ref"),
		eMig: reg.Counter("dram.energy_pj.mig"),
	}
}

// noteActivate records an ACT of class cls whose row-open takes tRCD.
func (t *deviceTelemetry) noteActivate(cls RowClass, trcd sim.Time) {
	t.act.Inc()
	if cls == RowFast {
		t.actFast.Inc()
	}
	t.occACT.Add(uint64(trcd))
	t.eAct[cls].Add(uint64(t.em.ActPJ[cls]))
}

// noteRead records a RD burst of dur on a row of class cls.
func (t *deviceTelemetry) noteRead(cls RowClass, dur sim.Time) {
	t.rd.Inc()
	t.occRD.Add(uint64(dur))
	t.eRd[cls].Add(uint64(t.em.RdPJ[cls]))
}

// noteWrite records a WR burst of dur on a row of class cls.
func (t *deviceTelemetry) noteWrite(cls RowClass, dur sim.Time) {
	t.wr.Inc()
	t.occWR.Add(uint64(dur))
	t.eWr[cls].Add(uint64(t.em.WrPJ[cls]))
}

// notePrecharge records a PRE of a row of class cls taking tRP.
func (t *deviceTelemetry) notePrecharge(cls RowClass, trp sim.Time) {
	t.pre.Inc()
	t.occPRE.Add(uint64(trp))
	t.ePre[cls].Add(uint64(t.em.PrePJ[cls]))
}

// noteRefresh records a REF occupying the rank for tRFC.
func (t *deviceTelemetry) noteRefresh(trfc sim.Time) {
	t.ref.Inc()
	t.occREF.Add(uint64(trfc))
	t.eRef.Add(uint64(t.em.RefPJ))
}

// noteMigrate records a migration swap occupying its bank for dur.
func (t *deviceTelemetry) noteMigrate(dur sim.Time) {
	t.mig.Inc()
	t.occMIG.Add(uint64(dur))
	t.eMig.Add(uint64(t.em.MigPJ))
}
