package dram

import (
	"testing"

	"repro/internal/sim"
)

// The Earliest* accessors promise, for state frozen at query time t:
// Can*(Earliest*(t)) holds, and Can*(Earliest*(t)-1) does not (Earliest
// is the exact threshold, not merely a lower bound). TestEarliestWalk
// drives a channel through randomized command sequences and asserts
// both directions of that contract at every step for every accessor,
// including across refresh windows and both migration forms
// (idle-start, and active-start with its lazily-expiring open row).

// checkEdge asserts the threshold property for one accessor/predicate
// pair: can(e) must hold and can(e-1) must not.
func checkEdge(t *testing.T, name string, step int, e sim.Time, can func(sim.Time) bool) {
	t.Helper()
	if e == Never {
		return
	}
	if !can(e) {
		t.Fatalf("step %d: %s: Can at Earliest=%d is false", step, name, e)
	}
	if e > 0 && can(e-1) {
		t.Fatalf("step %d: %s: Can at Earliest-1=%d is true", step, name, e-1)
	}
}

func TestEarliestWalk(t *testing.T) {
	for _, migLat := range []sim.Time{0, ns(146.25)} {
		for seed := uint64(1); seed <= 4; seed++ {
			earliestWalk(t, seed, migLat)
		}
	}
}

func earliestWalk(t *testing.T, seed uint64, migLat sim.Time) {
	d := testDevice(t, migLat)
	ch := d.Channel(0)
	rng := sim.NewRNG(seed)
	now := sim.Time(0)
	const banks = 4

	// candidate is one issuable command at its earliest legal instant.
	type candidate struct {
		at    sim.Time
		can   func(at sim.Time) bool
		issue func(at sim.Time)
	}

	for step := 0; step < 400; step++ {
		var cands []candidate
		for bk := 0; bk < banks; bk++ {
			bk := bk
			b := ch.Rank(0).Bank(bk)
			cls := RowClass(rng.Intn(2))
			row := rng.Intn(64)
			// srcRow must name the open row for an active-start migration
			// to ever become legal; from idle any row migrates.
			srcRow := row
			if b.HasOpenRow() {
				srcRow = b.OpenRow()
			}

			eA := ch.EarliestActivate(now, 0, bk, cls)
			eR := ch.EarliestRead(now, 0, bk)
			eW := ch.EarliestWrite(now, 0, bk)
			eP := ch.EarliestPrecharge(now, 0, bk)
			eM := ch.EarliestMigrate(now, 0, bk, srcRow)

			// Probe order matters: the Can* predicates resolve lazy
			// migration expiry as a side effect, and ACT/PRE/MIG horizons
			// sit at or beyond busyUntil — probing them on a migOpen bank
			// closes the row that the RD horizon (which ends at busyUntil)
			// was computed against. Column probes first, row probes after.
			checkEdge(t, "RD", step, eR, func(at sim.Time) bool { return ch.CanRead(at, 0, bk) })
			checkEdge(t, "WR", step, eW, func(at sim.Time) bool { return ch.CanWrite(at, 0, bk) })
			checkEdge(t, "ACT", step, eA, func(at sim.Time) bool { return ch.CanActivate(at, 0, bk, cls) })
			checkEdge(t, "PRE", step, eP, func(at sim.Time) bool { return ch.CanPrecharge(at, 0, bk) })
			checkEdge(t, "MIG", step, eM, func(at sim.Time) bool { return ch.CanMigrate(at, 0, bk, srcRow) })

			if eA != Never {
				cands = append(cands, candidate{eA,
					func(at sim.Time) bool { return ch.CanActivate(at, 0, bk, cls) },
					func(at sim.Time) { ch.Activate(at, 0, bk, row, cls) }})
			}
			if eR != Never {
				cands = append(cands, candidate{eR,
					func(at sim.Time) bool { return ch.CanRead(at, 0, bk) },
					func(at sim.Time) { ch.Read(at, 0, bk) }})
			}
			if eW != Never {
				cands = append(cands, candidate{eW,
					func(at sim.Time) bool { return ch.CanWrite(at, 0, bk) },
					func(at sim.Time) { ch.Write(at, 0, bk) }})
			}
			if eP != Never {
				cands = append(cands, candidate{eP,
					func(at sim.Time) bool { return ch.CanPrecharge(at, 0, bk) },
					func(at sim.Time) { ch.Precharge(at, 0, bk) }})
			}
			if eM != Never && migLat > 0 && rng.Intn(4) == 0 {
				cands = append(cands, candidate{eM,
					func(at sim.Time) bool { return ch.CanMigrate(at, 0, bk, srcRow) },
					func(at sim.Time) { ch.Migrate(at, 0, bk) }})
			}
		}
		eF := ch.EarliestRefresh(now, 0)
		checkEdge(t, "REF", step, eF, func(at sim.Time) bool { return ch.CanRefresh(at, 0) })
		if eF != Never && rng.Intn(8) == 0 {
			cands = append(cands, candidate{eF,
				func(at sim.Time) bool { return ch.CanRefresh(at, 0) },
				func(at sim.Time) { ch.Refresh(at, 0) }})
		}

		if len(cands) == 0 {
			// Every horizon is Never from the frozen state (e.g. mid-swap
			// everywhere): advance past the busy windows and continue.
			now += ns(200)
			continue
		}
		c := cands[rng.Intn(len(cands))]
		at := c.at
		if at < now {
			at = now
		}
		// Occasionally issue a little after the threshold instead of
		// exactly on it, like a controller that had other work first —
		// but only if the command is still legal there (a migration-held
		// row expires out from under late reads).
		if j := at + sim.Time(rng.Intn(5000)); rng.Intn(3) == 0 && c.can(j) {
			at = j
		}
		if !c.can(at) {
			// The earliest instant predates now and the state has since
			// moved on (e.g. the open row lazily expired); skip the step.
			now += ns(5)
			continue
		}
		c.issue(at)
		now = at
	}
}
