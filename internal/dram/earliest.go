package dram

import (
	"repro/internal/sim"
)

// Never is the horizon value meaning "not until some other command
// changes the bank state first" (e.g. a RD on a precharged bank needs an
// ACT before any column timing matters). It is far beyond any simulated
// time, so callers can min-fold horizons without special cases.
const Never sim.Time = 1 << 62

// The earliest* methods mirror the can* predicates exactly: for a bank
// state S frozen at query time, earliestX is the smallest t' with
// canX(t') true, or Never if no such t' exists without an intervening
// state-changing command. They exist for the controller's next-event
// scheduler: when nothing can issue now, the controller sleeps until the
// min over these horizons instead of polling every cycle.
//
// Unlike the can* predicates, the earliest* methods are PURE: they
// account for the lazy migration-expiry transition (effState) but never
// resolve it. This is load-bearing for byte-identity with the polling
// scheduler: whether a bank's expired migration row has been observed
// closed is visible controller state (a request on a stale-open bank
// takes the conflict path instead of activating), and it advances only
// when a can* probe touches the bank. The horizon fold queries banks the
// dispatch scan does not probe on the same tick (windowed writes while
// reads are pending, windows narrowed by starvation, migration-blocked
// banks), so a mutating horizon would resolve expiries earlier than the
// per-cycle poller and the command streams would drift apart.

// effState returns the bank's row-buffer state and migration-open flag
// as the lazy-expiry threshold defines them at time t, without resolving
// the transition.
func (b *Bank) effState(t sim.Time) (bankState, bool) {
	if b.migOpen && t >= b.busyUntil {
		return bankIdle, false
	}
	return b.state, b.migOpen
}

// MigOpenEnd returns the instant an active-start migration on (rank,
// bank) completes and its open row lazily closes, or -1 if no such
// window is pending. Like the earliest* family it is a pure observation;
// the controller uses it to find the instants at which a per-cycle
// poller would first observe (and thereby resolve) the transition.
func (ch *Channel) MigOpenEnd(rank, bank int) sim.Time {
	b := ch.ranks[rank].banks[bank]
	if b.migOpen {
		return b.busyUntil
	}
	return -1
}

// earliestActivate returns the first time canActivate can hold.
func (b *Bank) earliestActivate(t sim.Time) sim.Time {
	st, mig := b.effState(t)
	if st == bankActive && !mig {
		return Never // a PRE must close the row first
	}
	// Idle now, or migOpen expiring into idle at busyUntil; migrate()
	// already lifted nextActivate to at least busyUntil.
	if b.nextActivate > b.busyUntil {
		return b.nextActivate
	}
	return b.busyUntil
}

// earliestRead returns the first time canRead can hold. A migrating
// bank's open row is only readable before the swap completes (lazyExpire
// closes it at busyUntil), so a horizon at or past busyUntil is Never.
func (b *Bank) earliestRead(t sim.Time) sim.Time {
	st, mig := b.effState(t)
	if st != bankActive {
		return Never // an ACT must open a row first
	}
	if mig && b.nextRead >= b.busyUntil {
		return Never
	}
	return b.nextRead
}

// earliestWrite returns the first time canWrite can hold. Migrating row
// buffers never accept writes, and the swap leaves the bank precharged.
func (b *Bank) earliestWrite(t sim.Time) sim.Time {
	st, mig := b.effState(t)
	if st != bankActive || mig {
		return Never
	}
	return b.nextWrite
}

// earliestPrecharge returns the first time canPrecharge can hold. A
// migOpen bank is never precharged by the controller: the swap itself
// leaves it idle at busyUntil.
func (b *Bank) earliestPrecharge(t sim.Time) sim.Time {
	st, mig := b.effState(t)
	if st != bankActive || mig {
		return Never
	}
	if b.nextPrecharge > b.busyUntil {
		return b.nextPrecharge
	}
	return b.busyUntil
}

// earliestMigrate returns the first time canMigrate(_, srcRow) can hold.
func (b *Bank) earliestMigrate(t sim.Time, srcRow int) sim.Time {
	st, mig := b.effState(t)
	if st == bankActive && !mig {
		if b.openRow != srcRow {
			return Never // a PRE must evict the conflicting row first
		}
		if b.nextPrecharge > b.busyUntil {
			return b.nextPrecharge
		}
		return b.busyUntil
	}
	// Idle, or migOpen expiring into idle at busyUntil.
	if b.nextActivate > b.busyUntil {
		return b.nextActivate
	}
	return b.busyUntil
}

// earliestActivate returns the first time the rank-level canActivate can
// hold (tRRD spacing, refresh window, tFAW).
func (r *Rank) earliestActivate(tFAW sim.Time) sim.Time {
	h := r.nextAct
	if r.refreshBusyUntil > h {
		h = r.refreshBusyUntil
	}
	if faw := r.actWindow[r.actHead] + tFAW; faw > h {
		h = faw
	}
	return h
}

// earliestRead returns the first time the rank-level canRead can hold.
func (r *Rank) earliestRead() sim.Time {
	if r.nextReadAfterWr > r.refreshBusyUntil {
		return r.nextReadAfterWr
	}
	return r.refreshBusyUntil
}

// earliestWrite returns the first time the rank-level canWrite can hold.
func (r *Rank) earliestWrite() sim.Time { return r.refreshBusyUntil }

// earliestRefresh returns the first time canRefresh can hold: all banks
// idle (or expiring into idle) and every occupancy window over. A bank
// holding a plain open row needs a PRE first, so the horizon is Never.
func (r *Rank) earliestRefresh(t sim.Time) sim.Time {
	h := r.refreshBusyUntil
	for _, b := range r.banks {
		st, mig := b.effState(t)
		if st == bankActive && !mig {
			return Never
		}
		if b.busyUntil > h {
			h = b.busyUntil
		}
	}
	return h
}

// EarliestActivate returns the first time CanActivate(rank, bank, cls)
// can hold given the state frozen at t, or Never if an intervening
// command (a PRE on the bank) is required first.
func (ch *Channel) EarliestActivate(t sim.Time, rank, bank int, cls RowClass) sim.Time {
	r := ch.ranks[rank]
	h := r.banks[bank].earliestActivate(t)
	if h == Never {
		return Never
	}
	p := ch.params(cls)
	if rh := r.earliestActivate(p.Duration(p.TFAW)); rh > h {
		h = rh
	}
	return h
}

// EarliestRead returns the first time CanRead(rank, bank) can hold given
// the state frozen at t, or Never if the bank has no open row (or its
// migration-held row expires before the other constraints clear).
func (ch *Channel) EarliestRead(t sim.Time, rank, bank int) sim.Time {
	r := ch.ranks[rank]
	b := r.banks[bank]
	h := b.earliestRead(t)
	if h == Never {
		return Never
	}
	if rh := r.earliestRead(); rh > h {
		h = rh
	}
	// The data burst starting CL after issue must clear the shared bus:
	// issue >= busBusyUntil + penalty - CL.
	p := b.rowPar
	if bh := ch.busBusyUntil + ch.busPenalty(rank, busRead) - p.Duration(p.CL); bh > h {
		h = bh
	}
	if _, mig := b.effState(t); mig && h >= b.busyUntil {
		return Never // row closes before the channel frees up
	}
	return h
}

// EarliestWrite returns the first time CanWrite(rank, bank) can hold
// given the state frozen at t, or Never if the bank has no writable open
// row.
func (ch *Channel) EarliestWrite(t sim.Time, rank, bank int) sim.Time {
	r := ch.ranks[rank]
	b := r.banks[bank]
	h := b.earliestWrite(t)
	if h == Never {
		return Never
	}
	if rh := r.earliestWrite(); rh > h {
		h = rh
	}
	p := b.rowPar
	if bh := ch.busBusyUntil + ch.busPenalty(rank, busWrite) - p.Duration(p.CWL); bh > h {
		h = bh
	}
	return h
}

// EarliestPrecharge returns the first time CanPrecharge(rank, bank) can
// hold given the state frozen at t, or Never if no row is open.
func (ch *Channel) EarliestPrecharge(t sim.Time, rank, bank int) sim.Time {
	return ch.ranks[rank].banks[bank].earliestPrecharge(t)
}

// EarliestMigrate returns the first time CanMigrate(rank, bank, srcRow)
// can hold given the state frozen at t, or Never if a different open row
// must be precharged first.
func (ch *Channel) EarliestMigrate(t sim.Time, rank, bank, srcRow int) sim.Time {
	r := ch.ranks[rank]
	h := r.banks[bank].earliestMigrate(t, srcRow)
	if h == Never {
		return Never
	}
	if r.refreshBusyUntil > h {
		h = r.refreshBusyUntil
	}
	return h
}

// EarliestRefresh returns the first time CanRefresh(rank) can hold given
// the state frozen at t, or Never while any bank holds a plain open row
// (a PRE must close it first).
func (ch *Channel) EarliestRefresh(t sim.Time, rank int) sim.Time {
	return ch.ranks[rank].earliestRefresh(t)
}
