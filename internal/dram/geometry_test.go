package dram

import (
	"testing"
	"testing/quick"
)

func TestGeometryCapacity(t *testing.T) {
	g := Default8GB()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Capacity(); got != 8<<30 {
		t.Fatalf("capacity = %d, want 8 GiB", got)
	}
	if g.RowBytes() != 8192 {
		t.Fatalf("row bytes = %d, want 8192", g.RowBytes())
	}
	if g.TotalRows() != 1<<20 {
		t.Fatalf("total rows = %d, want 1M", g.TotalRows())
	}
	if g.TotalBanks() != 32 {
		t.Fatalf("total banks = %d, want 32", g.TotalBanks())
	}
}

func TestGeometryValidateRejectsNonPow2(t *testing.T) {
	g := Default8GB()
	g.Banks = 6
	if err := g.Validate(); err == nil {
		t.Fatal("non-power-of-two banks accepted")
	}
	g = Default8GB()
	g.Rows = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestGeometryDecodeEncodeRoundtrip(t *testing.T) {
	g := Default8GB()
	check := func(raw uint64) bool {
		addr := raw % g.Capacity() &^ uint64(g.BlockSize-1)
		c := g.Decode(addr)
		return g.Encode(c) == addr
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryDecodeInRange(t *testing.T) {
	g := Default8GB()
	check := func(raw uint64) bool {
		c := g.Decode(raw % g.Capacity())
		return c.Channel >= 0 && c.Channel < g.Channels &&
			c.Rank >= 0 && c.Rank < g.Ranks &&
			c.Bank >= 0 && c.Bank < g.Banks &&
			c.Row >= 0 && c.Row < g.Rows &&
			c.Column >= 0 && c.Column < g.Columns
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometrySequentialStaysInRow(t *testing.T) {
	// The mapping must keep one row's worth of consecutive addresses in
	// one (channel, rank, bank, row) for row-buffer locality.
	g := Default8GB()
	base := g.Decode(0)
	for off := uint64(0); off < g.RowBytes(); off += uint64(g.BlockSize) {
		c := g.Decode(off)
		if c.Channel != base.Channel || c.Bank != base.Bank ||
			c.Rank != base.Rank || c.Row != base.Row {
			t.Fatalf("offset %d left the row: %+v", off, c)
		}
	}
	// The next row-sized chunk must land elsewhere (channel interleave).
	c := g.Decode(g.RowBytes())
	if c.Channel == base.Channel && c.Bank == base.Bank && c.Rank == base.Rank && c.Row == base.Row {
		t.Fatal("adjacent row chunk mapped to the same row")
	}
}

func TestRowIDRoundtrip(t *testing.T) {
	g := Default8GB()
	check := func(raw uint64) bool {
		rowID := raw % g.TotalRows()
		c := g.RowCoord(rowID)
		return g.RowID(c) == rowID
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBankIDDense(t *testing.T) {
	g := Default8GB()
	seen := make(map[int]bool)
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.Ranks; rk++ {
			for bk := 0; bk < g.Banks; bk++ {
				id := g.BankID(Coord{Channel: ch, Rank: rk, Bank: bk})
				if id < 0 || id >= g.TotalBanks() || seen[id] {
					t.Fatalf("bank id %d invalid or duplicated", id)
				}
				seen[id] = true
			}
		}
	}
}
