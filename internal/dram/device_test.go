package dram

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/timing"
)

// testDevice builds a small asymmetric device for timing tests.
func testDevice(t *testing.T, migLat sim.Time) *Device {
	t.Helper()
	g := Geometry{Channels: 1, Ranks: 1, Banks: 4, Rows: 64, Columns: 16, BlockSize: 64}
	d, err := New(Config{
		Geometry:         g,
		Slow:             timing.DDR31600Slow(),
		Fast:             timing.DDR31600Fast(),
		MigrationLatency: migLat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func ns(f float64) sim.Time { return sim.FromNS(f) }

func TestActivateReadRespectsTRCD(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	if !ch.CanActivate(0, 0, 0, RowSlow) {
		t.Fatal("fresh bank refused ACT")
	}
	ch.Activate(0, 0, 0, 5, RowSlow)
	if ch.CanRead(ns(13.74), 0, 0) {
		t.Fatal("read allowed before tRCD")
	}
	if !ch.CanRead(ns(13.75), 0, 0) {
		t.Fatal("read refused at tRCD")
	}
	end := ch.Read(ns(13.75), 0, 0)
	p := d.SlowParams()
	want := ns(13.75) + p.Duration(p.ReadLatency())
	if end != want {
		t.Fatalf("burst end %d, want %d", end, want)
	}
}

func TestFastRowUsesFastTiming(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	ch.Activate(0, 0, 0, 5, RowFast)
	if ch.CanRead(ns(8.74), 0, 0) {
		t.Fatal("fast read allowed before fast tRCD")
	}
	if !ch.CanRead(ns(8.75), 0, 0) {
		t.Fatal("fast read refused at fast tRCD")
	}
	b := ch.Rank(0).Bank(0)
	if b.OpenClass() != RowFast {
		t.Fatal("open class not fast")
	}
	if b.ActivatesFast != 1 || b.Activates != 1 {
		t.Fatal("fast activate counters wrong")
	}
}

func TestPrechargeRespectsTRAS(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	ch.Activate(0, 0, 0, 1, RowSlow)
	if ch.CanPrecharge(ns(34.9), 0, 0) {
		t.Fatal("precharge allowed before tRAS (35 ns)")
	}
	if !ch.CanPrecharge(ns(35), 0, 0) {
		t.Fatal("precharge refused at tRAS")
	}
	ch.Precharge(ns(35), 0, 0)
	// tRP = 13.75 ns before the next ACT.
	if ch.CanActivate(ns(48.74), 0, 0, RowSlow) {
		t.Fatal("ACT allowed before tRP elapsed")
	}
	if !ch.CanActivate(ns(48.75), 0, 0, RowSlow) {
		t.Fatal("ACT refused after tRP")
	}
}

func TestSameBankActToActRespectsTRC(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	ch.Activate(0, 0, 0, 1, RowSlow)
	ch.Precharge(ns(35), 0, 0)
	// Even though tRP ends at 48.75, tRC (48.75) also ends there; check
	// a tighter case with an early precharge attempt impossible, so use
	// a fast row: tRC 25 ns but tRAS 16.25.
	ch.Activate(ns(48.75), 0, 1, 2, RowFast)
	ch.Precharge(ns(48.75+16.25), 0, 1)
	if ch.CanActivate(ns(48.75+24.9), 0, 1, RowFast) {
		t.Fatal("ACT allowed before fast tRC")
	}
	if !ch.CanActivate(ns(48.75+25), 0, 1, RowFast) {
		t.Fatal("ACT refused after fast tRC")
	}
}

func TestWriteRecoveryBeforePrecharge(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	p := d.SlowParams()
	ch.Activate(0, 0, 0, 1, RowSlow)
	wrAt := p.Duration(p.TRCD)
	end := ch.Write(wrAt, 0, 0)
	wantEnd := wrAt + p.Duration(p.WriteLatency())
	if end != wantEnd {
		t.Fatalf("write burst end %d, want %d", end, wantEnd)
	}
	// Precharge must wait tWR after the burst.
	preOK := end + p.Duration(p.TWR)
	if ch.CanPrecharge(preOK-1, 0, 0) {
		t.Fatal("precharge allowed during write recovery")
	}
	if !ch.CanPrecharge(preOK, 0, 0) {
		t.Fatal("precharge refused after write recovery")
	}
}

func TestTFAWLimitsActivates(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	p := d.SlowParams()
	trrd := p.Duration(p.TRRD)
	// Four back-to-back ACTs at tRRD spacing.
	var last sim.Time
	for i := 0; i < 4; i++ {
		at := sim.Time(i) * trrd
		if !ch.CanActivate(at, 0, i, RowSlow) {
			t.Fatalf("ACT %d refused at %d", i, at)
		}
		ch.Activate(at, 0, i, 1, RowSlow)
		last = at
	}
	_ = last
	// Fifth ACT must wait for tFAW from the first.
	fawEnd := p.Duration(p.TFAW)
	// Need a fifth bank; geometry has 4 banks, so precharge bank 0
	// first... instead check that at tRRD past the 4th ACT (before tFAW)
	// the window blocks even a precharged bank: close bank 0's row.
	if ch.CanActivate(3*trrd+trrd, 0, 0, RowSlow) {
		t.Fatal("bank 0 should refuse: still active")
	}
	// Bank 0 stays active; use rank-level check directly: at 4*tRRD the
	// rank-level FAW window (tFAW = 30 ns > 4*tRRD = 25 ns) must block.
	r := ch.Rank(0)
	if r.canActivate(4*trrd, p.Duration(p.TFAW)) {
		t.Fatal("fifth ACT allowed inside tFAW window")
	}
	if !r.canActivate(fawEnd, p.Duration(p.TFAW)) {
		t.Fatal("fifth ACT refused after tFAW")
	}
}

func TestDataBusConflict(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	p := d.SlowParams()
	ch.Activate(0, 0, 0, 1, RowSlow)
	ch.Activate(p.Duration(p.TRRD), 0, 1, 1, RowSlow)
	rd1 := p.Duration(p.TRCD)
	ch.Read(rd1, 0, 0)
	// A read on another bank one cycle later would overlap the data
	// burst; it must be refused until the bus frees.
	if ch.CanRead(rd1+p.TCK, 0, 1) {
		t.Fatal("overlapping data burst allowed")
	}
	free := rd1 + p.Duration(p.ReadLatency()) // burst end
	earliest := free - p.Duration(p.CL)
	if bankReady := p.Duration(p.TRRD + p.TRCD); bankReady > earliest {
		earliest = bankReady // bank 1's own tRCD may dominate
	}
	if !ch.CanRead(earliest, 0, 1) {
		t.Fatal("read refused although burst would start after bus frees")
	}
}

func TestRefreshBlocksAndRecovers(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	p := d.SlowParams()
	due := ch.Rank(0).NextRefreshDue()
	if due <= 0 {
		t.Fatal("no refresh scheduled")
	}
	if !ch.CanRefresh(due, 0) {
		t.Fatal("idle rank refused refresh")
	}
	ch.Refresh(due, 0)
	if ch.CanActivate(due+p.Duration(p.TRFC)-1, 0, 0, RowSlow) {
		t.Fatal("ACT allowed during tRFC")
	}
	if !ch.CanActivate(due+p.Duration(p.TRFC), 0, 0, RowSlow) {
		t.Fatal("ACT refused after tRFC")
	}
	if ch.Rank(0).NextRefreshDue() <= due {
		t.Fatal("next refresh not rescheduled")
	}
}

func TestRefreshRequiresIdleBanks(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	ch.Activate(0, 0, 2, 1, RowSlow)
	due := ch.Rank(0).NextRefreshDue()
	if ch.CanRefresh(due, 0) {
		t.Fatal("refresh allowed with an open row")
	}
}

func TestMigrationIdleStart(t *testing.T) {
	d := testDevice(t, ns(146.25))
	ch := d.Channel(0)
	if !ch.CanMigrate(0, 0, 0, 7) {
		t.Fatal("idle bank refused migration")
	}
	end := ch.Migrate(0, 0, 0)
	if end != ns(146.25) {
		t.Fatalf("migration end %d, want %d", end, ns(146.25))
	}
	if ch.CanActivate(end-1, 0, 0, RowSlow) {
		t.Fatal("ACT allowed during migration")
	}
	if !ch.CanActivate(end, 0, 0, RowSlow) {
		t.Fatal("ACT refused after migration")
	}
	if d.CollectStats().Migrations != 1 {
		t.Fatal("migration not counted")
	}
}

func TestMigrationActiveStartServesOpenRow(t *testing.T) {
	d := testDevice(t, ns(146.25))
	ch := d.Channel(0)
	p := d.SlowParams()
	ch.Activate(0, 0, 0, 7, RowSlow)
	// Cannot migrate before restore (tRAS equivalent via nextPrecharge).
	if ch.CanMigrate(p.Duration(p.TRCD), 0, 0, 7) {
		t.Fatal("migration allowed before restore completed")
	}
	at := p.Duration(p.TRAS)
	if !ch.CanMigrate(at, 0, 0, 7) {
		t.Fatal("migration refused on open source row")
	}
	// A different source row must not allow active-start.
	if ch.CanMigrate(at, 0, 0, 8) {
		t.Fatal("migration of a different row allowed while row 7 open")
	}
	end := ch.Migrate(at, 0, 0)
	// Reads to the open source row keep flowing during the swap.
	if !ch.CanRead(at+p.Duration(p.TCCD), 0, 0) {
		t.Fatal("read to migrating row refused")
	}
	// Writes must not hit the busy row buffer.
	if ch.CanWrite(at+p.Duration(p.TCCD), 0, 0) {
		t.Fatal("write allowed into migrating row buffer")
	}
	// After completion the bank auto-precharged.
	if ch.Rank(0).Bank(0).HasOpenRow() {
		// lazy expiry happens on the next query with a later time
		if ch.CanRead(end, 0, 0) {
			t.Fatal("row still readable after migration end")
		}
	}
	if !ch.CanActivate(end, 0, 0, RowSlow) {
		t.Fatal("bank not activatable after migration")
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	g := Default8GB()
	slow := timing.DDR31600Slow()
	fast := timing.DDR31600Fast()
	if _, err := New(Config{Geometry: g, Slow: slow, Fast: fast, MigrationLatency: -1}); err == nil {
		t.Fatal("negative migration latency accepted")
	}
	badFast := fast
	badFast.TCK = 1000
	if _, err := New(Config{Geometry: g, Slow: slow, Fast: badFast}); err == nil {
		t.Fatal("mismatched clocks accepted")
	}
	badGeom := g
	badGeom.Rows = 3
	if _, err := New(Config{Geometry: badGeom, Slow: slow, Fast: fast}); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestStatsResetPreservesTiming(t *testing.T) {
	d := testDevice(t, 0)
	ch := d.Channel(0)
	ch.Activate(0, 0, 0, 1, RowSlow)
	d.ResetStats()
	s := d.CollectStats()
	if s.Activates != 0 {
		t.Fatal("stats not reset")
	}
	// Timing state must survive the reset: bank still active.
	if !ch.Rank(0).Bank(0).HasOpenRow() {
		t.Fatal("reset disturbed bank state")
	}
}
