package dram

import (
	"repro/internal/sim"
)

// Rank models rank-level constraints shared by its banks: the tFAW
// four-activate window, tRRD activate spacing, write-to-read turnaround
// (tWTR), and refresh.
type Rank struct {
	banks []*Bank

	// actWindow holds the times of the last four ACTs for tFAW.
	actWindow [4]sim.Time
	actHead   int

	nextAct          sim.Time // tRRD: earliest next ACT to any bank
	nextReadAfterWr  sim.Time // tWTR: earliest RD after a write burst
	refreshBusyUntil sim.Time // tRFC window
	nextRefreshDue   sim.Time // when the next REF should be issued

	Refreshes uint64
}

func newRank(banks int) *Rank {
	r := &Rank{banks: make([]*Bank, banks)}
	for i := range r.banks {
		r.banks[i] = &Bank{}
	}
	// Pre-fill the tFAW window with the distant past so the first four
	// activates are not spuriously throttled.
	for i := range r.actWindow {
		r.actWindow[i] = -(1 << 40)
	}
	return r
}

// Bank returns bank i.
func (r *Rank) Bank(i int) *Bank { return r.banks[i] }

// Banks returns the number of banks.
func (r *Rank) Banks() int { return len(r.banks) }

// fawOK reports whether a fifth ACT at time t satisfies tFAW.
func (r *Rank) fawOK(t, tFAW sim.Time) bool {
	oldest := r.actWindow[r.actHead]
	return t >= oldest+tFAW
}

// recordAct pushes an ACT time into the tFAW window and applies tRRD.
func (r *Rank) recordAct(t, tRRD sim.Time) {
	r.actWindow[r.actHead] = t
	r.actHead = (r.actHead + 1) % len(r.actWindow)
	if next := t + tRRD; next > r.nextAct {
		r.nextAct = next
	}
}

// canActivate checks rank-level ACT constraints.
func (r *Rank) canActivate(t, tFAW sim.Time) bool {
	return t >= r.nextAct && t >= r.refreshBusyUntil && r.fawOK(t, tFAW)
}

// canRead checks rank-level RD constraints (tWTR, refresh).
func (r *Rank) canRead(t sim.Time) bool {
	return t >= r.nextReadAfterWr && t >= r.refreshBusyUntil
}

// canWrite checks rank-level WR constraints (refresh only).
func (r *Rank) canWrite(t sim.Time) bool {
	return t >= r.refreshBusyUntil
}

// noteWriteBurst applies tWTR after a write burst ending at end.
func (r *Rank) noteWriteBurst(end, tWTR sim.Time) {
	if next := end + tWTR; next > r.nextReadAfterWr {
		r.nextReadAfterWr = next
	}
}

// RefreshDue reports whether a refresh should be issued at or before t.
func (r *Rank) RefreshDue(t sim.Time) bool { return t >= r.nextRefreshDue }

// NextRefreshDue returns the next refresh deadline.
func (r *Rank) NextRefreshDue() sim.Time { return r.nextRefreshDue }

// canRefresh reports whether all banks are precharged and quiet at t.
func (r *Rank) canRefresh(t sim.Time) bool {
	if t < r.refreshBusyUntil {
		return false
	}
	for _, b := range r.banks {
		b.lazyExpire(t)
		if b.state != bankIdle || t < b.busyUntil {
			return false
		}
	}
	return true
}

// refresh issues a REF at t, blocking the rank for tRFC and scheduling the
// next due time one tREFI later.
func (r *Rank) refresh(t, tRFC, tREFI sim.Time) {
	r.refreshBusyUntil = t + tRFC
	for _, b := range r.banks {
		b.blockUntil(r.refreshBusyUntil)
	}
	r.nextRefreshDue += tREFI
	if r.nextRefreshDue <= t {
		// We fell behind (e.g. long migration bursts); never schedule due
		// times in the past or refreshes pile up unboundedly.
		r.nextRefreshDue = t + tREFI
	}
	r.Refreshes++
}
