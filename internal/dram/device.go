package dram

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Config assembles a DRAM device model.
type Config struct {
	Geometry Geometry
	// Slow is the timing set for commodity rows (always required).
	Slow timing.Params
	// Fast is the timing set for fast-subarray rows. For a homogeneous
	// device pass the same set as Slow.
	Fast timing.Params
	// MigrationLatency is the bank-occupancy time of one DAS-DRAM row
	// swap. Zero disables/ideal-izes migration cost (DAS-DRAM FM).
	MigrationLatency sim.Time
}

// DefaultConfig returns the Table 1 asymmetric configuration:
// DDR3-1600 slow/fast sets and 146.25 ns migration latency (3 tRC_fast
// equivalents: two 1.5 tRC migrations of a full swap's critical path).
func DefaultConfig() Config {
	return Config{
		Geometry:         Default8GB(),
		Slow:             timing.DDR31600Slow(),
		Fast:             timing.DDR31600Fast(),
		MigrationLatency: sim.FromNS(146.25),
	}
}

// Device is the top-level DRAM model: a set of independent channels
// sharing nothing but the configuration.
type Device struct {
	geom             Geometry
	slow, fast       timing.Params
	migrationLatency sim.Time
	channels         []*Channel

	// emodel prices commands in integer picojoules (see internal/energy).
	// It is pure accounting — nothing reads it on a timing path — and is
	// always present, so figure code can cost a run without telemetry.
	emodel *energy.Model

	// tel is the live instrument set (nil = telemetry off, the default;
	// see AttachTelemetry).
	tel *deviceTelemetry

	// cmdLog, when non-nil, observes every command at issue time (nil =
	// off, the default; see SetCommandLog). Rank/bank/row are -1 where a
	// command has no such coordinate (REF covers a whole rank, MIG's row
	// pair is controller-side state).
	cmdLog func(t sim.Time, kind CommandKind, channel, rank, bank, row int)
}

// SetCommandLog installs (or, with nil, removes) a command observer. It
// exists for the scheduler equivalence tests: recording the exact
// (time, command, coordinate) stream a controller produces. The hook
// must not mutate simulation state.
func (d *Device) SetCommandLog(fn func(t sim.Time, kind CommandKind, channel, rank, bank, row int)) {
	d.cmdLog = fn
}

// validate checks the parts of cfg shared by New and Reset (geometry is
// validated by New and pinned by Reset).
func (cfg *Config) validate() error {
	if err := cfg.Slow.Validate(); err != nil {
		return fmt.Errorf("slow params: %w", err)
	}
	if err := cfg.Fast.Validate(); err != nil {
		return fmt.Errorf("fast params: %w", err)
	}
	if cfg.Slow.TCK != cfg.Fast.TCK {
		return fmt.Errorf("dram: slow and fast sets must share a clock (%d vs %d)",
			cfg.Slow.TCK, cfg.Fast.TCK)
	}
	if cfg.MigrationLatency < 0 {
		return fmt.Errorf("dram: negative migration latency %d", cfg.MigrationLatency)
	}
	return nil
}

// New validates cfg and builds the device.
func New(cfg Config) (*Device, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	emodel, err := energy.NewModel(area.Default(), int(cfg.Geometry.RowBytes()), cfg.Geometry.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("dram: energy model: %w", err)
	}
	d := &Device{
		geom:             cfg.Geometry,
		slow:             cfg.Slow,
		fast:             cfg.Fast,
		migrationLatency: cfg.MigrationLatency,
		emodel:           emodel,
	}
	for i := 0; i < cfg.Geometry.Channels; i++ {
		d.channels = append(d.channels, newChannel(d, i, cfg.Geometry.Ranks, cfg.Geometry.Banks))
	}
	d.initRefreshStagger()
	return d, nil
}

// initRefreshStagger staggers initial refresh due times across ranks so
// all ranks do not refresh in lock-step (as real controllers do).
func (d *Device) initRefreshStagger() {
	p := &d.slow
	for ci, ch := range d.channels {
		for ri, r := range ch.ranks {
			frac := sim.Time(ci*d.geom.Ranks+ri) * p.Duration(p.TREFI) / sim.Time(d.geom.Channels*d.geom.Ranks)
			r.nextRefreshDue = p.Duration(p.TREFI) + frac
		}
	}
}

// Reset rewinds the device to its just-constructed state for in-place
// reuse, adopting cfg's timing sets and migration latency (sweeps vary
// them without changing the machine shape). The geometry is pinned: a
// reset never resizes the channel/rank/bank arrays, so cfg.Geometry
// must equal the built one. Telemetry and the command log detach — they
// are per-run attachments. After Reset the device is indistinguishable
// from dram.New(cfg), including the initial refresh stagger; the energy
// model is retained (it is a pure function of the geometry).
func (d *Device) Reset(cfg Config) error {
	if cfg.Geometry != d.geom {
		return fmt.Errorf("dram: reset with geometry %+v on a device built as %+v", cfg.Geometry, d.geom)
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	d.slow, d.fast, d.migrationLatency = cfg.Slow, cfg.Fast, cfg.MigrationLatency
	d.tel = nil
	d.cmdLog = nil
	for _, ch := range d.channels {
		ch.busBusyUntil, ch.busRank, ch.busDirection = 0, -1, busNone
		for _, r := range ch.ranks {
			for _, b := range r.banks {
				*b = Bank{}
			}
			r.actHead = 0
			r.nextAct, r.nextReadAfterWr, r.refreshBusyUntil, r.nextRefreshDue = 0, 0, 0, 0
			r.Refreshes = 0
			for i := range r.actWindow {
				r.actWindow[i] = -(1 << 40)
			}
		}
	}
	d.initRefreshStagger()
	return nil
}

// Geometry returns the device organization.
func (d *Device) Geometry() Geometry { return d.geom }

// Channel returns channel i.
func (d *Device) Channel(i int) *Channel { return d.channels[i] }

// Channels returns the number of channels.
func (d *Device) Channels() int { return len(d.channels) }

// SlowParams returns the commodity timing set.
func (d *Device) SlowParams() *timing.Params { return &d.slow }

// FastParams returns the fast-subarray timing set.
func (d *Device) FastParams() *timing.Params { return &d.fast }

// MigrationLatency returns the configured per-swap bank occupancy.
func (d *Device) MigrationLatency() sim.Time { return d.migrationLatency }

// EnergyModel returns the device's per-command energy table.
func (d *Device) EnergyModel() *energy.Model { return d.emodel }

// ClockPeriod returns the DRAM command-clock period.
func (d *Device) ClockPeriod() sim.Time { return d.slow.TCK }

// MinCrossDomainLatency returns the smallest latency of anything the
// memory side schedules back toward the processor side: the minimum
// read-issue→burst-end duration across the two timing classes, clamped
// by a nonzero migration latency. The parallel engine derives its
// conservative synchronization window from this bound (sim.ParEngine).
func (d *Device) MinCrossDomainLatency() sim.Time {
	min := d.slow.Duration(d.slow.ReadLatency())
	if f := d.fast.Duration(d.fast.ReadLatency()); f < min {
		min = f
	}
	if d.migrationLatency > 0 && d.migrationLatency < min {
		min = d.migrationLatency
	}
	return min
}

// Stats aggregates command counts across the whole device. The *Fast
// fields count the subset of each command that touched a fast-subarray
// row (the energy model prices the classes differently).
type Stats struct {
	Activates, ActivatesFast   uint64
	Reads, ReadsFast           uint64
	Writes, WritesFast         uint64
	Precharges, PrechargesFast uint64
	Refreshes, Migrations      uint64
}

// EnergyCounts converts the command counts into the energy model's
// per-class pricing input (slow counts are total minus fast).
func (s Stats) EnergyCounts() energy.Counts {
	return energy.Counts{
		ActSlow: s.Activates - s.ActivatesFast, ActFast: s.ActivatesFast,
		PreSlow: s.Precharges - s.PrechargesFast, PreFast: s.PrechargesFast,
		RdSlow: s.Reads - s.ReadsFast, RdFast: s.ReadsFast,
		WrSlow: s.Writes - s.WritesFast, WrFast: s.WritesFast,
		Ref: s.Refreshes, Mig: s.Migrations,
	}
}

// ResetStats zeroes all command counters (warm-up boundary); timing state
// is untouched.
func (d *Device) ResetStats() {
	for _, ch := range d.channels {
		for _, r := range ch.ranks {
			r.Refreshes = 0
			for _, b := range r.banks {
				b.Activates, b.ActivatesFast, b.Reads, b.ReadsFast = 0, 0, 0, 0
				b.Writes, b.WritesFast, b.Precharges, b.PrechargesFast = 0, 0, 0, 0
				b.Migrations = 0
			}
		}
	}
}

// CollectStats sums per-bank and per-rank counters.
func (d *Device) CollectStats() Stats {
	var s Stats
	for _, ch := range d.channels {
		for _, r := range ch.ranks {
			s.Refreshes += r.Refreshes
			for _, b := range r.banks {
				s.Activates += b.Activates
				s.ActivatesFast += b.ActivatesFast
				s.Reads += b.Reads
				s.ReadsFast += b.ReadsFast
				s.Writes += b.Writes
				s.WritesFast += b.WritesFast
				s.Precharges += b.Precharges
				s.PrechargesFast += b.PrechargesFast
				s.Migrations += b.Migrations
			}
		}
	}
	return s
}
