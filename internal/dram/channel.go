package dram

import (
	"repro/internal/sim"
	"repro/internal/timing"
)

// busDir is the direction of the last data-bus burst.
type busDir uint8

const (
	busNone busDir = iota
	busRead
	busWrite
)

// Channel models one memory channel: its ranks, the shared data bus
// (with rank-switch and read/write turnaround penalties), and command
// issue. The memory controller issues at most one command per DRAM cycle
// per channel, which models the command bus implicitly.
type Channel struct {
	dev   *Device
	idx   int
	ranks []*Rank

	busBusyUntil sim.Time
	busRank      int
	busDirection busDir
}

func newChannel(dev *Device, idx, ranks, banks int) *Channel {
	ch := &Channel{dev: dev, idx: idx, busRank: -1}
	for i := 0; i < ranks; i++ {
		ch.ranks = append(ch.ranks, newRank(banks))
	}
	return ch
}

// Rank returns rank i.
func (ch *Channel) Rank(i int) *Rank { return ch.ranks[i] }

// Ranks returns the number of ranks.
func (ch *Channel) Ranks() int { return len(ch.ranks) }

// params returns the timing set for a row class.
func (ch *Channel) params(cls RowClass) *timing.Params {
	if cls == RowFast {
		return &ch.dev.fast
	}
	return &ch.dev.slow
}

// busPenalty returns the extra delay before a new burst may start given
// the previous burst's rank and direction.
func (ch *Channel) busPenalty(rank int, dir busDir) sim.Time {
	p := &ch.dev.slow
	var pen sim.Time
	if ch.busRank >= 0 && ch.busRank != rank {
		pen += p.Duration(p.TRTR)
	}
	if ch.busDirection != busNone && ch.busDirection != dir {
		pen += p.Duration(2) // bus turnaround bubble
	}
	return pen
}

// busFree reports whether a burst starting at start (for rank/dir) clears
// the data bus.
func (ch *Channel) busFree(start sim.Time, rank int, dir busDir) bool {
	return start >= ch.busBusyUntil+ch.busPenalty(rank, dir)
}

// claimBus records a burst occupying [start, end) for rank/dir.
func (ch *Channel) claimBus(end sim.Time, rank int, dir busDir) {
	ch.busBusyUntil = end
	ch.busRank = rank
	ch.busDirection = dir
}

// CanActivate reports whether ACT(rank, bank) of class cls may issue at t.
func (ch *Channel) CanActivate(t sim.Time, rank, bank int, cls RowClass) bool {
	p := ch.params(cls)
	r := ch.ranks[rank]
	return r.canActivate(t, p.Duration(p.TFAW)) && r.banks[bank].canActivate(t)
}

// Activate issues ACT at t. The caller must have checked CanActivate.
func (ch *Channel) Activate(t sim.Time, rank, bank, row int, cls RowClass) {
	p := ch.params(cls)
	r := ch.ranks[rank]
	r.banks[bank].activate(t, row, cls, p)
	r.recordAct(t, p.Duration(p.TRRD))
	if tel := ch.dev.tel; tel != nil {
		tel.noteActivate(cls, p.Duration(p.TRCD))
	}
	if log := ch.dev.cmdLog; log != nil {
		log(t, CmdActivate, ch.idx, rank, bank, row)
	}
}

// CanRead reports whether RD(rank, bank) may issue at t.
func (ch *Channel) CanRead(t sim.Time, rank, bank int) bool {
	r := ch.ranks[rank]
	b := r.banks[bank]
	if !r.canRead(t) || !b.canRead(t) {
		return false
	}
	p := b.rowPar
	return ch.busFree(t+p.Duration(p.CL), rank, busRead)
}

// Read issues RD at t and returns the absolute time the data burst ends.
func (ch *Channel) Read(t sim.Time, rank, bank int) sim.Time {
	b := ch.ranks[rank].banks[bank]
	row := b.openRow
	end := b.read(t)
	ch.claimBus(end, rank, busRead)
	if tel := ch.dev.tel; tel != nil {
		tel.noteRead(b.openCls, end-t)
	}
	if log := ch.dev.cmdLog; log != nil {
		log(t, CmdRead, ch.idx, rank, bank, row)
	}
	return end
}

// CanWrite reports whether WR(rank, bank) may issue at t.
func (ch *Channel) CanWrite(t sim.Time, rank, bank int) bool {
	r := ch.ranks[rank]
	b := r.banks[bank]
	if !r.canWrite(t) || !b.canWrite(t) {
		return false
	}
	p := b.rowPar
	return ch.busFree(t+p.Duration(p.CWL), rank, busWrite)
}

// Write issues WR at t and returns the absolute time the data burst ends.
func (ch *Channel) Write(t sim.Time, rank, bank int) sim.Time {
	r := ch.ranks[rank]
	b := r.banks[bank]
	row := b.openRow
	end := b.write(t)
	p := b.rowPar
	r.noteWriteBurst(end, p.Duration(p.TWTR))
	ch.claimBus(end, rank, busWrite)
	if tel := ch.dev.tel; tel != nil {
		tel.noteWrite(b.openCls, end-t)
	}
	if log := ch.dev.cmdLog; log != nil {
		log(t, CmdWrite, ch.idx, rank, bank, row)
	}
	return end
}

// CanPrecharge reports whether PRE(rank, bank) may issue at t.
func (ch *Channel) CanPrecharge(t sim.Time, rank, bank int) bool {
	return ch.ranks[rank].banks[bank].canPrecharge(t)
}

// Precharge issues PRE at t.
func (ch *Channel) Precharge(t sim.Time, rank, bank int) {
	b := ch.ranks[rank].banks[bank]
	row := b.openRow
	b.precharge(t)
	if tel := ch.dev.tel; tel != nil {
		p := b.rowPar
		tel.notePrecharge(b.openCls, p.Duration(p.TRP))
	}
	if log := ch.dev.cmdLog; log != nil {
		log(t, CmdPrecharge, ch.idx, rank, bank, row)
	}
}

// RefreshDue reports whether rank owes a refresh at t.
func (ch *Channel) RefreshDue(t sim.Time, rank int) bool {
	return ch.ranks[rank].RefreshDue(t)
}

// CanRefresh reports whether REF(rank) may issue at t.
func (ch *Channel) CanRefresh(t sim.Time, rank int) bool {
	return ch.ranks[rank].canRefresh(t)
}

// Refresh issues REF(rank) at t.
func (ch *Channel) Refresh(t sim.Time, rank int) {
	p := &ch.dev.slow
	ch.ranks[rank].refresh(t, p.Duration(p.TRFC), p.Duration(p.TREFI))
	if tel := ch.dev.tel; tel != nil {
		tel.noteRefresh(p.Duration(p.TRFC))
	}
	if log := ch.dev.cmdLog; log != nil {
		log(t, CmdRefresh, ch.idx, rank, -1, -1)
	}
}

// CanMigrate reports whether a migration of srcRow may start on
// (rank, bank) at t.
func (ch *Channel) CanMigrate(t sim.Time, rank, bank, srcRow int) bool {
	r := ch.ranks[rank]
	return t >= r.refreshBusyUntil && r.banks[bank].canMigrate(t, srcRow)
}

// Migrate starts a migration occupying (rank, bank) for the device's
// configured migration latency and returns its completion time.
func (ch *Channel) Migrate(t sim.Time, rank, bank int) sim.Time {
	b := ch.ranks[rank].banks[bank]
	b.migrate(t, ch.dev.migrationLatency)
	if tel := ch.dev.tel; tel != nil {
		tel.noteMigrate(ch.dev.migrationLatency)
	}
	if log := ch.dev.cmdLog; log != nil {
		log(t, CmdMigrate, ch.idx, rank, bank, -1)
	}
	return t + ch.dev.migrationLatency
}
