package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/exp"
	"repro/internal/telemetry"
	"repro/internal/telemetry/jobtrace"
)

// Runner executes one canonicalized job and returns the response body.
// The default runner simulates via internal/exp (see simRunner); tests
// substitute their own to model slow, failing or panicking jobs without
// paying for real simulations. Runners must honor ctx cancellation
// promptly — the drain path and the per-job deadline both rely on it.
type Runner func(ctx context.Context, job *Job) ([]byte, error)

// Options configures a Server. The zero value of every field selects a
// sensible default (see New).
type Options struct {
	// Workers bounds concurrent simulations. Each job may itself
	// parallelize across designs (Session.Parallelism), so the default
	// is deliberately small.
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// 429 + Retry-After instead of growing memory without bound.
	QueueDepth int
	// JobTimeout is the per-job deadline (0 = DefaultJobTimeout; <0 =
	// none).
	JobTimeout time.Duration
	// WatchdogWindow is the no-progress window of the per-job watchdog:
	// a running job whose session executes no engine events for this
	// long is cancelled as stalled (0 = DefaultWatchdogWindow; <0 =
	// off). It must comfortably exceed the profiling prepass of static
	// designs, which retires no engine events.
	WatchdogWindow time.Duration
	// RetryAfter is the advisory client backoff attached to shed
	// responses (0 = DefaultRetryAfter).
	RetryAfter time.Duration
	// Base is the configuration requests layer over (zero Cores selects
	// config.Scaled(), matching dasbench's default).
	Base config.Config
	// Runner overrides the simulation runner (tests only; nil = real
	// simulations).
	Runner Runner
	// Logf, when non-nil, receives one line per admitted job completion
	// and per shed/panic event.
	Logf func(format string, args ...any)
	// Log, when non-nil, receives one structured LogEvent per job
	// transition and supersedes Logf (dasserve -log-json).
	Log func(LogEvent)
	// ProgressInterval is the SSE frame period of /jobs/<key>/events
	// (0 = DefaultProgressInterval).
	ProgressInterval time.Duration
	// JobTraceDepth bounds the completed lifecycle-span ring
	// (0 = jobtrace.DefaultDepth).
	JobTraceDepth int
	// PoolBytes budgets the server's machine pool: simulation jobs check
	// built systems out of it and back in, so sweeps over one machine
	// shape stop paying per-point allocation (0 = exp.DefaultPoolBytes;
	// <0 = pooling off, every run builds fresh). The pool drains on
	// Shutdown.
	PoolBytes int64
}

// Defaults for the zero Options values.
const (
	DefaultWorkers        = 2
	DefaultQueueDepth     = 16
	DefaultJobTimeout     = 10 * time.Minute
	DefaultWatchdogWindow = 30 * time.Second
	DefaultRetryAfter     = 1 * time.Second
)

// Server runs simulation jobs on a bounded worker pool with
// singleflight deduplication and an exact result cache. See the package
// comment for the exactness argument.
type Server struct {
	opt    Options
	runner Runner

	// Telemetry instruments are created once here; the registry is
	// single-threaded by design (see internal/telemetry), so every
	// update and snapshot goes through tmu.
	tmu        sync.Mutex
	reg        *telemetry.Registry
	cAdmitted  *telemetry.Counter // jobs accepted into the queue
	cDone      *telemetry.Counter // jobs finished successfully
	cFailed    *telemetry.Counter // jobs finished with any error
	cShed      *telemetry.Counter // requests rejected 429 (queue full)
	cCancelled *telemetry.Counter // jobs killed by deadline/watchdog/drain
	cPanicked  *telemetry.Counter // jobs that panicked (server survived)
	cHits      *telemetry.Counter // responses served from the cache
	cCoalesced *telemetry.Counter // requests joined to an in-flight twin
	cMisses    *telemetry.Counter // requests that started a fresh job
	gQueued    *telemetry.Gauge   // jobs waiting in the queue
	gRunning   *telemetry.Gauge   // jobs executing on workers
	gSSE       *telemetry.Gauge   // open progress streams
	cFrames    *telemetry.Counter // SSE frames written
	hQueueWait *telemetry.Histogram
	hRun       *telemetry.Histogram

	// jt records per-job lifecycle spans (internally locked, so it lives
	// outside both mutex domains).
	jt *jobtrace.Recorder

	// mu guards admission state: the cache map, the queue send, and the
	// draining flag. Holding it across the queue send is what makes
	// "check draining, then enqueue" atomic with Shutdown's "set
	// draining, then close the queue".
	mu       sync.Mutex
	draining bool
	cache    map[string]*entry
	byHash   map[uint64]*entry // cache mirror for /jobs/<key>/events URLs
	queue    chan *job

	// jobCtx parents every job context; jobCancel fires at the drain
	// deadline with a structured cause.
	jobCtx    context.Context
	jobCancel context.CancelCauseFunc
	wg        sync.WaitGroup

	// pool recycles simulation machines across this server's jobs (nil
	// when Options.PoolBytes < 0: every run builds fresh). Internally
	// locked; drained by Shutdown.
	pool *exp.SystemPool
}

// entry is one cache slot doubling as the singleflight rendezvous:
// waiters block on done; body/err are immutable once done is closed.
// Failed entries are removed from the cache map in the same critical
// section that closes done, so a mapped entry with closed done is
// always a success — errors are never cached and always re-runnable.
type entry struct {
	done chan struct{}
	body []byte
	err  *Error
	hash uint64
	prog *Progress // live progress for SSE subscribers; never nil for admitted jobs
}

type job struct {
	spec     *Job
	e        *entry
	enqueued time.Time
}

// New builds a server and starts its worker pool. Callers must
// eventually call Shutdown.
func New(opt Options) *Server {
	if opt.Workers <= 0 {
		opt.Workers = DefaultWorkers
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = DefaultQueueDepth
	}
	if opt.JobTimeout == 0 {
		opt.JobTimeout = DefaultJobTimeout
	}
	if opt.WatchdogWindow == 0 {
		opt.WatchdogWindow = DefaultWatchdogWindow
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = DefaultRetryAfter
	}
	if opt.Base.Cores == 0 {
		opt.Base = config.Scaled()
	}
	s := &Server{
		opt:    opt,
		runner: opt.Runner,
		reg:    telemetry.New(),
		jt:     jobtrace.NewRecorder(opt.JobTraceDepth),
		cache:  make(map[string]*entry),
		byHash: make(map[uint64]*entry),
		queue:  make(chan *job, opt.QueueDepth),
	}
	if opt.PoolBytes >= 0 {
		bytes := opt.PoolBytes
		if bytes == 0 {
			bytes = exp.DefaultPoolBytes
		}
		s.pool = exp.NewSystemPool(bytes)
	}
	if s.runner == nil {
		s.runner = simRunner(opt.WatchdogWindow, s.pool)
	}
	s.cAdmitted = s.reg.Counter("serve.jobs.admitted")
	s.cDone = s.reg.Counter("serve.jobs.done")
	s.cFailed = s.reg.Counter("serve.jobs.failed")
	s.cShed = s.reg.Counter("serve.jobs.shed")
	s.cCancelled = s.reg.Counter("serve.jobs.cancelled")
	s.cPanicked = s.reg.Counter("serve.jobs.panicked")
	s.cHits = s.reg.Counter("serve.cache.hits")
	s.cCoalesced = s.reg.Counter("serve.cache.coalesced")
	s.cMisses = s.reg.Counter("serve.cache.misses")
	s.gQueued = s.reg.Gauge("serve.jobs.queued")
	s.gRunning = s.reg.Gauge("serve.jobs.running")
	s.gSSE = s.reg.Gauge("serve.sse.subscribers")
	s.cFrames = s.reg.Counter("serve.sse.frames")
	s.hQueueWait = s.reg.Histogram("serve.queue.wait_us")
	s.hRun = s.reg.Histogram("serve.job.run_us")
	// The recorder is internally locked, so sampling it from under tmu
	// during snapshots/scrapes is safe.
	s.reg.Sample("serve.jobtrace.violations", func() int64 { return int64(s.jt.Violations()) })
	s.jobCtx, s.jobCancel = context.WithCancelCause(context.Background())
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submit is the admission decision for a canonicalized job: cache hit,
// coalesce onto an in-flight twin, enqueue a fresh run, or shed. The
// returned disposition is one of "hit", "coalesced", "miss".
func (s *Server) submit(spec *Job) (*entry, string, *Error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, "", &Error{Status: http.StatusServiceUnavailable, Kind: KindDraining,
			Msg: "server is draining, not admitting new work"}
	}
	if e, ok := s.cache[spec.Key]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			s.count(s.cHits)
			return e, "hit", nil
		default:
			s.count(s.cCoalesced)
			return e, "coalesced", nil
		}
	}
	e := &entry{done: make(chan struct{}), hash: spec.Hash, prog: newProgress()}
	spec.Prog = e.prog
	// Admission is decided before the queue send so the span's queue
	// phase cannot start after a worker has already stamped dequeue.
	spec.Trace.StampAdmit()
	jb := &job{spec: spec, e: e, enqueued: time.Now()}
	select {
	case s.queue <- jb:
		s.cache[spec.Key] = e
		s.byHash[spec.Hash] = e
		s.mu.Unlock()
		s.tmu.Lock()
		s.cMisses.Inc()
		s.cAdmitted.Inc()
		s.gQueued.Add(1)
		s.tmu.Unlock()
		s.emit(LogEvent{Event: "admitted", Key: spec.KeyHex(), Kind: spec.KindString()})
		return e, "miss", nil
	default:
		s.mu.Unlock()
		s.count(s.cShed)
		s.emit(LogEvent{Event: "shed", Key: spec.KeyHex(), Kind: spec.KindString()})
		retry := int((s.opt.RetryAfter + time.Second - 1) / time.Second)
		return nil, "", &Error{Status: http.StatusTooManyRequests, Kind: KindShed,
			Msg:           fmt.Sprintf("admission queue full (%d jobs); retry later", s.opt.QueueDepth),
			RetryAfterSec: retry}
	}
}

// count bumps one counter under the telemetry lock.
func (s *Server) count(c *telemetry.Counter) {
	s.tmu.Lock()
	c.Inc()
	s.tmu.Unlock()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.execute(jb)
	}
}

// execute runs one dequeued job with deadline, panic isolation and
// structured failure mapping, then resolves its entry.
func (s *Server) execute(jb *job) {
	wait := time.Since(jb.enqueued)
	jb.spec.Trace.StampStart()
	jb.e.prog.setState(stateRunning)
	s.tmu.Lock()
	s.gQueued.Add(-1)
	s.gRunning.Add(1)
	s.hQueueWait.Observe(uint64(wait.Microseconds()))
	s.tmu.Unlock()
	s.emit(LogEvent{Event: "start", Key: jb.spec.KeyHex(), Kind: jb.spec.KindString(),
		QueueMS: float64(wait.Nanoseconds()) / 1e6})

	ctx := s.jobCtx
	var cancel context.CancelFunc
	if s.opt.JobTimeout > 0 {
		ctx, cancel = context.WithTimeoutCause(ctx, s.opt.JobTimeout,
			&Error{Status: http.StatusGatewayTimeout, Kind: KindTimeout,
				Msg: fmt.Sprintf("job exceeded the %v deadline", s.opt.JobTimeout)})
	}
	start := time.Now()
	body, err := s.runIsolated(ctx, jb.spec)
	if cancel != nil {
		cancel()
	}
	elapsed := time.Since(start)

	var se *Error
	if err != nil {
		se = asError(err)
	}
	// State and span resolve before done closes: a subscriber woken by
	// the close observes the terminal state (channel close is the
	// happens-before edge).
	outcome := "done"
	if se != nil {
		outcome = "failed"
		jb.e.prog.setState(stateFailed)
	} else {
		jb.e.prog.setState(stateDone)
	}
	jb.spec.Trace.Finish(outcome, len(body))
	s.mu.Lock()
	jb.e.body, jb.e.err = body, se
	if se != nil {
		// Never cache failures: the next identical request retries.
		delete(s.cache, jb.spec.Key)
		delete(s.byHash, jb.spec.Hash)
	}
	close(jb.e.done)
	s.mu.Unlock()

	s.tmu.Lock()
	s.gRunning.Add(-1)
	s.hRun.Observe(uint64(elapsed.Microseconds()))
	if se == nil {
		s.cDone.Inc()
	} else {
		s.cFailed.Inc()
		switch se.Kind {
		case KindPanic:
			s.cPanicked.Inc()
		case KindTimeout, KindStalled, KindDraining:
			s.cCancelled.Inc()
		}
	}
	s.tmu.Unlock()
	ev := LogEvent{Event: outcome, Key: jb.spec.KeyHex(), Kind: jb.spec.KindString(),
		QueueMS: float64(wait.Nanoseconds()) / 1e6, RunMS: float64(elapsed.Nanoseconds()) / 1e6,
		Bytes: len(jb.e.body)}
	if se != nil {
		ev.Error = se.Error()
	}
	s.emit(ev)
}

// runIsolated invokes the runner behind a recover barrier: a panicking
// job becomes a structured 500 for its waiters and the worker — and
// every sibling job — survives.
func (s *Server) runIsolated(ctx context.Context, spec *Job) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Status: http.StatusInternalServerError, Kind: KindPanic,
				Msg: fmt.Sprintf("job panicked: %v\n%s", r, debug.Stack())}
		}
	}()
	return s.runner(ctx, spec)
}

// Shutdown drains the server: admission stops immediately (readyz flips
// to 503, new submissions get draining errors), queued and running jobs
// are given until ctx expires to finish, then are cancelled
// cooperatively and awaited. It returns nil on a clean drain and
// ctx.Err() when the deadline forced cancellation. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue) // workers exit once the queue is drained
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// Once the workers exit, no job can touch the machine pool again;
	// release its standing memory (lifetime stats survive for /jobs).
	defer func() {
		if s.pool != nil {
			s.pool.Drain()
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.jobCancel(&Error{Status: http.StatusServiceUnavailable, Kind: KindDraining,
			Msg: "job cancelled at the drain deadline"})
		<-done // cancellation is cooperative and prompt (observation-stride polls)
		return ctx.Err()
	}
}

// PoolStats snapshots the machine pool's lifetime activity (zero stats
// when pooling is disabled).
func (s *Server) PoolStats() exp.PoolStats {
	if s.pool == nil {
		return exp.PoolStats{}
	}
	return s.pool.Stats()
}

// Handler returns the service mux: POST /run, POST /key, GET /healthz,
// /readyz, /jobs, /jobs/<key>[/events], /jobs/trace and /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n") // the process is alive; readiness is /readyz
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			writeError(w, &Error{Status: http.StatusServiceUnavailable, Kind: KindDraining, Msg: "draining"})
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobsPath)
	mux.HandleFunc("/key", s.handleKey)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "dasserve\n  POST /run                 {figure|design, benchmarks, mixes, config}\n  POST /key                 canonicalize only; returns {key, kind}\n  GET  /healthz\n  GET  /readyz\n  GET  /jobs                pool state, metrics, latency quantiles\n  GET  /jobs/<key>          lifecycle span (canonicalize/probe/queue/run/render)\n  GET  /jobs/<key>/events   SSE progress stream\n  GET  /jobs/trace          completed spans as Perfetto trace JSON\n  GET  /metrics             Prometheus text exposition\n")
	})
	return mux
}

// maxRequestBytes bounds request bodies; configs are a few KB.
const maxRequestBytes = 1 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sp := s.jt.Begin()
	if r.Method != http.MethodPost {
		sp.Drop()
		writeError(w, &Error{Status: http.StatusMethodNotAllowed, Kind: KindBadRequest, Msg: "POST a JSON request to /run"})
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		sp.Drop()
		writeError(w, &Error{Status: http.StatusBadRequest, Kind: KindBadRequest, Msg: err.Error()})
		return
	}
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		sp.Drop()
		writeError(w, &Error{Status: http.StatusBadRequest, Kind: KindBadRequest, Msg: fmt.Sprintf("request: %v", err)})
		return
	}
	spec, err := Canonicalize(req, s.opt.Base)
	if err != nil {
		sp.Drop()
		writeError(w, &Error{Status: http.StatusBadRequest, Kind: KindBadRequest, Msg: err.Error()})
		return
	}
	sp.StampCanon(spec.KeyHex(), spec.KindString())
	spec.Trace = sp
	e, disp, serr := s.submit(spec)
	if serr != nil {
		sp.Finish(serr.Kind, 0)
		writeError(w, serr)
		return
	}
	if disp == "miss" {
		// The span now belongs to the job: the worker stamps dequeue and
		// completion, the runner stamps run-end. This handler must not
		// touch it again.
		sp = nil
	} else {
		// Hit/coalesced: this request never queues; its span measures the
		// wait on the owning flight instead.
		sp.StampAdmit()
		sp.StampStart()
	}
	select {
	case <-e.done:
	case <-r.Context().Done():
		// The client gave up; the job keeps running for its other
		// waiters and the cache (results are deterministic — the work is
		// never wasted).
		sp.Drop()
		return
	}
	sp.StampRun()
	if e.err != nil {
		sp.Finish("failed", 0)
		writeError(w, e.err)
		return
	}
	sp.Finish(disp, len(e.body))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Cache", disp)
	w.Header().Set("X-Key", fmt.Sprintf("%016x", e.hash))
	w.Header().Set("ETag", fmt.Sprintf("%q", fmt.Sprintf("%016x", e.hash)))
	w.Write(e.body)
}

// Snapshot returns the server's telemetry snapshot (race-safe).
func (s *Server) Snapshot() []telemetry.Metric {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	return s.reg.Snapshot(nil)
}

// jobsJSON is the /jobs response shape.
type jobsJSON struct {
	Draining bool `json:"draining"`
	Workers  int  `json:"workers"`
	QueueCap int  `json:"queue_cap"`
	// CacheHitRatio is (hits + coalesced) / (hits + coalesced + misses):
	// the fraction of admitted /run requests that did not start a fresh
	// simulation. Zero until the first request.
	CacheHitRatio float64            `json:"cache_hit_ratio"`
	Metrics       map[string]float64 `json:"metrics"`
	// Quantiles holds p50/p90/p95/p99 per latency histogram (µs, bucket
	// upper bounds). Map keys render sorted, so the document is
	// deterministic for a given state.
	Quantiles map[string]map[string]float64 `json:"quantiles"`
	// Pool reports the machine pool's lifetime activity; absent when
	// pooling is disabled (Options.PoolBytes < 0).
	Pool *poolJSON `json:"pool,omitempty"`
}

// poolJSON is the /jobs machine-pool section.
type poolJSON struct {
	// HitRate is checkouts served by a recycled machine over all
	// checkouts (zero until the first simulation).
	HitRate float64 `json:"hit_rate"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	// Drops counts checkins discarded because the byte budget was full.
	Drops uint64 `json:"drops"`
	// Machines currently parked, their estimated standing bytes, and the
	// lifetime maximum of that estimate.
	Machines       int   `json:"machines"`
	CurrentBytes   int64 `json:"current_bytes"`
	HighWaterBytes int64 `json:"high_water_bytes"`
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	out := jobsJSON{
		Draining:  s.Draining(),
		Workers:   s.opt.Workers,
		QueueCap:  s.opt.QueueDepth,
		Metrics:   make(map[string]float64, len(snap)),
		Quantiles: make(map[string]map[string]float64, 2),
	}
	for _, m := range snap {
		out.Metrics[m.Name] = m.Value
	}
	s.tmu.Lock()
	for _, h := range []struct {
		name string
		h    *telemetry.Histogram
	}{{"serve.queue.wait_us", s.hQueueWait}, {"serve.job.run_us", s.hRun}} {
		out.Quantiles[h.name] = map[string]float64{
			"p50": float64(h.h.Quantile(0.50)),
			"p90": float64(h.h.Quantile(0.90)),
			"p95": float64(h.h.Quantile(0.95)),
			"p99": float64(h.h.Quantile(0.99)),
		}
	}
	s.tmu.Unlock()
	hits := out.Metrics["serve.cache.hits"] + out.Metrics["serve.cache.coalesced"]
	if total := hits + out.Metrics["serve.cache.misses"]; total > 0 {
		out.CacheHitRatio = hits / total
	}
	if s.pool != nil {
		st := s.pool.Stats()
		out.Pool = &poolJSON{
			HitRate: st.HitRate(), Hits: st.Hits, Misses: st.Misses, Drops: st.Drops,
			Machines: st.Machines, CurrentBytes: st.CurrentBytes, HighWaterBytes: st.HighWaterBytes,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, &Error{Status: http.StatusInternalServerError, Kind: KindInternal, Msg: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
