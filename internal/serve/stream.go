package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// DefaultProgressInterval is the SSE frame period when Options leaves it
// zero. Frames sample counters the simulation already maintains, so the
// period trades client freshness against frame volume only — it cannot
// perturb the simulation.
const DefaultProgressInterval = 200 * time.Millisecond

// handleMetrics serves the registry in Prometheus text exposition
// format. Rendering happens under the telemetry lock, and the encoder
// sorts families, so repeated scrapes of an idle server are
// byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tmu.Lock()
	defer s.tmu.Unlock()
	telemetry.EncodePrometheus(w, s.reg)
}

// handleKey is canonicalize-without-running: POST the same body as /run
// and get back the key a run would have, so clients can subscribe to
// /jobs/<key>/events before (or while) submitting the job itself.
func (s *Server) handleKey(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &Error{Status: http.StatusMethodNotAllowed, Kind: KindBadRequest, Msg: "POST a JSON request to /key"})
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, &Error{Status: http.StatusBadRequest, Kind: KindBadRequest, Msg: err.Error()})
		return
	}
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, &Error{Status: http.StatusBadRequest, Kind: KindBadRequest, Msg: fmt.Sprintf("request: %v", err)})
		return
	}
	spec, err := Canonicalize(req, s.opt.Base)
	if err != nil {
		writeError(w, &Error{Status: http.StatusBadRequest, Kind: KindBadRequest, Msg: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"key\":%q,\"kind\":%q}\n", spec.KeyHex(), spec.KindString())
}

// handleJobsPath dispatches everything under /jobs/: the Perfetto track
// dump, a single span snapshot, and the SSE progress stream.
//
//	GET /jobs/trace         completed spans as trace-event JSON
//	GET /jobs/<key>         lifecycle span snapshot (live or last)
//	GET /jobs/<key>/events  SSE progress stream
func (s *Server) handleJobsPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if rest == "trace" {
		w.Header().Set("Content-Type", "application/json")
		s.jt.EncodeTrace(w)
		return
	}
	key, sub, _ := strings.Cut(rest, "/")
	switch sub {
	case "":
		s.handleJobSpan(w, key)
	case "events":
		s.handleJobEvents(w, r, key)
	default:
		writeError(w, &Error{Status: http.StatusNotFound, Kind: KindBadRequest,
			Msg: fmt.Sprintf("unknown /jobs/ path %q (want /jobs/<key>, /jobs/<key>/events or /jobs/trace)", rest)})
	}
}

func (s *Server) handleJobSpan(w http.ResponseWriter, key string) {
	snap, ok := s.jt.Lookup(key)
	if !ok {
		writeError(w, &Error{Status: http.StatusNotFound, Kind: KindBadRequest,
			Msg: fmt.Sprintf("no span recorded for key %q", key)})
		return
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		writeError(w, &Error{Status: http.StatusInternalServerError, Kind: KindInternal, Msg: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// lookupEntry resolves a %016x key hash to its cache entry.
func (s *Server) lookupEntry(key string) *entry {
	h, err := strconv.ParseUint(key, 16, 64)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byHash[h]
}

// handleJobEvents streams progress frames for one job as server-sent
// events. The first frame is written immediately (a subscriber always
// sees at least one frame, however fast the job), then one frame per
// ProgressInterval, then a final frame plus "event: done" when the job
// resolves. The stream ends on job completion, job failure, or client
// disconnect. Frames read the session's live counters — monotonic
// values advanced at host observation points — so a subscriber cannot
// perturb the simulation and figure bytes stay identical with or
// without watchers.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, key string) {
	e := s.lookupEntry(key)
	if e == nil {
		writeError(w, &Error{Status: http.StatusNotFound, Kind: KindBadRequest,
			Msg: fmt.Sprintf("no job known for key %q (jobs appear on admission; failed jobs are evicted)", key)})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &Error{Status: http.StatusInternalServerError, Kind: KindInternal,
			Msg: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Key", key)

	s.tmu.Lock()
	s.gSSE.Add(1)
	s.tmu.Unlock()
	defer func() {
		s.tmu.Lock()
		s.gSSE.Add(-1)
		s.tmu.Unlock()
	}()

	interval := s.opt.ProgressInterval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	seq := 0
	send := func() bool {
		f := e.prog.frame(seq)
		seq++
		data, err := json.Marshal(f)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		s.count(s.cFrames)
		return true
	}
	finish := func() {
		send()
		fmt.Fprint(w, "event: done\ndata: {}\n\n")
		fl.Flush()
	}
	if !send() {
		return
	}
	// A job that resolved before (or during) the subscription still gets
	// its terminal frame and clean close.
	select {
	case <-e.done:
		finish()
		return
	default:
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.done:
			finish()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !send() {
				return
			}
		}
	}
}
