package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
)

// tinyConfig mirrors internal/exp's test configuration: small enough
// that real-simulation tests stay fast.
func tinyConfig() config.Config {
	c := config.Scaled()
	c.RowsPerBank = 256 // 64 MB
	c.InstrPerCore = 200_000
	c.TagCacheKB = 4
	return c
}

func mustJob(t *testing.T, req Request) *Job {
	t.Helper()
	j, err := Canonicalize(req, tinyConfig())
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", req, err)
	}
	return j
}

// TestKeyCanonicalization is the exactness-of-identity half of the
// caching argument: requests that mean the same simulation must produce
// equal keys no matter how their JSON is spelled.
func TestKeyCanonicalization(t *testing.T) {
	base := mustJob(t, Request{Figure: "7a"})

	// Whitespace and field order in the config cannot split the cache.
	spellings := []string{
		`{"seed": 42, "instr_per_core": 100000}`,
		`{"instr_per_core":100000,"seed":42}`,
		"{\n\t\"instr_per_core\": 100000,\n\t\"seed\": 42\n}",
	}
	var want *Job
	for i, s := range spellings {
		j := mustJob(t, Request{Figure: "7a", Config: json.RawMessage(s)})
		if i == 0 {
			want = j
			if j.Key == base.Key {
				t.Fatal("seed/instr override did not change the key")
			}
			continue
		}
		if j.Key != want.Key || j.Hash != want.Hash {
			t.Fatalf("spelling %d split the cache:\n  %s\nvs\n  %s", i, j.Key, want.Key)
		}
	}

	// Spelling a default explicitly is the same request as omitting it.
	cfgJSON, err := json.Marshal(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	explicit := mustJob(t, Request{Figure: "7a", Config: cfgJSON})
	if explicit.Key != base.Key {
		t.Fatalf("explicit defaults split the cache:\n  %s\nvs\n  %s", explicit.Key, base.Key)
	}

	// Figure-name case and padding normalize away.
	if j := mustJob(t, Request{Figure: "  7A "}); j.Key != base.Key {
		t.Fatal("figure-name case/space split the cache")
	}

	// The parallel-engine knob changes execution, never results (the
	// equivalence suite gates byte-identity), so it must not split the
	// cache — but the job must still carry it for the run.
	par := mustJob(t, Request{Figure: "7a", Config: json.RawMessage(`{"parallel":2}`)})
	if par.Key != base.Key || par.Hash != base.Hash {
		t.Fatalf("parallel knob split the cache:\n  %s\nvs\n  %s", par.Key, base.Key)
	}
	if par.Cfg.Parallel != 2 {
		t.Fatalf("parallel knob lost in canonicalization: %d", par.Cfg.Parallel)
	}
}

// TestKeyDistinguishes pins the other direction: anything that changes
// the simulation must change the key.
func TestKeyDistinguishes(t *testing.T) {
	ref := mustJob(t, Request{Design: "das", Benchmarks: []string{"mcf"}})
	distinct := []Request{
		{Design: "das", Benchmarks: []string{"mcf"}, Config: json.RawMessage(`{"seed": 7}`)},
		{Design: "charm", Benchmarks: []string{"mcf"}},
		{Design: "das", Benchmarks: []string{"lbm"}},
		{Design: "das", Benchmarks: []string{"mcf", "lbm"}},
		{Figure: "7a"},
		{Figure: "7b"},
		{Figure: "7a", Benchmarks: []string{"mcf"}},
		{Figure: "7a", Mixes: []string{"M1"}},
	}
	seen := map[string]int{ref.Key: -1}
	for i, req := range distinct {
		j := mustJob(t, req)
		if prev, dup := seen[j.Key]; dup {
			t.Fatalf("requests %d and %d collide on key %q", i, prev, j.Key)
		}
		seen[j.Key] = i
	}
	// Benchmark order is the core assignment, hence a different run.
	a := mustJob(t, Request{Design: "das", Benchmarks: []string{"mcf", "lbm"}})
	b := mustJob(t, Request{Design: "das", Benchmarks: []string{"lbm", "mcf"}})
	if a.Key == b.Key {
		t.Fatal("benchmark order must be part of the key")
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	cases := []struct {
		req  Request
		want string
	}{
		{Request{}, "one of figure or design"},
		{Request{Figure: "7a", Design: "das"}, "mutually exclusive"},
		{Request{Figure: "fig99"}, "unknown figure"},
		{Request{Design: "warp9"}, "design"},
		{Request{Design: "das"}, "benchmarks"},
		{Request{Figure: "7a", Benchmarks: []string{"quake3"}}, "unknown benchmark"},
		{Request{Figure: "7a", Mixes: []string{"M99"}}, "M99"},
		{Request{Figure: "7a", Config: json.RawMessage(`{"seed":`)}, "config"},
		{Request{Figure: "7a", Config: json.RawMessage(`{"rows_per_bank": -1}`)}, ""},
	}
	for _, c := range cases {
		_, err := Canonicalize(c.req, tinyConfig())
		if err == nil {
			t.Fatalf("Canonicalize(%+v) accepted", c.req)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Canonicalize(%+v) error %q does not mention %q", c.req, err, c.want)
		}
	}
}
