package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer builds a server around an injected runner so behavior
// tests never pay for real simulations.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Base.Cores == 0 {
		opt.Base = tinyConfig()
	}
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// postRunE is the goroutine-safe request helper (no t.Fatal).
func postRunE(ts *httptest.Server, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data, err
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := postRunE(ts, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func metric(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	for _, m := range s.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not in snapshot", name)
	return 0
}

// TestSingleflight is the dedup contract: N concurrent identical
// requests run exactly one simulation and all see the same bytes.
func TestSingleflight(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers:    4,
		QueueDepth: 16,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			n := runs.Add(1)
			<-release // hold every arrival in the in-flight window
			return []byte(fmt.Sprintf("run %d of %s", n, spec.Figure)), nil
		},
	})

	const N = 12
	req := `{"figure": "7a", "config": {"seed": 9}}`
	var wg sync.WaitGroup
	bodies := make([]string, N)
	caches := make([]string, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data, err := postRunE(ts, req)
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], caches[i] = string(data), resp.Header.Get("X-Cache")
		}(i)
	}
	// Wait until the one real run is in flight, then make sure the
	// stragglers coalesce rather than queue.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want 1", N, got)
	}
	misses := 0
	for i := range bodies {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs: %q vs %q", i, bodies[i], bodies[0])
		}
		if caches[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (rest coalesced/hit)", misses)
	}
	// And once resolved, the next request is a pure cache hit.
	resp, data := postRun(t, ts, req)
	if resp.Header.Get("X-Cache") != "hit" || string(data) != bodies[0] {
		t.Fatalf("follow-up was %q with %q", resp.Header.Get("X-Cache"), data)
	}
	if hits := metric(t, s, "serve.cache.hits"); hits < 1 {
		t.Fatalf("serve.cache.hits = %v, want >= 1", hits)
	}
}

// TestOverloadSheds pins the admission contract: a full queue answers
// 429 with Retry-After and a structured JSON body instead of queueing
// without bound.
func TestOverloadSheds(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 3 * time.Second,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			select {
			case <-release:
				return []byte("ok " + spec.Figure), nil
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
		},
	})

	// Occupy the one worker, then the one queue slot (distinct keys so
	// nothing coalesces), waiting for each to be admitted.
	go postRunE(ts, `{"figure": "7a"}`)
	for metric(t, s, "serve.jobs.admitted") < 1 {
		time.Sleep(time.Millisecond)
	}
	go postRunE(ts, `{"figure": "7b"}`)
	for metric(t, s, "serve.jobs.admitted") < 2 {
		time.Sleep(time.Millisecond)
	}

	resp, data := postRun(t, ts, `{"figure": "7c"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request got HTTP %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Kind != KindShed || e.RetryAfterSec != 3 {
		t.Fatalf("shed body = %s (err %v), want kind %q", data, err, KindShed)
	}
	if shed := metric(t, s, "serve.jobs.shed"); shed != 1 {
		t.Fatalf("serve.jobs.shed = %v, want 1", shed)
	}
	close(release)
	// Once the backlog drains, the same request is admitted again.
	for metric(t, s, "serve.jobs.done") < 2 {
		time.Sleep(time.Millisecond)
	}
	if resp, _ := postRun(t, ts, `{"figure": "7c"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request got HTTP %d, want 200", resp.StatusCode)
	}
}

// TestPanicIsolation: a panicking job becomes a structured 500 for its
// waiter while sibling jobs and the server itself keep working.
func TestPanicIsolation(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers:    2,
		QueueDepth: 8,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			if spec.Figure == "7b" {
				panic("tag directory corrupted")
			}
			<-release
			return []byte("sibling ok"), nil
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	var sibStatus int
	var sibBody []byte
	var sibErr error
	go func() {
		defer wg.Done()
		resp, data, err := postRunE(ts, `{"figure": "7a"}`)
		if err != nil {
			sibErr = err
			return
		}
		sibStatus, sibBody = resp.StatusCode, data
	}()

	resp, data := postRun(t, ts, `{"figure": "7b"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job got HTTP %d, want 500", resp.StatusCode)
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Kind != KindPanic {
		t.Fatalf("panic body = %s (err %v), want kind %q", data, err, KindPanic)
	}
	if !strings.Contains(e.Msg, "tag directory corrupted") {
		t.Fatalf("panic message lost the cause: %q", e.Msg)
	}

	close(release) // the sibling, running beside the panic, must finish
	wg.Wait()
	if sibErr != nil {
		t.Fatal(sibErr)
	}
	if sibStatus != http.StatusOK || string(sibBody) != "sibling ok" {
		t.Fatalf("sibling of panicking job got HTTP %d %q", sibStatus, sibBody)
	}
	// Panics are failures, so they are not cached: a retry re-runs and
	// panics again rather than serving a poisoned entry.
	if resp, _ := postRun(t, ts, `{"figure": "7b"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("retry of panicking job got HTTP %d, want a fresh 500", resp.StatusCode)
	}
}

// TestErrorsNotCached: a transient failure must not poison the cache.
func TestErrorsNotCached(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("transient workload hiccup")
			}
			return []byte("recovered"), nil
		},
	})
	if resp, _ := postRun(t, ts, `{"figure": "7a"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first attempt got HTTP %d, want 500", resp.StatusCode)
	}
	resp, data := postRun(t, ts, `{"figure": "7a"}`)
	if resp.StatusCode != http.StatusOK || string(data) != "recovered" {
		t.Fatalf("retry got HTTP %d %q, want the re-run result", resp.StatusCode, data)
	}
	if calls.Load() != 2 {
		t.Fatalf("runner ran %d times, want 2 (error evicted)", calls.Load())
	}
}

// TestDrain covers both graceful-shutdown outcomes: jobs that finish
// inside the deadline drain cleanly; jobs that do not are cancelled
// cooperatively with a structured draining error. Admission stops and
// /readyz flips the moment the drain begins.
func TestDrain(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		s, _ := newTestServer(t, Options{
			Workers: 1,
			Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
				time.Sleep(10 * time.Millisecond)
				return []byte("done"), nil
			},
		})
		e, disp, serr := s.submit(mustJob(t, Request{Figure: "7a"}))
		if serr != nil || disp != "miss" {
			t.Fatalf("submit: %v / %q", serr, disp)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("clean drain returned %v", err)
		}
		<-e.done
		if e.err != nil || string(e.body) != "done" {
			t.Fatalf("drained job: %v %q", e.err, e.body)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		started := make(chan struct{})
		s, ts := newTestServer(t, Options{
			Workers: 1,
			Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
				close(started)
				<-ctx.Done() // a job that never finishes on its own
				return nil, context.Cause(ctx)
			},
		})
		e, _, serr := s.submit(mustJob(t, Request{Figure: "7a"}))
		if serr != nil {
			t.Fatal(serr)
		}
		<-started

		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		if err := s.Shutdown(ctx); err == nil {
			t.Fatal("deadline drain reported clean")
		}
		<-e.done
		if e.err == nil || e.err.Kind != KindDraining {
			t.Fatalf("stuck job resolved as %+v, want kind %q", e.err, KindDraining)
		}

		// Draining servers refuse new work and report not-ready.
		if _, _, serr := s.submit(mustJob(t, Request{Figure: "7b"})); serr == nil || serr.Kind != KindDraining {
			t.Fatalf("submit during drain: %+v, want kind %q", serr, KindDraining)
		}
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz during drain = HTTP %d, want 503", resp.StatusCode)
		}
		// Shutdown is idempotent.
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("second Shutdown: %v", err)
		}
	})
}

// TestJobTimeout: the per-job deadline cancels a stuck job with a
// structured timeout error.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			<-ctx.Done()
			return nil, context.Cause(ctx)
		},
	})
	resp, data := postRun(t, ts, `{"figure": "7a"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stuck job got HTTP %d (%s), want 504", resp.StatusCode, data)
	}
	var e Error
	if err := json.Unmarshal(data, &e); err != nil || e.Kind != KindTimeout {
		t.Fatalf("timeout body = %s, want kind %q", data, KindTimeout)
	}
}

// TestBadRequests: every malformed request is a structured 400.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Runner:  func(ctx context.Context, spec *Job) ([]byte, error) { return []byte("ok"), nil },
	})
	for _, body := range []string{
		`{]`,
		`{}`,
		`{"figure": "nope"}`,
		`{"figure": "7a", "design": "das"}`,
		`{"design": "das"}`,
		`{"figure": "7a", "config": {"rows_per_bank": -4}}`,
	} {
		resp, data := postRun(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", body, resp.StatusCode)
		}
		var e Error
		if err := json.Unmarshal(data, &e); err != nil || e.Kind != KindBadRequest {
			t.Fatalf("%s: body %s, want kind %q", body, data, KindBadRequest)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run = HTTP %d, want 405", resp.StatusCode)
	}
}

// TestJobsEndpoint: /jobs exposes the telemetry counters and the cache
// hit ratio the operator dashboards key off.
func TestJobsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 2,
		Runner:  func(ctx context.Context, spec *Job) ([]byte, error) { return []byte("ok"), nil },
	})
	postRun(t, ts, `{"figure": "7a"}`) // miss
	postRun(t, ts, `{"figure": "7a"}`) // hit
	postRun(t, ts, `{"figure": "7b"}`) // miss

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs struct {
		Draining      bool               `json:"draining"`
		Workers       int                `json:"workers"`
		CacheHitRatio float64            `json:"cache_hit_ratio"`
		Metrics       map[string]float64 `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if jobs.Draining || jobs.Workers != 2 {
		t.Fatalf("jobs header wrong: %+v", jobs)
	}
	if jobs.Metrics["serve.cache.hits"] != 1 || jobs.Metrics["serve.cache.misses"] != 2 {
		t.Fatalf("cache counters wrong: %v", jobs.Metrics)
	}
	if want := 1.0 / 3.0; jobs.CacheHitRatio < want-1e-9 || jobs.CacheHitRatio > want+1e-9 {
		t.Fatalf("cache_hit_ratio = %v, want %v", jobs.CacheHitRatio, want)
	}
	if jobs.Metrics["serve.jobs.done"] != 2 {
		t.Fatalf("serve.jobs.done = %v, want 2", jobs.Metrics["serve.jobs.done"])
	}
	if _, ok := jobs.Metrics["serve.queue.wait_us.p99"]; !ok {
		t.Fatalf("queue-wait histogram missing from /jobs: %v", jobs.Metrics)
	}
}
