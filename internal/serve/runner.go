package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

// simRunner returns the production Runner: one fresh exp.Session per
// job (sessions memoize baselines internally, but the exact-result
// cache lives above the runner, so sharing sessions across jobs would
// only add lock contention for no extra hits), with the session's
// cooperative-cancellation context wired in and the PR 1 no-progress
// watchdog re-armed against wall-clock time. Sessions share the
// server's machine pool so consecutive jobs over one machine shape
// reuse built systems (nil pool = every run builds fresh).
func simRunner(window time.Duration, pool *exp.SystemPool) Runner {
	return func(ctx context.Context, spec *Job) ([]byte, error) {
		cctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		sess := exp.NewSession(spec.Cfg)
		sess.Ctx = cctx
		if pool != nil {
			sess.Pool = pool
		} else {
			sess.DisablePool = true
		}
		if len(spec.Benchmarks) > 0 {
			sess.Benchmarks = spec.Benchmarks
		}
		if len(spec.Mixes) > 0 {
			sess.Mixes = spec.Mixes
		}
		// Expose the session's live counters to SSE subscribers, with the
		// figure's estimated instruction horizon as the ETA denominator.
		// Horizons depend on the workload lists, so bind after setting them.
		var horizon uint64
		if spec.HasDesign {
			horizon = sess.DesignInstrHorizon(spec.Design, spec.Benchmarks)
		} else {
			horizon = sess.InstrHorizon(spec.Figure)
		}
		spec.Prog.Bind(sess, horizon)
		if window > 0 {
			stop := watchSession(sess, window, cancel)
			defer close(stop)
		}
		var fig *exp.Figure
		var err error
		if spec.HasDesign {
			fig, err = sess.DesignFigure(spec.Design, spec.Benchmarks)
		} else {
			fig, err = sess.Figure(spec.Figure)
		}
		if err != nil {
			return nil, err
		}
		spec.Trace.StampRun() // simulation over; what follows is rendering
		return []byte(fig.Render()), nil
	}
}

// watchSession arms a sim.Watchdog over the session's live progress
// counters, driven by wall-clock time: if no engine events execute and
// no instructions retire for a full window while the job runs, the job
// context is cancelled with a structured "stalled" cause. The live
// counters advance at the observation stride, mid-run — so a healthy
// long run can never be mistaken for a stall the way the old
// end-of-run counters allowed. The profiling prepass of static designs
// retires no engine events and stays invisible; the window must still
// comfortably exceed it. The returned channel stops the watcher when
// closed.
func watchSession(sess *exp.Session, window time.Duration, cancel context.CancelCauseFunc) chan struct{} {
	stop := make(chan struct{})
	wd := sim.NewWatchdog(
		sim.FromNS(float64(window.Nanoseconds())),
		func() int { return 1 }, // the job is always "outstanding" while it runs
		func() uint64 { return sess.LiveEvents() + sess.LiveInstrs() },
		nil,
	)
	start := time.Now()
	tick := time.NewTicker(window / 4)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				now := sim.FromNS(float64(time.Since(start).Nanoseconds()))
				if err := wd.Observe(now); err != nil {
					cancel(&Error{Status: http.StatusGatewayTimeout, Kind: KindStalled,
						Msg: fmt.Sprintf("no simulation progress for %v: %v", window, err)})
					return
				}
			}
		}
	}()
	return stop
}
