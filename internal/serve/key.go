// Package serve is the simulation-as-a-service layer: it turns the
// deterministic experiment core (internal/exp) into a robust HTTP
// service with a bounded worker pool, singleflight deduplication,
// provably-exact result caching, overload shedding and graceful drain.
//
// The caching argument rests on two facts the rest of the repo already
// proves: (1) simulations are bit-deterministic in their configuration
// and seed (TestGoldenCommandStreams pins the DRAM command streams of
// all six designs), and (2) figure rendering is byte-stable golden
// output (internal/exp's golden tests). Canonicalizing a request
// therefore yields a key under which a cached body is not merely
// probably fresh but exactly the bytes a re-run would produce.
package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/telemetry/jobtrace"
	"repro/internal/workload"
)

// Request is the wire form of one simulation request. Exactly one of
// Figure or Design selects the work: a figure name regenerates that
// paper figure; a design name runs that single design over Benchmarks
// against its Standard baseline (the cheapest, most cacheable unit).
// Config, when present, is layered over the server's base configuration
// exactly like dasbench -config layers over the episode-scaled Table 1.
type Request struct {
	Figure     string          `json:"figure,omitempty"`
	Design     string          `json:"design,omitempty"`
	Benchmarks []string        `json:"benchmarks,omitempty"`
	Mixes      []string        `json:"mixes,omitempty"`
	Config     json.RawMessage `json:"config,omitempty"`
}

// Job is a canonicalized request: defaults made explicit, names
// normalized and validated, and the deterministic cache identity
// computed. Two requests that mean the same simulation produce equal
// Keys no matter how their JSON was spelled.
type Job struct {
	Figure     string      // normalized figure name ("" when Design is set)
	Design     core.Design // parsed design (valid only when HasDesign)
	HasDesign  bool
	Benchmarks []string
	Mixes      []string
	Cfg        config.Config

	// Key is the canonical identity: figure/design, benchmark and mix
	// lists, and the full canonical-JSON config (every field explicit,
	// struct-ordered — so field order, whitespace and omitted defaults
	// in the request cannot split the cache). Seed and every sweep knob
	// live inside the config, so they are part of the key by
	// construction.
	Key string
	// Hash is the 64-bit FNV-1a of Key: the job's compact identity for
	// logs, the X-Key response header and the ETag.
	Hash uint64

	// Prog and Trace are runtime attachments, not identity: the server
	// wires them on admission (Prog carries live counters to SSE
	// subscribers, Trace is the job's lifecycle span) and the runner
	// feeds them. Both are nil-safe throughout, so runners invoked
	// outside the server need no guards.
	Prog  *Progress      `json:"-"`
	Trace *jobtrace.Span `json:"-"`
}

// KeyHex is the job's compact identity as rendered in the X-Key header,
// the ETag, logs, and the /jobs/<key> URL path.
func (j *Job) KeyHex() string { return fmt.Sprintf("%016x", j.Hash) }

// KindString names the work: the figure name, or "design:<name>".
func (j *Job) KindString() string {
	if j.HasDesign {
		return "design:" + j.Design.String()
	}
	return j.Figure
}

// Canonicalize validates req against base (the server's default
// configuration) and computes its canonical cache identity. All
// validation errors are client errors (bad request).
func Canonicalize(req Request, base config.Config) (*Job, error) {
	j := &Job{Cfg: base}
	if len(req.Config) > 0 {
		// Layering over base and re-marshalling is the canonicalization:
		// json.Unmarshal tolerates any field order and whitespace, and
		// json.Marshal of the struct emits every field in declaration
		// order with defaults explicit.
		if err := json.Unmarshal(req.Config, &j.Cfg); err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
	}
	figure := strings.ToLower(strings.TrimSpace(req.Figure))
	design := strings.TrimSpace(req.Design)
	switch {
	case figure != "" && design != "":
		return nil, fmt.Errorf("request: figure %q and design %q are mutually exclusive", figure, design)
	case figure == "" && design == "":
		return nil, fmt.Errorf("request: one of figure or design is required")
	case design != "":
		d, err := core.ParseDesign(design)
		if err != nil {
			return nil, err
		}
		j.Design, j.HasDesign = d, true
		if len(req.Benchmarks) == 0 {
			return nil, fmt.Errorf("request: design runs need a benchmarks list")
		}
	default:
		if !validFigure(figure) {
			return nil, fmt.Errorf("request: unknown figure %q (want one of %s)",
				figure, strings.Join(exp.FigureNames(), ", "))
		}
		j.Figure = figure
	}
	var err error
	if j.Benchmarks, err = normalizeBenchmarks(req.Benchmarks); err != nil {
		return nil, err
	}
	if j.Mixes, err = normalizeMixes(req.Mixes); err != nil {
		return nil, err
	}
	if j.HasDesign {
		// One core per benchmark, exactly like Session.Run.
		j.Cfg.Cores = len(j.Benchmarks)
	}
	if err := j.Cfg.Validate(); err != nil {
		return nil, err
	}
	// Parallel is an execution knob, not a simulation parameter: the
	// sharded engine produces byte-identical results (gated by the
	// parallel equivalence suite), so requests differing only in it must
	// share one cache entry. It stays in j.Cfg — the run honors it — but
	// is normalized out of the identity.
	keyCfg := j.Cfg
	keyCfg.Parallel = 0
	cfgJSON, err := json.Marshal(keyCfg)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	j.Key = fmt.Sprintf("%s|b=%s|m=%s|%s",
		j.KindString(), strings.Join(j.Benchmarks, ","), strings.Join(j.Mixes, ","), cfgJSON)
	h := fnv.New64a()
	h.Write([]byte(j.Key))
	j.Hash = h.Sum64()
	return j, nil
}

// validFigure reports whether name is a dispatchable figure.
func validFigure(name string) bool {
	for _, n := range exp.FigureNames() {
		if n == name {
			return true
		}
	}
	return false
}

// normalizeBenchmarks trims and validates benchmark names against the
// Table 2 catalog. Order is preserved: it is the core assignment, so
// ["mcf","lbm"] and ["lbm","mcf"] are genuinely different simulations.
func normalizeBenchmarks(names []string) ([]string, error) {
	if len(names) == 0 {
		return nil, nil
	}
	catalog := workload.AllSingleNames()
	out := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if !contains(catalog, n) {
			return nil, fmt.Errorf("request: unknown benchmark %q", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// normalizeMixes trims and validates mix names (M1..M8).
func normalizeMixes(names []string) ([]string, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if _, err := workload.LookupMix(n); err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
