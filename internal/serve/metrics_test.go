package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func scrape(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestMetricsEndpointValidAndDeterministic pins the exposition
// contract end to end: the live endpoint passes the self-contained
// validator, repeated scrapes of an idle server are byte-identical, and
// the serve instruments appear under their sanitized names.
func TestMetricsEndpointValidAndDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	postRun(t, ts, `{"figure": "table2"}`)
	postRun(t, ts, `{"figure": "table2"}`) // hit

	first := scrape(t, ts)
	if err := telemetry.ValidateExposition(first); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, first)
	}
	second := scrape(t, ts)
	if string(first) != string(second) {
		t.Fatalf("idle scrapes differ:\n--- first\n%s\n--- second\n%s", first, second)
	}
	for _, want := range []string{
		"# TYPE serve_jobs_done counter",
		"# TYPE serve_jobs_running gauge",
		"# TYPE serve_queue_wait_us histogram",
		`serve_queue_wait_us_bucket{le="+Inf"} 1`,
		"serve_cache_hits 1",
		"serve_jobtrace_violations 0",
	} {
		if !strings.Contains(string(first), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestJobsQuantiles pins the /jobs satellite: the document carries
// deterministic latency quantiles for both service histograms.
func TestJobsQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	postRun(t, ts, `{"figure": "table2"}`)
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Quantiles map[string]map[string]float64 `json:"quantiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"serve.queue.wait_us", "serve.job.run_us"} {
		q, ok := out.Quantiles[name]
		if !ok {
			t.Fatalf("/jobs missing quantiles for %s", name)
		}
		for _, p := range []string{"p50", "p90", "p95", "p99"} {
			if _, ok := q[p]; !ok {
				t.Fatalf("%s missing %s", name, p)
			}
		}
		if q["p50"] > q["p99"] {
			t.Fatalf("%s: p50 %v > p99 %v", name, q["p50"], q["p99"])
		}
	}
}

// TestJobsTraceEndpoint pins the Perfetto export: valid JSON with the
// process-name metadata and one enclosing slice per completed job.
func TestJobsTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	postRun(t, ts, `{"figure": "table2"}`)
	resp, err := http.Get(ts.URL + "/jobs/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	var slices int
	for _, e := range evs {
		if e["ph"] == "X" && e["args"] != nil {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("trace has no job slices: %v", evs)
	}
}
