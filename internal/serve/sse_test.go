package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSrc is an injected ProgressSource: behavior tests drive the
// counters by hand instead of paying for real simulations.
type fakeSrc struct{ ev, in atomic.Uint64 }

func (f *fakeSrc) LiveEvents() uint64 { return f.ev.Load() }
func (f *fakeSrc) LiveInstrs() uint64 { return f.in.Load() }
func (f *fakeSrc) LiveSimNS() float64 { return float64(f.ev.Load()) }

// keyFor asks the /key endpoint for a request's canonical key, the way
// dasload -follow does.
func keyFor(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/key", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Key  string `json:"key"`
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out.Key) != 16 {
		t.Fatalf("/key: HTTP %d, key %q", resp.StatusCode, out.Key)
	}
	return out.Key
}

// subscribe connects to the job's event stream, retrying while the job
// is not yet admitted (404). It returns the open response.
func subscribe(t *testing.T, ts *httptest.Server, key string) *http.Response {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + key + "/events")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			return resp
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || time.Now().After(deadline) {
			t.Fatalf("subscribe: HTTP %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readStream consumes an SSE response until the "event: done" marker
// (or EOF), returning the decoded frames and whether the done marker
// arrived. onFrame, when non-nil, runs after each decoded frame.
func readStream(t *testing.T, resp *http.Response, onFrame func(n int)) ([]ProgressFrame, bool) {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var frames []ProgressFrame
	clean := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: done" {
			clean = true
			break
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var f ProgressFrame
			if err := json.Unmarshal([]byte(data), &f); err != nil {
				t.Fatalf("frame %q: %v", data, err)
			}
			frames = append(frames, f)
			if onFrame != nil {
				onFrame(len(frames))
			}
		}
	}
	return frames, clean
}

// assertMonotonic pins the frame contract: seq counts from 0 without
// gaps and every counter is non-decreasing.
func assertMonotonic(t *testing.T, frames []ProgressFrame) {
	t.Helper()
	for i, f := range frames {
		if f.Seq != i {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
		if i == 0 {
			continue
		}
		p := frames[i-1]
		if f.Events < p.Events || f.Instrs < p.Instrs || f.SimNS < p.SimNS || f.ElapsedMS < p.ElapsedMS {
			t.Fatalf("counters regressed between frames %d and %d: %+v -> %+v", i-1, i, p, f)
		}
	}
}

// TestSSEMonotonicFramesAndCompletion is the streaming contract: a
// subscriber sees an immediate first frame, monotonic progress frames
// while the job runs, and a terminal "done" frame plus the done event
// when it completes.
func TestSSEMonotonicFramesAndCompletion(t *testing.T) {
	src := &fakeSrc{}
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers:          1,
		ProgressInterval: 5 * time.Millisecond,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			spec.Prog.Bind(src, 1000)
			for i := 0; i < 20; i++ {
				src.ev.Add(7)
				src.in.Add(13)
				time.Sleep(2 * time.Millisecond)
			}
			<-release
			spec.Trace.StampRun() // as simRunner does before rendering
			return []byte("rendered"), nil
		},
	})
	body := `{"figure": "table2"}`
	key := keyFor(t, ts, body)

	ran := make(chan struct{})
	go func() {
		defer close(ran)
		postRunE(ts, body)
	}()
	resp := subscribe(t, ts, key)
	released := false
	frames, clean := readStream(t, resp, func(n int) {
		if n >= 4 && !released {
			released = true
			close(release)
		}
	})
	<-ran
	if !released {
		close(release)
	}
	if len(frames) < 4 {
		t.Fatalf("got %d frames, want at least 4", len(frames))
	}
	if !clean {
		t.Fatal("stream ended without the done event")
	}
	assertMonotonic(t, frames)
	last := frames[len(frames)-1]
	if last.State != "done" {
		t.Fatalf("terminal frame state = %q, want done", last.State)
	}
	if last.Events == 0 || last.Instrs == 0 {
		t.Fatalf("terminal frame lost the counters: %+v", last)
	}
	if last.Horizon != 1000 {
		t.Fatalf("terminal frame horizon = %d, want 1000", last.Horizon)
	}

	// The lifecycle span is queryable after completion and shows the
	// terminal outcome.
	spanResp, err := http.Get(ts.URL + "/jobs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer spanResp.Body.Close()
	var snap struct {
		State   string  `json:"state"`
		Outcome string  `json:"outcome"`
		RunUS   float64 `json:"run_us"`
	}
	if err := json.NewDecoder(spanResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != "done" || snap.Outcome != "done" {
		t.Fatalf("span state/outcome = %q/%q, want done/done", snap.State, snap.Outcome)
	}
	if snap.RunUS <= 0 {
		t.Fatalf("span run phase = %v us, want > 0", snap.RunUS)
	}
}

// TestSSEClosesOnFailure pins the cancellation/failure path: the stream
// terminates with a "failed" frame and the done event, not a hang.
func TestSSEClosesOnFailure(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers:          1,
		ProgressInterval: 5 * time.Millisecond,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			<-release
			return nil, fmt.Errorf("synthetic failure")
		},
	})
	body := `{"figure": "table2"}`
	key := keyFor(t, ts, body)
	go postRunE(ts, body)
	resp := subscribe(t, ts, key)
	released := false
	frames, clean := readStream(t, resp, func(n int) {
		if !released {
			released = true
			close(release)
		}
	})
	if !clean {
		t.Fatal("stream did not close cleanly on job failure")
	}
	if len(frames) == 0 {
		t.Fatal("no frames before failure close")
	}
	if got := frames[len(frames)-1].State; got != "failed" {
		t.Fatalf("terminal frame state = %q, want failed", got)
	}
}

// TestSSEClientDisconnect pins resource release: a subscriber that
// walks away mid-stream frees its slot (the subscriber gauge returns to
// zero) while the job keeps running.
func TestSSEClientDisconnect(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers:          1,
		ProgressInterval: 5 * time.Millisecond,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			<-release
			return []byte("ok"), nil
		},
	})
	defer close(release)
	body := `{"figure": "table2"}`
	key := keyFor(t, ts, body)
	go postRunE(ts, body)
	resp := subscribe(t, ts, key)
	if n := metric(t, s, "serve.sse.subscribers"); n != 1 {
		t.Fatalf("subscribers = %v with one open stream", n)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first frame")
	}
	resp.Body.Close() // walk away mid-stream
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, s, "serve.sse.subscribers") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber gauge did not return to zero after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSSECompletedJobStreams pins late subscription: a stream opened
// after the job resolved still yields one terminal frame and a clean
// close instead of a hang or 404.
func TestSSECompletedJobStreams(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	body := `{"figure": "table2"}`
	resp, _ := postRun(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d", resp.StatusCode)
	}
	key := resp.Header.Get("X-Key")
	frames, clean := readStream(t, subscribe(t, ts, key), nil)
	if !clean || len(frames) == 0 {
		t.Fatalf("late subscription: %d frames, clean=%v", len(frames), clean)
	}
	if frames[0].State != "done" {
		t.Fatalf("late frame state = %q, want done", frames[0].State)
	}
}

// TestSSEUnknownKey404 pins the lookup contract.
func TestSSEUnknownKey404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/jobs/deadbeefdeadbeef/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestStructuredLogEvents pins the transition log: a fresh job emits
// admitted -> start -> done with the canonical key and durations, and a
// cache hit emits nothing.
func TestStructuredLogEvents(t *testing.T) {
	var mu sync.Mutex
	var evs []LogEvent
	_, ts := newTestServer(t, Options{
		Log: func(ev LogEvent) {
			mu.Lock()
			evs = append(evs, ev)
			mu.Unlock()
		},
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	body := `{"figure": "table2"}`
	resp, _ := postRun(t, ts, body)
	key := resp.Header.Get("X-Key")
	// The done event fires after the entry resolves; give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(evs)
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	postRun(t, ts, body) // hit: no transitions

	mu.Lock()
	defer mu.Unlock()
	if len(evs) != 3 {
		t.Fatalf("got %d events %+v, want 3", len(evs), evs)
	}
	for i, want := range []string{"admitted", "start", "done"} {
		if evs[i].Event != want {
			t.Fatalf("event %d = %q, want %q", i, evs[i].Event, want)
		}
		if evs[i].Key != key || evs[i].Kind != "table2" {
			t.Fatalf("event %d key/kind = %q/%q, want %s/table2", i, evs[i].Key, evs[i].Kind, key)
		}
	}
	if evs[2].Bytes != 2 || evs[2].RunMS < 0 {
		t.Fatalf("done event payload: %+v", evs[2])
	}
}

// TestStreamedRunBytesExact is the perturbation-free gate at service
// scale: a real simulation with a live SSE subscriber produces bytes
// identical to an independent unwatched run of the same canonical job.
func TestStreamedRunBytesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	_, ts := newTestServer(t, Options{Workers: 1, ProgressInterval: 10 * time.Millisecond, Base: tinyConfig()})
	body := `{"design": "das", "benchmarks": ["mcf"]}`
	key := keyFor(t, ts, body)

	type streamResult struct {
		frames []ProgressFrame
		clean  bool
	}
	got := make(chan streamResult, 1)
	go func() {
		frames, clean := readStream(t, subscribe(t, ts, key), nil)
		got <- streamResult{frames, clean}
	}()
	resp, served := postRun(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d (%s)", resp.StatusCode, served)
	}
	if resp.Header.Get("X-Key") != key {
		t.Fatalf("/key predicted %q but run returned %q", key, resp.Header.Get("X-Key"))
	}
	sr := <-got
	if !sr.clean || len(sr.frames) == 0 {
		t.Fatalf("stream: %d frames, clean=%v", len(sr.frames), sr.clean)
	}
	assertMonotonic(t, sr.frames)

	spec, err := Canonicalize(Request{Design: "das", Benchmarks: []string{"mcf"}}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := simRunner(0, nil)(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(served) {
		t.Fatalf("watched run differs from unwatched run (%d vs %d bytes)", len(served), len(fresh))
	}
}
