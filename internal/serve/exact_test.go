package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestServedBytesExact runs the real simulator (no injected runner)
// twice through the HTTP path and once directly, pinning the service's
// central claim: the cached response is byte-identical to what a fresh
// re-run of the same canonical job produces.
func TestServedBytesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	_, ts := newTestServer(t, Options{Workers: 1, Base: tinyConfig()})
	body := `{"design": "das", "benchmarks": ["mcf"]}`

	resp1, first := postRun(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: HTTP %d (%s)", resp1.StatusCode, first)
	}
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first run X-Cache = %q, want miss", resp1.Header.Get("X-Cache"))
	}
	resp2, second := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second run: HTTP %d, X-Cache %q, want 200 hit", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if string(first) != string(second) {
		t.Fatalf("cached body differs from first run (%d vs %d bytes)", len(first), len(second))
	}
	if resp1.Header.Get("X-Key") == "" || resp1.Header.Get("X-Key") != resp2.Header.Get("X-Key") {
		t.Fatalf("X-Key mismatch: %q vs %q", resp1.Header.Get("X-Key"), resp2.Header.Get("X-Key"))
	}

	// An independent re-run of the same canonical job, outside the
	// server, produces the same bytes — the cache is exact, not stale.
	spec, err := Canonicalize(Request{Design: "das", Benchmarks: []string{"mcf"},
		Config: json.RawMessage(`{}`)}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := simRunner(0, nil)(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(first) {
		t.Fatalf("independent re-run differs from served body (%d vs %d bytes)", len(fresh), len(first))
	}
}

// TestRealRunCancelsPromptly pins the tentpole's cancellation latency:
// a real in-flight simulation sized to run for a long time must honor
// context cancellation at the observation stride, not at completion.
func TestRealRunCancelsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	cfg := tinyConfig()
	cfg.InstrPerCore = 50_000_000 // far more work than the test allows
	spec, err := Canonicalize(Request{Design: "standard", Benchmarks: []string{"mcf"}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = simRunner(0, nil)(ctx, spec)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled in the chain", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt (observation-stride) response", elapsed)
	}
}
