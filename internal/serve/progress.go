package serve

import (
	"sync/atomic"
	"time"
)

// ProgressSource is what a running job exposes for streaming progress:
// monotonic counters advanced at the simulation's host observation
// points (the sequential observation stride and the parallel engine's
// full epoch barriers — never engine events, so a subscribed stream
// cannot perturb results). exp.Session implements it.
type ProgressSource interface {
	LiveEvents() uint64
	LiveInstrs() uint64
	LiveSimNS() float64
}

// Job states, in lifecycle order.
const (
	stateQueued int32 = iota
	stateRunning
	stateDone
	stateFailed
)

func stateName(st int32) string {
	switch st {
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	default:
		return "failed"
	}
}

// Progress is one job's live progress: a state machine driven by the
// server (queued → running → done/failed) plus a counter source bound
// by the runner once its session exists. All fields are atomics — the
// producer is the simulation's host loop, the consumers are SSE
// handler goroutines.
type Progress struct {
	created time.Time
	state   atomic.Int32
	started atomic.Int64 // unix ns when the job began running
	horizon atomic.Uint64
	src     atomic.Value // ProgressSource
}

func newProgress() *Progress { return &Progress{created: time.Now()} }

// Bind attaches the job's counter source and ETA horizon (0 = unknown).
// Called by the runner after it builds the session; nil-safe so runners
// invoked outside the server (tests, direct calls) need no guard.
func (p *Progress) Bind(src ProgressSource, horizonInstrs uint64) {
	if p == nil {
		return
	}
	p.horizon.Store(horizonInstrs)
	p.src.Store(&src)
}

func (p *Progress) setState(st int32) {
	if p == nil {
		return
	}
	if st == stateRunning {
		p.started.Store(time.Now().UnixNano())
	}
	p.state.Store(st)
}

// ProgressFrame is one SSE data payload. Every numeric field is
// monotonic over a stream's lifetime except eta_ms, which is a
// re-estimate. sim_ns is simulated time; elapsed_ms is wall time since
// the job entered the server.
type ProgressFrame struct {
	Seq       int     `json:"seq"`
	State     string  `json:"state"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Events    uint64  `json:"events"`
	Instrs    uint64  `json:"instrs"`
	SimNS     float64 `json:"sim_ns"`
	Horizon   uint64  `json:"horizon_instrs,omitempty"`
	ETAMS     float64 `json:"eta_ms,omitempty"`
}

// frame samples the current progress. seq is the subscriber's frame
// counter (each subscriber numbers its own stream).
func (p *Progress) frame(seq int) ProgressFrame {
	f := ProgressFrame{Seq: seq, State: "queued"}
	if p == nil {
		return f
	}
	st := p.state.Load()
	f.State = stateName(st)
	f.ElapsedMS = float64(time.Since(p.created).Nanoseconds()) / 1e6
	if v := p.src.Load(); v != nil {
		src := *v.(*ProgressSource)
		f.Events = src.LiveEvents()
		f.Instrs = src.LiveInstrs()
		f.SimNS = src.LiveSimNS()
	}
	f.Horizon = p.horizon.Load()
	if st == stateRunning && f.Horizon > 0 && f.Instrs > 0 {
		runNS := time.Now().UnixNano() - p.started.Load()
		if runNS > 0 && f.Instrs < f.Horizon {
			rate := float64(f.Instrs) / float64(runNS) // instrs per wall ns
			f.ETAMS = float64(f.Horizon-f.Instrs) / rate / 1e6
		}
	}
	return f
}
