package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/exp"
)

// TestJobsPoolStats pins the tentpole's service surface: a second job
// over the same machine shape runs on recycled machines, and /jobs
// reports the pool's hit rate and high-water bytes.
func TestJobsPoolStats(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	s, ts := newTestServer(t, Options{Workers: 1})

	// Two distinct sweep points of one shape: the second job's Standard
	// baseline and DAS machine both check out of the pool.
	for _, body := range []string{
		`{"design": "das", "benchmarks": ["mcf"]}`,
		`{"design": "das", "benchmarks": ["mcf"], "config": {"migration_latency_ns": 200}}`,
	} {
		resp, data := postRun(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d (%s)", body, resp.StatusCode, data)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Pool *poolJSON `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Pool == nil {
		t.Fatal("/jobs has no pool section with pooling enabled")
	}
	if out.Pool.Hits == 0 {
		t.Errorf("second same-shape job never hit the pool: %+v", out.Pool)
	}
	if out.Pool.HitRate <= 0 || out.Pool.HitRate > 1 {
		t.Errorf("hit_rate = %v, want in (0, 1]", out.Pool.HitRate)
	}
	if out.Pool.HighWaterBytes <= 0 {
		t.Errorf("high_water_bytes = %d, want > 0", out.Pool.HighWaterBytes)
	}

	// Shutdown drains the pool's standing memory but keeps lifetime stats.
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.PoolStats()
	if st.Machines != 0 || st.CurrentBytes != 0 {
		t.Errorf("Shutdown left machines pooled: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("Shutdown lost lifetime stats: %+v", st)
	}
}

// TestJobsPoolDisabled pins the opt-out: PoolBytes < 0 serves fresh
// builds only and /jobs omits the pool section.
func TestJobsPoolDisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{
		PoolBytes: -1,
		Runner: func(ctx context.Context, spec *Job) ([]byte, error) {
			return []byte("ok"), nil
		},
	})
	postRun(t, ts, `{"figure": "table2"}`)
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out["pool"]; ok {
		t.Error("/jobs carries a pool section with pooling disabled")
	}
	if st := s.PoolStats(); st != (exp.PoolStats{}) {
		t.Errorf("disabled pool has stats: %+v", st)
	}
}
