package serve

import "time"

// LogEvent is one job transition, emitted to Options.Log when set. The
// dasserve -log-json flag marshals these as one JSON object per line;
// the legacy Logf path keeps its historical free-text formats for the
// terminal transitions only (done, failed, shed), so plain-text logs do
// not get noisier.
//
// Events, in lifecycle order: "admitted" (a fresh job entered the
// queue), "start" (a worker dequeued it), then exactly one of "done",
// "failed", "shed". Cache hits and coalesced waits never run, so they
// produce no events — they are visible in /metrics and /jobs instead.
type LogEvent struct {
	Event   string  `json:"event"`
	Key     string  `json:"key"` // %016x canonical key hash
	Kind    string  `json:"kind,omitempty"`
	QueueMS float64 `json:"queue_ms,omitempty"`
	RunMS   float64 `json:"run_ms,omitempty"`
	Bytes   int     `json:"bytes,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// emit routes one transition to the structured sink when configured,
// else falls back to Logf with the historical line formats.
func (s *Server) emit(ev LogEvent) {
	if s.opt.Log != nil {
		s.opt.Log(ev)
		return
	}
	switch ev.Event {
	case "done":
		s.logf("job %s done in %v (queued %v, %d bytes)", ev.Key,
			time.Duration(ev.RunMS*float64(time.Millisecond)).Round(time.Millisecond),
			time.Duration(ev.QueueMS*float64(time.Millisecond)).Round(time.Millisecond), ev.Bytes)
	case "failed":
		s.logf("job %s failed after %v (queued %v): %s", ev.Key,
			time.Duration(ev.RunMS*float64(time.Millisecond)).Round(time.Millisecond),
			time.Duration(ev.QueueMS*float64(time.Millisecond)).Round(time.Millisecond), ev.Error)
	case "shed":
		s.logf("shed %s (queue full)", ev.Key)
	}
}
