package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Error is the structured failure every non-200 response carries as a
// JSON body. Kind is machine-matchable; Msg is for humans. Status never
// serializes (it is the transport's concern).
type Error struct {
	Status        int    `json:"-"`
	Kind          string `json:"kind"`
	Msg           string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

// Error kinds, one per distinct failure mode the server isolates.
const (
	KindBadRequest = "bad_request" // unparsable or invalid request (400)
	KindShed       = "shed"        // admission queue full, retry later (429)
	KindDraining   = "draining"    // server shutting down (503)
	KindTimeout    = "timeout"     // per-job deadline exceeded (504)
	KindStalled    = "stalled"     // no-progress watchdog fired (504)
	KindPanic      = "panic"       // job panicked; server survived (500)
	KindInternal   = "internal"    // simulation returned an error (500)
)

// Error renders the failure for logs and error chains.
func (e *Error) Error() string { return fmt.Sprintf("serve: %s: %s", e.Kind, e.Msg) }

// writeError emits e as the JSON response, with Retry-After when the
// failure is retryable.
func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSec))
	}
	w.WriteHeader(e.Status)
	body, err := json.Marshal(e)
	if err != nil { // cannot happen for this struct; keep the contract anyway
		body = []byte(`{"kind":"internal","error":"error encoding failed"}`)
	}
	w.Write(append(body, '\n'))
}

// asError maps an arbitrary job failure to its structured form: *Error
// passes through; everything else is an internal simulation failure.
func asError(err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	return &Error{Status: http.StatusInternalServerError, Kind: KindInternal, Msg: err.Error()}
}
