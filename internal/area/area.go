// Package area implements the analytical silicon-area model of
// Sections 3-4: the cost of fast (short-bitline) subarrays, the three
// subarray arrangements of Figure 5, the migration-row overhead, and the
// TL-DRAM comparison. It reproduces the paper's numbers: 6.6% overhead
// for a 1:2 reduced-interleaving DAS-DRAM at 1/8 fast capacity, 11.3%
// at 1/4, and ~24% for TL-DRAM's in-array isolation transistors.
package area

import "fmt"

// Arrangement is a Figure 5 subarray arrangement.
type Arrangement uint8

const (
	// Partitioning groups all fast subarrays at one end of the bank:
	// free ratio, long migration paths.
	Partitioning Arrangement = iota
	// Interleaving alternates fast and slow subarrays: short migration
	// paths, ratio locked to 1:1.
	Interleaving
	// ReducedInterleaving places one fast subarray per two slow ones:
	// short paths at 1:2 (the paper's choice).
	ReducedInterleaving
)

// String names the arrangement.
func (a Arrangement) String() string {
	switch a {
	case Partitioning:
		return "partitioning"
	case Interleaving:
		return "interleaving"
	default:
		return "reduced-interleaving"
	}
}

// Params describes the physical design.
type Params struct {
	// SlowBitlineCells is the cells-per-bitline of a commodity subarray
	// (512 in the paper).
	SlowBitlineCells int
	// FastBitlineCells is the cells-per-bitline of a fast subarray (128;
	// Section 4.3 cites diminishing speed returns below that).
	FastBitlineCells int
	// RowBufferFraction is the sense-amplifier stripe height relative to
	// a slow subarray (1/6 per CHARM).
	RowBufferFraction float64
	// FastSubarraysPerSlow is the fast:slow subarray count ratio
	// (1:2 -> 0.5 for reduced interleaving).
	FastSubarraysPerSlow float64
	// MigrationRows is the number of migration-cell rows added per
	// subarray (1 in the proposed design).
	MigrationRows int
	// PeripheralRows is the height (in cell-row units) of the extra
	// decoder/column-mux stripe each fast subarray needs (Section 3.2:
	// "more peripheral circuits such as decoders and column muxes").
	PeripheralRows float64
}

// Default returns the paper's configuration.
func Default() Params {
	return Params{
		SlowBitlineCells:     512,
		FastBitlineCells:     128,
		RowBufferFraction:    1.0 / 6.0,
		FastSubarraysPerSlow: 0.5,
		MigrationRows:        1,
		PeripheralRows:       24,
	}
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	if p.SlowBitlineCells <= 0 || p.FastBitlineCells <= 0 {
		return fmt.Errorf("area: bitline lengths must be positive")
	}
	if p.FastBitlineCells > p.SlowBitlineCells {
		return fmt.Errorf("area: fast bitline (%d) longer than slow (%d)",
			p.FastBitlineCells, p.SlowBitlineCells)
	}
	if p.RowBufferFraction <= 0 || p.RowBufferFraction >= 1 {
		return fmt.Errorf("area: row-buffer fraction must be in (0,1)")
	}
	if p.FastSubarraysPerSlow < 0 {
		return fmt.Errorf("area: negative subarray ratio")
	}
	if p.MigrationRows < 0 {
		return fmt.Errorf("area: negative migration rows")
	}
	return nil
}

// FastCapacityRatio returns the fraction of total capacity in fast
// subarrays for the configured ratio.
func (p *Params) FastCapacityRatio() float64 {
	fastCells := p.FastSubarraysPerSlow * float64(p.FastBitlineCells)
	return fastCells / (fastCells + float64(p.SlowBitlineCells))
}

// Overhead returns the fractional die-area overhead of the asymmetric
// design versus a homogeneous slow-subarray die of equal capacity.
//
// Model: a subarray's height is its cell rows plus a row-buffer stripe
// of RowBufferFraction x (slow cell rows). Adding fast subarrays adds
// one stripe plus MigrationRows cell rows per fast subarray, amortized
// over the capacity the fast subarray itself contributes.
func (p *Params) Overhead() float64 {
	slow := float64(p.SlowBitlineCells)
	fast := float64(p.FastBitlineCells)
	stripe := p.RowBufferFraction * slow
	// Per slow subarray: slow cells + its stripe.
	// Per fast subarray (xFastSubarraysPerSlow): fast cells + a stripe +
	// migration rows.
	baseHeight := slow + stripe
	asymHeight := baseHeight + p.FastSubarraysPerSlow*(fast+stripe+float64(p.MigrationRows)+p.PeripheralRows)
	baseCells := slow
	asymCells := slow + p.FastSubarraysPerSlow*fast
	// Area per cell, normalized; overhead is the relative growth.
	baseAreaPerCell := baseHeight / baseCells
	asymAreaPerCell := asymHeight / asymCells
	return asymAreaPerCell/baseAreaPerCell - 1
}

// OverheadForCapacityRatio returns the overhead of a design whose fast
// level is 1/denom of total capacity, holding the other parameters. It
// inverts FastCapacityRatio for the subarray ratio.
func (p *Params) OverheadForCapacityRatio(denom int) (float64, error) {
	if denom <= 1 {
		return 0, fmt.Errorf("area: capacity denominator must exceed 1")
	}
	// ratio r = f*F/(f*F+S) where f = fast subarrays per slow.
	r := 1.0 / float64(denom)
	f := r * float64(p.SlowBitlineCells) / (float64(p.FastBitlineCells) * (1 - r))
	q := *p
	q.FastSubarraysPerSlow = f
	return q.Overhead(), nil
}

// TLDRAM models the TL-DRAM overhead of Section 3.1 for comparison: the
// isolation transistor stripe (~11.5 rows' height per subarray) plus the
// half-density near segment.
type TLDRAM struct {
	SlowBitlineCells int
	NearSegmentRows  int
	IsolationRows    float64 // height of isolation stripe in row units
	RowBufferRows    float64 // sense-amp stripe height in row units
}

// DefaultTLDRAM returns the Section 3.1 numbers (128 near-segment rows,
// 11.5-row isolation stripe, 108-row sense-amp height).
func DefaultTLDRAM() TLDRAM {
	return TLDRAM{
		SlowBitlineCells: 512,
		NearSegmentRows:  128,
		IsolationRows:    11.5,
		RowBufferRows:    108,
	}
}

// Overhead returns TL-DRAM's fractional area overhead: the near segment
// occupies double-height cells (half density, because near segments must
// sit on both open-bitline ends), plus the isolation stripe.
func (t TLDRAM) Overhead() float64 {
	base := float64(t.SlowBitlineCells) + t.RowBufferRows
	// Near-segment rows cost twice their height; isolation stripe adds
	// its own rows.
	extra := float64(t.NearSegmentRows) + t.IsolationRows
	return extra / base
}
