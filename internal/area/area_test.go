package area

import (
	"testing"
	"testing/quick"
)

func TestPaperAreaNumbers(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Section 4.3: the 1:2 reduced-interleaving design costs 6.6%.
	if o := p.Overhead(); o < 0.060 || o > 0.072 {
		t.Fatalf("1:2 overhead %.4f, paper says 6.6%%", o)
	}
	// Section 7.6: ratio 1/4 costs 11.3% (our linear model lands close).
	o4, err := p.OverheadForCapacityRatio(4)
	if err != nil {
		t.Fatal(err)
	}
	if o4 < 0.10 || o4 > 0.16 {
		t.Fatalf("1/4 overhead %.4f, paper says ~11.3%%", o4)
	}
	// Section 3.1: TL-DRAM with a 128-row near segment costs ~24%.
	if o := DefaultTLDRAM().Overhead(); o < 0.20 || o > 0.26 {
		t.Fatalf("TL-DRAM overhead %.4f, paper says ~24%%", o)
	}
}

func TestFastCapacityRatio(t *testing.T) {
	p := Default()
	// 1:2 with 128/512 bitlines: 64/(64+512) = 1/9 of capacity.
	if r := p.FastCapacityRatio(); r < 0.110 || r > 0.112 {
		t.Fatalf("capacity ratio %.4f, want ~1/9", r)
	}
}

func TestOverheadMonotonicInRatio(t *testing.T) {
	p := Default()
	prev := 0.0
	for _, d := range []int{32, 16, 8, 4, 2} {
		o, err := p.OverheadForCapacityRatio(d)
		if err != nil {
			t.Fatal(err)
		}
		if o <= prev {
			t.Fatalf("overhead not increasing: 1/%d -> %.4f after %.4f", d, o, prev)
		}
		prev = o
	}
}

func TestOverheadMonotonicInBitline(t *testing.T) {
	// Shorter fast bitlines cost more area at fixed subarray ratio.
	prev := -1.0
	for _, cells := range []int{256, 128, 64, 32} {
		p := Default()
		p.FastBitlineCells = cells
		if o := p.Overhead(); prev >= 0 && o <= prev {
			t.Fatalf("overhead not increasing as bitlines shrink (%d cells)", cells)
		} else {
			prev = o
		}
	}
}

func TestOverheadPositiveProperty(t *testing.T) {
	check := func(fast uint8, ratioQ uint8) bool {
		p := Default()
		p.FastBitlineCells = int(fast%255) + 1
		if p.FastBitlineCells > p.SlowBitlineCells {
			p.FastBitlineCells = p.SlowBitlineCells
		}
		p.FastSubarraysPerSlow = float64(ratioQ%32+1) / 16
		if p.Validate() != nil {
			return true // skip invalid combinations
		}
		o := p.Overhead()
		return o > 0 && o < 2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroFastSubarraysZeroOverhead(t *testing.T) {
	p := Default()
	p.FastSubarraysPerSlow = 0
	if o := p.Overhead(); o != 0 {
		t.Fatalf("homogeneous design has overhead %.4f", o)
	}
}

func TestValidation(t *testing.T) {
	bad := func(mutate func(*Params)) {
		t.Helper()
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Error("invalid params accepted")
		}
	}
	bad(func(p *Params) { p.SlowBitlineCells = 0 })
	bad(func(p *Params) { p.FastBitlineCells = p.SlowBitlineCells + 1 })
	bad(func(p *Params) { p.RowBufferFraction = 0 })
	bad(func(p *Params) { p.RowBufferFraction = 1 })
	bad(func(p *Params) { p.FastSubarraysPerSlow = -1 })
	bad(func(p *Params) { p.MigrationRows = -1 })
	d := Default()
	if _, err := d.OverheadForCapacityRatio(1); err == nil {
		t.Error("capacity denominator 1 accepted")
	}
}

func TestArrangementNames(t *testing.T) {
	if Partitioning.String() != "partitioning" ||
		Interleaving.String() != "interleaving" ||
		ReducedInterleaving.String() != "reduced-interleaving" {
		t.Fatal("arrangement names wrong")
	}
}
