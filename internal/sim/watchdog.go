package sim

import "fmt"

// StallError reports a detected no-progress condition: work was
// outstanding but the progress counter did not move for at least Window
// of simulated time. Report carries the stuck request chain as
// described by the components that were wired into the watchdog.
type StallError struct {
	// Since is the simulation time of the last observed progress.
	Since Time
	// Now is the simulation time at detection.
	Now Time
	// Outstanding is the number of in-flight operations at detection.
	Outstanding int
	// Report describes the stuck state (queue heads, pending
	// migrations, pending translation fetches).
	Report string
}

// Error formats the stall for logs.
func (e *StallError) Error() string {
	msg := fmt.Sprintf("sim: watchdog: no progress for %.0f ns with %d operations outstanding (stalled since t=%.0f ns)",
		(e.Now - e.Since).NS(), e.Outstanding, e.Since.NS())
	if e.Report != "" {
		msg += "\nstuck request chain:\n" + e.Report
	}
	return msg
}

// DefaultWatchdogWindow is the default no-progress window. Every
// legitimate quiet period in the modeled system is orders of magnitude
// shorter: migrations occupy a bank for ~146 ns, the FR-FCFS
// starvation limit is 1 us, and refreshes recur every 7.8 us.
const DefaultWatchdogWindow = Millisecond

// Watchdog detects livelock: requests outstanding while no forward
// progress happens for a configured window of simulated time. It is
// observation-only — it schedules no events of its own, so enabling it
// never perturbs event counts or ordering. The driver loop calls
// Observe periodically (e.g. every few thousand engine steps).
type Watchdog struct {
	window      Time
	outstanding func() int
	progress    func() uint64
	report      func() string

	last       uint64
	lastChange Time
	primed     bool
}

// NewWatchdog builds a watchdog. outstanding reports in-flight
// operations; progress is any counter that moves whenever the system
// does useful work (it may also move backward, e.g. across a stats
// reset — only change matters); report, which may be nil, renders the
// stuck state for the error. A non-positive window selects
// DefaultWatchdogWindow.
func NewWatchdog(window Time, outstanding func() int, progress func() uint64, report func() string) *Watchdog {
	if window <= 0 {
		window = DefaultWatchdogWindow
	}
	if outstanding == nil || progress == nil {
		panic("sim: watchdog requires outstanding and progress functions")
	}
	return &Watchdog{window: window, outstanding: outstanding, progress: progress, report: report}
}

// Observe samples the system at simulation time now and returns a
// *StallError once no progress has been made for the window while work
// is outstanding. Calling it more often than the window only sharpens
// detection latency; correctness needs no particular cadence.
func (w *Watchdog) Observe(now Time) error {
	p := w.progress()
	if !w.primed || p != w.last {
		w.primed = true
		w.last = p
		w.lastChange = now
		return nil
	}
	n := w.outstanding()
	if n == 0 {
		// Idle (e.g. between refresh bursts with empty queues) is not a
		// stall.
		w.lastChange = now
		return nil
	}
	if now-w.lastChange < w.window {
		return nil
	}
	var rep string
	if w.report != nil {
		rep = w.report()
	}
	return &StallError{Since: w.lastChange, Now: now, Outstanding: n, Report: rep}
}
