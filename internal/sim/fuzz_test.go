package sim

import (
	"testing"
)

// refEv is one scheduled event in the reference model.
type refEv struct {
	at  Time
	seq uint64
	id  int
}

// refModel is an executable specification of the engine's ordering
// contract: a flat slice popped by linear min-scan on (at, seq). It is
// deliberately the dumbest correct implementation — O(n) per pop, no
// heap — so a bug would have to exist in both models to go unnoticed.
type refModel struct {
	now Time
	seq uint64
	evs []refEv
}

func (m *refModel) schedule(at Time, id int) {
	m.seq++
	m.evs = append(m.evs, refEv{at: at, seq: m.seq, id: id})
}

// step removes and returns the (at, seq)-minimal event, advancing now.
func (m *refModel) step() (int, bool) {
	if len(m.evs) == 0 {
		return 0, false
	}
	min := 0
	for i := 1; i < len(m.evs); i++ {
		e, b := m.evs[i], m.evs[min]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			min = i
		}
	}
	ev := m.evs[min]
	m.evs = append(m.evs[:min], m.evs[min+1:]...)
	m.now = ev.at
	return ev.id, true
}

// FuzzScheduleOrder drives the engine and the reference model with the
// same operation stream decoded from fuzz input and demands identical
// firing order, clock, and queue occupancy at every point. Both
// scheduling paths (closure and trampoline) are exercised; events fired
// by the engine record their ids so the comparison covers the actual
// callback dispatch, not just the queue bookkeeping.
func FuzzScheduleOrder(f *testing.F) {
	f.Add([]byte{0, 5, 1, 5, 2, 0, 2, 0})                   // FIFO tie at same timestamp
	f.Add([]byte{0, 200, 0, 100, 0, 150, 3, 180, 3, 255})   // RunUntil boundaries
	f.Add([]byte{1, 10, 0, 10, 4, 0, 0, 3, 2, 0, 2, 0})     // drain then refill
	f.Add([]byte{0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2, 0, 5, 0}) // churn then run out
	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine()
		ref := &refModel{}
		var fired, expected []int
		record := func(a, _ any) { fired = append(fired, a.(int)) }
		nextID := 0

		refRunUntil := func(deadline Time) {
			for len(ref.evs) > 0 {
				min := ref.evs[0]
				for _, e := range ref.evs[1:] {
					if e.at < min.at || (e.at == min.at && e.seq < min.seq) {
						min = e
					}
				}
				if min.at > deadline {
					return
				}
				id, _ := ref.step()
				expected = append(expected, id)
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%6, Time(data[i+1])
			switch op {
			case 0: // Schedule (closure path), relative delay
				id := nextID
				nextID++
				eng.Schedule(arg, func() { fired = append(fired, id) })
				ref.schedule(eng.Now()+arg, id)
			case 1: // ScheduleCallAt (trampoline path), absolute time
				id := nextID
				nextID++
				eng.ScheduleCallAt(eng.Now()+arg, record, id, nil)
				ref.schedule(eng.Now()+arg, id)
			case 2: // Step
				eng.Step()
				if id, ok := ref.step(); ok {
					expected = append(expected, id)
				}
			case 3: // RunUntil a nearby deadline
				deadline := eng.Now() + arg
				eng.RunUntil(deadline)
				refRunUntil(deadline)
			case 4: // Drain
				eng.Drain()
				ref.evs = ref.evs[:0]
			case 5: // Run to empty
				eng.Run()
				for {
					id, ok := ref.step()
					if !ok {
						break
					}
					expected = append(expected, id)
				}
			}
			if eng.Now() != ref.now && op != 4 && len(expected) > 0 {
				// The engine clock advances to each fired event; the models
				// must agree whenever anything has fired.
				t.Fatalf("op %d: clock diverged: engine %d, reference %d", op, eng.Now(), ref.now)
			}
			if eng.Pending() != len(ref.evs) {
				t.Fatalf("op %d: occupancy diverged: engine %d pending, reference %d", op, eng.Pending(), len(ref.evs))
			}
		}

		eng.Run()
		for {
			id, ok := ref.step()
			if !ok {
				break
			}
			expected = append(expected, id)
		}
		if len(fired) != len(expected) {
			t.Fatalf("fired %d events, reference fired %d", len(fired), len(expected))
		}
		for i := range fired {
			if fired[i] != expected[i] {
				t.Fatalf("firing order diverged at event %d: engine id %d, reference id %d\nengine: %v\nreference: %v",
					i, fired[i], expected[i], fired, expected)
			}
		}
	})
}
