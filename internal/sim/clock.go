package sim

// Clock converts between a component's cycle domain and engine time.
// A Clock is immutable after creation and safe to copy.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a clock with the given period in picoseconds.
func NewClock(period Time) Clock {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	return Clock{period: period}
}

// NewClockHz returns a clock for the given frequency in hertz, rounding the
// period to the nearest picosecond.
func NewClockHz(hz float64) Clock {
	return NewClock(Time(1e12/hz + 0.5))
}

// Period returns the clock period.
func (c Clock) Period() Time { return c.period }

// Cycles converts a duration to a cycle count, rounding up (a constraint of
// n picoseconds needs ceil(n/period) whole cycles to be satisfied).
func (c Clock) Cycles(d Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + c.period - 1) / c.period)
}

// Duration converts a cycle count to engine time.
func (c Clock) Duration(cycles int64) Time {
	return Time(cycles) * c.period
}

// CycleAt returns the index of the cycle containing time t.
func (c Clock) CycleAt(t Time) int64 {
	return int64(t / c.period)
}

// NextEdge returns the earliest cycle boundary at or after t.
func (c Clock) NextEdge(t Time) Time {
	r := t % c.period
	if r == 0 {
		return t
	}
	return t + c.period - r
}

// Ticker drives a callback on a fixed cycle boundary. Components that do
// work every cycle (e.g. the memory controller's scheduler) use a Ticker
// but may Stop it while idle to keep the event queue small.
type Ticker struct {
	eng     *Engine
	clock   Clock
	fn      func()
	running bool
	stopped bool
}

// NewTicker creates a stopped ticker; call Start to begin ticking.
func NewTicker(eng *Engine, clock Clock, fn func()) *Ticker {
	return &Ticker{eng: eng, clock: clock, fn: fn, stopped: true}
}

// tickerFire is the shared trampoline all tickers schedule through:
// every simulated cycle of every clocked component passes here, and the
// bound (trampoline, *Ticker) pair keeps that steady-state rescheduling
// allocation-free where a t.tick method value would allocate per cycle.
func tickerFire(a, _ any) { a.(*Ticker).tick() }

// Start begins ticking at the next clock edge if not already running.
func (t *Ticker) Start() {
	t.stopped = false
	if t.running {
		return
	}
	t.running = true
	t.eng.ScheduleCallAt(t.clock.NextEdge(t.eng.Now()), tickerFire, t, nil)
}

// Stop requests that ticking cease after the current cycle.
func (t *Ticker) Stop() { t.stopped = true }

// Reset returns the ticker to its initial stopped state for in-place
// reuse. Only valid once the engine's queue has been emptied (Engine
// Reset/Drain): a still-scheduled tick would otherwise fire against the
// rewound state.
func (t *Ticker) Reset() { t.running, t.stopped = false, true }

// Running reports whether a tick is scheduled.
func (t *Ticker) Running() bool { return t.running }

func (t *Ticker) tick() {
	if t.stopped {
		t.running = false
		return
	}
	t.fn()
	if t.stopped {
		t.running = false
		return
	}
	t.eng.ScheduleCall(t.clock.Period(), tickerFire, t, nil)
}
