// Parallel engine: runs one simulation as two event-queue shards on
// separate OS threads under conservative bounded-lookahead
// synchronization, byte-identical to the sequential engine.
//
// # Decomposition
//
// The machine splits at the only place with a nonzero communication
// latency in both directions of the simulated dataflow: between the
// processor side (cores, caches, DAS manager — the "up" shard) and the
// memory side (controller plus all DRAM channels — the "down" shard).
// Finer channel-level sharding cannot be byte-identical here: the
// controller's next-event scheduler coalesces same-instant ticks of all
// channels into one event ordered by a controller-global chain key, and
// cache fills complete waiters synchronously, so neither side has
// internal latency to hide a cut behind. See DESIGN.md §5.3.
//
// # Conservative window
//
// Down→up messages (read-burst completions, migration completions) have
// a minimum delivery latency D: the smallest read-issue→burst-end time
// across timing classes, further clamped by a nonzero migration
// latency. With epoch window W = D/2, a message sent during epoch k
// arrives no earlier than epoch k+2, so the up shard may run epoch k+1
// while the down shard is still in epoch k — a two-stage pipeline.
// Up→down messages (request enqueues, migration requests, stat resets)
// are synchronous calls with zero latency; they are safe because each
// epoch is phased: the up shard finishes epoch k before the down shard
// starts it, and nothing flows down→up inside an epoch.
//
// # Byte identity
//
// Every cross-shard message carries the (at, key) position its effect
// occupies in the sequential run's total order: a scheduled-event
// message (PostCall) allocates a sequence number from the sender's
// engine exactly as ScheduleAt would have; a synchronous-call message
// (PostSync) reuses the sequence number of the event that made the call,
// because sequentially its effect happened inside that event. Sequence
// numbers encode (scheduling instant << 20 | per-instant counter), so
// keys from different shards compare on the shared picosecond clock
// first. The receiver merges its local queue with the inbox under the
// same (at, key) order the sequential engine fires in. The only
// unordered case is an exact (instant, at) collision between events
// scheduled on different shards, where the per-instant counters are not
// comparable; messages win ties. Collision freedom — no two shards
// scheduling same-instant events that fire at the same instant — is
// therefore the protocol's ordering precondition. The equivalence suite
// (internal/exp/parallel_equiv_test.go) gates that this never diverges
// in practice across all designs, page policies and multicore mixes.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// timeMax is an effectively infinite epoch bound.
const timeMax = Time(1) << 62


// xmsg is one cross-shard message: a callback with the delivery time
// and the total-order key described in the package comment above.
type xmsg struct {
	at   Time
	key  uint64 // sender-side sequence number (see engine.go)
	sub  uint64 // sender-side send index: orders messages with equal keys
	cfn  func(a, b any)
	a, b any
	exec bool // counts as an executed event at delivery (PostCall kind)
}

func (m *xmsg) fire() { m.cfn(m.a, m.b) }

// batch is one epoch's handoff between shards.
type batch struct {
	epoch int64
	msgs  []xmsg
	// cut, on the final up→down batch, is the exact (at, seq) position
	// the up shard stopped at; the down shard runs up to it and no
	// further, reproducing the sequential stop point.
	cut *cutPoint
}

type cutPoint struct {
	at  Time
	key uint64
}

// Shard is one domain of a ParEngine: an engine plus the mailbox
// machinery to exchange messages with its peer.
type Shard struct {
	pe   *ParEngine
	eng  *Engine
	idx  int // 0 = up (processor side), 1 = down (memory side)
	peer *Shard

	out     []xmsg // messages generated during the current epoch
	sendIdx uint64
	inbox   []xmsg // pending incoming messages, sorted by (at, key, sub)
	pos     int    // first unconsumed inbox entry
}

// Eng returns the shard's event engine.
func (s *Shard) Eng() *Engine { return s.eng }

// PostSync crosses a synchronous call to the peer shard: fn(a, b) runs
// at the current instant, ordered at the calling event's position in
// the global order. Only the up shard may post synchronously — the
// phased epoch order is what makes zero-latency delivery safe.
func (s *Shard) PostSync(fn func(a, b any), a, b any) {
	if s.idx != 0 {
		panic("sim: PostSync from the down shard (zero-latency up-crossings are not conservative)")
	}
	s.sendIdx++
	s.out = append(s.out, xmsg{
		at: s.eng.now, key: s.eng.cur, sub: s.sendIdx,
		cfn: fn, a: a, b: b,
	})
}

// PostCall crosses a scheduled event to the peer shard: fn(a, b) runs
// at absolute time at, ordered as if the sender had called
// ScheduleCallAt. Only the down shard may post, and at must be at least
// the conservative lookahead (2x the epoch window) in the future — the
// bound FuzzEpochBarrier holds this engine to.
func (s *Shard) PostCall(at Time, fn func(a, b any), a, b any) {
	if s.idx != 1 {
		panic("sim: PostCall from the up shard (use PostSync)")
	}
	if at < s.eng.now+2*s.pe.win {
		panic(fmt.Sprintf("sim: cross-shard delivery at t=%d violates lookahead (now %d, window %d)",
			at, s.eng.now, s.pe.win))
	}
	s.sendIdx++
	s.out = append(s.out, xmsg{
		at: at, key: s.eng.allocSeq(), sub: s.sendIdx,
		cfn: fn, a: a, b: b, exec: true,
	})
}

// takeOut hands the epoch's outgoing messages to the coordinator.
func (s *Shard) takeOut() []xmsg {
	m := s.out
	s.out = nil
	return m
}

// accept merges an incoming batch into the pending inbox.
func (s *Shard) accept(msgs []xmsg) {
	if len(msgs) == 0 {
		return
	}
	if s.pos > 0 {
		s.inbox = append(s.inbox[:0], s.inbox[s.pos:]...)
		s.pos = 0
	}
	s.inbox = append(s.inbox, msgs...)
	in := s.inbox
	sort.Slice(in, func(i, j int) bool {
		if in[i].at != in[j].at {
			return in[i].at < in[j].at
		}
		if in[i].key != in[j].key {
			return in[i].key < in[j].key
		}
		return in[i].sub < in[j].sub
	})
}

// idle reports whether the shard has nothing left to do.
func (s *Shard) idle() bool {
	return s.eng.Pending() == 0 && s.pos >= len(s.inbox)
}

// next returns the earliest pending work item (local event or inbox
// message) of the shard.
func (s *Shard) next() (Time, bool) {
	at, ok := s.eng.nextAt()
	if s.pos < len(s.inbox) && (!ok || s.inbox[s.pos].at < at) {
		return s.inbox[s.pos].at, true
	}
	return at, ok
}

// runEpoch fires local events and delivers inbox messages in merged
// (at, key) order until the next item is at or beyond end (or beyond
// the cut, when one is set). stop, when non-nil, is evaluated after
// every fired item; when it returns true the shard halts immediately
// and reports the exact position it stopped at.
func (s *Shard) runEpoch(end Time, cut *cutPoint, stop func() bool) (bool, cutPoint) {
	for {
		lat, lseq, lok := s.eng.peekNext()
		var m *xmsg
		if s.pos < len(s.inbox) {
			m = &s.inbox[s.pos]
		}
		// The message goes first when it sorts at or before the local
		// head: equal (at, key) across shards is the undecidable tie
		// (distinct engines' per-instant counters), resolved message-first.
		if m != nil && (!lok || m.at < lat || (m.at == lat && m.key <= lseq)) {
			if m.at >= end || (cut != nil && !beforeCut(m.at, m.key, cut)) {
				return false, cutPoint{}
			}
			s.pos++
			s.eng.deliver(m)
		} else {
			if !lok || lat >= end || (cut != nil && !beforeCut(lat, lseq, cut)) {
				return false, cutPoint{}
			}
			s.eng.Step()
		}
		if stop != nil && stop() {
			return true, cutPoint{at: s.eng.now, key: s.eng.cur}
		}
	}
}

// beforeCut reports whether position (at, key) fired before the cut in
// the sequential order. At an exact tie the cut event wins, consistent
// with the message-first rule (the cut is always an up-shard position
// evaluated on the down shard).
func beforeCut(at Time, key uint64, c *cutPoint) bool {
	if at != c.at {
		return at < c.at
	}
	return key < c.key
}

// MboxDepthBuckets is the mailbox-depth histogram size in ShardProf:
// depth d increments Mbox[min(d, MboxDepthBuckets-1)]. The channels are
// cap-2, so bucket 2 means "peer a full pipeline stage behind" and the
// last bucket absorbs any future capacity change.
const MboxDepthBuckets = 4

// ShardProf is one shard's wall-clock occupancy profile, accumulated at
// epoch granularity (never per event). The three occupancy buckets
// telescope — every nanosecond of the shard's wall time is attributed
// to exactly one of them — so BusyNS+WaitNS+BarrierNS == WallNS holds
// exactly, the same components-sum-to-total invariant reqtrace and
// jobtrace enforce:
//
//   - BusyNS: executing events and merging inboxes (runEpoch + accept).
//   - WaitNS: blocked on the peer's mailbox (epoch sends and receives)
//     — the pipeline-stall component.
//   - BarrierNS: the up shard's full-barrier drains every checkEvery
//     epochs, including the check callback itself (watchdog, observer
//     snapshots). Always 0 on the down shard, which never barriers.
//
// Mbox counts outbound mailbox depth observed just before each epoch
// send: a mostly-0 profile means the peer is keeping up, a mostly-2
// (full) profile means this shard is the producer side of the stall.
type ShardProf struct {
	BusyNS    int64
	WaitNS    int64
	BarrierNS int64
	WallNS    int64
	Epochs    uint64
	Mbox      [MboxDepthBuckets]uint64
}

// profTimer telescopes wall time into ShardProf buckets: every lap
// attributes the segment since the previous mark to one bucket, so no
// time is ever dropped or double-counted.
type profTimer struct{ mark time.Time }

func (t *profTimer) lap(bucket *int64) {
	now := time.Now()
	*bucket += int64(now.Sub(t.mark))
	t.mark = now
}

// ParEngine couples two engine shards under the conservative epoch
// protocol. Build one with NewParEngine, wire components to the two
// shards' engines, route cross-domain calls through PostSync/PostCall,
// then drive the whole machine with Run.
type ParEngine struct {
	win  Time
	sh   [2]*Shard
	prof [2]ShardProf
}

// NewParEngine couples up (processor side) and down (memory side) under
// epoch window win: no down→up message may be delivered less than 2*win
// after it was sent. win must be half the minimum cross-domain latency
// or less.
func NewParEngine(up, down *Engine, win Time) *ParEngine {
	if win <= 0 {
		panic("sim: parallel engine window must be positive")
	}
	pe := &ParEngine{win: win}
	pe.sh[0] = &Shard{pe: pe, eng: up, idx: 0}
	pe.sh[1] = &Shard{pe: pe, eng: down, idx: 1}
	pe.sh[0].peer = pe.sh[1]
	pe.sh[1].peer = pe.sh[0]
	return pe
}

// Window returns the epoch window.
func (pe *ParEngine) Window() Time { return pe.win }

// Reset rewinds the coupled shards for in-place reuse after both
// engines have been Reset: mailboxes empty (keeping capacity), send
// indexes and occupancy profiles rewind, and the epoch window is
// replaced — timing-parameter sweeps (e.g. migration latency) change
// the minimum cross-domain latency without changing the machine shape.
// The Shard pointers are stable across Reset, so components that hold
// one keep a valid reference.
func (pe *ParEngine) Reset(win Time) {
	if win <= 0 {
		panic("sim: parallel engine window must be positive")
	}
	pe.win = win
	pe.prof = [2]ShardProf{}
	for _, s := range pe.sh {
		s.out = nil
		s.sendIdx = 0
		clear(s.inbox)
		s.inbox = s.inbox[:0]
		s.pos = 0
	}
}

// Shard returns shard i (0 = up, 1 = down).
func (pe *ParEngine) Shard(i int) *Shard { return pe.sh[i] }

// Executed returns the total executed event count across both shards;
// it equals the sequential engine's count for the same simulation.
func (pe *ParEngine) Executed() uint64 {
	return pe.sh[0].eng.Executed() + pe.sh[1].eng.Executed()
}

// Prof returns shard i's accumulated occupancy profile (0 = up,
// 1 = down). Safe after Run returns, or — for the down shard — inside a
// check callback (the barrier's channel receive orders its writes
// before the callback).
func (pe *ParEngine) Prof(i int) ShardProf { return pe.prof[i] }

// Run drives both shards to completion. The caller's goroutine runs the
// up shard; the down shard runs on its own goroutine, one epoch behind.
//
// stop is evaluated on the up shard after every fired item; when it
// returns true the run halts at that exact event (the down shard is cut
// at the same global position) and Run returns (true, nil) — the
// simulation state is then byte-identical to a sequential run stopped
// by the same condition.
//
// check, when non-nil, runs on the caller's goroutine every checkEvery
// epochs at a full barrier — both shards quiescent with all messages
// merged — so it may read any simulation state (watchdogs, observers,
// cancellation). A non-nil error aborts the run.
//
// Run returns (false, nil) when both shards drain without stop firing
// (the sequential engine's "queue drained" condition).
func (pe *ParEngine) Run(stop func() bool, check func(now Time) error, checkEvery int64) (bool, error) {
	if checkEvery < 1 {
		checkEvery = 1
	}
	up, down := pe.sh[0], pe.sh[1]
	toDown := make(chan batch, 2)
	toUp := make(chan batch, 2)
	upProf, downProf := &pe.prof[0], &pe.prof[1]
	upStart := time.Now()
	upT := profTimer{mark: upStart}
	go func() {
		downStart := time.Now()
		downT := profTimer{mark: downStart}
		for b := range toDown {
			downT.lap(&downProf.WaitNS) // blocked receiving the epoch batch
			down.accept(b.msgs)
			if b.cut != nil {
				down.runEpoch(timeMax, b.cut, nil)
			} else {
				down.runEpoch(Time(b.epoch+1)*pe.win, nil, nil)
			}
			downT.lap(&downProf.BusyNS)
			downProf.Epochs++
			downProf.Mbox[minDepth(len(toUp))]++
			toUp <- batch{epoch: b.epoch, msgs: down.takeOut()}
			downT.lap(&downProf.WaitNS) // send-side backpressure
		}
		downT.lap(&downProf.WaitNS) // close detection
		downProf.WallNS += int64(downT.mark.Sub(downStart))
		close(toUp)
	}()
	finish := func() {
		close(toDown)
		for range toUp { // release the worker; undelivered messages never fire
		}
		upT.lap(&upProf.BarrierNS) // final drain is barrier time
		upProf.WallNS += int64(upT.mark.Sub(upStart))
	}
	recvd := int64(-1) // highest down epoch merged into the up shard
	for epoch := int64(0); ; epoch++ {
		// Conservative dependency: up(k) needs every message delivered in
		// epoch k, all sent ≥ 2 windows earlier, i.e. by down(k-2).
		for recvd < epoch-2 {
			b := <-toUp
			up.accept(b.msgs)
			recvd = b.epoch
		}
		upT.lap(&upProf.WaitNS) // blocked on down(k-2) completion
		stopped, cut := up.runEpoch(Time(epoch+1)*pe.win, nil, stop)
		upT.lap(&upProf.BusyNS)
		upProf.Epochs++
		upProf.Mbox[minDepth(len(toDown))]++
		if stopped {
			toDown <- batch{epoch: epoch, msgs: up.takeOut(), cut: &cut}
			upT.lap(&upProf.WaitNS)
			finish()
			return true, nil
		}
		toDown <- batch{epoch: epoch, msgs: up.takeOut()}
		upT.lap(&upProf.WaitNS) // send-side backpressure
		if (epoch+1)%checkEvery != 0 {
			continue
		}
		// Full barrier: wait for the down shard to finish every epoch sent
		// so far. The channel receive orders its memory behind us, so
		// check may read down-shard state.
		for recvd < epoch {
			b := <-toUp
			up.accept(b.msgs)
			recvd = b.epoch
		}
		if check != nil {
			if err := check(up.eng.now); err != nil {
				upT.lap(&upProf.BarrierNS)
				finish()
				return false, err
			}
		}
		if up.idle() && down.idle() {
			upT.lap(&upProf.BarrierNS)
			finish()
			return false, nil
		}
		// Both shards are quiescent and merged: skip straight to the
		// epoch holding the earliest pending work (refresh-scale gaps
		// would otherwise cost one empty handoff per window). No batch
		// was sent for the skipped epochs, so they are marked received —
		// at this barrier every sent batch has been merged (sends and
		// receives are balanced), which keeps the accounting exact.
		next := timeMax
		if at, ok := up.next(); ok && at < next {
			next = at
		}
		if at, ok := down.next(); ok && at < next {
			next = at
		}
		if e := int64(next / pe.win); e > epoch+1 {
			epoch = e - 1
			recvd = epoch - 1
		}
		upT.lap(&upProf.BarrierNS) // barrier drain + check + idle-skip
	}
}

// minDepth clamps a mailbox depth into the ShardProf histogram.
func minDepth(d int) int {
	if d >= MboxDepthBuckets {
		return MboxDepthBuckets - 1
	}
	return d
}
