package sim

import "testing"

// The engine benchmarks isolate the event hot path from the simulator
// models. BenchmarkEngineScheduleCall is the headline number: one
// schedule+fire round trip through the trampoline path used by the
// clock tickers, cache lookups and controller completions — it must
// report 0 allocs/op. The Churn variants measure heap operations at
// realistic queue depths (a 4-core system keeps a few hundred to a few
// thousand events pending).

// churner is a self-rescheduling periodic event, the dominant event
// shape in the simulator (core/channel tickers).
type churner struct {
	eng    *Engine
	period Time
}

func churnFire(a, _ any) {
	c := a.(*churner)
	c.eng.ScheduleCall(c.period, churnFire, c, nil)
}

func benchmarkEngineChurn(b *testing.B, depth int) {
	eng := NewEngine()
	cs := make([]churner, depth)
	for i := range cs {
		// Coprime-ish periods keep the heap order nontrivial.
		cs[i] = churner{eng: eng, period: Time(997 + 2*i)}
		eng.ScheduleCall(Time(i), churnFire, &cs[i], nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for eng.Executed() < uint64(b.N) {
		eng.Step()
	}
	b.StopTimer()
	eng.Release()
}

func BenchmarkEngineChurn64(b *testing.B) { benchmarkEngineChurn(b, 64) }
func BenchmarkEngineChurn1k(b *testing.B) { benchmarkEngineChurn(b, 1024) }
func BenchmarkEngineChurn8k(b *testing.B) { benchmarkEngineChurn(b, 8192) }

var benchSink int

func benchNopFire(_, _ any) { benchSink++ }

// BenchmarkEngineScheduleCall is a depth-1 schedule+fire round trip on
// the allocation-free trampoline path.
func BenchmarkEngineScheduleCall(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.ScheduleCall(1, benchNopFire, nil, nil)
		eng.Step()
	}
	eng.Release()
}

// BenchmarkEngineScheduleClosure is the same round trip through the
// closure path (Schedule), for comparison against the trampoline.
func BenchmarkEngineScheduleClosure(b *testing.B) {
	eng := NewEngine()
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, fn)
		eng.Step()
	}
	eng.Release()
}

// BenchmarkEngineReleaseReuse measures the per-run cost of standing up
// an engine, running a small workload, and returning the queue backing
// to the pool — the exp.Session fresh-run pattern.
//
// The steady state is 0 allocs/op: Release recycles the Engine struct
// itself along with everything behind it (wheel, bucket arrays,
// overflow heap). This became possible when Release switched to an
// ownership-transferring contract — an engine must not be used after
// Release; systems that outlive a run and want to rewind their engine
// in place call Reset instead (the exp.SystemPool path).
func BenchmarkEngineReleaseReuse(b *testing.B) {
	var cs churner
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		cs.eng, cs.period = eng, 3
		eng.ScheduleCall(0, churnFire, &cs, nil)
		eng.RunUntil(100)
		eng.Drain()
		eng.Release()
	}
}
