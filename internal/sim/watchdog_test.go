package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestWatchdogDetectsStall(t *testing.T) {
	progress := uint64(0)
	outstanding := 3
	wd := NewWatchdog(100*Nanosecond,
		func() int { return outstanding },
		func() uint64 { return progress },
		func() string { return "readQ head: bank 2 row 17" })
	if err := wd.Observe(0); err != nil {
		t.Fatalf("first observation errored: %v", err)
	}
	if err := wd.Observe(50 * Nanosecond); err != nil {
		t.Fatalf("within window errored: %v", err)
	}
	err := wd.Observe(150 * Nanosecond)
	if err == nil {
		t.Fatal("stall not detected")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error type %T, want *StallError", err)
	}
	if stall.Outstanding != 3 {
		t.Fatalf("outstanding = %d, want 3", stall.Outstanding)
	}
	if !strings.Contains(err.Error(), "bank 2 row 17") {
		t.Fatalf("report missing from error: %v", err)
	}
}

func TestWatchdogProgressResetsWindow(t *testing.T) {
	progress := uint64(0)
	wd := NewWatchdog(100*Nanosecond,
		func() int { return 1 },
		func() uint64 { return progress },
		nil)
	if err := wd.Observe(0); err != nil {
		t.Fatal(err)
	}
	progress++ // forward progress just before the window expires
	if err := wd.Observe(90 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if err := wd.Observe(180 * Nanosecond); err != nil {
		t.Fatalf("stall reported %v after progress at t=90ns", err)
	}
	if err := wd.Observe(195 * Nanosecond); err == nil {
		t.Fatal("stall not detected after second quiet window")
	}
}

func TestWatchdogBackwardProgressCounts(t *testing.T) {
	// A stats reset may move the counter backward; any change is
	// progress.
	progress := uint64(100)
	wd := NewWatchdog(100*Nanosecond,
		func() int { return 1 },
		func() uint64 { return progress },
		nil)
	_ = wd.Observe(0)
	progress = 0
	if err := wd.Observe(150 * Nanosecond); err != nil {
		t.Fatalf("backward counter change treated as stall: %v", err)
	}
}

func TestWatchdogIdleIsNotStall(t *testing.T) {
	wd := NewWatchdog(100*Nanosecond,
		func() int { return 0 },
		func() uint64 { return 7 },
		nil)
	for ts := Time(0); ts < Microsecond; ts += 50 * Nanosecond {
		if err := wd.Observe(ts); err != nil {
			t.Fatalf("idle system reported stalled at %v: %v", ts, err)
		}
	}
}

func TestWatchdogDefaultWindow(t *testing.T) {
	wd := NewWatchdog(0, func() int { return 1 }, func() uint64 { return 0 }, nil)
	_ = wd.Observe(0)
	if err := wd.Observe(DefaultWatchdogWindow / 2); err != nil {
		t.Fatal("default window too short")
	}
	if err := wd.Observe(2 * DefaultWatchdogWindow); err == nil {
		t.Fatal("default window never fires")
	}
}
