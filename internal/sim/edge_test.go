package sim

import (
	"fmt"
	"testing"
)

// TestFromNSEdges pins FromNS at the edges: negative durations round
// away from zero symmetrically with positive ones, sub-picosecond
// fractions round to nearest, and values near the int64 horizon (~106
// days of simulated time is Second*9.2e6; DRAM runs use microseconds)
// convert without overflow.
func TestFromNSEdges(t *testing.T) {
	cases := []struct {
		ns   float64
		want Time
	}{
		{0, 0},
		{0.0004, 0},                       // rounds down to zero
		{0.0006, 1},                       // rounds up to one picosecond
		{-0.0006, -1},                     // symmetric rounding for negatives
		{-0.0004, 0},                      // and toward zero below half a pico
		{0.25, 250},                       // quarter nanosecond
		{-13.75, -13750},                  // negative fractional
		{1, 1000},                         // exact unit
		{-1, -1000},                       //
		{1e9, Second},                     // one simulated second
		{7.5, 7500},                       // tRCD-ish magnitudes used by dram
		{9e15, 9_000_000_000_000_000_000}, // near the int64 horizon, exactly representable
	}
	for _, c := range cases {
		if got := FromNS(c.ns); got != c.want {
			t.Errorf("FromNS(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestTimeNSRoundTrip pins NS as the inverse of FromNS on exact values.
func TestTimeNSRoundTrip(t *testing.T) {
	for _, ns := range []float64{0, 0.001, 0.25, 1, 7.5, -13.75, 1e6} {
		if got := FromNS(ns).NS(); got != ns {
			t.Errorf("FromNS(%v).NS() = %v, want exact round trip", ns, got)
		}
	}
}

// TestRunUntilBoundary pins the deadline semantics: an event exactly at
// the deadline fires (inclusive), one past it stays queued, and the
// clock lands on the last fired event — never on the deadline itself.
func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	note := func() { fired = append(fired, e.Now()) }
	e.ScheduleAt(10, note)
	e.ScheduleAt(50, note)
	e.ScheduleAt(51, note)

	e.RunUntil(50)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 50 {
		t.Fatalf("RunUntil(50) fired %v, want [10 50]", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("clock at %d after RunUntil(50), want 50 (last fired event)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want 1 (the t=51 event)", e.Pending())
	}

	// A deadline short of every remaining event fires nothing and leaves
	// the clock alone — RunUntil never advances time on its own.
	e.RunUntil(50)
	if len(fired) != 2 || e.Now() != 50 {
		t.Fatalf("idle RunUntil moved state: fired %v, now %d", fired, e.Now())
	}

	e.RunUntil(51)
	if len(fired) != 3 || e.Now() != 51 {
		t.Fatalf("RunUntil(51) fired %v with clock %d, want third event at 51", fired, e.Now())
	}

	// Empty queue: the clock must hold at the last event even for a far
	// deadline, so a later scheduling phase resumes from event time.
	e.RunUntil(1_000_000)
	if e.Now() != 51 {
		t.Fatalf("RunUntil on empty queue advanced clock to %d, want 51", e.Now())
	}
}

// TestScheduleCallOrdering pins that closure and trampoline events
// share one (at, seq) order: interleaved same-timestamp events fire in
// scheduling order regardless of path.
func TestScheduleCallOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	record := func(a, _ any) { order = append(order, a.(int)) }
	e.Schedule(5, func() { order = append(order, 0) })
	e.ScheduleCall(5, record, 1, nil)
	e.Schedule(5, func() { order = append(order, 2) })
	e.ScheduleCallAt(5, record, 3, nil)
	e.Run()
	for i, id := range order {
		if i != id {
			t.Fatalf("same-timestamp firing order %v, want [0 1 2 3]", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
}

// TestScheduleCallArgs pins that both bound arguments arrive intact.
func TestScheduleCallArgs(t *testing.T) {
	e := NewEngine()
	var gotA, gotB any
	e.ScheduleCall(1, func(a, b any) { gotA, gotB = a, b }, "alpha", 42)
	e.Run()
	if gotA != "alpha" || gotB != 42 {
		t.Fatalf("trampoline received (%v, %v), want (alpha, 42)", gotA, gotB)
	}
}

// TestScheduleCallPanics pins the trampoline path's invariants: the
// same negative-delay / past-time / nil-callback violations that panic
// on the closure path panic here too.
func TestScheduleCallPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	nop := func(_, _ any) {}
	e := NewEngine()
	e.ScheduleCall(10, nop, nil, nil)
	e.Step() // now = 10
	mustPanic("negative delay", func() { e.ScheduleCall(-1, nop, nil, nil) })
	mustPanic("past time", func() { e.ScheduleCallAt(9, nop, nil, nil) })
	mustPanic("nil callback", func() { e.ScheduleCall(1, nil, nil, nil) })
}

// TestReleaseReuse pins the pool contract: Release hands the engine —
// struct and queue backing — to the package pool, and a fresh engine
// adopting the pooled storage starts empty at time zero. (In-place
// reuse of a retained engine is Reset's job; see TestEngineReset.)
func TestReleaseReuse(t *testing.T) {
	e1 := NewEngine()
	for i := 0; i < 100; i++ {
		e1.Schedule(Time(i), func() {})
	}
	e1.RunUntil(49)
	e1.Release()

	e2 := NewEngine() // likely adopts e1's released struct and backing
	if e2.Pending() != 0 || e2.Now() != 0 || e2.Executed() != 0 {
		t.Fatalf("pooled engine not pristine: %d pending, now %d, executed %d",
			e2.Pending(), e2.Now(), e2.Executed())
	}
	n := 0
	for i := 0; i < 10; i++ {
		e2.Schedule(Time(i), func() { n++ })
	}
	e2.Run()
	if n != 10 {
		t.Fatalf("pooled engine fired %d of 10 events", n)
	}
	e2.Release()
}

// TestEngineReset pins the in-place reuse contract: after Reset a
// retained engine replays a workload exactly as a brand-new engine
// would — same firing order, same clock, same executed count — with
// pending events from the previous run discarded.
func TestEngineReset(t *testing.T) {
	run := func(e *Engine) (order []int, now Time, executed uint64) {
		for i := 0; i < 20; i++ {
			i := i
			e.Schedule(Time(100-5*i), func() { order = append(order, i) })
		}
		e.Run()
		return order, e.Now(), e.Executed()
	}
	fresh := NewEngine()
	wantOrder, wantNow, wantExec := run(fresh)
	fresh.Release()

	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunUntil(24) // leave half the events pending, clock mid-run
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 || e.Executed() != 0 {
		t.Fatalf("engine not pristine after Reset: %d pending, now %d, executed %d",
			e.Pending(), e.Now(), e.Executed())
	}
	order, now, exec := run(e)
	if fmt.Sprint(order) != fmt.Sprint(wantOrder) || now != wantNow || exec != wantExec {
		t.Fatalf("reset engine diverged from fresh: order %v/%v now %d/%d executed %d/%d",
			order, wantOrder, now, wantNow, exec, wantExec)
	}
	e.Release()
}
