package sim

import "testing"

// TestFromNSEdges pins FromNS at the edges: negative durations round
// away from zero symmetrically with positive ones, sub-picosecond
// fractions round to nearest, and values near the int64 horizon (~106
// days of simulated time is Second*9.2e6; DRAM runs use microseconds)
// convert without overflow.
func TestFromNSEdges(t *testing.T) {
	cases := []struct {
		ns   float64
		want Time
	}{
		{0, 0},
		{0.0004, 0},                       // rounds down to zero
		{0.0006, 1},                       // rounds up to one picosecond
		{-0.0006, -1},                     // symmetric rounding for negatives
		{-0.0004, 0},                      // and toward zero below half a pico
		{0.25, 250},                       // quarter nanosecond
		{-13.75, -13750},                  // negative fractional
		{1, 1000},                         // exact unit
		{-1, -1000},                       //
		{1e9, Second},                     // one simulated second
		{7.5, 7500},                       // tRCD-ish magnitudes used by dram
		{9e15, 9_000_000_000_000_000_000}, // near the int64 horizon, exactly representable
	}
	for _, c := range cases {
		if got := FromNS(c.ns); got != c.want {
			t.Errorf("FromNS(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestTimeNSRoundTrip pins NS as the inverse of FromNS on exact values.
func TestTimeNSRoundTrip(t *testing.T) {
	for _, ns := range []float64{0, 0.001, 0.25, 1, 7.5, -13.75, 1e6} {
		if got := FromNS(ns).NS(); got != ns {
			t.Errorf("FromNS(%v).NS() = %v, want exact round trip", ns, got)
		}
	}
}

// TestRunUntilBoundary pins the deadline semantics: an event exactly at
// the deadline fires (inclusive), one past it stays queued, and the
// clock lands on the last fired event — never on the deadline itself.
func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	note := func() { fired = append(fired, e.Now()) }
	e.ScheduleAt(10, note)
	e.ScheduleAt(50, note)
	e.ScheduleAt(51, note)

	e.RunUntil(50)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 50 {
		t.Fatalf("RunUntil(50) fired %v, want [10 50]", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("clock at %d after RunUntil(50), want 50 (last fired event)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want 1 (the t=51 event)", e.Pending())
	}

	// A deadline short of every remaining event fires nothing and leaves
	// the clock alone — RunUntil never advances time on its own.
	e.RunUntil(50)
	if len(fired) != 2 || e.Now() != 50 {
		t.Fatalf("idle RunUntil moved state: fired %v, now %d", fired, e.Now())
	}

	e.RunUntil(51)
	if len(fired) != 3 || e.Now() != 51 {
		t.Fatalf("RunUntil(51) fired %v with clock %d, want third event at 51", fired, e.Now())
	}

	// Empty queue: the clock must hold at the last event even for a far
	// deadline, so a later scheduling phase resumes from event time.
	e.RunUntil(1_000_000)
	if e.Now() != 51 {
		t.Fatalf("RunUntil on empty queue advanced clock to %d, want 51", e.Now())
	}
}

// TestScheduleCallOrdering pins that closure and trampoline events
// share one (at, seq) order: interleaved same-timestamp events fire in
// scheduling order regardless of path.
func TestScheduleCallOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	record := func(a, _ any) { order = append(order, a.(int)) }
	e.Schedule(5, func() { order = append(order, 0) })
	e.ScheduleCall(5, record, 1, nil)
	e.Schedule(5, func() { order = append(order, 2) })
	e.ScheduleCallAt(5, record, 3, nil)
	e.Run()
	for i, id := range order {
		if i != id {
			t.Fatalf("same-timestamp firing order %v, want [0 1 2 3]", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
}

// TestScheduleCallArgs pins that both bound arguments arrive intact.
func TestScheduleCallArgs(t *testing.T) {
	e := NewEngine()
	var gotA, gotB any
	e.ScheduleCall(1, func(a, b any) { gotA, gotB = a, b }, "alpha", 42)
	e.Run()
	if gotA != "alpha" || gotB != 42 {
		t.Fatalf("trampoline received (%v, %v), want (alpha, 42)", gotA, gotB)
	}
}

// TestScheduleCallPanics pins the trampoline path's invariants: the
// same negative-delay / past-time / nil-callback violations that panic
// on the closure path panic here too.
func TestScheduleCallPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	nop := func(_, _ any) {}
	e := NewEngine()
	e.ScheduleCall(10, nop, nil, nil)
	e.Step() // now = 10
	mustPanic("negative delay", func() { e.ScheduleCall(-1, nop, nil, nil) })
	mustPanic("past time", func() { e.ScheduleCallAt(9, nop, nil, nil) })
	mustPanic("nil callback", func() { e.ScheduleCall(1, nil, nil, nil) })
}

// TestReleaseReuse pins the queue pool contract: an engine keeps
// working after Release, and a fresh engine adopting the pooled backing
// starts empty at time zero.
func TestReleaseReuse(t *testing.T) {
	e1 := NewEngine()
	for i := 0; i < 100; i++ {
		e1.Schedule(Time(i), func() {})
	}
	e1.RunUntil(49)
	e1.Release()
	if e1.Pending() != 0 {
		t.Fatalf("%d events pending after Release, want 0", e1.Pending())
	}
	// Still usable post-Release.
	ran := false
	e1.Schedule(1, func() { ran = true })
	e1.Run()
	if !ran {
		t.Fatal("engine unusable after Release")
	}

	e2 := NewEngine() // likely adopts e1's released backing
	if e2.Pending() != 0 || e2.Now() != 0 {
		t.Fatalf("pooled engine not pristine: %d pending, now %d", e2.Pending(), e2.Now())
	}
	n := 0
	for i := 0; i < 10; i++ {
		e2.Schedule(Time(i), func() { n++ })
	}
	e2.Run()
	if n != 10 {
		t.Fatalf("pooled engine fired %d of 10 events", n)
	}
}
