package sim

import (
	"testing"
	"testing/quick"
)

func TestClockConversions(t *testing.T) {
	c := NewClock(1250) // DDR3-1600 command clock
	if c.Cycles(13750) != 11 {
		t.Errorf("13.75ns = %d cycles, want 11", c.Cycles(13750))
	}
	if c.Cycles(13751) != 12 {
		t.Errorf("rounding up failed: %d", c.Cycles(13751))
	}
	if c.Duration(39) != 48750 {
		t.Errorf("39 cycles = %d ps, want 48750", c.Duration(39))
	}
	if c.Cycles(0) != 0 || c.Cycles(-5) != 0 {
		t.Error("non-positive durations should be 0 cycles")
	}
}

func TestClockHz(t *testing.T) {
	c := NewClockHz(3e9)
	if c.Period() != 333 {
		t.Errorf("3GHz period = %d ps, want 333", c.Period())
	}
	c = NewClockHz(800e6)
	if c.Period() != 1250 {
		t.Errorf("800MHz period = %d ps, want 1250", c.Period())
	}
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock(100)
	cases := []struct{ in, want Time }{{0, 0}, {1, 100}, {99, 100}, {100, 100}, {101, 200}}
	for _, cs := range cases {
		if got := c.NextEdge(cs.in); got != cs.want {
			t.Errorf("NextEdge(%d) = %d, want %d", cs.in, got, cs.want)
		}
	}
}

func TestClockZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewClock(0)
}

func TestClockRoundtripProperty(t *testing.T) {
	// Property: Duration(Cycles(d)) >= d for any non-negative duration
	// (ceiling conversion never undershoots a constraint).
	c := NewClock(1250)
	check := func(d uint32) bool {
		dur := Time(d)
		return c.Duration(c.Cycles(dur)) >= dur
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTickerTicksAndStops(t *testing.T) {
	e := NewEngine()
	c := NewClock(10)
	count := 0
	var tk *Ticker
	tk = NewTicker(e, c, func() {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	tk.Start()
	e.Run()
	if count != 5 {
		t.Fatalf("ticked %d times, want 5", count)
	}
	if tk.Running() {
		t.Fatal("ticker still running after stop")
	}
	// Restart works.
	tk.Start()
	e.RunUntil(e.Now() + 100)
	if count <= 5 {
		t.Fatal("ticker did not restart")
	}
}

func TestTickerStartIdempotent(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := NewTicker(e, NewClock(10), func() { count++ })
	tk.Start()
	tk.Start() // must not double-schedule
	e.RunUntil(35)
	if count != 4 { // t=0,10,20,30
		t.Fatalf("ticked %d times, want 4", count)
	}
	tk.Stop()
	e.Run()
}

func TestTickerAlignsToEdge(t *testing.T) {
	e := NewEngine()
	var first Time = -1
	var tk *Ticker
	tk = NewTicker(e, NewClock(100), func() {
		if first < 0 {
			first = e.Now()
		}
		tk.Stop()
	})
	e.Schedule(150, tk.Start)
	e.Run()
	if first != 200 {
		t.Fatalf("first tick at %d, want next edge 200", first)
	}
}
