package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Simulation components use it instead of math/rand so that
// streams are reproducible, cheap, and independent per component.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. A zero seed is remapped to a fixed nonzero
// constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator from this one. Deriving rather
// than sharing keeps component streams decoupled: adding a consumer in one
// component does not perturb another component's stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}
