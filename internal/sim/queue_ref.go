//go:build sim_refheap

package sim

import "container/heap"

// eventQueue under the sim_refheap build tag is the seed engine's event
// queue: a binary min-heap of per-event pointer allocations driven
// through container/heap. It is kept as the reference implementation
// the value-typed 4-ary queue is cross-checked against:
//
//	go test -tags sim_refheap ./internal/sim
//
// runs the full engine suite (ordering, fuzz, property tests) on it,
// and scripts/check.sh diffs whole-figure output between a default
// build and a sim_refheap build — both must be byte-identical, since
// the firing order is the queue-independent total order (at, seq).
type eventQueue struct {
	h refHeap
}

type refHeap []*entry

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*entry)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (q *eventQueue) attachPooled() {}

func (q *eventQueue) len() int { return len(q.h) }

func (q *eventQueue) minAt() Time { return q.h[0].at }

func (q *eventQueue) minKey() (Time, uint64) { return q.h[0].at, q.h[0].seq }

func (q *eventQueue) push(e entry) {
	n := new(entry)
	*n = e
	heap.Push(&q.h, n)
}

func (q *eventQueue) pop() entry {
	return *(heap.Pop(&q.h).(*entry))
}

func (q *eventQueue) reset() { q.h = q.h[:0] }

func (q *eventQueue) release() { q.h = nil }
