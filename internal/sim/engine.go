// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is a global int64 measured in picoseconds. Components schedule
// callbacks at absolute or relative times; events at the same timestamp
// fire in FIFO order of scheduling, which makes every simulation run
// bit-reproducible for a given seed.
//
// Determinism contract: the firing order is the strict total order
// (at, seq), where seq is the engine-unique scheduling sequence number.
// It is independent of the queue's internal layout, so any conforming
// queue implementation (the default timing wheel with 4-ary overflow
// heap, or the container/heap reference selected by the sim_refheap
// build tag) produces byte-identical simulations.
package sim

import "fmt"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// FromNS converts a duration in (possibly fractional) nanoseconds to Time,
// rounding to the nearest picosecond.
func FromNS(ns float64) Time {
	if ns < 0 {
		return Time(ns*1000 - 0.5)
	}
	return Time(ns*1000 + 0.5)
}

// NS reports t in nanoseconds as a float.
func (t Time) NS() float64 { return float64(t) / 1000 }

// entry is a single scheduled callback, stored by value inside the
// event queue: scheduling allocates no per-event heap node. Exactly one
// of fn (closure form) and cfn (bound-call form) is set.
type entry struct {
	at  Time
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func()
	cfn func(a, b any)
	a   any
	b   any
}

// before reports whether e fires before o under the (at, seq) order.
func (e *entry) before(o *entry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// fire invokes the callback.
func (e *entry) fire() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.cfn(e.a, e.b)
}

// Engine is a discrete-event simulator. The zero value is ready to use;
// NewEngine additionally recycles queue storage from earlier engines.
type Engine struct {
	now Time
	seq uint64
	q   eventQueue
	// Executed counts events that have fired; useful for diagnostics.
	executed uint64
}

// NewEngine returns an empty engine at time zero, reusing pooled queue
// storage released by previous engines (see Release).
func NewEngine() *Engine {
	e := &Engine{}
	e.q.attachPooled()
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return e.q.len() }

// Schedule runs fn after delay.
//
// Invariant: delay must be non-negative. A violation panics rather than
// returning an error because scheduling into the past can only come
// from a component bug, and continuing would silently corrupt causality
// for the rest of the run; there is no caller-side recovery that leaves
// the simulation meaningful.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d at t=%d", delay, e.now))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at.
//
// Invariant: at must not precede Now and fn must be non-nil. Both
// violations panic by design (see Schedule): they indicate engine
// misuse by a component, not a recoverable runtime condition, so they
// are treated as assertion failures instead of returned errors.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at past time %d (now %d)", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	e.seq++
	e.q.push(entry{at: at, seq: e.seq, fn: fn})
}

// ScheduleCall runs fn(a, b) after delay. This is the allocation-free
// scheduling path for hot sites: fn is typically a package-level
// trampoline and a/b pointers to long-lived component state, so —
// unlike a fresh closure — nothing escapes per call. Ordering and
// invariants are identical to Schedule.
func (e *Engine) ScheduleCall(delay Time, fn func(a, b any), a, b any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d at t=%d", delay, e.now))
	}
	e.ScheduleCallAt(e.now+delay, fn, a, b)
}

// ScheduleCallAt runs fn(a, b) at absolute time at (see ScheduleCall).
func (e *Engine) ScheduleCallAt(at Time, fn func(a, b any), a, b any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at past time %d (now %d)", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	e.seq++
	e.q.push(entry{at: at, seq: e.seq, cfn: fn, a: a, b: b})
}

// Step fires the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if e.q.len() == 0 {
		return false
	}
	ev := e.q.pop()
	e.now = ev.at
	e.executed++
	ev.fire()
	return true
}

// RunUntil fires events in timestamp order until the queue is empty or the
// next event is strictly after deadline. The clock is left at the later of
// its current value and the last fired event (it is NOT advanced to the
// deadline so that callers can continue running afterwards).
func (e *Engine) RunUntil(deadline Time) {
	for e.q.len() > 0 && e.q.minAt() <= deadline {
		e.Step()
	}
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Drain discards all pending events without running them. Useful for
// tearing down a simulation early. The queue's backing storage is kept
// for reuse by later scheduling phases.
func (e *Engine) Drain() {
	e.q.reset()
}

// Release discards any pending events and returns the queue's backing
// storage to a package-level free list, where the next NewEngine picks
// it up. An experiment session builds one short-lived engine per run,
// and the queue arrays they grow are the engine's only steady-state
// allocation; releasing them makes the whole schedule/fire path
// allocation-free across runs. The engine remains usable afterwards
// (its queue simply starts empty and unpooled).
func (e *Engine) Release() {
	e.q.release()
}
