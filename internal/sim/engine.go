// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is a global int64 measured in picoseconds. Components schedule
// callbacks at absolute or relative times; events at the same timestamp
// fire in FIFO order of scheduling, which makes every simulation run
// bit-reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// FromNS converts a duration in (possibly fractional) nanoseconds to Time,
// rounding to the nearest picosecond.
func FromNS(ns float64) Time {
	if ns < 0 {
		return Time(ns*1000 - 0.5)
	}
	return Time(ns*1000 + 0.5)
}

// NS reports t in nanoseconds as a float.
func (t Time) NS() float64 { return float64(t) / 1000 }

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// Executed counts events that have fired; useful for diagnostics.
	executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay.
//
// Invariant: delay must be non-negative. A violation panics rather than
// returning an error because scheduling into the past can only come
// from a component bug, and continuing would silently corrupt causality
// for the rest of the run; there is no caller-side recovery that leaves
// the simulation meaningful.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d at t=%d", delay, e.now))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at.
//
// Invariant: at must not precede Now and fn must be non-nil. Both
// violations panic by design (see Schedule): they indicate engine
// misuse by a component, not a recoverable runtime condition, so they
// are treated as assertion failures instead of returned errors.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at past time %d (now %d)", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// Step fires the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// RunUntil fires events in timestamp order until the queue is empty or the
// next event is strictly after deadline. The clock is left at the later of
// its current value and the last fired event (it is NOT advanced to the
// deadline so that callers can continue running afterwards).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Drain discards all pending events without running them. Useful for
// tearing down a simulation early.
func (e *Engine) Drain() {
	e.events = e.events[:0]
}
