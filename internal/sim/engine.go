// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is a global int64 measured in picoseconds. Components schedule
// callbacks at absolute or relative times; events at the same timestamp
// fire in FIFO order of scheduling, which makes every simulation run
// bit-reproducible for a given seed.
//
// Determinism contract: the firing order is the strict total order
// (at, seq), where seq is the engine-unique scheduling sequence number.
// It is independent of the queue's internal layout, so any conforming
// queue implementation (the default timing wheel with 4-ary overflow
// heap, or the container/heap reference selected by the sim_refheap
// build tag) produces byte-identical simulations.
package sim

import (
	"fmt"
	"sync"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// FromNS converts a duration in (possibly fractional) nanoseconds to Time,
// rounding to the nearest picosecond.
func FromNS(ns float64) Time {
	if ns < 0 {
		return Time(ns*1000 - 0.5)
	}
	return Time(ns*1000 + 0.5)
}

// NS reports t in nanoseconds as a float.
func (t Time) NS() float64 { return float64(t) / 1000 }

// Sequence numbers encode the scheduling instant in their high bits and
// a per-instant FIFO counter in the low bits:
//
//	seq = uint64(scheduling-time) << seqCounterBits | counter
//
// Engine time never decreases between schedules, so this order is
// exactly the old global-counter FIFO order — goldens are unaffected —
// while making the scheduling instant recoverable from the sequence
// number alone. The parallel engine depends on that: a cross-shard
// message ordered by its sender-side sequence number interleaves with a
// receiver's local events precisely where the sequential engine would
// have fired it, because both shards' high bits live on the same global
// picosecond clock (see par_engine.go).
const (
	seqCounterBits = 20
	seqCounterMax  = 1<<seqCounterBits - 1
	// maxSeqInstant bounds schedulable time to 2^44 ps (~17.6 s of
	// simulated time, ~35x the experiment watchdog ceiling).
	maxSeqInstant = Time(1)<<(64-seqCounterBits) - 1
)

// entry is a single scheduled callback, stored by value inside the
// event queue: scheduling allocates no per-event heap node. Exactly one
// of fn (closure form) and cfn (bound-call form) is set.
type entry struct {
	at  Time
	seq uint64 // (instant, counter) tie-break for equal timestamps; see above
	fn  func()
	cfn func(a, b any)
	a   any
	b   any
}

// before reports whether e fires before o under the (at, seq) order.
func (e *entry) before(o *entry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// fire invokes the callback.
func (e *entry) fire() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.cfn(e.a, e.b)
}

// Engine is a discrete-event simulator. The zero value is ready to use;
// NewEngine additionally recycles queue storage from earlier engines.
type Engine struct {
	now    Time
	seqAt  Time   // instant the per-instant counter belongs to
	seqCtr uint64 // next counter value at seqAt
	cur    uint64 // sequence number of the event currently firing
	q      eventQueue
	// Executed counts events that have fired; useful for diagnostics.
	executed uint64
}

// enginePool recycles Engine structs across Release/NewEngine so the
// build-run-release cycle of an experiment session allocates nothing at
// steady state: Release zeroes the struct (its queue storage goes back
// to its own pools first), and NewEngine re-attaches pooled storage to
// a recycled struct.
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// NewEngine returns an empty engine at time zero, reusing pooled queue
// storage — and the Engine struct itself — released by previous engines
// (see Release).
func NewEngine() *Engine {
	e := enginePool.Get().(*Engine)
	e.q.attachPooled()
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return e.q.len() }

// allocSeq hands out the next sequence number: the current instant in
// the high bits, a per-instant FIFO counter in the low bits.
func (e *Engine) allocSeq() uint64 {
	if e.now != e.seqAt {
		e.seqAt, e.seqCtr = e.now, 0
	}
	c := e.seqCtr
	if c > seqCounterMax {
		panic(fmt.Sprintf("sim: more than %d events scheduled at t=%d", seqCounterMax+1, e.now))
	}
	if e.now > maxSeqInstant {
		panic(fmt.Sprintf("sim: schedule beyond representable time (t=%d > %d)", e.now, maxSeqInstant))
	}
	e.seqCtr++
	return uint64(e.now)<<seqCounterBits | c
}

// nextAt returns the timestamp of the earliest pending event.
func (e *Engine) nextAt() (Time, bool) {
	if e.q.len() == 0 {
		return 0, false
	}
	return e.q.minAt(), true
}

// peekNext exposes the (at, seq) key of the earliest pending event
// without removing it. The parallel engine's shard loop uses this to
// merge cross-shard messages against the local queue. The peek must be
// non-destructive: a pop-and-restash would advance the timing wheel's
// window base past the current time, and callbacks of messages
// delivered before the stash fires would then push below base — the
// exact base-retreat stranding the wheel's push comment rules out.
func (e *Engine) peekNext() (Time, uint64, bool) {
	if e.q.len() == 0 {
		return 0, 0, false
	}
	at, seq := e.q.minKey()
	return at, seq, true
}

// Schedule runs fn after delay.
//
// Invariant: delay must be non-negative. A violation panics rather than
// returning an error because scheduling into the past can only come
// from a component bug, and continuing would silently corrupt causality
// for the rest of the run; there is no caller-side recovery that leaves
// the simulation meaningful.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d at t=%d", delay, e.now))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at.
//
// Invariant: at must not precede Now and fn must be non-nil. Both
// violations panic by design (see Schedule): they indicate engine
// misuse by a component, not a recoverable runtime condition, so they
// are treated as assertion failures instead of returned errors.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at past time %d (now %d)", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	e.q.push(entry{at: at, seq: e.allocSeq(), fn: fn})
}

// ScheduleCall runs fn(a, b) after delay. This is the allocation-free
// scheduling path for hot sites: fn is typically a package-level
// trampoline and a/b pointers to long-lived component state, so —
// unlike a fresh closure — nothing escapes per call. Ordering and
// invariants are identical to Schedule.
func (e *Engine) ScheduleCall(delay Time, fn func(a, b any), a, b any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d at t=%d", delay, e.now))
	}
	e.ScheduleCallAt(e.now+delay, fn, a, b)
}

// ScheduleCallAt runs fn(a, b) at absolute time at (see ScheduleCall).
func (e *Engine) ScheduleCallAt(at Time, fn func(a, b any), a, b any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at past time %d (now %d)", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	e.q.push(entry{at: at, seq: e.allocSeq(), cfn: fn, a: a, b: b})
}

// Step fires the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if e.q.len() == 0 {
		return false
	}
	ev := e.q.pop()
	e.now = ev.at
	e.cur = ev.seq
	e.executed++
	ev.fire()
	return true
}

// deliver executes a cross-shard message as if it were a locally
// scheduled event: the clock advances to the delivery instant and the
// message's sender-side key becomes the current sequence number, so any
// events (or further messages) it schedules order exactly as they would
// have in a sequential run. Synchronous-call messages (exec false) were
// never engine events sequentially, so only scheduled-event messages
// count toward Executed.
func (e *Engine) deliver(m *xmsg) {
	if m.at < e.now {
		panic(fmt.Sprintf("sim: cross-shard delivery at past time %d (now %d, sent at %d)",
			m.at, e.now, m.key>>seqCounterBits))
	}
	e.now = m.at
	e.cur = m.key
	if m.exec {
		e.executed++
	}
	m.fire()
}

// RunUntil fires events in timestamp order until the queue is empty or the
// next event is strictly after deadline. The clock is left at the later of
// its current value and the last fired event (it is NOT advanced to the
// deadline so that callers can continue running afterwards).
func (e *Engine) RunUntil(deadline Time) {
	for {
		at, ok := e.nextAt()
		if !ok || at > deadline {
			return
		}
		e.Step()
	}
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Drain discards all pending events without running them. Useful for
// tearing down a simulation early. The queue's backing storage is kept
// for reuse by later scheduling phases.
func (e *Engine) Drain() { e.q.reset() }

// Reset rewinds a retained engine to time zero for in-place reuse:
// pending events are discarded, the clock, sequence counters and the
// executed count return to their initial state, and the queue keeps its
// backing storage attached. After Reset the engine is indistinguishable
// from a fresh NewEngine, which is what lets a pooled system (exp
// package) replay a byte-identical simulation without rebuilding.
func (e *Engine) Reset() {
	e.q.reset()
	e.q.attachPooled()
	e.now, e.seqAt, e.seqCtr, e.cur, e.executed = 0, 0, 0, 0, 0
}

// Release discards any pending events, returns the queue's backing
// storage to a package-level free list, and recycles the Engine struct
// itself, where the next NewEngine picks both up. An experiment session
// builds one short-lived engine per run, and the queue arrays plus the
// struct are the engine's only steady-state allocations; releasing them
// makes the whole build/schedule/fire cycle allocation-free across
// runs. Release transfers ownership: the engine must not be used again
// afterwards (callers that want to rewind and reuse an engine in place
// call Reset instead).
func (e *Engine) Release() {
	e.q.release()
	*e = Engine{}
	enginePool.Put(e)
}
