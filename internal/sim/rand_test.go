package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero (xorshift fixed point)")
	}
}

func TestRNGRangeProperties(t *testing.T) {
	r := NewRNG(7)
	check := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUniformity(t *testing.T) {
	// Coarse uniformity: 10 buckets over 100k draws should each hold
	// 10% +/- 1.5%.
	r := NewRNG(99)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		frac := float64(b) / n
		if frac < 0.085 || frac > 0.115 {
			t.Fatalf("bucket %d has fraction %.3f", i, frac)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	// Child stream must not equal a fresh parent-seeded stream.
	fresh := NewRNG(5)
	same := 0
	for i := 0; i < 50; i++ {
		if child.Uint64() == fresh.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("split stream mirrors parent seed stream")
	}
}
