package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

// TestEngineEmptyQueueFarThenNearOrder pins the regression where a
// callback executing with a transiently empty queue (the engine pops
// the last entry before firing it) schedules a far-future wake first
// and a near one second. The timing wheel used to re-anchor its window
// at the far push, admitting it into the wheel; the near push then
// underflowed into the overflow heap, and its pop dragged the window
// base back, stranding the far entry outside the window where the
// circular bucket probe no longer matches time order — the far event
// fired before nearer ones and the clock ran backwards. This is the
// exact shape of the next-event controller's deep sleeps (a refresh-due
// wake several microseconds out followed by a tRFC-scale wake).
func TestEngineEmptyQueueFarThenNearOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	note := func() { fired = append(fired, e.Now()) }
	e.Schedule(256, func() {
		note()
		// Queue is empty right now. Far wake: ~2000 wheel buckets out.
		e.Schedule(128000, note)
		// Near wake: before the far one.
		e.Schedule(1, func() {
			note()
			// Lands in the wheel in a slot that circularly trails the far
			// entry's slot when the window is mis-anchored.
			e.Schedule(64000-257, note)
		})
	})
	e.Run()
	want := []Time{256, 257, 64000, 128256}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestEngineNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("ran %d events until t=50, want 5", count)
	}
	if e.Pending() != 5 {
		t.Fatalf("%d pending, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("total %d events, want 10", count)
	}
}

func TestEngineDrain(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() { t.Fatal("drained event fired") })
	e.Drain()
	e.Run()
	if e.Executed() != 0 {
		t.Fatal("executed count nonzero after drain")
	}
}

func TestEngineMonotonicProperty(t *testing.T) {
	// Property: however delays are chosen, observed firing times are
	// monotonically non-decreasing.
	check := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromNS(t *testing.T) {
	cases := []struct {
		ns   float64
		want Time
	}{
		{1, 1000},
		{13.75, 13750},
		{146.25, 146250},
		{0.0005, 1}, // rounds up
		{0, 0},
	}
	for _, c := range cases {
		if got := FromNS(c.ns); got != c.want {
			t.Errorf("FromNS(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
	if got := FromNS(13.75); got.NS() != 13.75 {
		t.Errorf("roundtrip failed: %v", got.NS())
	}
}
