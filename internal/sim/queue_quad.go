//go:build !sim_refheap

package sim

import "sync"

// eventQueue is a 4-ary min-heap of entries stored by value, keyed on
// (at, seq).
//
// Why value-typed: the seed implementation drove container/heap over
// []*event, paying one heap allocation per scheduled event plus the
// interface conversions of heap.Push/Pop. Storing entries inline makes
// scheduling allocation-free (amortized: the backing array doubles like
// any slice, and is recycled across engines via entrySlicePool).
//
// Why 4-ary: pops dominate the hot loop, and a d-ary heap trades d-way
// sibling comparisons (cheap: the four children are adjacent in memory,
// a 64-byte entry puts them in two cache lines) for half the tree depth
// of a binary heap (expensive: every level is a dependent load). With
// the simulator's typical queue of a few hundred to a few thousand
// events this halves the levels touched per pop from ~10 to ~5.
//
// The firing order is the total order (at, seq) regardless of heap
// shape, so this queue is byte-for-byte interchangeable with the
// container/heap reference in queue_ref.go (build tag sim_refheap).
type eventQueue struct {
	es []entry
}

// entrySlicePool recycles queue backing arrays across engines (see
// Engine.Release). Pooled slices hold no live references: every vacated
// slot is zeroed on pop/reset/release.
var entrySlicePool = sync.Pool{New: func() any { return new([]entry) }}

// attachPooled adopts a recycled backing array if the queue has none.
func (q *eventQueue) attachPooled() {
	if q.es == nil {
		q.es = (*entrySlicePool.Get().(*[]entry))[:0]
	}
}

func (q *eventQueue) len() int { return len(q.es) }

// minAt returns the timestamp of the earliest entry (queue must be
// non-empty).
func (q *eventQueue) minAt() Time { return q.es[0].at }

// push inserts e, sifting it up through its ancestors.
func (q *eventQueue) push(e entry) {
	q.es = append(q.es, e)
	es := q.es
	i := len(es) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&es[p]) {
			break
		}
		es[i] = es[p]
		i = p
	}
	es[i] = e
}

// pop removes and returns the earliest entry.
func (q *eventQueue) pop() entry {
	es := q.es
	top := es[0]
	n := len(es) - 1
	last := es[n]
	es[n] = entry{} // drop callback/arg references for GC
	q.es = es[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown re-inserts e starting from the root hole: the smallest child
// chain moves up until e's position is found, costing one copy per
// level instead of a swap.
func (q *eventQueue) siftDown(e entry) {
	es := q.es
	n := len(es)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if es[j].before(&es[m]) {
				m = j
			}
		}
		if !es[m].before(&e) {
			break
		}
		es[i] = es[m]
		i = m
	}
	es[i] = e
}

// reset empties the queue, keeping the backing array.
func (q *eventQueue) reset() {
	clear(q.es)
	q.es = q.es[:0]
}

// release empties the queue and returns the backing array to the pool.
func (q *eventQueue) release() {
	if q.es == nil {
		return
	}
	full := q.es[:cap(q.es)]
	clear(full)
	s := full[:0]
	entrySlicePool.Put(&s)
	q.es = nil
}
