//go:build !sim_refheap

package sim

import (
	"math/bits"
	"sync"
)

// eventQueue orders entries by (at, seq) using a timing wheel backed by
// an overflow 4-ary min-heap.
//
// Why a wheel: the simulator's event population is overwhelmingly
// near-future — CPU ticks one core period out (~333 ps), cache lookups
// a few cycles out, DRAM commands and completions within tens of
// nanoseconds — while only rare events (refresh deadlines, idle-channel
// wakes, the watchdog) live further ahead. A comparison-based heap pays
// O(log n) dependent 64-byte entry moves on every operation; the wheel
// turns push into an append plus a bit-set and pop into a two-level
// bitmap probe plus a short bucket scan, both O(1) for the dominant
// traffic.
//
// Layout: wheelBuckets buckets of wheelTick = 1<<wheelShift picoseconds
// each cover a sliding window of wheelBuckets<<wheelShift (= 65.5 ns)
// starting at `base` (the bucket of the last popped entry — a lower
// bound for every live entry, since pops are monotone in at). An entry
// within the window goes to bucket (at>>wheelShift)&wheelMask; bucket
// occupancy is tracked in a 1024-bit bitmap with a 16-bit summary (one
// bit per occupancy word), so the earliest occupied bucket is found
// with two rotate-and-count-zeros probes. Anything beyond the window
// goes to the overflow heap in es. Overflow entries are never migrated:
// pop simply compares the wheel minimum against the heap top, which
// preserves the total order even when the window has slid past an
// overflow entry's timestamp.
//
// Within a bucket entries are unsorted (removal is swap-with-last) and
// the minimum is found by a linear scan: one wheelTick is finer than
// any clock period in the system, so chained ticks land in distinct
// buckets and buckets stay near-singleton.
//
// The firing order is the total order (at, seq) regardless of storage,
// so this queue is byte-for-byte interchangeable with the
// container/heap reference in queue_ref.go (build tag sim_refheap).
type eventQueue struct {
	w    *wheel
	nw   int    // live entries in the wheel
	base uint64 // bucket id (at>>wheelShift) of the last pop; lower bound for all live entries
	es   []entry
	// esBox is the pool box es came from, retained so release can Put
	// the same box back instead of boxing a fresh slice header (which
	// would allocate on every engine teardown).
	esBox *[]entry
}

const (
	// wheelShift sets the bucket width: 1<<6 = 64 ps.
	wheelShift   = 6
	wheelBuckets = 1024
	wheelMask    = wheelBuckets - 1
	wheelWords   = wheelBuckets / 64
)

// wheel is the bucketed storage, pooled as a unit across engines so a
// released engine's bucket arrays (the only steady-state allocation of
// the wheel) are recycled by the next NewEngine.
type wheel struct {
	summary uint16 // bit w set iff occ[w] != 0
	occ     [wheelWords]uint64
	buckets [wheelBuckets][]entry
}

var wheelPool = sync.Pool{New: func() any { return new(wheel) }}

// entrySlicePool recycles overflow-heap backing arrays across engines
// (see Engine.Release). Pooled storage holds no live references: every
// vacated slot is zeroed on pop/reset/release.
var entrySlicePool = sync.Pool{New: func() any { return new([]entry) }}

// attachPooled adopts recycled storage if the queue has none. A fresh
// box may hold a nil slice (the pool's New), so the presence of the box
// — not es being non-nil — is what marks the queue as pooled.
func (q *eventQueue) attachPooled() {
	if q.esBox == nil {
		q.esBox = entrySlicePool.Get().(*[]entry)
		q.es = (*q.esBox)[:0]
	}
	if q.w == nil {
		q.w = wheelPool.Get().(*wheel)
	}
}

func (q *eventQueue) len() int { return q.nw + len(q.es) }

// findWheelMin locates the earliest wheel entry, returning its bucket
// and index within the bucket; ok is false when the wheel is empty.
// Buckets are probed in circular order starting at base's slot: the
// sliding window [base, base+wheelBuckets) maps injectively onto the
// ring, so the first occupied bucket in that order holds the globally
// earliest timestamps, and a scan of it yields the (at, seq) minimum.
func (q *eventQueue) findWheelMin() (bkt, idx int, ok bool) {
	if q.nw == 0 {
		return 0, 0, false
	}
	w := q.w
	start := int(q.base) & wheelMask
	w0, b0 := start>>6, start&63
	if m := w.occ[w0] >> b0 << b0; m != 0 {
		// An occupied bucket in the start word at or after the start slot.
		bkt = w0<<6 + bits.TrailingZeros64(m)
	} else {
		// Rotate the summary so word w0+1 lands at bit 0; the first set
		// bit then names the next occupied word in circular order
		// (including w0 itself again, last, for its pre-start slots).
		rot := bits.RotateLeft16(w.summary, -(w0 + 1))
		wd := (w0 + 1 + bits.TrailingZeros16(rot)) & (wheelWords - 1)
		m := w.occ[wd]
		if wd == w0 {
			m &= 1<<b0 - 1 // only the slots before start remain
		}
		bkt = wd<<6 + bits.TrailingZeros64(m)
	}
	b := w.buckets[bkt]
	idx = 0
	for i := 1; i < len(b); i++ {
		if b[i].before(&b[idx]) {
			idx = i
		}
	}
	return bkt, idx, true
}

// minAt returns the timestamp of the earliest entry (queue must be
// non-empty).
func (q *eventQueue) minAt() Time {
	bkt, idx, ok := q.findWheelMin()
	if !ok {
		return q.es[0].at
	}
	at := q.w.buckets[bkt][idx].at
	if len(q.es) > 0 && q.es[0].at < at {
		return q.es[0].at
	}
	return at
}

// minKey returns the (at, seq) key of the earliest entry without
// removing it (queue must be non-empty). Unlike pop it leaves base
// untouched, which matters: base advances only at real pops, keeping
// the invariant base <= now>>wheelShift that makes every callback push
// (at >= now) land at or above the window start. A peek that popped and
// re-pushed would advance base past now and break that.
func (q *eventQueue) minKey() (Time, uint64) {
	bkt, idx, ok := q.findWheelMin()
	if !ok {
		return q.es[0].at, q.es[0].seq
	}
	e := &q.w.buckets[bkt][idx]
	if len(q.es) > 0 && q.es[0].before(e) {
		return q.es[0].at, q.es[0].seq
	}
	return e.at, e.seq
}

// push inserts e: into its wheel bucket when at falls inside the
// sliding window, else into the overflow heap.
//
// base moves only at pops, never here. Re-anchoring the window at a
// push onto an empty queue looks attractive (a cold start far from t=0
// would otherwise overflow), but it is unsound: a push says nothing
// about the times of *later* pushes. The empty-at-push state occurs
// mid-callback (the engine popped the last entry and is executing it),
// and the same callback can first schedule a far wake — which a
// re-anchor would admit into the wheel — and then a nearer one, which
// underflows ab-base into the overflow heap. Popping the near entry
// drags base back and strands the far wheel entry outside the
// [base, base+wheelBuckets) window, where the circular bucket probe no
// longer agrees with time order and the far entry can fire early.
// Without re-anchoring, a far push on an empty queue simply takes the
// overflow heap, and the pop that retires it re-anchors base; only the
// handful of pushes before that pop pay the heap path.
func (q *eventQueue) push(e entry) {
	ab := uint64(e.at) >> wheelShift
	if ab-q.base >= wheelBuckets {
		q.heapPush(e)
		return
	}
	if q.w == nil {
		q.w = wheelPool.Get().(*wheel)
	}
	i := ab & wheelMask
	q.w.buckets[i] = append(q.w.buckets[i], e)
	q.w.occ[i>>6] |= 1 << (i & 63)
	q.w.summary |= 1 << (i >> 6)
	q.nw++
}

// heapPush inserts e into the overflow heap, sifting it up through its
// ancestors.
func (q *eventQueue) heapPush(e entry) {
	q.es = append(q.es, e)
	es := q.es
	i := len(es) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&es[p]) {
			break
		}
		es[i] = es[p]
		i = p
	}
	es[i] = e
}

// pop removes and returns the earliest entry across wheel and overflow.
func (q *eventQueue) pop() entry {
	bkt, idx, ok := q.findWheelMin()
	if ok {
		w := q.w
		b := w.buckets[bkt]
		e := b[idx]
		if len(q.es) == 0 || e.before(&q.es[0]) {
			n := len(b) - 1
			b[idx] = b[n]
			b[n] = entry{} // drop callback/arg references for GC
			w.buckets[bkt] = b[:n]
			if n == 0 {
				w.occ[bkt>>6] &^= 1 << (bkt & 63)
				if w.occ[bkt>>6] == 0 {
					w.summary &^= 1 << (bkt >> 6)
				}
			}
			q.nw--
			q.base = uint64(e.at) >> wheelShift
			return e
		}
	}
	return q.heapPop()
}

// heapPop removes and returns the overflow heap's top.
func (q *eventQueue) heapPop() entry {
	es := q.es
	top := es[0]
	n := len(es) - 1
	last := es[n]
	es[n] = entry{} // drop callback/arg references for GC
	q.es = es[:n]
	if n > 0 {
		q.siftDown(last)
	}
	q.base = uint64(top.at) >> wheelShift
	return top
}

// siftDown re-inserts e starting from the root hole: the smallest child
// chain moves up until e's position is found, costing one copy per
// level instead of a swap.
func (q *eventQueue) siftDown(e entry) {
	es := q.es
	n := len(es)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if es[j].before(&es[m]) {
				m = j
			}
		}
		if !es[m].before(&e) {
			break
		}
		es[i] = es[m]
		i = m
	}
	es[i] = e
}

// clearWheel empties every bucket (keeping capacity) and the bitmaps.
func (q *eventQueue) clearWheel() {
	if q.w == nil {
		return
	}
	w := q.w
	// Only occupied words need their buckets cleared; a released wheel
	// always comes back fully zeroed.
	for wd := 0; wd < wheelWords; wd++ {
		if w.occ[wd] == 0 {
			continue
		}
		for i := wd << 6; i < wd<<6+64; i++ {
			b := w.buckets[i]
			clear(b)
			w.buckets[i] = b[:0]
		}
		w.occ[wd] = 0
	}
	w.summary = 0
	q.nw = 0
}

// reset empties the queue, keeping the backing storage.
func (q *eventQueue) reset() {
	q.clearWheel()
	q.base = 0
	clear(q.es)
	q.es = q.es[:0]
}

// release empties the queue and returns the backing storage to the
// pools.
func (q *eventQueue) release() {
	q.clearWheel()
	q.base = 0
	if q.w != nil {
		wheelPool.Put(q.w)
		q.w = nil
	}
	box := q.esBox
	if box == nil {
		if q.es == nil {
			return // zero-value engine that never overflowed: nothing to pool
		}
		box = new([]entry) // zero-value engine: es grew without a pool box
	}
	full := q.es[:cap(q.es)]
	clear(full)
	*box = full[:0]
	entrySlicePool.Put(box)
	q.es, q.esBox = nil, nil
}
