package sim

import (
	"fmt"
	"testing"
)

// The parallel engine's contract is byte-identity with the sequential
// engine. These tests drive the same closed-loop request/reply workload
// — the shape of the real system: processor-side clients posting
// synchronous requests down, memory-side service events, scheduled
// replies coming back up after the conservative lookahead — through
// both execution modes and demand identical traces.

// parRec is one traced model event.
type parRec struct {
	at  Time
	tag string
	id  int
}

func (r parRec) String() string { return fmt.Sprintf("%d:%s:%d", r.at, r.tag, r.id) }

// parHarness wires the workload to either one engine (sequential
// reference) or a two-shard ParEngine. Up-side and down-side handlers
// append to separate traces because in parallel mode they run on
// different goroutines; each side's trace must match the reference.
//
// All timestamps live on disjoint lattices — up-side events ≡ 0,
// down-side service events ≡ 1, replies ≡ 5 (mod 10) — so the workload
// satisfies the protocol's ordering precondition (see par_engine.go):
// events scheduled on different shards at the same instant never fire
// at the same instant, which is the one collision the cross-engine
// (at, key) order cannot decide.
type parHarness struct {
	win       Time
	upEng     *Engine
	downEng   *Engine
	upSh      *Shard // nil = sequential mode
	downSh    *Shard
	upRNG     *RNG
	downRNG   *RNG
	upTrace   []parRec
	downTrace []parRec

	clients   int
	reqsLeft  []int
	completed int
}

const parTestWin = Time(1000)

func newParHarness(seed uint64, clients, reqsPerClient int, par bool) (*parHarness, *ParEngine) {
	h := &parHarness{
		win:      parTestWin,
		upRNG:    NewRNG(seed),
		downRNG:  NewRNG(seed ^ 0xD15EA5E),
		clients:  clients,
		reqsLeft: make([]int, clients),
	}
	for i := range h.reqsLeft {
		h.reqsLeft[i] = reqsPerClient
	}
	h.upEng = NewEngine()
	if !par {
		h.downEng = h.upEng
		return h, nil
	}
	h.downEng = NewEngine()
	pe := NewParEngine(h.upEng, h.downEng, h.win)
	h.upSh = pe.Shard(0)
	h.downSh = pe.Shard(1)
	return h, pe
}

// sendReq is the up-side client event: trace, then cross down.
func sendReq(a, b any) {
	h, id := a.(*parHarness), b.(int)
	h.upTrace = append(h.upTrace, parRec{h.upEng.Now(), "send", id})
	if h.upSh != nil {
		h.upSh.PostSync(recvReq, h, id)
		return
	}
	recvReq(h, id)
}

// recvReq is the down-side handler: a local service event plus a reply
// scheduled at least the conservative lookahead (2*win) in the future.
func recvReq(a, b any) {
	h, id := a.(*parHarness), b.(int)
	now := h.downEng.Now()
	h.downTrace = append(h.downTrace, parRec{now, "recv", id})
	srv := now + 1 + 10*Time(h.downRNG.Uint64n(uint64(h.win/10)))
	h.downEng.ScheduleCallAt(srv, serveReq, h, id)
	reply := now + 2*h.win + 5 + 10*Time(h.downRNG.Uint64n(uint64(3*h.win/10)))
	if h.downSh != nil {
		h.downSh.PostCall(reply, recvReply, h, id)
		return
	}
	h.downEng.ScheduleCallAt(reply, recvReply, h, id)
}

// serveReq is a down-side local event (models a DRAM command).
func serveReq(a, b any) {
	h, id := a.(*parHarness), b.(int)
	h.downTrace = append(h.downTrace, parRec{h.downEng.Now(), "srv", id})
}

// recvReply is the up-side completion: trace and, when the client has
// requests left, schedule the next send — sometimes after a gap of many
// windows, which exercises the coordinator's idle-skip.
func recvReply(a, b any) {
	h, id := a.(*parHarness), b.(int)
	now := h.upEng.Now()
	h.upTrace = append(h.upTrace, parRec{now, "reply", id})
	h.completed++
	if h.reqsLeft[id] <= 0 {
		return
	}
	h.reqsLeft[id]--
	gap := 5 + 10*Time(h.upRNG.Uint64n(uint64(3*h.win/10)))
	if h.upRNG.Uint64n(8) == 0 {
		gap += 200 * h.win
	}
	h.upEng.ScheduleCallAt(now+gap, sendReq, h, id)
}

func (h *parHarness) start() {
	for i := 0; i < h.clients; i++ {
		if h.reqsLeft[i] <= 0 {
			continue
		}
		h.reqsLeft[i]--
		h.upEng.ScheduleCallAt(Time(i)*10, sendReq, h, i)
	}
}

// runParWorkload executes the workload in the requested mode and
// returns both traces and the executed event count. stopAfter, when
// positive, halts the run at the event that completes that many
// replies (exercising the cut protocol); 0 runs to drain.
func runParWorkload(t *testing.T, seed uint64, clients, reqsPerClient, stopAfter int, par bool, checkEvery int64) (up, down []parRec, executed uint64) {
	t.Helper()
	h, pe := newParHarness(seed, clients, reqsPerClient, par)
	h.start()
	var stop func() bool
	if stopAfter > 0 {
		stop = func() bool { return h.completed >= stopAfter }
	}
	if pe == nil {
		for {
			if stop != nil && stop() {
				break
			}
			if !h.upEng.Step() {
				break
			}
		}
		return h.upTrace, h.downTrace, h.upEng.Executed()
	}
	stopped, err := pe.Run(stop, nil, checkEvery)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if want := stop != nil && h.completed >= stopAfter; stopped != want {
		t.Fatalf("parallel run stopped=%v, want %v", stopped, want)
	}
	return h.upTrace, h.downTrace, pe.Executed()
}

func compareTraces(t *testing.T, name string, seq, par []parRec) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s trace length: sequential %d, parallel %d", name, len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("%s trace diverges at %d: sequential %v, parallel %v", name, i, seq[i], par[i])
		}
	}
}

// TestParEngineMatchesSequential drives randomized workloads to drain
// in both modes and demands identical traces and executed counts.
func TestParEngineMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		sUp, sDown, sN := runParWorkload(t, seed, 3, 25, 0, false, 4)
		pUp, pDown, pN := runParWorkload(t, seed, 3, 25, 0, true, 4)
		compareTraces(t, "up", sUp, pUp)
		compareTraces(t, "down", sDown, pDown)
		if sN != pN {
			t.Fatalf("seed %d: executed %d sequential, %d parallel", seed, sN, pN)
		}
	}
}

// TestParEngineStopCut halts mid-run at an exact completion count; the
// cut protocol must stop the down shard at the same global position the
// sequential run stops at.
func TestParEngineStopCut(t *testing.T) {
	for _, stopAfter := range []int{1, 7, 20} {
		sUp, sDown, sN := runParWorkload(t, 42, 3, 25, stopAfter, false, 4)
		pUp, pDown, pN := runParWorkload(t, 42, 3, 25, stopAfter, true, 4)
		compareTraces(t, "up", sUp, pUp)
		compareTraces(t, "down", sDown, pDown)
		if sN != pN {
			t.Fatalf("stopAfter %d: executed %d sequential, %d parallel", stopAfter, sN, pN)
		}
	}
}

// TestParEngineCheckBarrier verifies the periodic check runs at a full
// barrier (monotone non-decreasing times, both shards quiescent) and
// that a check error aborts the run.
func TestParEngineCheckBarrier(t *testing.T) {
	h, pe := newParHarness(9, 2, 20, true)
	h.start()
	var calls int
	var last Time
	_, err := pe.Run(nil, func(now Time) error {
		calls++
		if now < last {
			t.Fatalf("check time went backwards: %d after %d", now, last)
		}
		last = now
		return nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("check never ran")
	}

	h2, pe2 := newParHarness(9, 2, 20, true)
	h2.start()
	wantErr := fmt.Errorf("abort")
	_, err = pe2.Run(nil, func(Time) error { return wantErr }, 1)
	if err != wantErr {
		t.Fatalf("check error not propagated: %v", err)
	}
}

// TestPostCallLookaheadPanics pins the conservative bound: a down→up
// message closer than two windows is a protocol violation and must
// panic rather than silently break byte-identity.
func TestPostCallLookaheadPanics(t *testing.T) {
	up, down := NewEngine(), NewEngine()
	pe := NewParEngine(up, down, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("PostCall within the lookahead window did not panic")
		}
	}()
	pe.Shard(1).PostCall(1999, func(a, b any) {}, nil, nil)
}

// TestPostSyncFromDownPanics pins the phase rule: zero-latency
// messages may only cross downward.
func TestPostSyncFromDownPanics(t *testing.T) {
	up, down := NewEngine(), NewEngine()
	pe := NewParEngine(up, down, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("PostSync from the down shard did not panic")
		}
	}()
	pe.Shard(1).PostSync(func(a, b any) {}, nil, nil)
}

// FuzzEpochBarrier fuzzes the workload shape (seed, fan-out, request
// counts, stop point, barrier period) and demands the parallel engine
// stay byte-identical to the sequential reference. The engine's own
// assertions ride along: PostCall panics on a lookahead violation and
// deliver panics if a message would arrive in a shard's past.
func FuzzEpochBarrier(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(10), uint8(0), uint8(4))
	f.Add(uint64(42), uint8(3), uint8(25), uint8(7), uint8(1))
	f.Add(uint64(7), uint8(1), uint8(40), uint8(3), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, clients, reqs, stopAfter, checkEvery uint8) {
		c := int(clients%4) + 1
		r := int(reqs % 32)
		stop := int(stopAfter % 16)
		ce := int64(checkEvery%8) + 1
		sUp, sDown, sN := runParWorkload(t, seed, c, r, stop, false, ce)
		pUp, pDown, pN := runParWorkload(t, seed, c, r, stop, true, ce)
		compareTraces(t, "up", sUp, pUp)
		compareTraces(t, "down", sDown, pDown)
		if sN != pN {
			t.Fatalf("executed %d sequential, %d parallel", sN, pN)
		}
	})
}

// TestShardProfTelescopes pins the epoch profiler's accounting
// invariant on both the run-to-drain and the stop-cut paths: each
// shard's busy + wait + barrier time equals its wall time exactly (the
// profiler laps one shared mark, so no nanosecond is dropped or
// double-counted), the down shard never accrues barrier time, and every
// epoch contributes exactly one mailbox-depth sample.
func TestShardProfTelescopes(t *testing.T) {
	for _, stopAfter := range []int{0, 7} {
		h, pe := newParHarness(11, 3, 25, true)
		h.start()
		var stop func() bool
		if stopAfter > 0 {
			stop = func() bool { return h.completed >= stopAfter }
		}
		if _, err := pe.Run(stop, nil, 4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			p := pe.Prof(i)
			if p.Epochs == 0 {
				t.Fatalf("stopAfter %d shard %d: no epochs recorded", stopAfter, i)
			}
			if p.WallNS <= 0 {
				t.Fatalf("stopAfter %d shard %d: non-positive wall time %d", stopAfter, i, p.WallNS)
			}
			if sum := p.BusyNS + p.WaitNS + p.BarrierNS; sum != p.WallNS {
				t.Fatalf("stopAfter %d shard %d: busy %d + wait %d + barrier %d = %d != wall %d",
					stopAfter, i, p.BusyNS, p.WaitNS, p.BarrierNS, sum, p.WallNS)
			}
			var mbox uint64
			for _, c := range p.Mbox {
				mbox += c
			}
			if mbox != p.Epochs {
				t.Fatalf("stopAfter %d shard %d: %d mailbox samples for %d epochs", stopAfter, i, mbox, p.Epochs)
			}
		}
		if b := pe.Prof(1).BarrierNS; b != 0 {
			t.Fatalf("stopAfter %d: down shard accrued barrier time %d (it never barriers)", stopAfter, b)
		}
	}
}
