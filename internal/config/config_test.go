package config

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestDefaultsValidate(t *testing.T) {
	for _, c := range []Config{Default(), Scaled()} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if c.Geometry().Capacity() != 8<<30 {
		t.Fatalf("capacity %d, Table 1 says 8 GB", c.Geometry().Capacity())
	}
	if c.LLCKB != 4096 || c.L1KB != 64 || c.L2KB != 256 {
		t.Fatal("cache sizes differ from Table 1")
	}
	// Cumulative hit latencies 4/12/20 cycles.
	if c.L1Latency != 4 || c.L1Latency+c.L2Latency != 12 || c.L1Latency+c.L2Latency+c.LLCLatency != 20 {
		t.Fatal("cache latency increments do not sum to Table 1's 4/12/20")
	}
	if c.WindowSize != 32 {
		t.Fatal("request queue differs from Table 1")
	}
	if c.MigrationLatencyNS != 146.25 || c.FastDenom != 8 || c.GroupSize != 32 {
		t.Fatal("asymmetric-DRAM parameters differ from Table 1")
	}
	if c.WarmupFrac != 0.2 {
		t.Fatal("warm-up fraction differs from Section 6")
	}
}

func TestScaledKeepsRatios(t *testing.T) {
	c := Scaled()
	if got := c.MemoryScale(); got != 0.125 {
		t.Fatalf("scale %v, want 1/8", got)
	}
	if c.Geometry().Capacity() != 1<<30 {
		t.Fatal("scaled capacity not 1 GB")
	}
	// The tag cache scales with memory so Fig 9a keeps its meaning.
	if c.TagCacheKB != 16 {
		t.Fatalf("scaled tag cache %d KB, want 16", c.TagCacheKB)
	}
}

func TestDRAMConfigPerDesign(t *testing.T) {
	c := Scaled()
	das := c.DRAMConfig(core.DAS)
	if das.MigrationLatency != sim.FromNS(146.25) {
		t.Fatal("DAS migration latency wrong")
	}
	fm := c.DRAMConfig(core.DASFM)
	if fm.MigrationLatency != 0 {
		t.Fatal("DAS-FM must have zero migration latency")
	}
	charm := c.DRAMConfig(core.CHARM)
	if charm.Fast.CL >= das.Fast.CL {
		t.Fatal("CHARM fast set must reduce CL")
	}
	std := c.DRAMConfig(core.Standard)
	if std.Fast.TRCD != das.Fast.TRCD {
		t.Fatal("fast set should be consistent outside CHARM")
	}
}

func TestManagerConfigMapping(t *testing.T) {
	c := Scaled()
	c.Replacement = "random"
	mc, err := c.ManagerConfig(core.DAS)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Replacement != core.ReplRandom || mc.TagCacheBytes != c.TagCacheKB<<10 {
		t.Fatalf("manager config mapping wrong: %+v", mc)
	}
	c.Replacement = "bogus"
	if _, err := c.ManagerConfig(core.DAS); err == nil {
		t.Fatal("bogus replacement accepted")
	}
}

func TestValidationRejects(t *testing.T) {
	c := Default()
	c.Cores = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	c = Default()
	c.WarmupFrac = 1.0
	if err := c.Validate(); err == nil {
		t.Fatal("warmup 1.0 accepted")
	}
	c = Default()
	c.InstrPerCore = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero instructions accepted")
	}
	c = Default()
	c.RowsPerBank = 1000 // not a power of two
	if err := c.Validate(); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	c := Scaled()
	c.InstrPerCore = 12345
	c.Seed = 99
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/cfg.json"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	c := Default()
	c.Cores = 0
	// Save skips validation; Load must reject.
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("invalid config loaded")
	}
}
