package config

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// FuzzConfigJSON feeds arbitrary bytes through Parse: any input must
// either yield a validated configuration or an error — never a panic
// (dasbench exposes -config to user-supplied files). Accepted configs
// must additionally survive the derived-parameter constructors, which
// is where inconsistent geometry would blow up.
func FuzzConfigJSON(f *testing.F) {
	if def, err := json.MarshalIndent(Default(), "", "  "); err == nil {
		f.Add(def)
	}
	if sc, err := json.Marshal(Scaled()); err == nil {
		f.Add(sc)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"Cores":0}`))
	f.Add([]byte(`{"RowsPerBank":-5}`))
	f.Add([]byte(`{"RowsPerBank":3}`))
	f.Add([]byte(`{"Replacement":"bogus"}`))
	f.Add([]byte(`{"FastDenom":1000000,"GroupSize":-1}`))
	f.Add([]byte(`{"WeakRowRate":2.5,"MigFailRate":-1}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		// A config that passed validation must be usable end to end.
		c.Geometry()
		for _, d := range []core.Design{core.Standard, core.SAS, core.CHARM, core.DAS, core.DASFM, core.FS} {
			c.DRAMConfig(d)
			if _, err := c.ManagerConfig(d); err != nil {
				t.Fatalf("validated config rejected by ManagerConfig(%v): %v\ninput: %s", d, err, data)
			}
		}
	})
}
