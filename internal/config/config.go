// Package config holds the JSON-serializable system configuration that
// assembles a full simulation (Table 1 of the paper), plus the
// episode-scaled variant the experiment harness uses by default.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Config is the complete system description.
type Config struct {
	// Cores and pipeline (Table 1: 3 GHz, 4-wide, 192-entry ROB).
	Cores       int     `json:"cores"`
	CPUGHz      float64 `json:"cpu_ghz"`
	Width       int     `json:"width"`
	ROB         int     `json:"rob"`
	StoreBuffer int     `json:"store_buffer"`

	// Cache hierarchy. Latencies are per-level lookup latencies in CPU
	// cycles; they accumulate along the walk, so 4/8/8 reproduces
	// Table 1's cumulative 4/12/20.
	L1KB       int `json:"l1_kb"`
	L1Assoc    int `json:"l1_assoc"`
	L1Latency  int `json:"l1_latency"`
	L1MSHRs    int `json:"l1_mshrs"`
	L2KB       int `json:"l2_kb"`
	L2Assoc    int `json:"l2_assoc"`
	L2Latency  int `json:"l2_latency"`
	L2MSHRs    int `json:"l2_mshrs"`
	LLCKB      int `json:"llc_kb"`
	LLCAssoc   int `json:"llc_assoc"`
	LLCLatency int `json:"llc_latency"`
	LLCMSHRs   int `json:"llc_mshrs"`
	BlockSize  int `json:"block_size"`

	// Memory controller.
	WindowSize        int     `json:"window_size"`
	ClosedPage        bool    `json:"closed_page"`
	WriteHigh         int     `json:"write_high"`
	WriteLow          int     `json:"write_low"`
	StarvationLimitNS float64 `json:"starvation_limit_ns"`

	// DRAM organization.
	Channels    int `json:"channels"`
	Ranks       int `json:"ranks"`
	Banks       int `json:"banks"`
	RowsPerBank int `json:"rows_per_bank"`
	Columns     int `json:"columns"`

	// Asymmetric-subarray management (Table 1 bottom).
	MigrationLatencyNS float64 `json:"migration_latency_ns"`
	FastDenom          int     `json:"fast_denom"`
	GroupSize          int     `json:"group_size"`
	TagCacheKB         int     `json:"tag_cache_kb"`
	TagCacheAssoc      int     `json:"tag_cache_assoc"`
	FilterThreshold    int     `json:"filter_threshold"`
	FilterCounters     int     `json:"filter_counters"`
	Replacement        string  `json:"replacement"`

	// Measurement protocol (Section 6).
	InstrPerCore uint64  `json:"instr_per_core"`
	WarmupFrac   float64 `json:"warmup_frac"`
	Seed         uint64  `json:"seed"`

	// Fault injection and robustness (all rates zero = perfect device;
	// see DESIGN.md "Fault model and degradation").
	FaultSeed        uint64  `json:"fault_seed"`
	WeakRowRate      float64 `json:"fault_weak_row_rate"`
	MigFailRate      float64 `json:"fault_mig_fail_rate"`
	MigRetries       int     `json:"fault_mig_retries"`
	TagCorruptRate   float64 `json:"fault_tag_corrupt_rate"`
	TableCorruptRate float64 `json:"fault_table_corrupt_rate"`
	// CheckInvariants enables the per-swap runtime invariant checker.
	CheckInvariants bool `json:"check_invariants"`

	// Parallel selects the execution engine: 0 or 1 runs the sequential
	// engine; >= 2 shards the machine across OS threads (processor side
	// and memory side — values above 2 behave identically, the
	// decomposition has two domains; see DESIGN.md §5.3). Results are
	// byte-identical either way, so this is an execution knob, not a
	// model parameter.
	Parallel int `json:"parallel"`
}

// Default returns the full-scale Table 1 system: 8 GB of DDR3-1600 on
// two channels, 4 MB shared LLC, 1/8 fast level.
func Default() Config {
	return Config{
		Cores: 1, CPUGHz: 3, Width: 4, ROB: 192, StoreBuffer: 32,
		L1KB: 64, L1Assoc: 8, L1Latency: 4, L1MSHRs: 16,
		L2KB: 256, L2Assoc: 8, L2Latency: 8, L2MSHRs: 24,
		LLCKB: 4096, LLCAssoc: 8, LLCLatency: 8, LLCMSHRs: 48,
		BlockSize:  64,
		WindowSize: 32, WriteHigh: 32, WriteLow: 8, StarvationLimitNS: 1000,
		Channels: 2, Ranks: 2, Banks: 8, RowsPerBank: 32768, Columns: 128,
		MigrationLatencyNS: 146.25,
		FastDenom:          8, GroupSize: 32,
		TagCacheKB: 128, TagCacheAssoc: 8,
		FilterThreshold: 1, FilterCounters: 1024,
		Replacement:  "lru",
		InstrPerCore: 10_000_000, WarmupFrac: 0.2, Seed: 42,
		MigRetries: 3, CheckInvariants: true,
	}
}

// Scaled returns the episode-scaled configuration the experiments use: a
// 1 GB memory (1/8 of Table 1) so that 10M-instruction episodes exercise
// the same footprint-to-fast-level pressure as the paper's
// 100M-instruction samples. The tag cache scales with memory so the
// Figure 9a sweep keeps its meaning (see DESIGN.md).
func Scaled() Config {
	c := Default()
	c.RowsPerBank = 4096 // 1 GB total
	c.TagCacheKB = 16    // 128 KB x (1 GB / 8 GB)
	return c
}

// MemoryScale returns this configuration's memory capacity relative to
// the paper's 8 GB system; workload footprints are scaled by it.
func (c *Config) MemoryScale() float64 {
	return float64(c.Geometry().Capacity()) / float64(8<<30)
}

// Validate checks cross-field consistency.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("config: cores must be positive")
	}
	if c.InstrPerCore == 0 {
		return fmt.Errorf("config: instr_per_core must be positive")
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return fmt.Errorf("config: warmup_frac must be in [0,1)")
	}
	if _, err := core.ParseReplacement(c.Replacement); err != nil {
		return err
	}
	fc := c.FaultConfig()
	if err := fc.Validate(); err != nil {
		return err
	}
	if c.MigRetries < 0 {
		return fmt.Errorf("config: fault_mig_retries must be non-negative")
	}
	if c.Parallel < 0 {
		return fmt.Errorf("config: parallel must be non-negative")
	}
	if err := c.Geometry().Validate(); err != nil {
		return err
	}
	return nil
}

// FaultConfig returns the fault-injection configuration. A zero
// FaultSeed derives the fault stream from the workload seed (offset so
// the two streams differ even when both defaults are in play).
func (c *Config) FaultConfig() fault.Config {
	seed := c.FaultSeed
	if seed == 0 {
		seed = c.Seed ^ 0xFA017FA017FA0175
	}
	return fault.Config{
		Seed:             seed,
		WeakRowRate:      c.WeakRowRate,
		MigFailRate:      c.MigFailRate,
		TagCorruptRate:   c.TagCorruptRate,
		TableCorruptRate: c.TableCorruptRate,
	}
}

// Geometry returns the DRAM organization.
func (c *Config) Geometry() dram.Geometry {
	return dram.Geometry{
		Channels: c.Channels, Ranks: c.Ranks, Banks: c.Banks,
		Rows: c.RowsPerBank, Columns: c.Columns, BlockSize: c.BlockSize,
	}
}

// DRAMConfig returns the device configuration for a design: CHARM gets
// the column-optimized fast set; DAS-FM gets zero migration latency.
func (c *Config) DRAMConfig(design core.Design) dram.Config {
	fast := timing.DDR31600Fast()
	if design == core.CHARM {
		fast = timing.DDR31600CHARMFast()
	}
	mig := sim.FromNS(c.MigrationLatencyNS)
	if design == core.DASFM {
		mig = 0
	}
	return dram.Config{
		Geometry:         c.Geometry(),
		Slow:             timing.DDR31600Slow(),
		Fast:             fast,
		MigrationLatency: mig,
	}
}

// ManagerConfig returns the DAS management configuration for a design.
func (c *Config) ManagerConfig(design core.Design) (core.Config, error) {
	repl, err := core.ParseReplacement(c.Replacement)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Design:          design,
		FastDenom:       c.FastDenom,
		GroupSize:       c.GroupSize,
		TagCacheBytes:   c.TagCacheKB << 10,
		TagCacheAssoc:   c.TagCacheAssoc,
		FilterThreshold: c.FilterThreshold,
		FilterCounters:  c.FilterCounters,
		Replacement:     repl,
		Seed:            c.Seed,
		MigRetries:      c.MigRetries,
	}, nil
}

// Parse decodes a JSON configuration layered over Default() and
// validates it. Arbitrary input never panics (FuzzConfigJSON holds it
// to that): malformed JSON and inconsistent values both come back as
// errors.
func Parse(data []byte) (Config, error) {
	c := Default()
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Load reads a JSON configuration file.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return Config{}, fmt.Errorf("%w (%s)", err, path)
	}
	return c, nil
}

// Save writes the configuration as indented JSON.
func (c *Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
