package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/mc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Stats counts management activity over the measurement window.
type Stats struct {
	// Promotions counts committed row swaps (migration completions).
	Promotions uint64
	// PerCorePromotions attributes promotions to the triggering core.
	PerCorePromotions []uint64
	// SlowTriggers counts demand reads serviced from the slow level (the
	// promotion trigger events).
	SlowTriggers uint64
	// TableFetches counts translation-table blocks fetched through the
	// LLC after a tag-cache miss.
	TableFetches uint64
	// TableWrites counts translation-table update writes.
	TableWrites uint64
}

// Manager is the DAS-DRAM management unit: it translates LLC-miss traffic
// to physical row locations, steers it to the memory controller with the
// right timing class, and schedules promotions. It also implements the
// paper's comparison designs (see Design).
type Manager struct {
	cfg    Config
	eng    *sim.Engine
	geom   dram.Geometry
	ctl    *mc.Controller
	llc    mem.Component
	layout *Layout

	groups   map[uint64]*group
	tagCache *TagCache
	filter   *Filter
	picker   victimPicker

	static  *StaticAssignment
	profile *RowProfile

	tableBase  uint64
	tableBytes uint64

	// pendingTag maps a table block index to data requests waiting on
	// its fetch.
	pendingTag map[uint64][]*mem.Request

	Stats Stats
}

// NewManager builds a manager for design cfg.Design in front of ctl.
// cores sizes per-core counters. For static designs supply the
// assignment via SetStaticAssignment before running; for translation
// lookups the shared LLC must be attached via SetLLC.
func NewManager(cfg Config, eng *sim.Engine, ctl *mc.Controller, cores int) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom := ctl.Device().Geometry()
	m := &Manager{
		cfg:  cfg,
		eng:  eng,
		geom: geom,
		ctl:  ctl,
	}
	if cores > 0 {
		m.Stats.PerCorePromotions = make([]uint64, cores)
	}
	m.tableBytes = TableReserveBytes(geom)
	m.tableBase = geom.Capacity() - m.tableBytes
	if cfg.Design.Dynamic() {
		layout, err := NewLayout(geom, cfg.GroupSize, cfg.FastDenom)
		if err != nil {
			return nil, err
		}
		m.layout = layout
		tc, err := NewTagCache(cfg.TagCacheBytes, cfg.TagCacheAssoc)
		if err != nil {
			return nil, err
		}
		m.tagCache = tc
		f, err := NewFilter(cfg.FilterThreshold, cfg.FilterCounters)
		if err != nil {
			return nil, err
		}
		m.filter = f
		m.groups = make(map[uint64]*group)
		m.picker = victimPicker{policy: cfg.Replacement, rng: sim.NewRNG(cfg.Seed)}
		m.pendingTag = make(map[uint64][]*mem.Request)
	}
	return m, nil
}

// SetLLC attaches the last-level cache used for translation-table
// lookups. Must be called before any DAS-mode access (the LLC is built
// after the manager because the manager is the LLC's lower level).
func (m *Manager) SetLLC(llc mem.Component) { m.llc = llc }

// SetStaticAssignment installs the profiled fast-row set (SAS/CHARM).
func (m *Manager) SetStaticAssignment(a *StaticAssignment) { m.static = a }

// EnableProfiling starts recording per-row demand-read counts and
// returns the profile being filled.
func (m *Manager) EnableProfiling() *RowProfile {
	m.profile = NewRowProfile()
	return m.profile
}

// TagCache exposes the translation cache (nil for non-dynamic designs).
func (m *Manager) TagCache() *TagCache { return m.tagCache }

// Filter exposes the promotion filter (nil for non-dynamic designs).
func (m *Manager) Filter() *Filter { return m.filter }

// Layout exposes the migration-group layout (nil for non-dynamic designs).
func (m *Manager) Layout() *Layout { return m.layout }

// UsableBytes returns the capacity available to workloads: total memory
// minus the reserved translation-table region.
func (m *Manager) UsableBytes() uint64 { return m.tableBase }

// TableBase returns the first byte of the reserved table region.
func (m *Manager) TableBase() uint64 { return m.tableBase }

// ResetStats zeroes management statistics (warm-up boundary).
func (m *Manager) ResetStats() {
	perCore := m.Stats.PerCorePromotions
	m.Stats = Stats{}
	if perCore != nil {
		for i := range perCore {
			perCore[i] = 0
		}
		m.Stats.PerCorePromotions = perCore
	}
	if m.tagCache != nil {
		m.tagCache.Lookups = 0
		m.tagCache.Hits = 0
	}
	if m.filter != nil {
		m.filter.Rejects = 0
	}
}

// Access implements mem.Component for LLC-miss traffic (fills,
// writebacks, and recursive translation-table requests).
func (m *Manager) Access(req *mem.Request) {
	if req.Meta || req.Addr >= m.tableBase {
		// Translation-table region: identity-mapped, slow subarrays.
		coord := m.geom.Decode(req.Addr)
		m.enqueue(req, coord, dram.RowSlow, 0, false)
		return
	}
	coord := m.geom.Decode(req.Addr)
	rowID := m.geom.RowID(coord)
	if m.profile != nil && !req.Write {
		m.profile.Record(rowID)
	}
	switch m.cfg.Design {
	case Standard:
		m.enqueue(req, coord, dram.RowSlow, rowID, false)
	case FS:
		m.enqueue(req, coord, dram.RowFast, rowID, false)
	case SAS, CHARM:
		cls := dram.RowSlow
		if m.static.IsFast(rowID) {
			cls = dram.RowFast
		}
		m.enqueue(req, coord, cls, rowID, false)
	default: // DAS, DASFM
		if m.tagCache.Lookup(rowID) {
			m.translateAndEnqueue(req, coord, rowID)
			return
		}
		block := m.tableBlock(rowID)
		if waiters, inFlight := m.pendingTag[block]; inFlight {
			m.pendingTag[block] = append(waiters, req)
			return
		}
		m.pendingTag[block] = []*mem.Request{req}
		m.fetchTableBlock(block)
	}
}

// tableBlock returns the table block index holding rowID's entry.
func (m *Manager) tableBlock(rowID uint64) uint64 { return rowID >> 6 }

// tableBlockAddr returns the physical address of a table block.
func (m *Manager) tableBlockAddr(block uint64) uint64 { return m.tableBase + block<<6 }

// fetchTableBlock reads a translation-table block through the LLC; on a
// further miss the LLC fills it from DRAM via this manager (Meta path).
func (m *Manager) fetchTableBlock(block uint64) {
	if m.llc == nil {
		panic("core: manager used in DAS mode without SetLLC")
	}
	m.Stats.TableFetches++
	m.llc.Access(&mem.Request{
		Addr:   m.tableBlockAddr(block),
		Meta:   true,
		Core:   -1,
		Issued: m.eng.Now(),
		Done:   func() { m.tableBlockArrived(block) },
	})
}

// tableBlockArrived installs the fetched rows' entries and releases
// waiters.
func (m *Manager) tableBlockArrived(block uint64) {
	waiters := m.pendingTag[block]
	delete(m.pendingTag, block)
	for _, req := range waiters {
		coord := m.geom.Decode(req.Addr)
		rowID := m.geom.RowID(coord)
		m.tagCache.Insert(rowID)
		m.translateAndEnqueue(req, coord, rowID)
	}
}

// group returns (allocating on demand) the translation state of g.
func (m *Manager) group(g uint64) *group {
	grp, ok := m.groups[g]
	if !ok {
		grp = newGroup(m.layout.GroupSize(), m.layout.FastSlots())
		m.groups[g] = grp
	}
	return grp
}

// translateAndEnqueue applies the group permutation and issues the
// physical access.
func (m *Manager) translateAndEnqueue(req *mem.Request, coord dram.Coord, rowID uint64) {
	g, slot := m.layout.GroupOf(rowID)
	grp := m.group(g)
	phys := int(grp.perm[slot])
	localGroupBase := coord.Row / m.layout.GroupSize() * m.layout.GroupSize()
	coord.Row = localGroupBase + phys
	cls := dram.RowSlow
	if m.layout.SlotIsFast(phys) {
		cls = dram.RowFast
		grp.lastUse[phys] = m.eng.Now()
	}
	m.enqueue(req, coord, cls, rowID, cls == dram.RowSlow && !req.Write)
}

// enqueue forwards to the memory controller, wiring completion and the
// promotion trigger.
func (m *Manager) enqueue(req *mem.Request, coord dram.Coord, cls dram.RowClass, rowID uint64, trigger bool) {
	dreq := &mc.Request{
		Coord: coord,
		Class: cls,
		Write: req.Write,
		Meta:  req.Meta || req.Addr >= m.tableBase,
		Core:  req.Core,
	}
	core := req.Core
	done := req.Done
	dreq.Done = func(kind mc.ServiceKind) {
		if done != nil {
			done()
		}
		if trigger {
			m.Stats.SlowTriggers++
			m.considerPromotion(rowID, core)
		}
	}
	// Posted writes complete at enqueue inside the controller.
	m.ctl.Enqueue(dreq)
}

// considerPromotion runs the Section 5.3 trigger: filter the row, pick a
// victim, and schedule the swap.
func (m *Manager) considerPromotion(rowID uint64, coreID int) {
	g, slot := m.layout.GroupOf(rowID)
	grp := m.group(g)
	if grp.migrating {
		return
	}
	phys := int(grp.perm[slot])
	if m.layout.SlotIsFast(phys) {
		return // promoted by an earlier in-flight trigger
	}
	if !m.filter.Allow(rowID) {
		return
	}
	victimPhys := m.picker.pick(grp, m.layout.FastSlots())
	victimLogical := int(grp.inv[victimPhys])
	grp.migrating = true
	commit := func() {
		grp.swap(slot, victimLogical)
		grp.lastUse[victimPhys] = m.eng.Now()
		grp.migrating = false
		m.Stats.Promotions++
		if coreID >= 0 && coreID < len(m.Stats.PerCorePromotions) {
			m.Stats.PerCorePromotions[coreID]++
		}
		victimRow := m.layout.RowOf(g, victimLogical)
		// The swap just computed both rows' new entries: keep them hot in
		// the tag cache (the promoted row is about to be re-accessed).
		m.tagCache.Insert(rowID)
		m.tagCache.Insert(victimRow)
		m.writeTableEntries(rowID, victimRow)
	}
	if m.cfg.Design == DASFM || m.ctl.Device().MigrationLatency() == 0 {
		commit()
		return
	}
	// The swap starts from the promotee's current physical row (likely
	// still open in the row buffer from the triggering access).
	physRow := m.layout.RowOf(g, phys)
	coord := m.geom.RowCoord(physRow)
	m.ctl.Migrate(coord.Channel, coord.Rank, coord.Bank, coord.Row, commit)
}

// writeTableEntries posts updates of the two swapped rows' table entries
// through the LLC (keeping LLC copies coherent with the in-DRAM table).
func (m *Manager) writeTableEntries(rowA, rowB uint64) {
	blockA := m.tableBlock(rowA)
	blockB := m.tableBlock(rowB)
	m.postTableWrite(blockA)
	if blockB != blockA {
		m.postTableWrite(blockB)
	}
}

// postTableWrite issues one posted table-block write.
func (m *Manager) postTableWrite(block uint64) {
	m.Stats.TableWrites++
	m.llc.Access(&mem.Request{
		Addr:   m.tableBlockAddr(block),
		Write:  true,
		Meta:   true,
		Core:   -1,
		Issued: m.eng.Now(),
	})
}

// PhysicalRow reports the current physical slot class of a logical row
// (diagnostics and tests).
func (m *Manager) PhysicalRow(rowID uint64) (physRow uint64, fast bool, err error) {
	if !m.cfg.Design.Dynamic() {
		return 0, false, fmt.Errorf("core: PhysicalRow requires a dynamic design")
	}
	g, slot := m.layout.GroupOf(rowID)
	grp := m.group(g)
	phys := int(grp.perm[slot])
	return m.layout.RowOf(g, phys), m.layout.SlotIsFast(phys), nil
}
