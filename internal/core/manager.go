package core

import (
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mc"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FaultStats counts degradation activity on a faulty device (all zero
// when no fault injector is attached).
type FaultStats struct {
	// MigFailures counts migrations that failed at completion.
	MigFailures uint64
	// MigRetries counts re-issued migrations after a failure.
	MigRetries uint64
	// PinnedRows counts rows pinned to the slow level after exhausting
	// their migration retries.
	PinnedRows uint64
	// FencedGroups counts migration groups fenced out of promotion
	// because every fast slot is weak.
	FencedGroups uint64
	// WeakServices counts demand accesses to weak fast rows, derated to
	// slow timing.
	WeakServices uint64
	// TagCorruptions counts tag-cache hits discarded on a parity fault.
	TagCorruptions uint64
	// TableRefetches counts translation-table blocks re-fetched after a
	// failed ECC check.
	TableRefetches uint64
	// MigBreakerTrips counts trips of the migration circuit breaker
	// (0 or 1 per system): after migBreakerThreshold consecutive
	// abandoned swaps with no success in between, the migration lane is
	// treated as broken and promotion stops device-wide.
	MigBreakerTrips uint64
}

// Stats counts management activity over the measurement window.
type Stats struct {
	// Promotions counts committed row swaps (migration completions).
	Promotions uint64
	// PerCorePromotions attributes promotions to the triggering core.
	PerCorePromotions []uint64
	// SlowTriggers counts demand reads serviced from the slow level (the
	// promotion trigger events).
	SlowTriggers uint64
	// TableFetches counts translation-table blocks fetched through the
	// LLC after a tag-cache miss.
	TableFetches uint64
	// TableWrites counts translation-table update writes.
	TableWrites uint64
	// Faults aggregates fault-handling activity.
	Faults FaultStats
}

// Manager is the DAS-DRAM management unit: it translates LLC-miss traffic
// to physical row locations, steers it to the memory controller with the
// right timing class, and schedules promotions. It also implements the
// paper's comparison designs (see Design).
type Manager struct {
	cfg    Config
	eng    *sim.Engine
	geom   dram.Geometry
	ctl    *mc.Controller
	llc    mem.Component
	layout *Layout

	groups   map[uint64]*group
	tagCache *TagCache
	filter   *Filter
	picker   victimPicker

	// freeGroups recycles group translation state across pooled-machine
	// resets: groups allocate lazily on first touch, dominate the
	// manager's steady-state allocation, and are shape-compatible
	// whenever GroupSize and FastDenom carry over (Reset drops the list
	// otherwise).
	freeGroups []*group

	// reqFree recycles controller-request slots (see ctlReq). Slots come
	// back through mc.Request.Release — from the memory-side shard for
	// posted writes in a parallel run — so the list is lock-protected.
	// It survives Reset: slots are shape-independent, and reusing them
	// is what makes a pooled machine's steady-state accesses
	// allocation-free. Requests still queued when a run ends are dropped
	// by Controller.Reset and simply fall out of circulation.
	reqFreeMu sync.Mutex
	reqFree   []*ctlReq

	static  *StaticAssignment
	profile *RowProfile

	tableBase  uint64
	tableBytes uint64

	// pendingTag maps a table block index to data requests waiting on
	// its fetch.
	pendingTag map[uint64][]*mem.Request

	// faults, when non-nil, injects device faults into the management
	// path; checkInv enables the per-swap invariant checker.
	faults   *fault.Injector
	checkInv bool
	// tableRetries counts consecutive corrupt fetches per in-flight
	// table block (allocated lazily, entries removed on acceptance).
	tableRetries map[uint64]int
	// consecAbandoned counts migrations abandoned (row pinned) since the
	// last successful commit; migBreaker latches once it reaches
	// migBreakerThreshold, disabling promotion device-wide so a broken
	// migration lane stops costing bank time.
	consecAbandoned int
	migBreaker      bool
	// err records the first structured failure (invariant violation or
	// configuration misuse detected mid-run); see Err.
	err error

	// tel carries the trace hook for fault events (nil = telemetry off,
	// the default; see AttachTelemetry).
	tel *coreTelemetry

	// shard, when non-nil, is the processor-side shard of a parallel
	// run: calls into the controller (enqueues, migrations, resets)
	// cross to the memory side through it (see SetShard).
	shard *sim.Shard

	Stats Stats
}

// SetShard marks the manager as running on the processor-side shard of
// a parallel simulation. Controller calls are posted through s as
// synchronous cross-shard messages ordered at the calling event's
// position, which is exactly where the sequential engine ran them.
func (m *Manager) SetShard(s *sim.Shard) { m.shard = s }

// postEnqueue is the trampoline for crossing Controller.Enqueue.
func postEnqueue(a, b any) { a.(*mc.Controller).Enqueue(b.(*mc.Request)) }

// migPost carries one Controller.Migrate call across shards. Migrations
// are rare (thousands per run, not millions), so the allocation is
// irrelevant.
type migPost struct {
	ctl                      *mc.Controller
	channel, rank, bank, row int
	done                     func()
}

func postMigrate(a, _ any) {
	p := a.(*migPost)
	p.ctl.Migrate(p.channel, p.rank, p.bank, p.row, p.done)
}

// migrate routes a promotion swap to the controller, crossing shards in
// a parallel run.
func (m *Manager) migrate(channel, rank, bank, row int, done func()) {
	if m.shard != nil {
		m.shard.PostSync(postMigrate, &migPost{
			ctl: m.ctl, channel: channel, rank: rank, bank: bank, row: row, done: done,
		}, nil)
		return
	}
	m.ctl.Migrate(channel, rank, bank, row, done)
}

// NewManager builds a manager for design cfg.Design in front of ctl.
// cores sizes per-core counters. For static designs supply the
// assignment via SetStaticAssignment before running; for translation
// lookups the shared LLC must be attached via SetLLC.
func NewManager(cfg Config, eng *sim.Engine, ctl *mc.Controller, cores int) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom := ctl.Device().Geometry()
	m := &Manager{
		cfg:  cfg,
		eng:  eng,
		geom: geom,
		ctl:  ctl,
	}
	if cores > 0 {
		m.Stats.PerCorePromotions = make([]uint64, cores)
	}
	m.tableBytes = TableReserveBytes(geom)
	m.tableBase = geom.Capacity() - m.tableBytes
	if cfg.Design.Dynamic() {
		layout, err := NewLayout(geom, cfg.GroupSize, cfg.FastDenom)
		if err != nil {
			return nil, err
		}
		m.layout = layout
		tc, err := NewTagCache(cfg.TagCacheBytes, cfg.TagCacheAssoc)
		if err != nil {
			return nil, err
		}
		m.tagCache = tc
		f, err := NewFilter(cfg.FilterThreshold, cfg.FilterCounters)
		if err != nil {
			return nil, err
		}
		m.filter = f
		m.groups = make(map[uint64]*group)
		m.picker = victimPicker{policy: cfg.Replacement, rng: sim.NewRNG(cfg.Seed)}
		m.pendingTag = make(map[uint64][]*mem.Request)
	}
	return m, nil
}

// SetLLC attaches the last-level cache used for translation-table
// lookups. Must be called before any DAS-mode access (the LLC is built
// after the manager because the manager is the LLC's lower level);
// CheckReady verifies the wiring.
func (m *Manager) SetLLC(llc mem.Component) { m.llc = llc }

// CheckReady validates run-time wiring that the constructor cannot see
// (the LLC is built after the manager). Call it once assembly is
// complete, before driving traffic.
func (m *Manager) CheckReady() error {
	if m.cfg.Design.Dynamic() && m.llc == nil {
		return fmt.Errorf("core: %v requires an attached LLC for translation lookups (call SetLLC)", m.cfg.Design)
	}
	if m.cfg.Design.Static() && m.static == nil {
		return fmt.Errorf("core: %v requires a static assignment (call SetStaticAssignment)", m.cfg.Design)
	}
	return nil
}

// SetFaults attaches a fault injector. Must be set before traffic;
// a nil injector (the default) models a perfect device and leaves the
// management path byte-identical to a build without fault support.
func (m *Manager) SetFaults(inj *fault.Injector) {
	m.faults = inj
	if inj != nil && m.cfg.Design.Dynamic() {
		m.tableRetries = make(map[uint64]int)
	}
}

// Faults returns the attached injector (nil when none).
func (m *Manager) Faults() *fault.Injector { return m.faults }

// EnableInvariantChecks turns on the per-swap invariant checker: after
// every committed promotion the affected group's translation state is
// verified (see CheckInvariants) and the first violation is recorded as
// a structured error retrievable via Err.
func (m *Manager) EnableInvariantChecks() { m.checkInv = true }

// Err returns the first structured failure recorded during the run:
// an *InvariantError from the checker, or a configuration-misuse error
// detected on the access path. A non-nil value means subsequent results
// are untrustworthy and the run should be aborted.
func (m *Manager) Err() error { return m.err }

// fail records the first structured failure.
func (m *Manager) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// SetStaticAssignment installs the profiled fast-row set (SAS/CHARM).
func (m *Manager) SetStaticAssignment(a *StaticAssignment) { m.static = a }

// EnableProfiling starts recording per-row demand-read counts and
// returns the profile being filled.
func (m *Manager) EnableProfiling() *RowProfile {
	m.profile = NewRowProfile()
	return m.profile
}

// TagCache exposes the translation cache (nil for non-dynamic designs).
func (m *Manager) TagCache() *TagCache { return m.tagCache }

// Filter exposes the promotion filter (nil for non-dynamic designs).
func (m *Manager) Filter() *Filter { return m.filter }

// Layout exposes the migration-group layout (nil for non-dynamic designs).
func (m *Manager) Layout() *Layout { return m.layout }

// UsableBytes returns the capacity available to workloads: total memory
// minus the reserved translation-table region.
func (m *Manager) UsableBytes() uint64 { return m.tableBase }

// TableBase returns the first byte of the reserved table region.
func (m *Manager) TableBase() uint64 { return m.tableBase }

// ResetStats zeroes management statistics (warm-up boundary). Fault
// counters are preserved: they record the device's one-time degradation
// adaptation (pinning, fencing, breaker trips), which is concentrated
// in warm-up and would vanish from a window-scoped report.
func (m *Manager) ResetStats() {
	perCore := m.Stats.PerCorePromotions
	faults := m.Stats.Faults
	m.Stats = Stats{}
	m.Stats.Faults = faults
	if perCore != nil {
		for i := range perCore {
			perCore[i] = 0
		}
		m.Stats.PerCorePromotions = perCore
	}
	if m.tagCache != nil {
		m.tagCache.Lookups = 0
		m.tagCache.Hits = 0
	}
	if m.filter != nil {
		m.filter.Rejects = 0
	}
}

// Reset rewinds the manager to its just-constructed state for in-place
// reuse (exp.SystemPool), adopting cfg's management knobs. The design
// is pinned (the pool keys machines by design), as are the engine,
// controller, and geometry; everything attached per run — LLC, static
// assignment, profile, fault injector, telemetry, shard binding —
// detaches. Touched migration groups return to a freelist (reusable
// when GroupSize and FastDenom carry over), the tag cache and filter
// reset in place when their shapes match and rebuild otherwise, and the
// victim picker re-seeds from cfg.Seed exactly as NewManager would.
func (m *Manager) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Design != m.cfg.Design {
		return fmt.Errorf("core: reset with design %v on a manager built for %v", cfg.Design, m.cfg.Design)
	}
	old := m.cfg
	m.cfg = cfg
	m.llc = nil
	m.static, m.profile = nil, nil
	m.faults = nil
	m.checkInv = false
	m.tableRetries = nil
	m.consecAbandoned = 0
	m.migBreaker = false
	m.err = nil
	m.tel = nil
	m.shard = nil
	perCore := m.Stats.PerCorePromotions
	m.Stats = Stats{}
	for i := range perCore {
		perCore[i] = 0
	}
	m.Stats.PerCorePromotions = perCore
	if !cfg.Design.Dynamic() {
		return nil
	}
	sameShape := cfg.GroupSize == old.GroupSize && cfg.FastDenom == old.FastDenom
	if !sameShape {
		layout, err := NewLayout(m.geom, cfg.GroupSize, cfg.FastDenom)
		if err != nil {
			return err
		}
		m.layout = layout
		m.freeGroups = nil
	}
	for id, grp := range m.groups {
		if sameShape {
			grp.reset()
			m.freeGroups = append(m.freeGroups, grp)
		}
		delete(m.groups, id)
	}
	if cfg.TagCacheBytes == old.TagCacheBytes && cfg.TagCacheAssoc == old.TagCacheAssoc {
		m.tagCache.Reset()
	} else {
		tc, err := NewTagCache(cfg.TagCacheBytes, cfg.TagCacheAssoc)
		if err != nil {
			return err
		}
		m.tagCache = tc
	}
	if cfg.FilterThreshold == old.FilterThreshold && cfg.FilterCounters == old.FilterCounters {
		m.filter.Reset()
	} else {
		f, err := NewFilter(cfg.FilterThreshold, cfg.FilterCounters)
		if err != nil {
			return err
		}
		m.filter = f
	}
	m.picker = victimPicker{policy: cfg.Replacement, rng: sim.NewRNG(cfg.Seed)}
	clear(m.pendingTag)
	return nil
}

// Access implements mem.Component for LLC-miss traffic (fills,
// writebacks, and recursive translation-table requests).
func (m *Manager) Access(req *mem.Request) {
	if req.Meta || req.Addr >= m.tableBase {
		// Translation-table region: identity-mapped, slow subarrays.
		coord := m.geom.Decode(req.Addr)
		m.enqueue(req, coord, dram.RowSlow, 0, false)
		return
	}
	coord := m.geom.Decode(req.Addr)
	rowID := m.geom.RowID(coord)
	if m.profile != nil && !req.Write {
		m.profile.Record(rowID)
	}
	switch m.cfg.Design {
	case Standard:
		m.enqueue(req, coord, dram.RowSlow, rowID, false)
	case FS:
		m.enqueue(req, coord, dram.RowFast, rowID, false)
	case SAS, CHARM:
		cls := dram.RowSlow
		if m.static.IsFast(rowID) {
			cls = dram.RowFast
		}
		m.enqueue(req, coord, cls, rowID, false)
	default: // DAS, DASFM
		if m.tagCache.Lookup(rowID) {
			if m.faults == nil || !m.faults.TagEntryCorrupt() {
				m.translateAndEnqueue(req, coord, rowID)
				return
			}
			// Parity fault on the cached entry: drop it and fall through
			// to the miss path so the entry is re-fetched through the LLC
			// instead of misdirecting the request.
			m.Stats.Faults.TagCorruptions++
			m.noteFault("fault: tag parity", int64(rowID))
			m.tagCache.Invalidate(rowID)
		}
		// Tag-cache miss: everything from here to enqueue is translation
		// wait (table-block fetch through the LLC).
		if req.Trace != nil {
			req.Trace.StampXlat(m.eng.Now())
		}
		block := m.tableBlock(rowID)
		if waiters, inFlight := m.pendingTag[block]; inFlight {
			m.pendingTag[block] = append(waiters, req)
			return
		}
		m.pendingTag[block] = []*mem.Request{req}
		m.fetchTableBlock(block)
	}
}

// tableBlock returns the table block index holding rowID's entry.
func (m *Manager) tableBlock(rowID uint64) uint64 { return rowID >> 6 }

// tableBlockAddr returns the physical address of a table block.
func (m *Manager) tableBlockAddr(block uint64) uint64 { return m.tableBase + block<<6 }

// fetchTableBlock reads a translation-table block through the LLC; on a
// further miss the LLC fills it from DRAM via this manager (Meta path).
// Missing wiring (no LLC in a dynamic design) is a configuration error:
// it is recorded via fail so the run aborts with a diagnosable cause,
// and the waiters are served identity-mapped from the slow level so the
// requests complete instead of hanging. CheckReady catches this at
// assembly time; this path is the run-time backstop.
func (m *Manager) fetchTableBlock(block uint64) {
	if m.llc == nil {
		m.fail(fmt.Errorf("core: %v translation fetch with no LLC attached (SetLLC not called)", m.cfg.Design))
		for _, req := range m.pendingTag[block] {
			m.enqueue(req, m.geom.Decode(req.Addr), dram.RowSlow, 0, false)
		}
		delete(m.pendingTag, block)
		return
	}
	m.Stats.TableFetches++
	m.llc.Access(&mem.Request{
		Addr:   m.tableBlockAddr(block),
		Meta:   true,
		Core:   -1,
		Issued: m.eng.Now(),
		Done:   func() { m.tableBlockArrived(block) },
	})
}

// maxTableRefetches bounds consecutive ECC re-fetches of one table
// block: after this many corrupt arrivals the entry is accepted as
// corrected (real controllers fall back to stronger correction or a
// scrub), guaranteeing forward progress even at corruption rate 1.
const maxTableRefetches = 4

// migBreakerThreshold is how many consecutive abandoned migrations
// (each already MigRetries failures deep, with no success in between)
// trip the device-wide migration circuit breaker. At the default 3
// retries a single trip needs 64 back-to-back failures — vanishingly
// unlikely unless the lane itself is broken, in which case continuing
// to retry only burns bank time for rows that will be pinned anyway.
const migBreakerThreshold = 16

// tableBlockArrived installs the fetched rows' entries and releases
// waiters. A block that fails its ECC check is re-fetched through the
// LLC path (bounded by maxTableRefetches) rather than installed, so a
// corrupt translation never misdirects a request.
func (m *Manager) tableBlockArrived(block uint64) {
	if m.faults != nil {
		if m.faults.TableBlockCorrupt() && m.tableRetries[block] < maxTableRefetches {
			m.tableRetries[block]++
			m.Stats.Faults.TableRefetches++
			m.noteFault("fault: table ECC", int64(block))
			m.fetchTableBlock(block)
			return
		}
		delete(m.tableRetries, block)
	}
	waiters := m.pendingTag[block]
	delete(m.pendingTag, block)
	for _, req := range waiters {
		coord := m.geom.Decode(req.Addr)
		rowID := m.geom.RowID(coord)
		m.tagCache.Insert(rowID)
		m.translateAndEnqueue(req, coord, rowID)
	}
}

// PendingTranslations reports data requests currently waiting on
// table-block fetches (watchdog diagnostics).
func (m *Manager) PendingTranslations() int {
	n := 0
	for _, waiters := range m.pendingTag {
		n += len(waiters)
	}
	return n
}

// DescribePending renders the in-flight translation fetches (watchdog
// stall reports).
func (m *Manager) DescribePending() string {
	if len(m.pendingTag) == 0 {
		return ""
	}
	out := fmt.Sprintf("manager: %d table block(s) in flight:", len(m.pendingTag))
	for block, waiters := range m.pendingTag {
		out += fmt.Sprintf(" block %d (%d waiters)", block, len(waiters))
	}
	return out + "\n"
}

// group returns (allocating on demand) the translation state of g,
// recycling a reset group from the freelist when one is available.
func (m *Manager) group(g uint64) *group {
	grp, ok := m.groups[g]
	if !ok {
		if n := len(m.freeGroups); n > 0 {
			grp = m.freeGroups[n-1]
			m.freeGroups[n-1] = nil
			m.freeGroups = m.freeGroups[:n-1]
		} else {
			grp = newGroup(m.layout.GroupSize(), m.layout.FastSlots())
		}
		m.groups[g] = grp
	}
	return grp
}

// translateAndEnqueue applies the group permutation and issues the
// physical access.
func (m *Manager) translateAndEnqueue(req *mem.Request, coord dram.Coord, rowID uint64) {
	g, slot := m.layout.GroupOf(rowID)
	grp := m.group(g)
	phys := int(grp.perm[slot])
	localGroupBase := coord.Row / m.layout.GroupSize() * m.layout.GroupSize()
	coord.Row = localGroupBase + phys
	cls := dram.RowSlow
	if m.layout.SlotIsFast(phys) {
		if m.slotWeak(g, phys) {
			// Weak fast row: the data is intact but the short-bitline
			// sensing margin is not, so the access is derated to
			// conservative (slow) timing.
			m.Stats.Faults.WeakServices++
		} else {
			cls = dram.RowFast
			grp.lastUse[phys] = m.eng.Now()
		}
	}
	m.enqueue(req, coord, cls, rowID, cls == dram.RowSlow && !req.Write)
}

// slotWeak reports whether group g's fast physical slot phys maps to a
// weak fast-subarray row.
func (m *Manager) slotWeak(g uint64, phys int) bool {
	return m.faults != nil && m.faults.WeakRow(m.layout.RowOf(g, phys))
}

// groupFenced reports (computing once) whether every fast slot of group
// g is weak, in which case the group degrades to slow-only service and
// is fenced out of promotion entirely.
func (m *Manager) groupFenced(g uint64, grp *group) bool {
	if m.faults == nil {
		return false
	}
	if !grp.fencedKnown {
		grp.fencedKnown = true
		grp.fenced = true
		for p := 0; p < m.layout.FastSlots(); p++ {
			if !m.slotWeak(g, p) {
				grp.fenced = false
				break
			}
		}
		if grp.fenced {
			m.Stats.Faults.FencedGroups++
		}
	}
	return grp.fenced
}

// ctlReq is one pooled controller-request slot: the mc.Request plus the
// completion state enqueue used to capture in a per-access closure. The
// doneFn/releaseFn method values are bound once when the slot is
// created, so a recycled slot makes a whole DRAM access allocate
// nothing. Slots are interchangeable — every field the simulation reads
// is overwritten at enqueue — so the (racy, lock-ordered) freelist order
// in a sharded run cannot perturb the command stream.
type ctlReq struct {
	r       mc.Request
	m       *Manager
	done    func()
	trigger bool
	rowID   uint64
	core    int

	doneFn    func(mc.ServiceKind)
	releaseFn func()
}

// complete is the request's Done: the original waiter first, then the
// promotion trigger, exactly as the old closure ordered them.
func (q *ctlReq) complete(kind mc.ServiceKind) {
	if q.done != nil {
		q.done()
	}
	if q.trigger {
		q.m.Stats.SlowTriggers++
		q.m.considerPromotion(q.rowID, q.core)
	}
}

// release returns the slot to the manager's freelist once the
// controller's last touch has passed (mc.Request.Release). Reads
// release on the processor-side shard, posted writes on the memory
// side, hence the lock; uncontended in a sequential run. Stale pointers
// are cleared so a parked slot pins neither the waiter chain nor a
// trace span.
func (q *ctlReq) release() {
	q.done = nil
	q.r.Trace = nil
	m := q.m
	m.reqFreeMu.Lock()
	m.reqFree = append(m.reqFree, q)
	m.reqFreeMu.Unlock()
}

// ctlReqSlot pops a recycled slot or mints one (two allocations: the
// slot and its bound method values — paid once, amortized across the
// run and across pooled-machine resets, which keep the freelist).
func (m *Manager) ctlReqSlot() *ctlReq {
	m.reqFreeMu.Lock()
	if n := len(m.reqFree); n > 0 {
		q := m.reqFree[n-1]
		m.reqFree[n-1] = nil
		m.reqFree = m.reqFree[:n-1]
		m.reqFreeMu.Unlock()
		return q
	}
	m.reqFreeMu.Unlock()
	q := &ctlReq{m: m}
	q.doneFn = q.complete
	q.releaseFn = q.release
	return q
}

// enqueue forwards to the memory controller, wiring completion and the
// promotion trigger.
func (m *Manager) enqueue(req *mem.Request, coord dram.Coord, cls dram.RowClass, rowID uint64, trigger bool) {
	q := m.ctlReqSlot()
	q.r = mc.Request{
		Coord: coord,
		Class: cls,
		Write: req.Write,
		Meta:  req.Meta || req.Addr >= m.tableBase,
		Core:  req.Core,
		Trace: req.Trace,
	}
	q.done = req.Done
	q.trigger = trigger
	q.rowID = rowID
	q.core = req.Core
	dreq := &q.r
	dreq.Done = q.doneFn
	dreq.Release = q.releaseFn
	if m.shard != nil {
		// Posted-write acks re-enter the cache hierarchy, which lives on
		// this shard: fire the ack here (the controller acks writes
		// synchronously inside Enqueue with ServiceRowBuffer, at this
		// same global-order position) and hand the controller a Done-less
		// request.
		if dreq.Write && dreq.Done != nil {
			ack := dreq.Done
			dreq.Done = nil
			ack(mc.ServiceRowBuffer)
		}
		m.shard.PostSync(postEnqueue, m.ctl, dreq)
		return
	}
	// Posted writes complete at enqueue inside the controller.
	m.ctl.Enqueue(dreq)
}

// considerPromotion runs the Section 5.3 trigger: filter the row, pick a
// victim, and schedule the swap. On a faulty device it additionally
// fences degraded groups, skips pinned rows and weak victim slots, and
// retries failed migrations up to the configured limit before pinning
// the row in the slow level.
func (m *Manager) considerPromotion(rowID uint64, coreID int) {
	if m.migBreaker {
		return // migration lane judged broken; serve slow-only
	}
	g, slot := m.layout.GroupOf(rowID)
	grp := m.group(g)
	if grp.migrating {
		return
	}
	if m.groupFenced(g, grp) || grp.isPinned(slot) {
		return // degraded to slow-only service
	}
	phys := int(grp.perm[slot])
	if m.layout.SlotIsFast(phys) {
		return // promoted by an earlier in-flight trigger
	}
	if !m.filter.Allow(rowID) {
		return
	}
	var usable func(int) bool
	if m.faults != nil {
		usable = func(p int) bool { return !m.slotWeak(g, p) }
	}
	victimPhys := m.picker.pick(grp, m.layout.FastSlots(), usable)
	victimLogical := int(grp.inv[victimPhys])
	grp.migrating = true
	free := m.cfg.Design == DASFM || m.ctl.Device().MigrationLatency() == 0
	// The swap starts from the promotee's current physical row (likely
	// still open in the row buffer from the triggering access).
	coord := m.geom.RowCoord(m.layout.RowOf(g, phys))
	var commit func()
	commit = func() {
		if m.faults != nil && m.faults.MigrationFails() {
			m.Stats.Faults.MigFailures++
			m.noteFault("fault: migration", int64(rowID))
			if grp.retries < m.cfg.MigRetries {
				grp.retries++
				m.Stats.Faults.MigRetries++
				if free {
					// Bound recursion depth and keep event ordering
					// uniform: retry on a fresh event.
					m.eng.Schedule(0, commit)
				} else {
					m.migrate(coord.Channel, coord.Rank, coord.Bank, coord.Row, commit)
				}
				return
			}
			// Retries exhausted: abandon the swap and pin the row slow so
			// the marginal lane is never exercised for it again. Enough
			// consecutive abandonments (without a single success) indict
			// the migration lane itself, not the row: trip the breaker and
			// stop promoting device-wide.
			grp.retries = 0
			grp.migrating = false
			grp.pin(slot)
			m.Stats.Faults.PinnedRows++
			m.noteFault("pinned slow", int64(rowID))
			m.consecAbandoned++
			if m.consecAbandoned >= migBreakerThreshold && !m.migBreaker {
				m.migBreaker = true
				m.Stats.Faults.MigBreakerTrips++
				m.noteFault("migration breaker trip", -1)
			}
			return
		}
		grp.retries = 0
		m.consecAbandoned = 0
		grp.swap(slot, victimLogical)
		grp.lastUse[victimPhys] = m.eng.Now()
		grp.migrating = false
		m.Stats.Promotions++
		if coreID >= 0 && coreID < len(m.Stats.PerCorePromotions) {
			m.Stats.PerCorePromotions[coreID]++
		}
		victimRow := m.layout.RowOf(g, victimLogical)
		// The swap just computed both rows' new entries: keep them hot in
		// the tag cache (the promoted row is about to be re-accessed).
		m.tagCache.Insert(rowID)
		m.tagCache.Insert(victimRow)
		m.writeTableEntries(rowID, victimRow)
		if m.checkInv {
			if err := m.checkSwap(g, grp, rowID, victimRow); err != nil {
				m.fail(err)
			}
		}
	}
	if free {
		commit()
		return
	}
	m.migrate(coord.Channel, coord.Rank, coord.Bank, coord.Row, commit)
}

// writeTableEntries posts updates of the two swapped rows' table entries
// through the LLC (keeping LLC copies coherent with the in-DRAM table).
func (m *Manager) writeTableEntries(rowA, rowB uint64) {
	blockA := m.tableBlock(rowA)
	blockB := m.tableBlock(rowB)
	m.postTableWrite(blockA)
	if blockB != blockA {
		m.postTableWrite(blockB)
	}
}

// postTableWrite issues one posted table-block write.
func (m *Manager) postTableWrite(block uint64) {
	m.Stats.TableWrites++
	m.llc.Access(&mem.Request{
		Addr:   m.tableBlockAddr(block),
		Write:  true,
		Meta:   true,
		Core:   -1,
		Issued: m.eng.Now(),
	})
}

// PhysicalRow reports the current physical slot class of a logical row
// (diagnostics and tests).
func (m *Manager) PhysicalRow(rowID uint64) (physRow uint64, fast bool, err error) {
	if !m.cfg.Design.Dynamic() {
		return 0, false, fmt.Errorf("core: PhysicalRow requires a dynamic design")
	}
	g, slot := m.layout.GroupOf(rowID)
	grp := m.group(g)
	phys := int(grp.perm[slot])
	return m.layout.RowOf(g, phys), m.layout.SlotIsFast(phys), nil
}
