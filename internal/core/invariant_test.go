package core

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/mem"
)

// faultyHarness is a DAS harness with an injector and the invariant
// checker armed, as a fault-sweep run would configure it.
func faultyHarness(t *testing.T, design Design, migLatNS float64, fc fault.Config) *harness {
	t.Helper()
	h := newHarness(t, design, migLatNS)
	inj, err := fault.NewInjector(fc)
	if err != nil {
		t.Fatal(err)
	}
	h.mgr.SetFaults(inj)
	h.mgr.EnableInvariantChecks()
	return h
}

// drive issues a sequence of demand reads (row ids from seq) and settles
// migrations, returning the manager's first recorded failure.
func (h *harness) drive(t *testing.T, seq []byte) error {
	t.Helper()
	geom := h.dev.Geometry()
	for _, b := range seq {
		// Stay below the reserved translation-table rows at the top.
		row := uint64(b) % (geom.TotalRows() - uint64(TableReserveBytes(geom)/geom.RowBytes()))
		done := false
		h.mgr.Access(&mem.Request{Addr: geom.Encode(geom.RowCoord(row)), Core: 0, Issued: h.eng.Now(), Done: func() { done = true }})
		for !done {
			if !h.eng.Step() {
				t.Fatal("engine drained mid-read")
			}
			if err := h.mgr.Err(); err != nil {
				return err
			}
		}
		h.settle()
	}
	return h.mgr.Err()
}

// TestInvariantsHoldUnderRandomFaults drives random access sequences
// through DAS and DASFM with every fault class active. Property: no
// sequence of migrations, failures, retries, pinnings, and corruptions
// ever violates row conservation or translation coherence.
func TestInvariantsHoldUnderRandomFaults(t *testing.T) {
	fc := fault.Config{
		Seed:             99,
		WeakRowRate:      0.25,
		MigFailRate:      0.4,
		TagCorruptRate:   0.15,
		TableCorruptRate: 0.15,
	}
	for _, design := range []Design{DAS, DASFM} {
		design := design
		check := func(seq []byte) bool {
			h := faultyHarness(t, design, 146.25, fc)
			if err := h.drive(t, seq); err != nil {
				t.Logf("%v: manager failed: %v", design, err)
				return false
			}
			if err := h.mgr.CheckInvariants(); err != nil {
				t.Logf("%v: %v", design, err)
				return false
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%v: %v", design, err)
		}
	}
}

// TestFencedGroupNeverPromoted fences every group (weak rate 1): no
// access sequence may commit a promotion, and every group's permutation
// must remain the identity.
func TestFencedGroupNeverPromoted(t *testing.T) {
	check := func(seq []byte) bool {
		h := faultyHarness(t, DASFM, 0, fault.Config{Seed: 7, WeakRowRate: 1})
		if err := h.drive(t, seq); err != nil {
			t.Log(err)
			return false
		}
		if h.mgr.Stats.Promotions != 0 {
			t.Logf("fenced groups received %d promotions", h.mgr.Stats.Promotions)
			return false
		}
		return h.mgr.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPinnedRowStaysSlow abandons every migration (fail rate 1, zero
// retries): promoted-then-failed rows are pinned and never re-enter the
// fast subarray.
func TestPinnedRowStaysSlow(t *testing.T) {
	h := newHarness(t, DAS, 146.25)
	inj, err := fault.NewInjector(fault.Config{Seed: 3, MigFailRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.mgr.cfg.MigRetries = 0
	h.mgr.SetFaults(inj)
	h.mgr.EnableInvariantChecks()
	geom := h.dev.Geometry()
	addr := geom.Encode(geom.RowCoord(8)) // slow slot of group 0
	for i := 0; i < 4; i++ {
		done := false
		h.mgr.Access(&mem.Request{Addr: addr, Core: 0, Issued: h.eng.Now(), Done: func() { done = true }})
		for !done && h.eng.Step() {
		}
		h.settle()
	}
	if h.mgr.Stats.Promotions != 0 {
		t.Fatalf("abandoned migrations committed: %d promotions", h.mgr.Stats.Promotions)
	}
	if h.mgr.Stats.Faults.PinnedRows != 1 {
		t.Fatalf("pinned rows = %d, want 1", h.mgr.Stats.Faults.PinnedRows)
	}
	if _, fast, _ := h.mgr.PhysicalRow(8); fast {
		t.Fatal("pinned row mapped fast")
	}
	if err := h.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsDetectsCorruption corrupts manager state directly
// and verifies each invariant class is caught with a structured error.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	group0 := func(h *harness) *group {
		geom := h.dev.Geometry()
		// Touch a row so group 0 is allocated.
		h.read(t, geom.Encode(geom.RowCoord(0)))
		return h.mgr.groups[0]
	}
	cases := []struct {
		kind    string
		corrupt func(h *harness, g *group)
	}{
		{"perm-range", func(h *harness, g *group) { g.perm[3] = 200 }},
		{"row-conservation", func(h *harness, g *group) { g.perm[4] = g.perm[3] }},
		{"perm-inverse", func(h *harness, g *group) { g.inv[3], g.inv[4] = g.inv[4], g.inv[3] }},
		{"pinned-fast", func(h *harness, g *group) { g.pin(0) }}, // slot 0 is fast
		{"fenced-promotion", func(h *harness, g *group) {
			g.swap(8, 0)
			g.fenced, g.fencedKnown = true, true
		}},
	}
	for _, tc := range cases {
		h := newHarness(t, DAS, 0)
		g := group0(h)
		if err := h.mgr.CheckInvariants(); err != nil {
			t.Fatalf("%s: clean state flagged: %v", tc.kind, err)
		}
		tc.corrupt(h, g)
		err := h.mgr.CheckInvariants()
		var ie *InvariantError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: corruption not detected (err=%v)", tc.kind, err)
		}
		if ie.Kind != tc.kind {
			t.Fatalf("detected %q, want %q (%v)", ie.Kind, tc.kind, err)
		}
	}
}

// TestInvariantViolationFailsRun verifies the checker is live on the
// commit path: corrupting a group mid-run surfaces as a manager error at
// the next committed swap rather than silently corrupting results.
func TestInvariantViolationFailsRun(t *testing.T) {
	h := newHarness(t, DASFM, 0)
	h.mgr.EnableInvariantChecks()
	geom := h.dev.Geometry()
	h.read(t, geom.Encode(geom.RowCoord(8))) // allocate + promote in group 0
	if h.mgr.Err() != nil {
		t.Fatalf("clean promotion flagged: %v", h.mgr.Err())
	}
	// Sabotage the inverse map, then force another promotion in group 0.
	g := h.mgr.groups[0]
	g.inv[0], g.inv[1] = g.inv[1], g.inv[0]
	done := false
	h.mgr.Access(&mem.Request{Addr: geom.Encode(geom.RowCoord(9)), Core: 0, Issued: h.eng.Now(), Done: func() { done = true }})
	for !done && h.eng.Step() {
	}
	var ie *InvariantError
	if err := h.mgr.Err(); !errors.As(err, &ie) {
		t.Fatalf("corrupted commit not caught: %v", err)
	}
}

// TestWeakRowsServedSlow verifies a weak fast row is derated: demand
// reads of fast-resident rows are sensed at slow timing when weak.
func TestWeakRowsServedSlow(t *testing.T) {
	h := faultyHarness(t, DAS, 0, fault.Config{Seed: 5, WeakRowRate: 1})
	geom := h.dev.Geometry()
	// Logical row 0 sits in fast slot 0 (identity map) but the slot is weak.
	h.read(t, geom.Encode(geom.RowCoord(0)))
	if s := h.dev.CollectStats(); s.ActivatesFast != 0 {
		t.Fatalf("weak fast row sensed at fast timing (%d fast activates)", s.ActivatesFast)
	}
	if h.mgr.Stats.Faults.WeakServices == 0 {
		t.Fatal("weak service not counted")
	}
}
