package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/mc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/timing"
)

// harness wires a manager to a real controller/device with a trivial
// LLC stub for translation lookups.
type harness struct {
	eng *sim.Engine
	dev *dram.Device
	ctl *mc.Controller
	mgr *Manager
	llc *stubLLC
}

// stubLLC forwards every access to the manager after a fixed delay,
// counting traffic (it is the manager's translation path).
type stubLLC struct {
	eng      *sim.Engine
	mgr      *Manager
	delay    sim.Time
	accesses int
}

func (s *stubLLC) Access(req *mem.Request) {
	s.accesses++
	s.eng.Schedule(s.delay, func() { s.mgr.Access(req) })
}

func newHarness(t *testing.T, design Design, migLatNS float64) *harness {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := dram.New(dram.Config{
		Geometry:         dram.Geometry{Channels: 1, Ranks: 1, Banks: 4, Rows: 64, Columns: 16, BlockSize: 64},
		Slow:             timing.DDR31600Slow(),
		Fast:             timing.DDR31600Fast(),
		MigrationLatency: sim.FromNS(migLatNS),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := mc.New(mc.DefaultConfig(), eng, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(design)
	cfg.GroupSize = 16
	cfg.TagCacheBytes = 1 << 10
	mgr, err := NewManager(cfg, eng, ctl, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: eng, dev: dev, ctl: ctl, mgr: mgr}
	h.llc = &stubLLC{eng: eng, mgr: mgr, delay: 1000}
	mgr.SetLLC(h.llc)
	return h
}

// read issues a demand read and steps the engine until it completes.
func (h *harness) read(t *testing.T, addr uint64) {
	t.Helper()
	done := false
	h.mgr.Access(&mem.Request{Addr: addr, Core: 0, Issued: h.eng.Now(), Done: func() { done = true }})
	for !done {
		if !h.eng.Step() {
			t.Fatal("engine drained mid-read")
		}
	}
}

// settle runs until all pending work (e.g. migrations) completes.
func (h *harness) settle() {
	for h.ctl.PendingMigrations() > 0 {
		if !h.eng.Step() {
			return
		}
	}
	// Drain a little longer for posted writes.
	h.eng.RunUntil(h.eng.Now() + sim.FromNS(500))
}

func TestStandardNeverTouchesFast(t *testing.T) {
	h := newHarness(t, Standard, 0)
	for i := uint64(0); i < 32; i++ {
		h.read(t, i*8192)
	}
	if s := h.dev.CollectStats(); s.ActivatesFast != 0 {
		t.Fatal("standard design activated fast rows")
	}
}

func TestFSAlwaysFast(t *testing.T) {
	h := newHarness(t, FS, 0)
	for i := uint64(0); i < 32; i++ {
		h.read(t, i*8192)
	}
	s := h.dev.CollectStats()
	if s.ActivatesFast != s.Activates {
		t.Fatalf("FS activated %d fast of %d", s.ActivatesFast, s.Activates)
	}
}

func TestDASPromotesOnSlowRead(t *testing.T) {
	h := newHarness(t, DAS, 146.25)
	geom := h.dev.Geometry()
	// Logical row 8 (slot 8 of group 0 with 16-row groups) starts slow.
	addr := geom.Encode(geom.RowCoord(8))
	rowID := uint64(8)
	if _, fast, _ := h.mgr.PhysicalRow(rowID); fast {
		t.Fatal("row 8 unexpectedly fast initially")
	}
	h.read(t, addr)
	h.settle()
	if h.mgr.Stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", h.mgr.Stats.Promotions)
	}
	if _, fast, _ := h.mgr.PhysicalRow(rowID); !fast {
		t.Fatal("row not fast after promotion")
	}
	if h.dev.CollectStats().Migrations != 1 {
		t.Fatal("no device migration issued")
	}
	// The displaced victim took the promotee's old physical slot.
	phys, _, _ := h.mgr.PhysicalRow(rowID)
	if phys == 8 {
		t.Fatal("promoted row still at its original physical slot")
	}
	// Second access is served fast, without another promotion.
	h.read(t, addr)
	h.settle()
	if h.mgr.Stats.Promotions != 1 {
		t.Fatal("re-access of fast row promoted again")
	}
}

func TestDASFMCommitsInstantly(t *testing.T) {
	h := newHarness(t, DASFM, 0)
	geom := h.dev.Geometry()
	h.read(t, geom.Encode(geom.RowCoord(9)))
	if h.mgr.Stats.Promotions != 1 {
		t.Fatalf("FM promotions = %d, want 1", h.mgr.Stats.Promotions)
	}
	if h.dev.CollectStats().Migrations != 0 {
		t.Fatal("FM issued a device migration")
	}
	if _, fast, _ := h.mgr.PhysicalRow(9); !fast {
		t.Fatal("FM mapping not updated")
	}
}

func TestFastReadDoesNotPromote(t *testing.T) {
	h := newHarness(t, DAS, 146.25)
	geom := h.dev.Geometry()
	// Logical row 1 starts in a fast slot (identity mapping, slot < 2).
	h.read(t, geom.Encode(geom.RowCoord(1)))
	h.settle()
	if h.mgr.Stats.Promotions != 0 {
		t.Fatal("fast-resident row triggered promotion")
	}
}

func TestWritesDoNotPromote(t *testing.T) {
	h := newHarness(t, DAS, 146.25)
	geom := h.dev.Geometry()
	addr := geom.Encode(geom.RowCoord(8))
	h.mgr.Access(&mem.Request{Addr: addr, Write: true, Writeback: true, Core: -1})
	h.eng.RunUntil(h.eng.Now() + sim.FromNS(2000))
	if h.mgr.Stats.Promotions != 0 {
		t.Fatal("write triggered promotion")
	}
}

func TestTagMissFetchesThroughLLC(t *testing.T) {
	h := newHarness(t, DAS, 0)
	geom := h.dev.Geometry()
	before := h.llc.accesses
	h.read(t, geom.Encode(geom.RowCoord(8)))
	h.settle()
	// At least the translation fetch and the table update went via LLC.
	if h.llc.accesses <= before {
		t.Fatal("tag miss did not consult the LLC")
	}
	if h.mgr.Stats.TableFetches == 0 {
		t.Fatal("table fetch not counted")
	}
	if h.mgr.TagCache().Lookups == 0 {
		t.Fatal("tag cache not consulted")
	}
}

func TestTableRegionIdentityMapped(t *testing.T) {
	h := newHarness(t, DAS, 0)
	// A meta access inside the reserved table region must not recurse
	// into translation and must be served slow.
	addr := h.mgr.TableBase()
	done := false
	h.mgr.Access(&mem.Request{Addr: addr, Meta: true, Core: -1, Done: func() { done = true }})
	for !done {
		if !h.eng.Step() {
			t.Fatal("meta access never completed")
		}
	}
	if h.dev.CollectStats().ActivatesFast != 0 {
		t.Fatal("table region used fast timing")
	}
}

func TestUsableBytesExcludesTable(t *testing.T) {
	h := newHarness(t, DAS, 0)
	geom := h.dev.Geometry()
	if h.mgr.UsableBytes()+TableReserveBytes(geom) != geom.Capacity() {
		t.Fatal("usable + reserve != capacity")
	}
}

func TestGroupMigrationSerialized(t *testing.T) {
	h := newHarness(t, DAS, 5000) // very slow migration
	geom := h.dev.Geometry()
	// Two slow rows of the same group: second promotion must be skipped
	// while the first migration is in flight.
	a := geom.Encode(geom.RowCoord(8))
	b := geom.Encode(geom.RowCoord(9))
	h.read(t, a)
	h.read(t, b) // completes while migration for row 8 still pending
	if h.mgr.Stats.Promotions > 1 {
		t.Fatal("concurrent promotions in one group")
	}
	h.settle()
}

func TestStaticAssignmentSteersClasses(t *testing.T) {
	eng := sim.NewEngine()
	dev, _ := dram.New(dram.Config{
		Geometry: dram.Geometry{Channels: 1, Ranks: 1, Banks: 4, Rows: 64, Columns: 16, BlockSize: 64},
		Slow:     timing.DDR31600Slow(),
		Fast:     timing.DDR31600Fast(),
	})
	ctl, _ := mc.New(mc.DefaultConfig(), eng, dev, 1)
	mgr, err := NewManager(DefaultConfig(SAS), eng, ctl, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewRowProfile()
	prof.Record(5)
	prof.Record(5)
	prof.Record(6)
	mgr.SetStaticAssignment(BuildStaticAssignment(prof, dev.Geometry(), 8))
	geom := dev.Geometry()
	read := func(row uint64) {
		done := false
		mgr.Access(&mem.Request{Addr: geom.Encode(geom.RowCoord(row)), Core: 0, Done: func() { done = true }})
		for !done && eng.Step() {
		}
	}
	read(5)  // profiled hot -> fast
	read(40) // cold -> slow
	s := dev.CollectStats()
	if s.ActivatesFast != 1 || s.Activates != 2 {
		t.Fatalf("static steering wrong: %d fast of %d", s.ActivatesFast, s.Activates)
	}
}

func TestBuildStaticAssignmentQuota(t *testing.T) {
	geom := testGeom()
	prof := NewRowProfile()
	// Touch every row of bank 0 once.
	for r := uint64(0); r < uint64(geom.Rows); r++ {
		prof.Record(r)
	}
	a := BuildStaticAssignment(prof, geom, 8)
	if a.FastRows() != geom.Rows/8 {
		t.Fatalf("assigned %d rows, want per-bank quota %d", a.FastRows(), geom.Rows/8)
	}
}

func TestBuildStaticAssignmentPrefersHot(t *testing.T) {
	geom := testGeom()
	prof := NewRowProfile()
	for r := uint64(0); r < 64; r++ {
		prof.Record(r) // cold: 1 touch
	}
	for i := 0; i < 10; i++ {
		prof.Record(70) // hot
	}
	a := BuildStaticAssignment(prof, geom, 8)
	if !a.IsFast(70) {
		t.Fatal("hottest row not assigned")
	}
}

func TestDesignParsing(t *testing.T) {
	for _, d := range AllDesigns() {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Fatalf("parse roundtrip failed for %v", d)
		}
	}
	if _, err := ParseDesign("hbm"); err == nil {
		t.Fatal("unknown design accepted")
	}
	if !DAS.Dynamic() || !DASFM.Dynamic() || SAS.Dynamic() {
		t.Fatal("Dynamic() wrong")
	}
	if !SAS.Static() || !CHARM.Static() || DAS.Static() {
		t.Fatal("Static() wrong")
	}
}

func TestManagerConfigValidation(t *testing.T) {
	cfg := DefaultConfig(DAS)
	cfg.GroupSize = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero group size accepted")
	}
	cfg = DefaultConfig(DAS)
	cfg.FastDenom = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("denominator 1 accepted")
	}
	cfg = DefaultConfig(DAS)
	cfg.FilterThreshold = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("threshold 0 accepted")
	}
}
