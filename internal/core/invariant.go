package core

import (
	"fmt"
	"sort"
)

// InvariantError is a structured report of a violated management
// invariant. It identifies the invariant class and the migration group
// so a failing run can be diagnosed without reconstructing state.
type InvariantError struct {
	// Kind names the violated invariant: "perm-range", "row-conservation",
	// "perm-inverse", "pinned-fast", "fenced-promotion", "tagcache-range"
	// or "tagcache-miss".
	Kind string
	// Group is the global migration-group id (0 for cache-wide checks).
	Group uint64
	// Detail narrows the violation to a slot or row.
	Detail string
}

// Error formats the violation.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: invariant %q violated in group %d: %s", e.Kind, e.Group, e.Detail)
}

// checkGroup verifies one group's translation state:
//
//   - perm maps every logical slot to an in-range physical slot;
//   - row conservation: perm is a bijection, so every physical row of
//     the group holds exactly one logical row (the exclusive-cache
//     invariant — no row is lost or duplicated by migration);
//   - inv is the exact inverse of perm;
//   - a pinned (migration-abandoned) row never resides in a fast slot;
//   - a fenced group has never been promoted (its permutation is still
//     the identity).
func (m *Manager) checkGroup(g uint64, grp *group) error {
	size := m.layout.GroupSize()
	seen := make([]bool, size)
	for l := 0; l < size; l++ {
		p := int(grp.perm[l])
		if p >= size {
			return &InvariantError{Kind: "perm-range", Group: g,
				Detail: fmt.Sprintf("logical slot %d maps to physical slot %d (group size %d)", l, p, size)}
		}
		if seen[p] {
			return &InvariantError{Kind: "row-conservation", Group: g,
				Detail: fmt.Sprintf("physical slot %d holds two logical rows", p)}
		}
		seen[p] = true
		if int(grp.inv[p]) != l {
			return &InvariantError{Kind: "perm-inverse", Group: g,
				Detail: fmt.Sprintf("perm[%d]=%d but inv[%d]=%d", l, p, p, grp.inv[p])}
		}
		if grp.isPinned(l) && m.layout.SlotIsFast(p) {
			return &InvariantError{Kind: "pinned-fast", Group: g,
				Detail: fmt.Sprintf("pinned logical slot %d resides in fast slot %d", l, p)}
		}
		if grp.fencedKnown && grp.fenced && p != l {
			return &InvariantError{Kind: "fenced-promotion", Group: g,
				Detail: fmt.Sprintf("fenced group permuted: logical slot %d at physical slot %d", l, p)}
		}
	}
	return nil
}

// checkSwap runs after a committed promotion: the affected group must
// satisfy checkGroup, and the two rows whose table entries were just
// rewritten must be coherent with the tag cache (present — they were
// inserted as part of the commit — and within the translatable range).
func (m *Manager) checkSwap(g uint64, grp *group, promoted, victim uint64) error {
	if err := m.checkGroup(g, grp); err != nil {
		return err
	}
	total := m.geom.TotalRows()
	for _, row := range []uint64{promoted, victim} {
		if row >= total {
			return &InvariantError{Kind: "tagcache-range", Group: g,
				Detail: fmt.Sprintf("swap touched row %d beyond device rows %d", row, total)}
		}
		if !m.tagCache.Contains(row) {
			return &InvariantError{Kind: "tagcache-miss", Group: g,
				Detail: fmt.Sprintf("row %d missing from tag cache after its table entry was rewritten", row)}
		}
	}
	return nil
}

// CheckInvariants verifies the manager's entire translation state: every
// allocated migration group (see checkGroup) and tag-cache/table
// coherence (every cached entry must reference a translatable row).
// Non-dynamic designs hold no translation state and trivially pass.
// Groups are visited in ascending id order so the first reported
// violation is deterministic.
func (m *Manager) CheckInvariants() error {
	if !m.cfg.Design.Dynamic() {
		return nil
	}
	ids := make([]uint64, 0, len(m.groups))
	for g := range m.groups {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, g := range ids {
		if err := m.checkGroup(g, m.groups[g]); err != nil {
			return err
		}
	}
	total := m.geom.TotalRows()
	var cacheErr error
	m.tagCache.VisitValid(func(row uint64) {
		if cacheErr == nil && row >= total {
			cacheErr = &InvariantError{Kind: "tagcache-range",
				Detail: fmt.Sprintf("cached entry for row %d beyond device rows %d", row, total)}
		}
	})
	return cacheErr
}
