// Package core implements the paper's primary contribution: the DAS-DRAM
// management mechanism. It sits between the last-level cache and the
// memory controller and provides
//
//   - the fast/slow level layout (migration groups, fast-slot ratio),
//   - exclusive-cache address translation backed by an in-DRAM
//     translation table, an on-controller tag cache, and the LLC,
//   - promotion triggering with optional filtering thresholds,
//   - replacement policies for fast-level victims, and
//   - migration scheduling against the controller's bank-occupying
//     migration operation.
//
// The same type also drives the comparison designs of Section 7
// (Standard, SAS-DRAM, CHARM, DAS-DRAM FM, FS-DRAM) so every experiment
// runs through one code path.
package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
)

// TableReserveBytes returns the memory reserved at the top of the
// physical address space for the in-DRAM translation table: one byte per
// logical row (Section 5.2's one-byte entries), rounded up to whole rows.
func TableReserveBytes(geom dram.Geometry) uint64 {
	totalRows := geom.TotalRows()
	rowBytes := geom.RowBytes()
	return (totalRows + rowBytes - 1) / rowBytes * rowBytes
}

// Layout describes how each bank's rows are partitioned into migration
// groups and fast/slow physical slots.
type Layout struct {
	geom      dram.Geometry
	groupSize int // logical rows per migration group
	fastSlots int // fast physical slots per group
}

// NewLayout validates and builds a layout. fastDenom is the fast-level
// capacity ratio denominator (8 means 1/8 of rows are fast).
func NewLayout(geom dram.Geometry, groupSize, fastDenom int) (*Layout, error) {
	if groupSize <= 0 || groupSize > 256 {
		return nil, fmt.Errorf("core: group size must be in 1..256 (one-byte table entries), got %d", groupSize)
	}
	if fastDenom <= 1 {
		return nil, fmt.Errorf("core: fast denominator must exceed 1, got %d", fastDenom)
	}
	if groupSize%fastDenom != 0 {
		return nil, fmt.Errorf("core: group size %d not divisible by fast denominator %d", groupSize, fastDenom)
	}
	if geom.Rows%groupSize != 0 {
		return nil, fmt.Errorf("core: rows per bank %d not divisible by group size %d", geom.Rows, groupSize)
	}
	return &Layout{geom: geom, groupSize: groupSize, fastSlots: groupSize / fastDenom}, nil
}

// GroupSize returns logical rows per group.
func (l *Layout) GroupSize() int { return l.groupSize }

// FastSlots returns fast slots per group.
func (l *Layout) FastSlots() int { return l.fastSlots }

// GroupsPerBank returns migration groups per bank.
func (l *Layout) GroupsPerBank() int { return l.geom.Rows / l.groupSize }

// TotalGroups returns migration groups across the system.
func (l *Layout) TotalGroups() uint64 {
	return uint64(l.geom.TotalBanks()) * uint64(l.GroupsPerBank())
}

// GroupOf returns the global group id and the slot index of a global
// logical row.
func (l *Layout) GroupOf(rowID uint64) (group uint64, slot int) {
	return rowID / uint64(l.groupSize), int(rowID % uint64(l.groupSize))
}

// RowOf reconstructs the global row id of (group, slot).
func (l *Layout) RowOf(group uint64, slot int) uint64 {
	return group*uint64(l.groupSize) + uint64(slot)
}

// SlotIsFast reports whether a physical slot index is a fast-subarray
// slot.
func (l *Layout) SlotIsFast(slot int) bool { return slot < l.fastSlots }

// group is the dynamic translation state of one migration group: a
// permutation between logical slots and physical slots.
type group struct {
	perm []uint8 // logical slot -> physical slot
	inv  []uint8 // physical slot -> logical slot
	// lastUse holds the recency stamp of each fast physical slot for LRU
	// replacement.
	lastUse []sim.Time
	// seq is the sequential-replacement cursor.
	seq int
	// migrating blocks concurrent promotions within the group.
	migrating bool

	// Degradation state (fault handling; all zero on a healthy device).
	//
	// fenced marks a group whose fast slots are all weak: it degrades to
	// slow-only service and never receives a promotion. fencedKnown
	// makes the (injector-queried) decision lazy but computed once.
	fenced, fencedKnown bool
	// pinned marks logical slots whose migrations exhausted their
	// retries; a pinned row stays in the slow level permanently.
	// Allocated on first pin.
	pinned []bool
	// retries counts failed attempts of the in-flight migration.
	retries int
}

// pin marks logical slot l as permanently slow.
func (g *group) pin(l int) {
	if g.pinned == nil {
		g.pinned = make([]bool, len(g.perm))
	}
	g.pinned[l] = true
}

// isPinned reports whether logical slot l is pinned slow.
func (g *group) isPinned(l int) bool { return g.pinned != nil && g.pinned[l] }

func newGroup(size, fastSlots int) *group {
	g := &group{
		perm:    make([]uint8, size),
		inv:     make([]uint8, size),
		lastUse: make([]sim.Time, fastSlots),
	}
	for i := 0; i < size; i++ {
		g.perm[i] = uint8(i)
		g.inv[i] = uint8(i)
	}
	return g
}

// reset restores the identity permutation and clears all replacement
// and degradation state, making the group indistinguishable from a
// newGroup of the same shape (the Manager's reset freelist reuses
// groups this way).
func (g *group) reset() {
	for i := range g.perm {
		g.perm[i] = uint8(i)
		g.inv[i] = uint8(i)
	}
	for i := range g.lastUse {
		g.lastUse[i] = 0
	}
	g.seq = 0
	g.migrating = false
	g.fenced, g.fencedKnown = false, false
	g.pinned = nil
	g.retries = 0
}

// swap exchanges the physical slots of logical rows a and b.
func (g *group) swap(a, b int) {
	pa, pb := g.perm[a], g.perm[b]
	g.perm[a], g.perm[b] = pb, pa
	g.inv[pa], g.inv[pb] = uint8(b), uint8(a)
}
