package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/sim"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Channels: 2, Ranks: 2, Banks: 8, Rows: 256, Columns: 16, BlockSize: 64}
}

func TestLayoutBasics(t *testing.T) {
	l, err := NewLayout(testGeom(), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.GroupSize() != 32 || l.FastSlots() != 4 {
		t.Fatalf("group %d slots %d", l.GroupSize(), l.FastSlots())
	}
	if l.GroupsPerBank() != 8 {
		t.Fatalf("groups per bank %d, want 8", l.GroupsPerBank())
	}
	if l.TotalGroups() != 8*32 {
		t.Fatalf("total groups %d", l.TotalGroups())
	}
	if !l.SlotIsFast(3) || l.SlotIsFast(4) {
		t.Fatal("fast slot boundary wrong")
	}
}

func TestLayoutGroupRowRoundtrip(t *testing.T) {
	l, _ := NewLayout(testGeom(), 32, 8)
	check := func(raw uint32) bool {
		row := uint64(raw) % testGeom().TotalRows()
		g, slot := l.GroupOf(row)
		return l.RowOf(g, slot) == row
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutGroupsNeverSpanBanks(t *testing.T) {
	geom := testGeom()
	l, _ := NewLayout(geom, 32, 8)
	for g := uint64(0); g < l.TotalGroups(); g++ {
		first := geom.RowCoord(l.RowOf(g, 0))
		last := geom.RowCoord(l.RowOf(g, l.GroupSize()-1))
		if first.Bank != last.Bank || first.Rank != last.Rank || first.Channel != last.Channel {
			t.Fatalf("group %d spans banks: %+v vs %+v", g, first, last)
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	g := testGeom()
	if _, err := NewLayout(g, 0, 8); err == nil {
		t.Error("zero group size accepted")
	}
	if _, err := NewLayout(g, 512, 8); err == nil {
		t.Error("group > 256 accepted (entries must fit one byte)")
	}
	if _, err := NewLayout(g, 24, 8); err == nil {
		t.Error("group not divisible by denominator accepted")
	}
	if _, err := NewLayout(g, 48, 8); err == nil {
		t.Error("rows not divisible by group accepted")
	}
	if _, err := NewLayout(g, 32, 1); err == nil {
		t.Error("denominator 1 accepted")
	}
}

func TestGroupSwapMaintainsBijection(t *testing.T) {
	// Property: any sequence of swaps leaves perm/inv mutually inverse
	// permutations.
	check := func(pairs []uint8) bool {
		g := newGroup(32, 4)
		for i := 0; i+1 < len(pairs); i += 2 {
			g.swap(int(pairs[i]%32), int(pairs[i+1]%32))
		}
		seen := make(map[uint8]bool)
		for logical, phys := range g.perm {
			if seen[phys] {
				return false
			}
			seen[phys] = true
			if int(g.inv[phys]) != logical {
				return false
			}
		}
		return len(seen) == 32
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSwapMovesRows(t *testing.T) {
	g := newGroup(32, 4)
	g.swap(10, 2) // promote logical 10 into logical 2's slot
	if g.perm[10] != 2 || g.perm[2] != 10 {
		t.Fatalf("swap wrong: perm[10]=%d perm[2]=%d", g.perm[10], g.perm[2])
	}
	if g.inv[2] != 10 || g.inv[10] != 2 {
		t.Fatal("inverse not updated")
	}
}

func TestTableReserveBytes(t *testing.T) {
	geom := testGeom()
	got := TableReserveBytes(geom)
	// One byte per row, rounded up to whole rows.
	rows := geom.TotalRows()
	rb := geom.RowBytes()
	want := (rows + rb - 1) / rb * rb
	if got != want {
		t.Fatalf("reserve %d, want %d", got, want)
	}
	if got%rb != 0 {
		t.Fatal("reserve not row-aligned")
	}
	if got < rows {
		t.Fatal("reserve smaller than one byte per row")
	}
}

func TestVictimPickerPolicies(t *testing.T) {
	g := newGroup(32, 4)
	// LRU: stamp slots with distinct times; slot 2 oldest.
	g.lastUse = []sim.Time{40, 30, 10, 20}
	lru := &victimPicker{policy: ReplLRU}
	if v := lru.pick(g, 4, nil); v != 2 {
		t.Fatalf("LRU picked %d, want 2", v)
	}
	// Sequential cycles 0,1,2,3,0.
	seq := &victimPicker{policy: ReplSequential}
	for i, want := range []int{0, 1, 2, 3, 0} {
		if v := seq.pick(g, 4, nil); v != want {
			t.Fatalf("sequential pick %d = %d, want %d", i, v, want)
		}
	}
	// Global counter cycles independent of group state.
	ctr := &victimPicker{policy: ReplGlobalCounter}
	a, b := ctr.pick(g, 4, nil), ctr.pick(g, 4, nil)
	if a == b {
		t.Fatalf("counter picks repeated: %d %d", a, b)
	}
	// Random stays in range.
	rnd := &victimPicker{policy: ReplRandom, rng: sim.NewRNG(1)}
	for i := 0; i < 100; i++ {
		if v := rnd.pick(g, 4, nil); v < 0 || v >= 4 {
			t.Fatalf("random out of range: %d", v)
		}
	}
}

func TestVictimPickerUsableMask(t *testing.T) {
	// Only slot 1 is usable: every policy must return it.
	onlyOne := func(p int) bool { return p == 1 }
	g := newGroup(32, 4)
	g.lastUse = []sim.Time{10, 40, 20, 30} // LRU would pick 0 unmasked
	for _, pol := range []Replacement{ReplLRU, ReplRandom, ReplSequential, ReplGlobalCounter} {
		v := &victimPicker{policy: pol, rng: sim.NewRNG(1)}
		for i := 0; i < 8; i++ {
			if got := v.pick(g, 4, onlyOne); got != 1 {
				t.Fatalf("%v picked masked slot %d", pol, got)
			}
		}
	}
	// A partial mask never returns an excluded slot.
	noWeak := func(p int) bool { return p != 2 }
	for _, pol := range []Replacement{ReplLRU, ReplRandom, ReplSequential, ReplGlobalCounter} {
		v := &victimPicker{policy: pol, rng: sim.NewRNG(7)}
		for i := 0; i < 100; i++ {
			if got := v.pick(g, 4, noWeak); got == 2 || got < 0 || got >= 4 {
				t.Fatalf("%v picked unusable slot %d", pol, got)
			}
		}
	}
}

func TestParseReplacement(t *testing.T) {
	for _, name := range []string{"lru", "random", "sequential", "counter"} {
		r, err := ParseReplacement(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != name {
			t.Fatalf("roundtrip %s -> %s", name, r.String())
		}
	}
	if _, err := ParseReplacement("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
