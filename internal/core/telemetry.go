package core

import (
	"repro/internal/telemetry"
)

// coreTelemetry carries the manager's trace hook (nil = off). All of the
// manager's scalar activity is already counted in Stats, so metrics are
// pure snapshot-time samples; only fault events — which are rare and
// carry a time — record live, as trace instants on a dedicated track.
type coreTelemetry struct {
	trace     *telemetry.TraceRecorder
	faultsTID int
}

// AttachTelemetry exposes the manager's counters on reg (sampled from
// Stats at snapshot time, zero hot-path cost) and wires fault events
// into trace as instant events on a "faults" track. Call once at
// assembly time; nil registry and recorder leave the manager
// uninstrumented (the default).
func (m *Manager) AttachTelemetry(reg *telemetry.Registry, trace *telemetry.TraceRecorder) {
	if reg.Enabled() {
		reg.Sample("core.promotions", func() int64 { return int64(m.Stats.Promotions) })
		reg.Sample("core.slow_triggers", func() int64 { return int64(m.Stats.SlowTriggers) })
		reg.Sample("core.table_fetches", func() int64 { return int64(m.Stats.TableFetches) })
		reg.Sample("core.table_writes", func() int64 { return int64(m.Stats.TableWrites) })
		// Attempts = commit invocations; every commit either succeeds
		// (Promotions) or fails (Faults.MigFailures).
		reg.Sample("core.migrations.attempted", func() int64 {
			return int64(m.Stats.Promotions + m.Stats.Faults.MigFailures)
		})
		reg.Sample("core.migrations.completed", func() int64 { return int64(m.Stats.Promotions) })
		reg.Sample("core.migrations.failed", func() int64 { return int64(m.Stats.Faults.MigFailures) })
		reg.Sample("core.faults.mig_retries", func() int64 { return int64(m.Stats.Faults.MigRetries) })
		reg.Sample("core.faults.pinned_rows", func() int64 { return int64(m.Stats.Faults.PinnedRows) })
		reg.Sample("core.faults.fenced_groups", func() int64 { return int64(m.Stats.Faults.FencedGroups) })
		reg.Sample("core.faults.weak_services", func() int64 { return int64(m.Stats.Faults.WeakServices) })
		reg.Sample("core.faults.tag_corruptions", func() int64 { return int64(m.Stats.Faults.TagCorruptions) })
		reg.Sample("core.faults.table_refetches", func() int64 { return int64(m.Stats.Faults.TableRefetches) })
		reg.Sample("core.faults.breaker_trips", func() int64 { return int64(m.Stats.Faults.MigBreakerTrips) })
		if tc := m.tagCache; tc != nil {
			reg.Sample("core.tagcache.lookups", func() int64 { return int64(tc.Lookups) })
			reg.Sample("core.tagcache.hits", func() int64 { return int64(tc.Hits) })
		}
		if f := m.filter; f != nil {
			reg.Sample("core.filter.rejects", func() int64 { return int64(f.Rejects) })
		}
	}
	if trace != nil {
		// The faults track is numbered after the controller's bank and
		// rank tracks (banks + one refresh track per rank).
		tid := m.geom.Channels * m.geom.Ranks * (m.geom.Banks + 1)
		trace.DefineTrack(tid, "faults")
		m.tel = &coreTelemetry{trace: trace, faultsTID: tid}
	}
}

// noteFault records one handled fault as a trace instant. name must be a
// static string; row < 0 omits the argument.
func (m *Manager) noteFault(name string, row int64) {
	if m.tel == nil {
		return
	}
	m.tel.trace.Instant(name, int64(m.eng.Now()), m.tel.faultsTID, row)
}
