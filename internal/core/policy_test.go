package core

import "testing"

func TestFilterThresholdOnePromotesAlways(t *testing.T) {
	f, err := NewFilter(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for row := uint64(0); row < 100; row++ {
		if !f.Allow(row) {
			t.Fatal("threshold 1 rejected a promotion")
		}
	}
	if f.Rejects != 0 {
		t.Fatal("threshold 1 counted rejects")
	}
}

func TestFilterThresholdCounts(t *testing.T) {
	f, _ := NewFilter(4, 1024)
	for i := 0; i < 3; i++ {
		if f.Allow(7) {
			t.Fatalf("promoted after %d hits with threshold 4", i+1)
		}
	}
	if !f.Allow(7) {
		t.Fatal("not promoted at threshold")
	}
	// Counter resets after promotion.
	if f.Allow(7) {
		t.Fatal("promoted immediately after reset")
	}
	if f.Rejects != 4 {
		t.Fatalf("rejects = %d, want 4", f.Rejects)
	}
}

func TestFilterCapacityRecycling(t *testing.T) {
	f, _ := NewFilter(2, 4)
	// Fill the four counters with one hit each.
	for row := uint64(0); row < 4; row++ {
		f.Allow(row)
	}
	// A fifth row evicts the oldest counter (row 0).
	f.Allow(100)
	// Row 0 lost its count: one more hit should NOT promote...
	if f.Allow(0) {
		t.Fatal("evicted row kept its count")
	}
	// ...but a second consecutive hit does.
	if !f.Allow(0) {
		t.Fatal("tracked row failed to promote at threshold 2")
	}
}

func TestFilterTrackedRowsSurviveChurn(t *testing.T) {
	f, _ := NewFilter(2, 8)
	f.Allow(1) // 1 hit on row 1
	// Untracked churn smaller than capacity must not evict row 1.
	for row := uint64(10); row < 16; row++ {
		f.Allow(row)
	}
	if !f.Allow(1) {
		t.Fatal("row 1 evicted despite capacity headroom")
	}
}

func TestFilterValidation(t *testing.T) {
	if _, err := NewFilter(0, 10); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, err := NewFilter(2, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestFilterBoundedState(t *testing.T) {
	f, _ := NewFilter(8, 16)
	for row := uint64(0); row < 10000; row++ {
		f.Allow(row)
	}
	if len(f.counts) > 16 || len(f.order) > 16 {
		t.Fatalf("filter state grew beyond capacity: %d counts, %d order",
			len(f.counts), len(f.order))
	}
}
