package core

import (
	"fmt"

	"repro/internal/sim"
)

// Replacement selects the fast-level victim of a promotion (Section 5.3).
type Replacement uint8

const (
	// ReplLRU evicts the least-recently-used fast slot of the group.
	ReplLRU Replacement = iota
	// ReplRandom evicts a uniformly random fast slot.
	ReplRandom
	// ReplSequential cycles through the fast slots in order.
	ReplSequential
	// ReplGlobalCounter uses a single incrementing counter shared by all
	// groups (the paper's pseudo-random policy).
	ReplGlobalCounter
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case ReplLRU:
		return "lru"
	case ReplRandom:
		return "random"
	case ReplSequential:
		return "sequential"
	case ReplGlobalCounter:
		return "counter"
	default:
		return "unknown"
	}
}

// ParseReplacement parses a policy name.
func ParseReplacement(s string) (Replacement, error) {
	switch s {
	case "lru":
		return ReplLRU, nil
	case "random":
		return ReplRandom, nil
	case "sequential":
		return ReplSequential, nil
	case "counter":
		return ReplGlobalCounter, nil
	}
	return 0, fmt.Errorf("core: unknown replacement policy %q", s)
}

// victimPicker chooses victims according to a Replacement policy.
type victimPicker struct {
	policy  Replacement
	rng     *sim.RNG
	counter uint64
}

// pick returns the fast physical slot to evict from g. usable, when
// non-nil, excludes slots that must not receive a promotion (weak
// rows); the caller guarantees at least one usable slot exists. A nil
// usable keeps the exact decision (and RNG consumption) of the
// fault-free path.
func (v *victimPicker) pick(g *group, fastSlots int, usable func(int) bool) int {
	ok := func(i int) bool { return usable == nil || usable(i) }
	switch v.policy {
	case ReplLRU:
		victim := -1
		for i := 0; i < fastSlots; i++ {
			if !ok(i) {
				continue
			}
			if victim < 0 || g.lastUse[i] < g.lastUse[victim] {
				victim = i
			}
		}
		return victim
	case ReplRandom:
		if usable == nil {
			return v.rng.Intn(fastSlots)
		}
		// Draw uniformly over the usable subset with a single roll so
		// the stream stays deterministic per decision.
		n := 0
		for i := 0; i < fastSlots; i++ {
			if usable(i) {
				n++
			}
		}
		k := v.rng.Intn(n)
		for i := 0; i < fastSlots; i++ {
			if usable(i) {
				if k == 0 {
					return i
				}
				k--
			}
		}
		return -1 // unreachable: caller guarantees a usable slot
	case ReplSequential:
		for {
			s := g.seq
			g.seq = (g.seq + 1) % fastSlots
			if ok(s) {
				return s
			}
		}
	default: // ReplGlobalCounter
		for {
			v.counter++
			s := int(v.counter % uint64(fastSlots))
			if ok(s) {
				return s
			}
		}
	}
}

// Filter implements the row-promotion filtering policy of Section 5.3: a
// fixed-capacity table of per-row access counters over the most recently
// used rows; a row is promoted once its count reaches the threshold.
// Threshold 1 (the paper's final choice) promotes on the first slow-level
// hit and bypasses the counters entirely.
type Filter struct {
	threshold int
	capacity  int
	counts    map[uint64]int
	order     []uint64 // FIFO over tracked rows approximating MRU table
	head      int

	// Rejects counts suppressed promotions.
	Rejects uint64
}

// NewFilter builds a filter; capacity is the number of hardware counters
// (the paper evaluates 1024).
func NewFilter(threshold, capacity int) (*Filter, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("core: filter threshold must be >= 1, got %d", threshold)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: filter capacity must be positive, got %d", capacity)
	}
	f := &Filter{threshold: threshold, capacity: capacity}
	if threshold > 1 {
		f.counts = make(map[uint64]int, capacity)
		f.order = make([]uint64, 0, capacity)
	}
	return f, nil
}

// Threshold returns the configured promotion threshold.
func (f *Filter) Threshold() int { return f.threshold }

// Reset clears all counters and the tracked-row table, leaving the
// filter indistinguishable from a fresh NewFilter with the same
// parameters. Map buckets and the order ring's backing are retained.
func (f *Filter) Reset() {
	if f.counts != nil {
		clear(f.counts)
		f.order = f.order[:0]
		f.head = 0
	}
	f.Rejects = 0
}

// Allow records a slow-level hit on row and reports whether the row
// should be promoted now.
func (f *Filter) Allow(row uint64) bool {
	if f.threshold <= 1 {
		return true
	}
	if _, tracked := f.counts[row]; !tracked {
		if len(f.counts) >= f.capacity {
			// Recycle the oldest counter (hardware would recycle the
			// least-recently-used one).
			victim := f.order[f.head]
			f.order[f.head] = row
			f.head = (f.head + 1) % f.capacity
			delete(f.counts, victim)
		} else {
			f.order = append(f.order, row)
		}
		f.counts[row] = 0
	}
	n := f.counts[row] + 1
	if n >= f.threshold {
		f.counts[row] = 0 // promoted: counter resets
		return true
	}
	f.counts[row] = n
	f.Rejects++
	return false
}
