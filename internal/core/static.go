package core

import (
	"sort"

	"repro/internal/dram"
)

// RowProfile records per-row demand access counts, collected during a
// baseline (Standard) run. The static designs (SAS-DRAM, CHARM) consume
// it to pre-assign the hottest rows to the fast level, mirroring the
// paper's offline profiling of each workload.
//
// Global row ids are dense (Geometry.RowID), so the counts live in a
// flat slice grown on demand: the profiling pass records tens of
// millions of touches, and a map's hash-and-probe per touch dominated
// its cost.
type RowProfile struct {
	counts   []uint64 // indexed by global row id
	distinct int
}

// NewRowProfile returns an empty profile.
func NewRowProfile() *RowProfile {
	return &RowProfile{}
}

// Record adds one access to a global row id.
func (p *RowProfile) Record(rowID uint64) {
	if rowID >= uint64(len(p.counts)) {
		grown := make([]uint64, rowID+rowID/2+1)
		copy(grown, p.counts)
		p.counts = grown
	}
	if p.counts[rowID] == 0 {
		p.distinct++
	}
	p.counts[rowID]++
}

// Rows returns the number of distinct rows touched.
func (p *RowProfile) Rows() int { return p.distinct }

// Count returns the recorded accesses of a row.
func (p *RowProfile) Count(rowID uint64) uint64 {
	if rowID >= uint64(len(p.counts)) {
		return 0
	}
	return p.counts[rowID]
}

// StaticAssignment marks which rows a static design pre-assigned to the
// fast level.
type StaticAssignment struct {
	fast map[uint64]struct{}
}

// IsFast reports whether a global row id was assigned to the fast level.
func (a *StaticAssignment) IsFast(rowID uint64) bool {
	if a == nil {
		return false
	}
	_, ok := a.fast[rowID]
	return ok
}

// FastRows returns the number of assigned rows.
func (a *StaticAssignment) FastRows() int {
	if a == nil {
		return 0
	}
	return len(a.fast)
}

// BuildStaticAssignment selects, within every bank, the hottest
// rows-per-bank/fastDenom rows of the profile. The per-bank constraint
// reflects that fast subarrays are distributed across banks: a bank's
// fast capacity cannot host another bank's rows.
func BuildStaticAssignment(p *RowProfile, geom dram.Geometry, fastDenom int) *StaticAssignment {
	perBankQuota := geom.Rows / fastDenom
	type rowCount struct {
		row   uint64
		count uint64
	}
	byBank := make(map[int][]rowCount)
	for row, count := range p.counts {
		if count == 0 {
			continue
		}
		bank := row / geom.Rows
		byBank[bank] = append(byBank[bank], rowCount{uint64(row), count})
	}
	a := &StaticAssignment{fast: make(map[uint64]struct{})}
	for _, rows := range byBank {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].count != rows[j].count {
				return rows[i].count > rows[j].count
			}
			return rows[i].row < rows[j].row // deterministic tie-break
		})
		n := perBankQuota
		if n > len(rows) {
			n = len(rows)
		}
		for _, rc := range rows[:n] {
			a.fast[rc.row] = struct{}{}
		}
	}
	return a
}
