package core

import (
	"fmt"
)

// tagEntryBytes is the modeled SRAM cost of one cached translation
// entry: the one-byte in-group mapping (Section 5.2's migration-group
// entries) plus roughly one byte of amortized tag/valid overhead.
const tagEntryBytes = 2

// TagCache is the on-controller translation cache of Section 5.2: a
// small set-associative SRAM holding per-row translation entries,
// primarily those of fast-level rows (entries are inserted on lookup
// fetches and refreshed on every promotion commit). A hit costs no extra
// latency because the lookup proceeds in parallel with the (already
// failed) LLC data lookup; a miss fetches the entry's table block
// through the LLC and, if absent there, from DRAM.
type TagCache struct {
	sets    [][]tagLine
	setMask uint64
	tick    uint64

	Lookups uint64
	Hits    uint64
}

type tagLine struct {
	row   uint64 // global logical row id
	valid bool
	lru   uint64
}

// NewTagCache builds a cache of capacityBytes with the given
// associativity over per-row entries.
func NewTagCache(capacityBytes, assoc int) (*TagCache, error) {
	if capacityBytes <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("core: tag cache capacity and associativity must be positive")
	}
	entries := capacityBytes / tagEntryBytes
	if entries < assoc {
		assoc = entries
	}
	if entries == 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("core: tag cache of %d B cannot form %d-way sets", capacityBytes, assoc)
	}
	nsets := entries / assoc
	// Round the set count down to a power of two so the index is a mask
	// (hardware does the same; a little capacity is lost to rounding).
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	tc := &TagCache{sets: make([][]tagLine, nsets), setMask: uint64(nsets - 1)}
	for i := range tc.sets {
		tc.sets[i] = make([]tagLine, assoc)
	}
	return tc, nil
}

// Entries returns the modeled entry capacity.
func (tc *TagCache) Entries() int { return len(tc.sets) * len(tc.sets[0]) }

// Lookup probes for row's entry and reports a hit, refreshing recency.
func (tc *TagCache) Lookup(row uint64) bool {
	tc.Lookups++
	set := tc.sets[tc.index(row)]
	for i := range set {
		if set[i].valid && set[i].row == row {
			tc.tick++
			set[i].lru = tc.tick
			tc.Hits++
			return true
		}
	}
	return false
}

// index spreads row ids across sets (rows are scattered, so low bits
// suffice after mixing).
func (tc *TagCache) index(row uint64) uint64 {
	row ^= row >> 17
	row *= 0x9E3779B97F4A7C15
	return (row >> 16) & tc.setMask
}

// Insert installs row's entry, evicting the LRU way. (Evicted entries
// need no writeback: the in-DRAM table is updated in place on every
// migration commit.)
func (tc *TagCache) Insert(row uint64) {
	set := tc.sets[tc.index(row)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].row == row {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	tc.tick++
	set[victim] = tagLine{row: row, valid: true, lru: tc.tick}
}

// Invalidate drops row's entry if present (e.g. on a detected parity
// corruption) and reports whether one existed.
func (tc *TagCache) Invalidate(row uint64) bool {
	set := tc.sets[tc.index(row)]
	for i := range set {
		if set[i].valid && set[i].row == row {
			set[i] = tagLine{}
			return true
		}
	}
	return false
}

// Contains probes for row without touching recency or the hit/lookup
// counters (diagnostics and invariant checks).
func (tc *TagCache) Contains(row uint64) bool {
	set := tc.sets[tc.index(row)]
	for i := range set {
		if set[i].valid && set[i].row == row {
			return true
		}
	}
	return false
}

// VisitValid calls fn for every valid entry's row id (invariant
// checks). Iteration order is deterministic: set-major, way-minor.
func (tc *TagCache) VisitValid(fn func(row uint64)) {
	for _, set := range tc.sets {
		for i := range set {
			if set[i].valid {
				fn(set[i].row)
			}
		}
	}
}

// Reset invalidates every entry and rewinds the recency clock and
// counters, leaving the cache indistinguishable from a fresh
// NewTagCache of the same shape. The set arrays are retained.
func (tc *TagCache) Reset() {
	for _, set := range tc.sets {
		for i := range set {
			set[i] = tagLine{}
		}
	}
	tc.tick = 0
	tc.Lookups, tc.Hits = 0, 0
}

// HitRatio reports the lookup hit ratio.
func (tc *TagCache) HitRatio() float64 {
	if tc.Lookups == 0 {
		return 0
	}
	return float64(tc.Hits) / float64(tc.Lookups)
}
