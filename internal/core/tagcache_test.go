package core

import (
	"testing"
	"testing/quick"
)

func TestTagCacheHitAfterInsert(t *testing.T) {
	tc, err := NewTagCache(4<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Lookup(42) {
		t.Fatal("hit on empty cache")
	}
	tc.Insert(42)
	if !tc.Lookup(42) {
		t.Fatal("miss after insert")
	}
	if tc.Lookups != 2 || tc.Hits != 1 {
		t.Fatalf("counters: %d lookups %d hits", tc.Lookups, tc.Hits)
	}
	if got := tc.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %v", got)
	}
}

func TestTagCacheInsertIdempotent(t *testing.T) {
	tc, _ := NewTagCache(1<<10, 4)
	tc.Insert(7)
	tc.Insert(7)
	// Re-inserting must not consume a second way: fill the rest of the
	// set and make sure 7 still hits.
	if !tc.Lookup(7) {
		t.Fatal("row lost after double insert")
	}
}

func TestTagCacheCapacityEviction(t *testing.T) {
	tc, _ := NewTagCache(256, 2) // 128 entries
	n := tc.Entries()
	for row := uint64(0); row < uint64(4*n); row++ {
		tc.Insert(row)
	}
	hits := 0
	for row := uint64(0); row < uint64(4*n); row++ {
		if tc.Lookup(row) {
			hits++
		}
	}
	if hits > n {
		t.Fatalf("%d hits exceed capacity %d", hits, n)
	}
	if hits == 0 {
		t.Fatal("everything evicted; expected the most recent entries to survive")
	}
}

func TestTagCacheLRUWithinSet(t *testing.T) {
	tc, _ := NewTagCache(4<<10, 8)
	// Find rows mapping to one set by brute force.
	set0 := tc.index(0)
	var rows []uint64
	for r := uint64(0); len(rows) < 9; r++ {
		if tc.index(r) == set0 {
			rows = append(rows, r)
		}
	}
	for _, r := range rows[:8] {
		tc.Insert(r)
	}
	tc.Lookup(rows[0]) // refresh the oldest
	tc.Insert(rows[8]) // evicts rows[1], not rows[0]
	if !tc.Lookup(rows[0]) {
		t.Fatal("recently-used entry evicted")
	}
	if tc.Lookup(rows[1]) {
		t.Fatal("LRU entry survived")
	}
}

func TestTagCacheValidation(t *testing.T) {
	if _, err := NewTagCache(0, 8); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewTagCache(1024, 0); err == nil {
		t.Fatal("zero associativity accepted")
	}
	// Tiny caches clamp associativity rather than failing.
	tc, err := NewTagCache(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Entries() == 0 {
		t.Fatal("tiny cache has no entries")
	}
}

func TestTagCacheNeverFalseHits(t *testing.T) {
	// Property: a row never inserted never hits.
	check := func(ins []uint16, probe uint16) bool {
		tc, _ := NewTagCache(1<<10, 4)
		inserted := make(map[uint64]bool)
		for _, r := range ins {
			tc.Insert(uint64(r))
			inserted[uint64(r)] = true
		}
		if !inserted[uint64(probe)] && tc.Lookup(uint64(probe)) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
