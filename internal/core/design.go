package core

import "fmt"

// Design selects which of the paper's evaluated memory designs the
// manager implements (Section 7).
type Design uint8

const (
	// Standard is homogeneous commodity DRAM (the baseline).
	Standard Design = iota
	// SAS is static asymmetric-subarray DRAM: profiled rows are
	// pre-assigned to the fast level, no migration.
	SAS
	// CHARM is SAS plus optimized column access latency on the fast
	// level (the device must be configured with the CHARM fast set).
	CHARM
	// DAS is the paper's dynamic asymmetric-subarray DRAM.
	DAS
	// DASFM is DAS with free (zero-latency) migration.
	DASFM
	// FS is the hypothetical all-fast-subarray DRAM (upper bound).
	FS
)

// String names the design as in the paper's figures.
func (d Design) String() string {
	switch d {
	case Standard:
		return "Standard"
	case SAS:
		return "SAS-DRAM"
	case CHARM:
		return "CHARM"
	case DAS:
		return "DAS-DRAM"
	case DASFM:
		return "DAS-DRAM (FM)"
	case FS:
		return "FS-DRAM"
	default:
		return "unknown"
	}
}

// ParseDesign parses a design name (short forms accepted).
func ParseDesign(s string) (Design, error) {
	switch s {
	case "standard", "Standard":
		return Standard, nil
	case "sas", "SAS", "SAS-DRAM":
		return SAS, nil
	case "charm", "CHARM":
		return CHARM, nil
	case "das", "DAS", "DAS-DRAM":
		return DAS, nil
	case "dasfm", "das-fm", "DAS-DRAM (FM)":
		return DASFM, nil
	case "fs", "FS", "FS-DRAM":
		return FS, nil
	}
	return 0, fmt.Errorf("core: unknown design %q", s)
}

// AllDesigns lists every design in evaluation order.
func AllDesigns() []Design {
	return []Design{Standard, SAS, CHARM, DAS, DASFM, FS}
}

// Dynamic reports whether the design performs run-time migration.
func (d Design) Dynamic() bool { return d == DAS || d == DASFM }

// Static reports whether the design uses profiled pre-assignment.
func (d Design) Static() bool { return d == SAS || d == CHARM }

// Config parameterizes the manager (Table 1 defaults via DefaultConfig).
type Config struct {
	Design Design
	// FastDenom is the fast-level capacity ratio denominator (8 = 1/8).
	FastDenom int
	// GroupSize is the migration group size in rows.
	GroupSize int
	// TagCacheBytes is the translation (tag) cache capacity.
	TagCacheBytes int
	// TagCacheAssoc is its associativity.
	TagCacheAssoc int
	// FilterThreshold is the promotion filter threshold (1 = always).
	FilterThreshold int
	// FilterCounters is the number of filter counters.
	FilterCounters int
	// Replacement is the fast-level victim policy.
	Replacement Replacement
	// Seed feeds the random replacement policy.
	Seed uint64
	// MigRetries is how many times a failed migration is retried before
	// the row is pinned in the slow level (fault handling; irrelevant on
	// a fault-free device).
	MigRetries int
}

// DefaultConfig returns the paper's final configuration: 1/8 fast level,
// 32-row migration groups, 128 KB tag cache, no filtering, LRU
// replacement.
func DefaultConfig(d Design) Config {
	return Config{
		Design:          d,
		FastDenom:       8,
		GroupSize:       32,
		TagCacheBytes:   128 << 10,
		TagCacheAssoc:   8,
		FilterThreshold: 1,
		FilterCounters:  1024,
		Replacement:     ReplLRU,
		Seed:            1,
		MigRetries:      3,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.FastDenom <= 1 {
		return fmt.Errorf("core: fast denominator must exceed 1")
	}
	if c.GroupSize <= 0 || c.GroupSize > 256 {
		return fmt.Errorf("core: group size must be in 1..256")
	}
	if c.TagCacheBytes <= 0 || c.TagCacheAssoc <= 0 {
		return fmt.Errorf("core: tag cache parameters must be positive")
	}
	if c.FilterThreshold < 1 || c.FilterCounters <= 0 {
		return fmt.Errorf("core: filter parameters invalid")
	}
	if c.MigRetries < 0 {
		return fmt.Errorf("core: migration retries must be non-negative, got %d", c.MigRetries)
	}
	return nil
}
