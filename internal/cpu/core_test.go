package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scriptGen replays a fixed instruction list, then pads with non-memory
// instructions forever.
type scriptGen struct {
	instrs []workload.Instr
	pos    int
}

func (g *scriptGen) Name() string { return "script" }
func (g *scriptGen) Next(in *workload.Instr) {
	if g.pos < len(g.instrs) {
		*in = g.instrs[g.pos]
		g.pos++
		return
	}
	*in = workload.Instr{}
}

// fixedMem completes reads after a fixed delay and records issue order.
type fixedMem struct {
	eng    *sim.Engine
	delay  sim.Time
	issued []uint64
}

func (m *fixedMem) Access(req *mem.Request) {
	m.issued = append(m.issued, req.Addr)
	if req.Write {
		req.Complete()
		return
	}
	m.eng.Schedule(m.delay, req.Complete)
}

func run(t *testing.T, cfg Config, gen workload.Generator, delay sim.Time, quota uint64) (*Core, *fixedMem, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	m := &fixedMem{eng: eng, delay: delay}
	c, err := New(0, cfg, eng, gen, m)
	if err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := c.Start(0, quota, nil, func(int) { finished = true }); err != nil {
		t.Fatal(err)
	}
	for !finished {
		if !eng.Step() {
			t.Fatal("engine drained before quota")
		}
	}
	return c, m, eng
}

func TestStartRejectsBadWindow(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(0, DefaultConfig(), eng, &scriptGen{}, &fixedMem{eng: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(100, 100, nil, nil); err == nil {
		t.Fatal("quota == warmup accepted")
	}
	if err := c.Start(200, 100, nil, nil); err == nil {
		t.Fatal("quota < warmup accepted")
	}
	if eng.Pending() != 0 {
		t.Fatal("rejected Start scheduled events")
	}
}

func TestNonMemoryIPCIsWidth(t *testing.T) {
	cfg := DefaultConfig()
	c, _, _ := run(t, cfg, &scriptGen{}, 0, 10000)
	if ipc := c.IPC(); ipc < 3.9 || ipc > 4.0 {
		t.Fatalf("pure-compute IPC = %.2f, want ~4", ipc)
	}
}

func TestLoadsOverlapUpToROB(t *testing.T) {
	// Independent loads should overlap: with a 400-cycle memory and
	// plenty of loads, IPC must be far above the serial bound.
	var instrs []workload.Instr
	for i := 0; i < 400; i++ {
		instrs = append(instrs, workload.Instr{Mem: true, Addr: uint64(i) << 6})
		for j := 0; j < 9; j++ {
			instrs = append(instrs, workload.Instr{})
		}
	}
	cfg := DefaultConfig()
	delay := sim.Time(400) * sim.NewClockHz(cfg.ClockHz).Period()
	c, _, _ := run(t, cfg, &scriptGen{instrs: instrs}, delay, 4000)
	serialIPC := 10.0 / 400.0
	if ipc := c.IPC(); ipc < serialIPC*5 {
		t.Fatalf("IPC %.3f shows no memory-level parallelism (serial bound %.3f)", ipc, serialIPC)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	mk := func(dep bool) []workload.Instr {
		var instrs []workload.Instr
		for i := 0; i < 200; i++ {
			instrs = append(instrs, workload.Instr{Mem: true, Dependent: dep, Addr: uint64(i) << 6})
			instrs = append(instrs, workload.Instr{}, workload.Instr{}, workload.Instr{})
		}
		return instrs
	}
	cfg := DefaultConfig()
	delay := sim.Time(200) * sim.NewClockHz(cfg.ClockHz).Period()
	indep, _, _ := run(t, cfg, &scriptGen{instrs: mk(false)}, delay, 800)
	dep, _, _ := run(t, cfg, &scriptGen{instrs: mk(true)}, delay, 800)
	if dep.IPC() >= indep.IPC()/2 {
		t.Fatalf("dependent IPC %.3f not much slower than independent %.3f", dep.IPC(), indep.IPC())
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	var instrs []workload.Instr
	for i := 0; i < 100; i++ {
		instrs = append(instrs, workload.Instr{Mem: true, Write: true, Addr: uint64(i) << 6})
		instrs = append(instrs, workload.Instr{})
	}
	cfg := DefaultConfig()
	c, _, _ := run(t, cfg, &scriptGen{instrs: instrs}, 1000, 200)
	if ipc := c.IPC(); ipc < 3 {
		t.Fatalf("stores stalled the core: IPC %.2f", ipc)
	}
	if c.Stats.Stores != 100 {
		t.Fatalf("stores counted %d, want 100", c.Stats.Stores)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// With a tiny store buffer and slow drains, stores must throttle.
	var instrs []workload.Instr
	for i := 0; i < 200; i++ {
		instrs = append(instrs, workload.Instr{Mem: true, Write: true, Addr: uint64(i) << 6})
	}
	cfg := DefaultConfig()
	cfg.StoreBuffer = 2
	eng := sim.NewEngine()
	// Drain stores slowly: 100 cycles each.
	m := &slowStoreMem{eng: eng, delay: sim.Time(100) * sim.NewClockHz(cfg.ClockHz).Period()}
	c, err := New(0, cfg, eng, &scriptGen{instrs: instrs}, m)
	if err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := c.Start(0, 200, nil, func(int) { finished = true }); err != nil {
		t.Fatal(err)
	}
	for !finished && eng.Step() {
	}
	if !finished {
		t.Fatal("core deadlocked under store-buffer pressure")
	}
	if ipc := c.IPC(); ipc > 0.1 {
		t.Fatalf("store-buffer backpressure not applied: IPC %.3f", ipc)
	}
}

type slowStoreMem struct {
	eng   *sim.Engine
	delay sim.Time
}

func (m *slowStoreMem) Access(req *mem.Request) {
	m.eng.Schedule(m.delay, req.Complete)
}

func TestWarmupAndQuotaCallbacks(t *testing.T) {
	eng := sim.NewEngine()
	m := &fixedMem{eng: eng, delay: 10}
	c, err := New(3, DefaultConfig(), eng, &scriptGen{}, m)
	if err != nil {
		t.Fatal(err)
	}
	var warmID, quotaID = -1, -1
	if err := c.Start(500, 1500, func(id int) { warmID = id }, func(id int) { quotaID = id }); err != nil {
		t.Fatal(err)
	}
	for quotaID < 0 && eng.Step() {
	}
	if warmID != 3 || quotaID != 3 {
		t.Fatalf("callbacks: warm=%d quota=%d", warmID, quotaID)
	}
	if c.Stats.Retired != 1000 {
		t.Fatalf("measured %d instructions, want 1000 (quota-warmup)", c.Stats.Retired)
	}
	if !c.Finished() {
		t.Fatal("core not marked finished")
	}
	// Core keeps running after quota without accumulating stats.
	eng.RunUntil(eng.Now() + 10000)
	if c.Stats.Retired != 1000 {
		t.Fatal("stats accumulated after quota")
	}
	if c.RetiredTotal() <= 1500 {
		t.Fatal("core stopped executing after quota")
	}
}

func TestFootprintTracking(t *testing.T) {
	var instrs []workload.Instr
	for i := 0; i < 10; i++ {
		instrs = append(instrs, workload.Instr{Mem: true, Addr: uint64(i) << 12})
	}
	c, _, _ := run(t, DefaultConfig(), &scriptGen{instrs: instrs}, 10, 100)
	if c.Stats.UniquePages != 10 {
		t.Fatalf("tracked %d pages, want 10", c.Stats.UniquePages)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	m := &fixedMem{eng: eng}
	bad := []Config{
		{ClockHz: 0, Width: 4, ROB: 192, StoreBuffer: 32},
		{ClockHz: 3e9, Width: 0, ROB: 192, StoreBuffer: 32},
		{ClockHz: 3e9, Width: 8, ROB: 4, StoreBuffer: 32},
		{ClockHz: 3e9, Width: 4, ROB: 192, StoreBuffer: 0},
	}
	for i, cfg := range bad {
		if _, err := New(0, cfg, eng, &scriptGen{}, m); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
