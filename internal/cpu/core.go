// Package cpu implements the ROB-occupancy out-of-order core model used
// in place of the paper's Marss86 full-system CPUs.
//
// The model captures what matters for memory-latency studies: a finite
// reorder buffer bounds memory-level parallelism, independent loads issue
// as soon as they are dispatched, dependent (pointer-chase) loads
// serialize behind older loads, stores retire through a finite store
// buffer, and the core stalls only when the ROB fills behind an
// outstanding load at its head.
package cpu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry/reqtrace"
	"repro/internal/workload"
)

// Config parameterizes a core (Table 1: 3 GHz, 4-wide, 192-entry ROB).
type Config struct {
	ClockHz     float64
	Width       int
	ROB         int
	StoreBuffer int
}

// DefaultConfig returns the Table 1 core.
func DefaultConfig() Config {
	return Config{ClockHz: 3e9, Width: 4, ROB: 192, StoreBuffer: 32}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("cpu: clock must be positive")
	}
	if c.Width <= 0 || c.ROB <= 0 || c.StoreBuffer <= 0 {
		return fmt.Errorf("cpu: width, ROB and store buffer must be positive")
	}
	if c.ROB < c.Width {
		return fmt.Errorf("cpu: ROB (%d) smaller than width (%d)", c.ROB, c.Width)
	}
	return nil
}

// robEntry is one in-flight instruction.
type robEntry struct {
	done      bool
	load      bool
	dependent bool
	issued    bool
	addr      uint64
}

// Stats are per-core measurement-window counters.
type Stats struct {
	Retired   uint64
	MemOps    uint64
	Loads     uint64
	Stores    uint64
	StartTime sim.Time // measurement window start
	EndTime   sim.Time // when the quota was reached
	// UniquePages counts distinct 4 KiB pages touched by measured memory
	// ops (tracked in the core's page bitmap; one bitmap test per memory
	// op replaced a map lookup that showed up in figure-run profiles).
	UniquePages uint64
}

// Core is one simulated CPU.
type Core struct {
	id    int
	cfg   Config
	eng   *sim.Engine
	clock sim.Clock
	gen   workload.Generator
	l1    mem.Component

	rob      []robEntry
	loadReqs []mem.Request // per-ROB-slot load requests, Done bound once
	head     int
	count    int

	outstandingLoads int
	depQueue         []int        // ROB indexes of unissued dependent loads
	storePool        []*storeSlot // recycled store requests
	sbInFlight       int
	pending          workload.Instr // stalled instruction awaiting dispatch
	pendingValid     bool
	scratch          workload.Instr // dispatch scratch (a local would
	// escape through the Generator interface call and allocate per tick)

	retiredTotal uint64
	warmupAt     uint64 // retired count at which measurement starts
	quota        uint64 // retired count at which measurement stops
	measuring    bool
	finished     bool
	onWarmup     func(coreID int)
	onQuota      func(coreID int)

	ticker *sim.Ticker

	// pageBits is the touched-page bitmap behind Stats.UniquePages,
	// indexed by page number (Addr>>12) and grown on demand; cores
	// address a bounded contiguous region, so it stays small.
	pageBits []uint64

	// Request-trace sampling (nil rt = off, the common case). Every
	// measured demand load increments rtCount; the one whose counter hits
	// the core's deterministic offset (mod the stride) gets a span.
	rt       *reqtrace.Recorder
	rtStride uint64
	rtOffset uint64
	rtCount  uint64

	Stats Stats
}

// New builds a core fetching from gen and accessing l1.
func New(id int, cfg Config, eng *sim.Engine, gen workload.Generator, l1 mem.Component) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		id:    id,
		cfg:   cfg,
		eng:   eng,
		clock: sim.NewClockHz(cfg.ClockHz),
		gen:   gen,
		l1:    l1,
		rob:   make([]robEntry, cfg.ROB),
	}
	// One request per ROB slot with its completion bound once: a slot is
	// only reused after its previous instruction retired, which requires
	// the load to have completed, so in-flight requests never alias.
	c.loadReqs = make([]mem.Request, cfg.ROB)
	for i := range c.loadReqs {
		idx := i
		c.loadReqs[i].Done = func() { c.loadReturned(idx) }
	}
	c.ticker = sim.NewTicker(eng, c.clock, c.tick)
	return c, nil
}

// Reset rewinds the core to its just-constructed state for in-place
// reuse (exp.SystemPool), adopting gen as the instruction stream for the
// next run. The ROB array, per-slot load requests (completions bound
// once to this core), recycled store slots, and the page bitmap's
// backing are all retained, so a reset allocates nothing. The engine
// and clock are pinned; request-trace sampling detaches — re-attach per
// run. Only valid once the engine's queue has been emptied: an
// in-flight completion would otherwise fire against the rewound state.
func (c *Core) Reset(gen workload.Generator) {
	c.gen = gen
	for i := range c.rob {
		c.rob[i] = robEntry{}
	}
	for i := range c.loadReqs {
		c.loadReqs[i].Trace = nil
	}
	c.head, c.count = 0, 0
	c.outstandingLoads = 0
	c.depQueue = c.depQueue[:0]
	c.sbInFlight = 0
	c.pending = workload.Instr{}
	c.pendingValid = false
	c.retiredTotal, c.warmupAt, c.quota = 0, 0, 0
	c.measuring, c.finished = false, false
	c.onWarmup, c.onQuota = nil, nil
	c.ticker.Reset()
	for i := range c.pageBits {
		c.pageBits[i] = 0
	}
	c.rt = nil
	c.rtStride, c.rtOffset, c.rtCount = 0, 0, 0
	c.Stats = Stats{}
}

// touchPage records a measured memory op's page in the bitmap, counting
// it on first touch.
func (c *Core) touchPage(page uint64) {
	w := page >> 6
	if w >= uint64(len(c.pageBits)) {
		grown := make([]uint64, w+w/2+1)
		copy(grown, c.pageBits)
		c.pageBits = grown
	}
	if bit := uint64(1) << (page & 63); c.pageBits[w]&bit == 0 {
		c.pageBits[w] |= bit
		c.Stats.UniquePages++
	}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Clock returns the core clock.
func (c *Core) Clock() sim.Clock { return c.clock }

// Start begins execution. warmup retired instructions are excluded from
// statistics (onWarmup fires when the boundary is crossed); once quota
// instructions retire, onQuota fires and the core keeps running
// (generating interference) without accumulating stats. Both callbacks
// may be nil. A quota not exceeding the warm-up is a measurement-window
// misconfiguration and is returned as an error before any event is
// scheduled.
func (c *Core) Start(warmup, quota uint64, onWarmup, onQuota func(coreID int)) error {
	if quota <= warmup {
		return fmt.Errorf("cpu: quota (%d) must exceed warmup (%d)", quota, warmup)
	}
	c.warmupAt = warmup
	c.quota = quota
	c.onWarmup = onWarmup
	c.onQuota = onQuota
	c.measuring = warmup == 0
	if c.measuring {
		c.Stats.StartTime = c.eng.Now()
		if c.onWarmup != nil {
			c.onWarmup(c.id)
		}
	}
	c.ticker.Start()
	return nil
}

// Outstanding reports in-flight memory operations (issued loads plus
// undrained stores); used by the livelock watchdog.
func (c *Core) Outstanding() int { return c.outstandingLoads + c.sbInFlight }

// Finished reports whether the core has reached its quota.
func (c *Core) Finished() bool { return c.finished }

// RetiredTotal reports lifetime retired instructions (including warm-up).
func (c *Core) RetiredTotal() uint64 { return c.retiredTotal }

// IPC returns instructions per cycle over the measurement window; zero if
// the window has not closed.
func (c *Core) IPC() float64 {
	if !c.finished || c.Stats.EndTime <= c.Stats.StartTime {
		return 0
	}
	cycles := float64(c.Stats.EndTime-c.Stats.StartTime) / float64(c.clock.Period())
	return float64(c.Stats.Retired) / cycles
}

// AttachReqTrace enables 1-in-N request-trace sampling on this core's
// measured demand loads. The sampling offset is derived from the
// recorder's seed and the core id, so which loads are sampled is a pure
// function of configuration — sampling never perturbs the simulation.
func (c *Core) AttachReqTrace(rec *reqtrace.Recorder) {
	if rec == nil {
		return
	}
	c.rt = rec
	c.rtStride = rec.SampleN()
	c.rtOffset = rec.OffsetFor(c.id)
}

// wake restarts the ticker after a completion event.
func (c *Core) wake() { c.ticker.Start() }

// tick advances one core cycle: issue dependent loads, retire, dispatch.
func (c *Core) tick() {
	progress := false

	// A dependent load issues only when no older load is outstanding.
	if len(c.depQueue) > 0 && c.outstandingLoads == 0 {
		idx := c.depQueue[0]
		c.depQueue = c.depQueue[1:]
		c.issueLoad(idx)
		progress = true
	}

	// Retire up to Width completed instructions from the ROB head.
	for r := 0; r < c.cfg.Width && c.count > 0 && c.rob[c.head].done; r++ {
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.retire()
		progress = true
	}

	// Dispatch up to Width new instructions into the ROB.
	in := &c.scratch
	for d := 0; d < c.cfg.Width && c.count < len(c.rob); d++ {
		if c.pendingValid {
			*in = c.pending
		} else {
			c.gen.Next(in)
		}
		if in.Mem && in.Write && c.sbInFlight >= c.cfg.StoreBuffer {
			// Store buffer full: hold the instruction and stall dispatch
			// (dropping it would silently mutate the workload stream).
			c.pending = *in
			c.pendingValid = true
			break
		}
		c.pendingValid = false
		idx := (c.head + c.count) % len(c.rob)
		c.count++
		e := &c.rob[idx]
		*e = robEntry{}
		progress = true
		if !in.Mem {
			e.done = true
			continue
		}
		if c.measuring {
			c.Stats.MemOps++
			c.touchPage(in.Addr >> 12)
		}
		if in.Write {
			if c.measuring {
				c.Stats.Stores++
			}
			// Stores retire immediately through the store buffer and
			// drain to the cache asynchronously.
			e.done = true
			c.sbInFlight++
			s := c.newStore()
			s.req.Addr = in.Addr
			s.req.Issued = c.eng.Now()
			c.l1.Access(&s.req)
			continue
		}
		if c.measuring {
			c.Stats.Loads++
		}
		e.load = true
		e.addr = in.Addr
		if in.Dependent && c.outstandingLoads > 0 {
			e.dependent = true
			c.depQueue = append(c.depQueue, idx)
		} else {
			c.issueLoad(idx)
		}
	}

	// Sleep while fully blocked on memory; completions call wake.
	if !progress && (c.outstandingLoads > 0 || c.sbInFlight >= c.cfg.StoreBuffer) {
		c.ticker.Stop()
	}
}

// issueLoad sends the load at ROB index idx into the hierarchy, reusing
// the slot's preallocated request.
func (c *Core) issueLoad(idx int) {
	c.rob[idx].issued = true
	c.outstandingLoads++
	req := &c.loadReqs[idx]
	req.Addr = c.rob[idx].addr
	req.Core = c.id
	req.Issued = c.eng.Now()
	if c.rt != nil && c.measuring {
		if c.rtCount%c.rtStride == c.rtOffset {
			req.Trace = c.rt.Begin(c.id, req.Issued)
		}
		c.rtCount++
	}
	c.l1.Access(req)
}

// loadReturned marks the load complete and wakes the core.
func (c *Core) loadReturned(idx int) {
	if req := &c.loadReqs[idx]; req.Trace != nil {
		c.rt.Finish(req.Trace, c.eng.Now())
		req.Trace = nil
	}
	c.rob[idx].done = true
	c.outstandingLoads--
	c.wake()
}

// storeSlot is a recyclable store request. Its completion callback is
// bound once at creation; draining returns the slot to the core's pool,
// whose size is bounded by the store buffer (at most StoreBuffer stores
// are ever in flight).
type storeSlot struct {
	c   *Core
	req mem.Request
}

// drained frees the store-buffer slot and recycles the request. The
// cache hierarchy holds no reference to the request after Done fires,
// so the slot is safe to reuse on a later dispatch.
func (s *storeSlot) drained() {
	c := s.c
	c.storePool = append(c.storePool, s)
	c.sbInFlight--
	c.wake()
}

// newStore returns a store request ready for dispatch, recycled from
// the pool when possible.
func (c *Core) newStore() *storeSlot {
	if n := len(c.storePool); n > 0 {
		s := c.storePool[n-1]
		c.storePool = c.storePool[:n-1]
		return s
	}
	s := &storeSlot{c: c}
	s.req.Write = true
	s.req.Core = c.id
	s.req.Done = s.drained
	return s
}

// retire accounts one retired instruction and drives the measurement
// window boundaries.
func (c *Core) retire() {
	c.retiredTotal++
	if c.measuring {
		c.Stats.Retired++
	}
	if !c.measuring && !c.finished && c.retiredTotal == c.warmupAt {
		c.measuring = true
		c.Stats.StartTime = c.eng.Now()
		if c.onWarmup != nil {
			c.onWarmup(c.id)
		}
	}
	if c.measuring && !c.finished && c.retiredTotal == c.quota {
		c.finished = true
		c.measuring = false
		c.Stats.EndTime = c.eng.Now()
		if c.onQuota != nil {
			c.onQuota(c.id)
		}
	}
}
