package exp

import (
	"sync"

	"repro/internal/config"
	"repro/internal/core"
)

// poolKey pins everything a System.Reset cannot change: the machine
// shape. Two configs with equal keys differ only in sweepable knobs
// (timing sets, migration latency, management parameters, page policy,
// measurement protocol, seeds, fault injection), all of which Reset
// re-applies. Design is part of the key because the manager's design is
// structural (dynamic designs carry layout/tag-cache/filter state that
// static ones never allocate), as is the execution engine choice (a
// parallel machine owns a second engine and the shard coupling).
type poolKey struct {
	design   core.Design
	cores    int
	parallel bool

	channels, ranks, banks, rows, columns, blockSize int

	cpuGHz                  float64
	width, rob, storeBuffer int

	l1KB, l1Assoc, l1Lat, l1MSHRs     int
	l2KB, l2Assoc, l2Lat, l2MSHRs     int
	llcKB, llcAssoc, llcLat, llcMSHRs int
}

func keyFor(cfg *config.Config, design core.Design) poolKey {
	return poolKey{
		design:   design,
		cores:    cfg.Cores,
		parallel: cfg.Parallel >= 2,
		channels: cfg.Channels, ranks: cfg.Ranks, banks: cfg.Banks,
		rows: cfg.RowsPerBank, columns: cfg.Columns, blockSize: cfg.BlockSize,
		cpuGHz: cfg.CPUGHz, width: cfg.Width, rob: cfg.ROB, storeBuffer: cfg.StoreBuffer,
		l1KB: cfg.L1KB, l1Assoc: cfg.L1Assoc, l1Lat: cfg.L1Latency, l1MSHRs: cfg.L1MSHRs,
		l2KB: cfg.L2KB, l2Assoc: cfg.L2Assoc, l2Lat: cfg.L2Latency, l2MSHRs: cfg.L2MSHRs,
		llcKB: cfg.LLCKB, llcAssoc: cfg.LLCAssoc, llcLat: cfg.LLCLatency, llcMSHRs: cfg.LLCMSHRs,
	}
}

// footprintBytes is a coarse standing-memory estimate of one machine,
// used only to enforce the pool's byte budget (never for simulation).
// It prices the dominant retained structures: cache line metadata, DRAM
// bank state, and per-core ROB/request arrays, plus a fixed slack for
// queues, maps, and lazily grown tables.
func footprintBytes(k poolKey) int64 {
	const (
		lineBytes = 48  // cache line metadata + set overhead
		bankBytes = 256 // dram.Bank counters + rank share
		robBytes  = 160 // robEntry + preallocated mem.Request
		slack     = 1 << 20
	)
	cacheLines := int64(k.llcKB<<10)/int64(k.blockSize) +
		int64(k.cores)*(int64(k.l1KB<<10)+int64(k.l2KB<<10))/int64(k.blockSize)
	banks := int64(k.channels) * int64(k.ranks) * int64(k.banks)
	return cacheLines*lineBytes + banks*bankBytes + int64(k.cores)*int64(k.rob)*robBytes + slack
}

// PoolStats is a snapshot of a SystemPool's lifetime activity.
type PoolStats struct {
	// Hits counts checkouts served by a pooled machine; Misses counts
	// checkouts that fell through to a fresh Build.
	Hits, Misses uint64
	// Drops counts checkins discarded because the byte budget was full.
	Drops uint64
	// Machines is the number of systems currently parked in the pool and
	// CurrentBytes their estimated standing memory; HighWaterBytes is the
	// lifetime maximum of CurrentBytes.
	Machines       int
	CurrentBytes   int64
	HighWaterBytes int64
}

// HitRate returns Hits / (Hits + Misses), 0 before any checkout.
func (s PoolStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// SystemPool recycles fully built simulation machines across runs,
// keyed by machine shape (poolKey). A sweep that runs hundreds of
// points over the same shape pays the allocation cost of one machine
// per concurrent run instead of one per point: checkouts rewind the
// machine in place (System.Reset) with byte-identical results to a
// fresh Build.
//
// The pool is bounded by an estimated byte budget: checkins beyond it
// are dropped (their engine storage still recycles through the sim
// pools), so a burst of differently shaped jobs cannot pin unbounded
// memory. All methods are safe for concurrent use.
type SystemPool struct {
	mu       sync.Mutex
	items    map[poolKey][]*System
	maxBytes int64
	stats    PoolStats
}

// DefaultPoolBytes is the default pool budget: roomy enough for a few
// concurrent benchmark-scale machines, small against any host that can
// run the simulator at all.
const DefaultPoolBytes = 256 << 20

// DefaultPool is the process-wide machine pool Sessions use unless
// overridden. It is package-level deliberately: sessions are routinely
// created per figure (or per benchmark iteration), so a per-session
// pool would never see a second checkout of the same shape.
var DefaultPool = NewSystemPool(DefaultPoolBytes)

// NewSystemPool builds a pool bounded by maxBytes of estimated standing
// memory (0 or negative = unbounded).
func NewSystemPool(maxBytes int64) *SystemPool {
	return &SystemPool{items: make(map[poolKey][]*System), maxBytes: maxBytes}
}

// Get checks out a machine matching cfg/design's shape, or returns nil
// (a miss: the caller builds fresh and checks the new machine in after
// use). A non-nil machine still holds its previous run's state — rewind
// it with System.Reset before running.
func (p *SystemPool) Get(cfg *config.Config, design core.Design) *System {
	k := keyFor(cfg, design)
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.items[k]
	if len(q) == 0 {
		p.stats.Misses++
		return nil
	}
	sys := q[len(q)-1]
	q[len(q)-1] = nil
	p.items[k] = q[:len(q)-1]
	p.stats.Hits++
	p.stats.Machines--
	p.stats.CurrentBytes -= footprintBytes(k)
	return sys
}

// Put checks a machine back in for reuse. Over-budget checkins are
// dropped: the machine's engine storage is released to the sim pools
// and the system left for the collector. Never Put a machine whose run
// failed mid-flight unless it has been Reset — the pool stores
// machines dirty and relies on the next checkout's Reset, which
// requires intact wiring.
func (p *SystemPool) Put(sys *System) {
	if sys == nil {
		return
	}
	k := keyFor(&sys.Cfg, sys.Design)
	fb := footprintBytes(k)
	p.mu.Lock()
	if p.maxBytes > 0 && p.stats.CurrentBytes+fb > p.maxBytes {
		p.stats.Drops++
		p.mu.Unlock()
		sys.free()
		return
	}
	sys.pool = p
	p.items[k] = append(p.items[k], sys)
	p.stats.Machines++
	p.stats.CurrentBytes += fb
	if p.stats.CurrentBytes > p.stats.HighWaterBytes {
		p.stats.HighWaterBytes = p.stats.CurrentBytes
	}
	p.mu.Unlock()
}

// Drain releases every pooled machine (graceful-shutdown path). The
// pool remains usable; lifetime statistics are preserved.
func (p *SystemPool) Drain() {
	p.mu.Lock()
	var all []*System
	for k, q := range p.items {
		all = append(all, q...)
		delete(p.items, k)
	}
	p.stats.Machines = 0
	p.stats.CurrentBytes = 0
	p.mu.Unlock()
	for _, sys := range all {
		sys.free()
	}
}

// Stats snapshots the pool's lifetime activity.
func (p *SystemPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
