package exp

import (
	"fmt"
	"runtime"
	"time"
)

// Perf captures the host-side cost of producing one figure: wall-clock
// time, engine events executed by the fresh (non-memoized) runs behind
// it, and Go heap allocation deltas. It is diagnostic output only and
// must never leak into Figure.Render — figure text is a golden artifact
// (results_single.txt) that has to stay byte-identical across engines
// and machines.
type Perf struct {
	Wall         time.Duration
	Events       uint64 // engine events executed while computing the figure
	AllocBytes   uint64 // heap bytes allocated (runtime TotalAlloc delta)
	AllocObjects uint64 // heap objects allocated (runtime Mallocs delta)
}

// EventsPerSec reports simulation throughput; zero when no time elapsed.
func (p *Perf) EventsPerSec() float64 {
	if p == nil || p.Wall <= 0 {
		return 0
	}
	return float64(p.Events) / p.Wall.Seconds()
}

// String renders a one-line footer, e.g.
// "wall 12.3s | 41.2M events (3.35M events/s) | 18.4MB allocated (120.3k objects)".
func (p *Perf) String() string {
	return fmt.Sprintf("wall %s | %s events (%s events/s) | %sB allocated (%s objects)",
		p.Wall.Round(time.Millisecond),
		count(float64(p.Events)), count(p.EventsPerSec()),
		count(float64(p.AllocBytes)), count(float64(p.AllocObjects)))
}

// count formats a magnitude with a k/M/G suffix for human reading.
func count(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Measured runs f and attaches a Perf record to the figure it returns.
// Event counts are deltas of the session counter, so figures that reuse
// memoized runs report only the work actually performed on their behalf.
func (s *Session) Measured(f func() (*Figure, error)) (*Figure, error) {
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	ev0 := s.EventsExecuted()
	start := time.Now()
	fig, err := f()
	if err != nil || fig == nil {
		return fig, err
	}
	wall := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	fig.Perf = &Perf{
		Wall:         wall,
		Events:       s.EventsExecuted() - ev0,
		AllocBytes:   m1.TotalAlloc - m0.TotalAlloc,
		AllocObjects: m1.Mallocs - m0.Mallocs,
	}
	return fig, nil
}
