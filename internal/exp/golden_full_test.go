//go:build golden_full

package exp

import (
	"os"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestGoldenResultsSingleFull regenerates the checked-in
// results_single.txt — Fig 7a/7b/7c plus the power comparison over all
// ten Table 2 benchmarks at 10M instructions per core, episode-scaled
// configuration, default seed — and asserts byte-identity. It takes
// 10-25 minutes single-threaded, so it hides behind both a build tag
// and -short:
//
//	go test -tags golden_full -run ResultsSingleFull -timeout 60m ./internal/exp
func TestGoldenResultsSingleFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full results_single.txt regeneration skipped in -short")
	}
	want, err := os.ReadFile("../../results_single.txt")
	if err != nil {
		t.Fatal(err)
	}

	cfg := config.Scaled()
	cfg.InstrPerCore = 10_000_000
	s := NewSession(cfg)
	var out strings.Builder
	for _, f := range []func() (*Figure, error){s.Fig7a, s.Fig7b, s.Fig7c, s.PowerFigure} {
		fig, err := f()
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(fig.Render())
	}

	got := out.String()
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("results_single.txt: first divergence at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("results_single.txt: length differs: got %d lines, want %d", len(gl), len(wl))
}
