package exp

import (
	"runtime"
	"testing"
)

// The engine's determinism contract (see internal/sim): figure output
// depends only on the configuration and seeds, not on host scheduling,
// session parallelism, or the event-queue implementation. The queue
// half of the contract — value-typed 4-ary heap vs the container/heap
// reference — is cross-checked by `go test -tags sim_refheap
// ./internal/sim` and by the figure-level diff in scripts/check.sh,
// which renders the same figure under both builds and byte-compares.

// renderFig7a computes a two-benchmark Fig7a with the given session
// parallelism, prewarming baselines so the concurrent path actually
// runs runs in parallel rather than serializing on the memo locks.
func renderFig7a(t *testing.T, par int) string {
	t.Helper()
	s := NewSession(tinyConfig())
	s.Parallelism = par
	s.Benchmarks = []string{"mcf", "libquantum"}
	if err := s.Prewarm(s.singleSets()); err != nil {
		t.Fatal(err)
	}
	fig, err := s.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	return fig.Render()
}

// TestDeterminismAcrossParallelism renders the same figure with a
// serial session and a GOMAXPROCS-wide one; concurrent sessions run
// independent engines, so the rendered text must be byte-identical.
func TestDeterminismAcrossParallelism(t *testing.T) {
	serial := renderFig7a(t, 1)
	wide := renderFig7a(t, max(2, runtime.GOMAXPROCS(0)))
	if serial != wide {
		t.Fatalf("figure output depends on session parallelism:\nserial:\n%s\nparallel:\n%s", serial, wide)
	}
}

// TestDeterminismRepeatedSessions renders the same figure from two
// fresh sessions; pooled queue backings and recycled requests must not
// leak state across runs.
func TestDeterminismRepeatedSessions(t *testing.T) {
	a := renderFig7a(t, 1)
	b := renderFig7a(t, 1)
	if a != b {
		t.Fatalf("figure output differs between identical sessions:\n%s\nvs:\n%s", a, b)
	}
}
