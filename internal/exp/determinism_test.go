package exp

import (
	"runtime"
	"testing"
)

// The engine's determinism contract (see internal/sim): figure output
// depends only on the configuration and seeds, not on host scheduling,
// session parallelism, or the event-queue implementation. The queue
// half of the contract — value-typed 4-ary heap vs the container/heap
// reference — is cross-checked by `go test -tags sim_refheap
// ./internal/sim` and by the figure-level diff in scripts/check.sh,
// which renders the same figure under both builds and byte-compares.

// renderFig7a computes a two-benchmark Fig7a with the given session
// parallelism, prewarming baselines so the concurrent path actually
// runs runs in parallel rather than serializing on the memo locks.
func renderFig7a(t *testing.T, par int) string {
	t.Helper()
	return renderFig7aCfg(t, par, 0)
}

// renderFig7aCfg additionally selects the execution engine
// (config.Parallel: 0 = sequential, >= 2 = sharded).
func renderFig7aCfg(t *testing.T, par, engineShards int) string {
	t.Helper()
	cfg := tinyConfig()
	cfg.Parallel = engineShards
	s := NewSession(cfg)
	s.Parallelism = par
	s.Benchmarks = []string{"mcf", "libquantum"}
	if err := s.Prewarm(s.singleSets()); err != nil {
		t.Fatal(err)
	}
	fig, err := s.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	return fig.Render()
}

// TestDeterminismAcrossParallelism renders the same figure with a
// serial session and a GOMAXPROCS-wide one; concurrent sessions run
// independent engines, so the rendered text must be byte-identical.
func TestDeterminismAcrossParallelism(t *testing.T) {
	serial := renderFig7a(t, 1)
	wide := renderFig7a(t, max(2, runtime.GOMAXPROCS(0)))
	if serial != wide {
		t.Fatalf("figure output depends on session parallelism:\nserial:\n%s\nparallel:\n%s", serial, wide)
	}
}

// TestDeterminismRepeatedSessions renders the same figure from two
// fresh sessions; pooled queue backings and recycled requests must not
// leak state across runs.
func TestDeterminismRepeatedSessions(t *testing.T) {
	a := renderFig7a(t, 1)
	b := renderFig7a(t, 1)
	if a != b {
		t.Fatalf("figure output differs between identical sessions:\n%s\nvs:\n%s", a, b)
	}
}

// TestDeterminismParallelRepeated renders the same figure from
// repeated sharded-engine sessions: the epoch protocol admits no
// scheduling freedom, so repeated parallel runs must be byte-identical
// to each other and to the sequential engine.
func TestDeterminismParallelRepeated(t *testing.T) {
	seq := renderFig7aCfg(t, 1, 0)
	a := renderFig7aCfg(t, 1, 2)
	b := renderFig7aCfg(t, 1, 2)
	if a != b {
		t.Fatalf("sharded-engine output differs between identical sessions:\n%s\nvs:\n%s", a, b)
	}
	if a != seq {
		t.Fatalf("sharded-engine output differs from sequential:\nsequential:\n%s\nsharded:\n%s", seq, a)
	}
}

// TestDeterminismParallelAcrossGOMAXPROCS pins the sharded engine
// against host-scheduling variation: with GOMAXPROCS clamped to 1 the
// two shard goroutines time-slice one OS thread, with it wide they run
// truly concurrently; rendered bytes must not notice.
func TestDeterminismParallelAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	narrow := renderFig7aCfg(t, 1, 2)
	runtime.GOMAXPROCS(max(2, prev))
	wide := renderFig7aCfg(t, 1, 2)
	runtime.GOMAXPROCS(prev)
	if narrow != wide {
		t.Fatalf("sharded-engine output depends on GOMAXPROCS:\nnarrow:\n%s\nwide:\n%s", narrow, wide)
	}
}
