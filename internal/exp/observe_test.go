package exp

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// observedFig7a renders a two-benchmark Fig7a with telemetry fully
// enabled and returns the figure text plus the merged sink bytes.
func observedFig7a(t *testing.T, par int) (fig, timelineCSV, trace string) {
	t.Helper()
	s := NewSession(tinyConfig())
	s.Parallelism = par
	s.Benchmarks = []string{"mcf", "libquantum"}
	s.Observe = &ObserveOptions{Metrics: true, Trace: true, ReqTraceN: 3}
	f, err := s.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, traceBuf bytes.Buffer
	if err := s.WriteTimelineCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	return f.Render(), csvBuf.String(), traceBuf.String()
}

// TestTelemetryDoesNotPerturbFigures is the core guarantee: a fully
// observed session renders byte-identical figure output to an
// uninstrumented one. Telemetry records from the host run loop and
// nil-guarded issue sites, never through engine events, so enabling it
// must not move a single simulated command.
func TestTelemetryDoesNotPerturbFigures(t *testing.T) {
	plain := renderFig7a(t, 1)
	observed, _, _ := observedFig7a(t, 1)
	if plain != observed {
		t.Fatalf("telemetry perturbed figure output:\nplain:\n%s\nobserved:\n%s", plain, observed)
	}
}

// TestTelemetrySinksDeterministic renders the observed figure serially
// and at full parallelism: merged sink output sorts by run label, so
// the bytes must not depend on host scheduling or completion order.
func TestTelemetrySinksDeterministic(t *testing.T) {
	_, csvSerial, traceSerial := observedFig7a(t, 1)
	_, csvWide, traceWide := observedFig7a(t, max(2, runtime.GOMAXPROCS(0)))
	if csvSerial != csvWide {
		t.Errorf("timeline CSV depends on session parallelism")
	}
	if traceSerial != traceWide {
		t.Errorf("trace JSON depends on session parallelism")
	}
	if !strings.Contains(csvSerial, "dram.cmd.act") {
		t.Errorf("timeline CSV missing dram command counters:\n%.400s", csvSerial)
	}
}

// TestTraceExportIsValidTraceEventJSON validates the exporter against
// the Chrome trace-event schema: top-level traceEvents array, every
// event carrying name/ph/pid/tid, complete events a non-negative
// ts+dur, instant events a scope, flow events an id, counter events an
// args.value, and metadata naming each process.
func TestTraceExportIsValidTraceEventJSON(t *testing.T) {
	_, _, trace := observedFig7a(t, 1)
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  *string  `json:"name"`
			Ph    *string  `json:"ph"`
			Ts    *float64 `json:"ts"`
			Dur   *float64 `json:"dur"`
			Pid   *int     `json:"pid"`
			Tid   *int     `json:"tid"`
			Scope string   `json:"s"`
			ID    string   `json:"id"`
			Args  map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var processes, complete, instant, flows, counters int
	for i, e := range doc.TraceEvents {
		if e.Name == nil || e.Ph == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing required field: %+v", i, e)
		}
		switch *e.Ph {
		case "M":
			if *e.Name == "process_name" {
				processes++
			}
		case "X":
			complete++
			if e.Ts == nil || e.Dur == nil || *e.Ts < 0 || *e.Dur < 0 {
				t.Fatalf("complete event %d lacks non-negative ts/dur: %+v", i, e)
			}
		case "i":
			instant++
			if e.Ts == nil || e.Scope == "" {
				t.Fatalf("instant event %d lacks ts/scope: %+v", i, e)
			}
		case "s", "f":
			flows++
			if e.Ts == nil || e.ID == "" {
				t.Fatalf("flow event %d lacks ts/id: %+v", i, e)
			}
		case "C":
			counters++
			if e.Ts == nil || *e.Ts < 0 {
				t.Fatalf("counter event %d lacks non-negative ts: %+v", i, e)
			}
			if _, ok := e.Args["value"]; !ok {
				t.Fatalf("counter event %d lacks args.value: %+v", i, e)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, *e.Ph)
		}
	}
	if processes == 0 {
		t.Error("no process_name metadata emitted")
	}
	if complete == 0 {
		t.Error("no complete (DRAM command) events emitted")
	}
	if flows == 0 || flows%2 != 0 {
		t.Errorf("request flow events = %d, want a positive even count (start/end pairs)", flows)
	}
	if counters == 0 {
		t.Error("no cumulative-energy counter events emitted")
	}
	_ = instant // fault events only appear on faulty-device runs
}
