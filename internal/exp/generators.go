package exp

import (
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

// CoreSpan returns the row-aligned address span owned by each core:
// usable memory (capacity minus the translation-table reserve) divided
// evenly among cores.
func CoreSpan(cfg config.Config) uint64 {
	geom := cfg.Geometry()
	usable := geom.Capacity() - core.TableReserveBytes(geom)
	span := usable / uint64(cfg.Cores)
	return span / geom.RowBytes() * geom.RowBytes()
}

// MakeGenerator builds the deterministic synthetic generator for core
// idx running benchmark name under cfg. The construction is shared by
// Build and the profiling pass so both see identical streams:
//
//   - footprints scale with simulated memory capacity relative to the
//     paper's 8 GB system;
//   - phase lengths (expressed per 100M instructions in the catalog)
//     scale with the episode length so every run sees the same number of
//     phase changes as a full-length sample;
//   - the seed depends on the session seed and the core index only, so
//     all designs observe the same instruction stream.
func MakeGenerator(cfg config.Config, name string, idx int) (workload.Generator, error) {
	profl, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	span := CoreSpan(cfg)
	fp := uint64(float64(profl.FootprintBytes) * cfg.MemoryScale())
	if min := uint64(2 << 20); fp < min {
		fp = min
	}
	if fp > span {
		fp = span
	}
	profl.FootprintBytes = fp
	if profl.PhaseInstr > 0 {
		scale := float64(cfg.InstrPerCore) / 100e6
		profl.PhaseInstr = uint64(float64(profl.PhaseInstr) * scale)
		if profl.PhaseInstr == 0 {
			profl.PhaseInstr = 1
		}
		profl.PhaseOffsetInstr = uint64(float64(profl.PhaseOffsetInstr) * scale)
	}
	return workload.NewSynthetic(profl, workload.Region{
		Base: uint64(idx) * span, Bytes: span,
	}, cfg.Seed+uint64(idx)*1000003)
}

// ProfileWindowFactor is how much longer the offline profiling pass is
// than the measured episode. The paper profiles whole program executions
// and then evaluates 100M-instruction samples; the factor reproduces the
// resulting lifetime-hot versus episode-hot mismatch that separates
// static from dynamic management.
const ProfileWindowFactor = 19

// profileMemo caches ProfilePass results across sessions. The pass is
// a pure function of (cfg, benchmarks) — the generators are seeded
// deterministically from them — yet it replays ProfileWindowFactor
// episodes of every benchmark, which makes it one of the most
// expensive stages of a figure run; sweeps and benchmarks rebuild
// sessions with identical workload configurations over and over. The
// key over-approximates the inputs (the full config, though only
// geometry/seed/footprint fields matter), so a collision can only mean
// a redundant recompute, never a wrong profile. Profiles are immutable
// after construction, so sharing the pointer is safe.
var profileMemo struct {
	sync.Mutex
	m map[string]*core.RowProfile
}

// ProfilePass runs a functional (timing-free) pass of every benchmark's
// generator over ProfileWindowFactor x the episode length, recording
// per-row touch counts. This is the profile the static designs
// (SAS-DRAM, CHARM) pre-assign from. Results are memoized per
// (cfg, benchmarks).
func ProfilePass(cfg config.Config, benchmarks []string) (*core.RowProfile, error) {
	key := fmt.Sprintf("%+v|%q", cfg, benchmarks)
	profileMemo.Lock()
	if p, ok := profileMemo.m[key]; ok {
		profileMemo.Unlock()
		return p, nil
	}
	profileMemo.Unlock()
	p, err := profilePass(cfg, benchmarks)
	if err != nil {
		return nil, err
	}
	profileMemo.Lock()
	if profileMemo.m == nil || len(profileMemo.m) > 64 {
		profileMemo.m = make(map[string]*core.RowProfile) // bound footprint
	}
	profileMemo.m[key] = p
	profileMemo.Unlock()
	return p, nil
}

func profilePass(cfg config.Config, benchmarks []string) (*core.RowProfile, error) {
	geom := cfg.Geometry()
	prof := core.NewRowProfile()
	var in workload.Instr
	for i, name := range benchmarks {
		gen, err := MakeGenerator(cfg, name, i)
		if err != nil {
			return nil, err
		}
		n := cfg.InstrPerCore * ProfileWindowFactor
		for k := uint64(0); k < n; k++ {
			gen.Next(&in)
			if in.Mem {
				prof.Record(geom.RowID(geom.Decode(in.Addr)))
			}
		}
	}
	return prof, nil
}
