package exp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/telemetry/reqtrace"
)

// Explain runs designs a and b over the session's single-programmed
// workload set with per-request tracing and renders the cross-design
// attribution report: where each design's nanoseconds go, per workload
// and aggregated, and a ranked list of the components driving the
// difference. The session must have Observe.ReqTraceN > 0 before the
// first run; Explain fails if any traced request violated the
// components-sum-to-total invariant, so a clean report doubles as an
// end-to-end check of the attribution engine.
func (s *Session) Explain(a, b core.Design) (*Figure, error) {
	if s.Observe == nil || s.Observe.ReqTraceN <= 0 {
		return nil, fmt.Errorf("exp: Explain requires Observe.ReqTraceN > 0 (request tracing off)")
	}
	sets := s.singleSets()
	names := s.singles()

	// Run both designs over every workload in parallel (memoized, so
	// figures already computed this session are reused).
	var jobs []job
	for _, set := range sets {
		for _, d := range []core.Design{a, b} {
			set, d := set, d
			jobs = append(jobs, func() error {
				_, err := s.Cached(s.Cfg, d, set)
				return err
			})
		}
	}
	if err := s.runAll(jobs); err != nil {
		return nil, err
	}

	// Look each run's recorder up by its result key.
	recorder := func(d core.Design, set []string) (*reqtrace.Recorder, error) {
		key := resultKey(s.cfgFor(set), d, set)
		for _, o := range s.Observers() {
			if o.Label == key && o.Req != nil {
				if v := o.Req.Violations(); v > 0 {
					return nil, fmt.Errorf("exp: %s: %d attribution invariant violation(s); first: %s",
						key, v, o.Req.FirstViolation())
				}
				if v := o.Req.EnergyViolations(); v > 0 {
					return nil, fmt.Errorf("exp: %s: %d energy attribution violation(s); first: %s",
						key, v, o.Req.FirstEnergyViolation())
				}
				return o.Req, nil
			}
		}
		return nil, fmt.Errorf("exp: no request-trace recorder for %s (run predates tracing?)", key)
	}

	waterfall := &stats.Table{
		Title:  fmt.Sprintf("Mean per-request latency attribution (ns): %v vs %v", a, b),
		Header: []string{"workload", "design", "requests", "total", "cache", "xlat", "queue", "refresh", "migration", "conflict", "service", "fill"},
	}
	quantiles := &stats.Table{
		Title:  "End-to-end request latency quantiles (ns)",
		Header: []string{"workload", "design", "p50", "p95", "p99"},
	}
	// Energy carries only on DRAM-command components; the attribution is
	// causal (blocking REF/MIG commands charge each sampled request they
	// blocked in full), verified per request by the ledger invariant.
	ewaterfall := &stats.Table{
		Title:  fmt.Sprintf("Mean per-request energy attribution (pJ): %v vs %v", a, b),
		Header: []string{"workload", "design", "total", "conflict", "service", "refresh", "migration"},
	}
	energyComps := []reqtrace.Component{
		reqtrace.CompConflict, reqtrace.CompService, reqtrace.CompRefresh, reqtrace.CompMigration,
	}
	var aggA, aggB reqtrace.Aggregate
	meanRow := func(name string, d core.Design, r *reqtrace.Recorder) {
		row := []string{name, fmt.Sprintf("%v", d),
			fmt.Sprintf("%d", r.Requests()), fmt.Sprintf("%.1f", r.TotalMeanNS())}
		for c := reqtrace.Component(0); c < reqtrace.NumComponents; c++ {
			row = append(row, fmt.Sprintf("%.1f", r.ComponentMeanNS(c)))
		}
		waterfall.AddRow(row...)
	}
	deltaRow := func(name string, ra, rb *reqtrace.Recorder) {
		row := []string{name, "Δ", "",
			fmt.Sprintf("%+.1f", rb.TotalMeanNS()-ra.TotalMeanNS())}
		for c := reqtrace.Component(0); c < reqtrace.NumComponents; c++ {
			row = append(row, fmt.Sprintf("%+.1f", rb.ComponentMeanNS(c)-ra.ComponentMeanNS(c)))
		}
		waterfall.AddRow(row...)
	}
	energyRow := func(name string, d core.Design, r *reqtrace.Recorder) {
		row := []string{name, fmt.Sprintf("%v", d), fmt.Sprintf("%.1f", r.EnergyMeanPJ())}
		for _, c := range energyComps {
			row = append(row, fmt.Sprintf("%.1f", r.ComponentEnergyMeanPJ(c)))
		}
		ewaterfall.AddRow(row...)
	}
	energyDeltaRow := func(name string, ra, rb *reqtrace.Recorder) {
		row := []string{name, "Δ", fmt.Sprintf("%+.1f", rb.EnergyMeanPJ()-ra.EnergyMeanPJ())}
		for _, c := range energyComps {
			row = append(row, fmt.Sprintf("%+.1f", rb.ComponentEnergyMeanPJ(c)-ra.ComponentEnergyMeanPJ(c)))
		}
		ewaterfall.AddRow(row...)
	}
	for i, set := range sets {
		ra, err := recorder(a, set)
		if err != nil {
			return nil, err
		}
		rb, err := recorder(b, set)
		if err != nil {
			return nil, err
		}
		meanRow(names[i], a, ra)
		meanRow(names[i], b, rb)
		deltaRow(names[i], ra, rb)
		energyRow(names[i], a, ra)
		energyRow(names[i], b, rb)
		energyDeltaRow(names[i], ra, rb)
		ra.AddTo(&aggA)
		rb.AddTo(&aggB)
		quantiles.AddRow(names[i], fmt.Sprintf("%v", a),
			fmt.Sprintf("%d", ra.TotalQuantileNS(0.50)), fmt.Sprintf("%d", ra.TotalQuantileNS(0.95)), fmt.Sprintf("%d", ra.TotalQuantileNS(0.99)))
		quantiles.AddRow(names[i], fmt.Sprintf("%v", b),
			fmt.Sprintf("%d", rb.TotalQuantileNS(0.50)), fmt.Sprintf("%d", rb.TotalQuantileNS(0.95)), fmt.Sprintf("%d", rb.TotalQuantileNS(0.99)))
	}
	waterfall.Caption = fmt.Sprintf(
		"Sampled 1-in-%d demand loads per core; components sum exactly to total (verified per request).",
		s.Observe.ReqTraceN)
	ewaterfall.Caption = "Integer-picojoule ledger per sampled request; component energies sum exactly to the request total (verified per request)."

	drivers, headline := rankDrivers(a, b, &aggA, &aggB)
	edrivers := rankEnergyDrivers(a, b, &aggA, &aggB, energyComps)
	fig := &Figure{
		ID:    "Explain",
		Title: fmt.Sprintf("Why %v ≠ %v: per-request latency attribution", a, b),
		Tables: []*stats.Table{
			waterfall, quantiles, ewaterfall, drivers, edrivers,
		},
	}
	fig.Title += " — " + headline
	return fig, nil
}

// rankDrivers builds the ranked component-diff table over the aggregated
// attribution vectors and a one-line headline for the figure title.
func rankDrivers(a, b core.Design, aggA, aggB *reqtrace.Aggregate) (*stats.Table, string) {
	type driver struct {
		comp         reqtrace.Component
		meanA, meanB float64
	}
	ds := make([]driver, 0, reqtrace.NumComponents)
	for c := reqtrace.Component(0); c < reqtrace.NumComponents; c++ {
		ds = append(ds, driver{comp: c, meanA: aggA.ComponentMeanNS(c), meanB: aggB.ComponentMeanNS(c)})
	}
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	sort.SliceStable(ds, func(i, j int) bool {
		di, dj := abs(ds[i].meanB-ds[i].meanA), abs(ds[j].meanB-ds[j].meanA)
		if di != dj {
			return di > dj
		}
		return ds[i].comp < ds[j].comp
	})

	totalA, totalB := aggA.TotalMeanNS(), aggB.TotalMeanNS()
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Ranked drivers of the %v−%v difference (all workloads)", b, a),
		Header: []string{"rank", "component", fmt.Sprintf("%v ns/req", a), fmt.Sprintf("%v ns/req", b), "Δ ns/req", "Δ% of total", fmt.Sprintf("%v share", a), fmt.Sprintf("%v share", b)},
	}
	share := func(mean, total float64) string {
		if total <= 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*mean/total)
	}
	for i, d := range ds {
		delta := d.meanB - d.meanA
		pct := 0.0
		if totalA > 0 {
			pct = 100 * delta / totalA
		}
		tbl.AddRow(fmt.Sprintf("%d", i+1), d.comp.String(),
			fmt.Sprintf("%.1f", d.meanA), fmt.Sprintf("%.1f", d.meanB),
			fmt.Sprintf("%+.1f", delta), fmt.Sprintf("%+.2f%%", pct),
			share(d.meanA, totalA), share(d.meanB, totalB))
	}
	relTotal := 0.0
	if totalA > 0 {
		relTotal = 100 * (totalB - totalA) / totalA
	}
	top := ds[0]
	headline := fmt.Sprintf("%v mean request latency %.1f ns vs %v %.1f ns (%+.1f%%); largest driver: %s (%+.1f ns/req)",
		b, totalB, a, totalA, relTotal, top.comp, top.meanB-top.meanA)
	tbl.Caption = headline + "."
	return tbl, headline
}

// rankEnergyDrivers mirrors rankDrivers over the attributed-energy axis:
// which DRAM-command components drive the per-request energy difference
// between the two designs.
func rankEnergyDrivers(a, b core.Design, aggA, aggB *reqtrace.Aggregate, comps []reqtrace.Component) *stats.Table {
	type driver struct {
		comp         reqtrace.Component
		meanA, meanB float64
	}
	ds := make([]driver, 0, len(comps))
	for _, c := range comps {
		ds = append(ds, driver{comp: c, meanA: aggA.ComponentEnergyMeanPJ(c), meanB: aggB.ComponentEnergyMeanPJ(c)})
	}
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	sort.SliceStable(ds, func(i, j int) bool {
		di, dj := abs(ds[i].meanB-ds[i].meanA), abs(ds[j].meanB-ds[j].meanA)
		if di != dj {
			return di > dj
		}
		return ds[i].comp < ds[j].comp
	})
	totalA, totalB := aggA.EnergyMeanPJ(), aggB.EnergyMeanPJ()
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Ranked energy drivers of the %v−%v difference (all workloads)", b, a),
		Header: []string{"rank", "component", fmt.Sprintf("%v pJ/req", a), fmt.Sprintf("%v pJ/req", b), "Δ pJ/req", "Δ% of total"},
	}
	for i, d := range ds {
		delta := d.meanB - d.meanA
		pct := 0.0
		if totalA > 0 {
			pct = 100 * delta / totalA
		}
		tbl.AddRow(fmt.Sprintf("%d", i+1), d.comp.String(),
			fmt.Sprintf("%.1f", d.meanA), fmt.Sprintf("%.1f", d.meanB),
			fmt.Sprintf("%+.1f", delta), fmt.Sprintf("%+.2f%%", pct))
	}
	relTotal := 0.0
	if totalA > 0 {
		relTotal = 100 * (totalB - totalA) / totalA
	}
	tbl.Caption = fmt.Sprintf("%v mean attributed energy %.1f pJ/req vs %v %.1f pJ/req (%+.1f%%).",
		b, totalB, a, totalA, relTotal)
	return tbl
}
