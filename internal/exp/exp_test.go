package exp

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestMakeGeneratorScalesFootprint(t *testing.T) {
	cfg := tinyConfig() // 64 MB memory: scale = 1/128
	gen, err := MakeGenerator(cfg, "mcf", 0)
	if err != nil {
		t.Fatal(err)
	}
	span := CoreSpan(cfg)
	var in workload.Instr
	for i := 0; i < 100000; i++ {
		gen.Next(&in)
		if in.Mem && in.Addr >= span {
			t.Fatalf("address %#x outside core span %#x", in.Addr, span)
		}
	}
}

func TestMakeGeneratorDesignIndependent(t *testing.T) {
	// The stream must not depend on anything but (cfg.Seed, core index),
	// so every design sees identical instructions.
	cfg := tinyConfig()
	a, _ := MakeGenerator(cfg, "soplex", 0)
	b, _ := MakeGenerator(cfg, "soplex", 0)
	var ia, ib workload.Instr
	for i := 0; i < 50000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestCoreSpanRowAlignedAndDisjoint(t *testing.T) {
	cfg := tinyConfig()
	cfg.Cores = 4
	span := CoreSpan(cfg)
	geom := cfg.Geometry()
	if span%geom.RowBytes() != 0 {
		t.Fatal("span not row-aligned")
	}
	if span*4 > geom.Capacity()-core.TableReserveBytes(geom) {
		t.Fatal("core spans overlap the table reserve")
	}
}

func TestProfilePassCoversFootprint(t *testing.T) {
	cfg := tinyConfig()
	prof, err := ProfilePass(cfg, []string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rows() == 0 {
		t.Fatal("profile empty")
	}
	// All profiled rows must fall inside the usable region.
	geom := cfg.Geometry()
	usableRows := (geom.Capacity() - core.TableReserveBytes(geom)) / geom.RowBytes()
	_ = usableRows
	if uint64(prof.Rows()) > geom.TotalRows() {
		t.Fatal("profiled more rows than exist")
	}
}

func TestSessionBaselineCached(t *testing.T) {
	cfg := tinyConfig()
	s := NewSession(cfg)
	a, err := s.Baseline([]string{"libquantum"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Baseline([]string{"libquantum"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("baseline not cached (distinct results)")
	}
}

func TestSessionCachedMemoizes(t *testing.T) {
	cfg := tinyConfig()
	s := NewSession(cfg)
	a, err := s.Cached(cfg, core.FS, []string{"libquantum"})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Cached(cfg, core.FS, []string{"libquantum"})
	if a != b {
		t.Fatal("identical runs not memoized")
	}
	// A different knob must produce a fresh run.
	cfg2 := cfg
	cfg2.GroupSize = 16
	c, err := s.Cached(cfg2, core.DAS, []string{"libquantum"})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Cached(cfg, core.DAS, []string{"libquantum"})
	if c == d {
		t.Fatal("different group sizes shared a cache entry")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	cfg := tinyConfig()
	r1, err := NewSession(cfg).Run(cfg, core.DAS, []string{"omnetpp"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewSession(cfg).Run(cfg, core.DAS, []string{"omnetpp"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PerCore[0].IPC != r2.PerCore[0].IPC ||
		r1.Promotions != r2.Promotions ||
		r1.Access != r2.Access ||
		r1.Events != r2.Events {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", r1, r2)
	}
}

func TestStaticDesignRequiresAssignment(t *testing.T) {
	cfg := tinyConfig()
	if _, _, err := Build(cfg, core.SAS, []string{"mcf"}, nil, false); err == nil {
		t.Fatal("SAS accepted without a static assignment")
	}
}

func TestBenchmarkCountMustMatchCores(t *testing.T) {
	cfg := tinyConfig()
	if _, _, err := Build(cfg, core.Standard, []string{"mcf", "lbm"}, nil, false); err == nil {
		t.Fatal("2 benchmarks on 1 core accepted")
	}
}

func TestMultiCoreRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 100_000
	s := NewSession(cfg)
	res, err := s.Baseline([]string{"libquantum", "leslie3d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("%d per-core results", len(res.PerCore))
	}
	for i, c := range res.PerCore {
		if c.IPC <= 0 {
			t.Fatalf("core %d (%s) IPC %v", i, c.Benchmark, c.IPC)
		}
		if c.Retired != 80_000 { // quota - warmup
			t.Fatalf("core %d measured %d instructions", i, c.Retired)
		}
	}
}

func TestSpeedupMath(t *testing.T) {
	base := &Result{PerCore: []CoreResult{{IPC: 1.0}, {IPC: 2.0}}}
	fast := &Result{PerCore: []CoreResult{{IPC: 1.1}, {IPC: 2.4}}}
	// mean of 1.10 and 1.20 = 1.15
	if s := fast.Speedup(base); s < 1.1499 || s > 1.1501 {
		t.Fatalf("speedup %v, want 1.15", s)
	}
	if imp := fast.Improvement(base); imp < 14.99 || imp > 15.01 {
		t.Fatalf("improvement %v, want 15", imp)
	}
}

func TestTableFiguresRender(t *testing.T) {
	cfg := tinyConfig()
	f1 := Table1(cfg)
	if !strings.Contains(f1.Render(), "FR-FCFS") {
		t.Fatal("Table 1 missing controller row")
	}
	f2 := Table2()
	out := f2.Render()
	for _, name := range workload.AllSingleNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 2 missing %s", name)
		}
	}
	if !strings.Contains(out, "M8") {
		t.Fatal("Table 2 missing mixes")
	}
	fa := AreaFigure()
	if !strings.Contains(fa.Render(), "6.6%") {
		t.Fatal("area figure missing paper reference value")
	}
}

func TestConfigDesignsProduceDifferentTiming(t *testing.T) {
	// End-to-end sanity at tiny scale: FS must beat Standard.
	cfg := tinyConfig()
	s := NewSession(cfg)
	_, imp, err := s.RunVs(cfg, core.FS, []string{"soplex"})
	if err != nil {
		t.Fatal(err)
	}
	if imp <= 0 {
		t.Fatalf("FS-DRAM improvement %.2f%%, must be positive", imp)
	}
}

func TestWatchdogMessage(t *testing.T) {
	// The watchdog path is not reachable with healthy configurations;
	// this just pins the deadlock error path of Run on a drained engine.
	cfg := tinyConfig()
	sys, _, err := Build(cfg, core.Standard, []string{"mcf"}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Steal the cores' tickers by draining the engine before Run.
	sys.Eng.Drain()
	// Run starts cores (scheduling ticks), so it will still work; this
	// only checks Run returns cleanly on a normal tiny run.
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func tinyMixConfig() config.Config {
	c := tinyConfig()
	c.Cores = 4
	c.InstrPerCore = 60_000
	return c
}

func TestMixRunAllDesigns(t *testing.T) {
	cfg := tinyMixConfig()
	s := NewSession(cfg)
	mix, err := workload.LookupMix("M5")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range core.AllDesigns() {
		res, err := s.Cached(cfg, d, mix.Benchmarks)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(res.PerCore) != 4 {
			t.Fatalf("%v: %d cores", d, len(res.PerCore))
		}
	}
}
