package exp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
)

// The pooled-machine byte-identity suite: a machine checked out of a
// SystemPool and rewound with System.Reset must be observationally
// indistinguishable from a fresh Build — same DRAM command stream (the
// strongest observable), same figure bytes, across all six designs,
// open and closed page, multicore mixes, and both execution engines.

// caseConfig builds the run configuration for a stream case, matching
// streamDigest exactly so pooled digests compare against the committed
// fresh-run goldens.
func caseConfig(sc streamCase, parallel int) config.Config {
	cfg := tinyConfig()
	cfg.InstrPerCore = 60_000
	cfg.Cores = len(sc.benchmarks)
	cfg.Seed = sc.seed
	cfg.ClosedPage = sc.closedPage
	cfg.Parallel = parallel
	return cfg
}

// caseStatic computes the static assignment a case needs (nil for
// dynamic designs).
func caseStatic(t *testing.T, cfg config.Config, sc streamCase) *core.StaticAssignment {
	t.Helper()
	if !sc.design.Static() {
		return nil
	}
	prof, err := ProfilePass(cfg, sc.benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	return core.BuildStaticAssignment(prof, cfg.Geometry(), cfg.FastDenom)
}

// digestRun attaches a command log to sys, runs it, and returns the
// command count and FNV-1a digest over the raw tuple stream (same
// encoding as streamDigest).
func digestRun(t *testing.T, sys *System, name string) (uint64, uint64) {
	t.Helper()
	h := fnv.New64a()
	var buf [48]byte
	var count uint64
	sys.Dev.SetCommandLog(func(at sim.Time, kind dram.CommandKind, channel, rank, bank, row int) {
		binary.LittleEndian.PutUint64(buf[0:], uint64(at))
		binary.LittleEndian.PutUint64(buf[8:], uint64(kind))
		binary.LittleEndian.PutUint64(buf[16:], uint64(int64(channel)))
		binary.LittleEndian.PutUint64(buf[24:], uint64(int64(rank)))
		binary.LittleEndian.PutUint64(buf[32:], uint64(int64(bank)))
		binary.LittleEndian.PutUint64(buf[40:], uint64(int64(row)))
		h.Write(buf[:])
		count++
	})
	if _, err := sys.Run(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return count, h.Sum64()
}

// TestPooledRunsByteIdentical is the tentpole's non-negotiable: for
// every stream case (all six designs, closed-page, a multicore mix) and
// both execution engines, a machine that already ran a *different*
// sweep point — different seed, flipped page policy, perturbed
// migration latency — then went through Put/Get/Reset must replay the
// target point with the exact command count and FNV-1a stream digest a
// fresh Build produces.
func TestPooledRunsByteIdentical(t *testing.T) {
	for _, sc := range streamCases() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, parallel := range []int{0, 2} {
				freshN, freshSum := streamDigest(t, sc, parallel)

				// Dirty the machine with a same-shape sweep variant so Reset
				// must scrub real state, not a pristine build.
				dirty := caseConfig(sc, parallel)
				dirty.Seed = sc.seed + 1
				dirty.ClosedPage = !sc.closedPage
				dirty.MigrationLatencyNS += 20
				pool := NewSystemPool(0)
				sys, _, err := Build(dirty, sc.design, sc.benchmarks, caseStatic(t, dirty, sc), false)
				if err != nil {
					t.Fatal(err)
				}
				sys.pool = pool // keep engines attached across the run
				if _, err := sys.Run(); err != nil {
					t.Fatalf("dirty run: %v", err)
				}
				pool.Put(sys)

				cfg := caseConfig(sc, parallel)
				got := pool.Get(&cfg, sc.design)
				if got == nil {
					t.Fatalf("parallel=%d: pool miss for same-shape config", parallel)
				}
				if got != sys {
					t.Fatalf("parallel=%d: pool returned a different machine", parallel)
				}
				if _, err := got.Reset(cfg, sc.design, sc.benchmarks, caseStatic(t, cfg, sc), false); err != nil {
					t.Fatalf("parallel=%d: Reset: %v", parallel, err)
				}
				n, sum := digestRun(t, got, sc.name)
				if n != freshN || sum != freshSum {
					t.Errorf("parallel=%d: pooled run diverged: commands=%d fnv64a=%016x, fresh commands=%d fnv64a=%016x",
						parallel, n, sum, freshN, freshSum)
				}
				pool.Drain()
			}
		})
	}
}

// TestPooledFigureBytesMatchFresh pins the user-facing observable:
// Figure 7a rendered by pool-disabled sessions and by two sessions
// sharing one pool (the second running entirely on recycled machines)
// must produce identical bytes.
func TestPooledFigureBytesMatchFresh(t *testing.T) {
	// Two benchmarks keep the three renders affordable under -race; the
	// full-matrix stream digests above cover the remaining designs.
	render := func(s *Session) string {
		s.Benchmarks = []string{"mcf", "soplex"}
		fig, err := s.Figure("7a")
		if err != nil {
			t.Fatal(err)
		}
		return fig.Render()
	}
	fresh := NewSession(tinyConfig())
	fresh.DisablePool = true
	want := render(fresh)

	pool := NewSystemPool(0)
	for i := 0; i < 2; i++ {
		s := NewSession(tinyConfig())
		s.Pool = pool
		if got := render(s); got != want {
			t.Errorf("session %d: pooled figure bytes differ from fresh:\n--- fresh ---\n%s\n--- pooled ---\n%s", i, want, got)
		}
	}
	if st := pool.Stats(); st.Hits == 0 {
		t.Errorf("second pooled session never hit the pool: %+v", st)
	}
	pool.Drain()
}

// TestPooledTelemetryTimelineMatchesFresh closes the third identity
// surface the tentpole names: the merged metrics timeline and trace
// export of a run on a recycled machine must be byte-identical to a
// fresh build's — Registry.Reset and the reqtrace rings leave no
// residue.
func TestPooledTelemetryTimelineMatchesFresh(t *testing.T) {
	run := func(s *Session) (csv, trace string) {
		s.Benchmarks = []string{"mcf"}
		s.Observe = &ObserveOptions{Metrics: true, Trace: true, ReqTraceN: 3}
		if _, err := s.Fig7a(); err != nil {
			t.Fatal(err)
		}
		var csvBuf, traceBuf bytes.Buffer
		if err := s.WriteTimelineCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteTrace(&traceBuf); err != nil {
			t.Fatal(err)
		}
		return csvBuf.String(), traceBuf.String()
	}
	fresh := NewSession(tinyConfig())
	fresh.DisablePool = true
	wantCSV, wantTrace := run(fresh)

	pool := NewSystemPool(0)
	warm := NewSession(tinyConfig())
	warm.Pool = pool
	run(warm) // fill the pool
	pooled := NewSession(tinyConfig())
	pooled.Pool = pool
	gotCSV, gotTrace := run(pooled)
	if st := pool.Stats(); st.Hits == 0 {
		t.Fatalf("second session never hit the pool: %+v", st)
	}
	if gotCSV != wantCSV {
		t.Errorf("pooled timeline CSV differs from fresh (%d vs %d bytes)", len(gotCSV), len(wantCSV))
	}
	if gotTrace != wantTrace {
		t.Errorf("pooled trace JSON differs from fresh (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
	pool.Drain()
}

// TestPoolCapFallback pins the bounded-pool degradation path: with a
// budget too small for any machine, every checkin drops, every checkout
// misses, and runs still succeed by building fresh.
func TestPoolCapFallback(t *testing.T) {
	pool := NewSystemPool(1) // smaller than any machine's footprint
	s := NewSession(tinyConfig())
	s.Pool = pool

	cfg := s.Cfg
	var results [2]string
	for i := range results {
		res, err := s.Run(cfg, core.DAS, []string{"mcf"})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = fmt.Sprintf("%+v", res)
	}
	if results[0] != results[1] {
		t.Errorf("fresh-fallback runs diverged:\n%s\n%s", results[0], results[1])
	}
	st := pool.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.Drops != 2 {
		t.Errorf("stats = %+v, want Hits=0 Misses=2 Drops=2", st)
	}
	if st.Machines != 0 || st.CurrentBytes != 0 {
		t.Errorf("over-budget pool retained machines: %+v", st)
	}
	if st.HitRate() != 0 {
		t.Errorf("HitRate = %v, want 0", st.HitRate())
	}
}

// TestPoolDisabled pins that DisablePool wins over an explicit Pool:
// the session must never touch it.
func TestPoolDisabled(t *testing.T) {
	pool := NewSystemPool(0)
	s := NewSession(tinyConfig())
	s.Pool = pool
	s.DisablePool = true
	if _, err := s.Run(s.Cfg, core.DAS, []string{"mcf"}); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st != (PoolStats{}) {
		t.Errorf("disabled session touched the pool: %+v", st)
	}
}

// TestPoolConcurrentCheckout is the -race stress: goroutines hammer one
// shared pool with the full checkout/reset/run/checkin cycle and the
// lifetime accounting must stay consistent.
func TestPoolConcurrentCheckout(t *testing.T) {
	const workers, iters = 4, 3
	pool := NewSystemPool(0)
	cfg := tinyConfig()
	cfg.InstrPerCore = 20_000
	benchmarks := []string{"mcf"}

	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				run := cfg
				run.Seed = uint64(w*iters + i + 1) // distinct sweep points, one shape
				sys := pool.Get(&run, core.DAS)
				if sys == nil {
					var err error
					sys, _, err = Build(run, core.DAS, benchmarks, nil, false)
					if err != nil {
						errc <- err
						return
					}
					sys.pool = pool
				} else if _, err := sys.Reset(run, core.DAS, benchmarks, nil, false); err != nil {
					errc <- err
					return
				}
				if _, err := sys.Run(); err != nil {
					errc <- err
					return
				}
				pool.Put(sys)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Errorf("checkouts = %d hits + %d misses, want %d total", st.Hits, st.Misses, workers*iters)
	}
	if st.Machines > workers {
		t.Errorf("%d machines pooled, but only %d were ever concurrent", st.Machines, workers)
	}
	if st.CurrentBytes > st.HighWaterBytes {
		t.Errorf("CurrentBytes %d exceeds HighWaterBytes %d", st.CurrentBytes, st.HighWaterBytes)
	}
	pool.Drain()
	if st = pool.Stats(); st.Machines != 0 || st.CurrentBytes != 0 {
		t.Errorf("Drain left machines behind: %+v", st)
	}
}
