package exp

import (
	"strings"
	"testing"
)

// figSession returns a session restricted to two benchmarks and one mix
// at tiny scale so figure drivers run in test time.
func figSession() *Session {
	cfg := tinyConfig()
	cfg.InstrPerCore = 80_000
	s := NewSession(cfg)
	s.Benchmarks = []string{"libquantum", "soplex"}
	s.Mixes = []string{"M5"}
	return s
}

func TestFig7aDriver(t *testing.T) {
	s := figSession()
	fig, err := s.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	for _, want := range []string{"libquantum", "soplex", "gmean", "DAS-DRAM", "FS-DRAM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig7a missing %q:\n%s", want, out)
		}
	}
	// 2 workloads + gmean rows.
	if got := len(fig.Tables[0].Rows); got != 3 {
		t.Fatalf("Fig7a has %d rows", got)
	}
}

func TestFig7bcDriversShareRuns(t *testing.T) {
	s := figSession()
	if _, err := s.Fig7a(); err != nil {
		t.Fatal(err)
	}
	before := len(s.results)
	if _, err := s.Fig7b(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig7c(); err != nil {
		t.Fatal(err)
	}
	if len(s.results) != before {
		t.Fatalf("7b/7c ran %d extra simulations; they must reuse 7a's", len(s.results)-before)
	}
}

func TestFig7dDriver(t *testing.T) {
	s := figSession()
	s.Cfg.InstrPerCore = 50_000
	fig, err := s.Fig7d()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Render(), "M5") {
		t.Fatal("Fig7d missing mix row")
	}
}

func TestFig8Driver(t *testing.T) {
	s := figSession()
	s.Benchmarks = []string{"soplex"}
	fig, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 3 {
		t.Fatalf("Fig8 must have three panels, got %d", len(fig.Tables))
	}
	out := fig.Render()
	for _, want := range []string{"thr=1", "thr=8", "miss ratio", "promotions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig8 missing %q", want)
		}
	}
}

func TestFig9Drivers(t *testing.T) {
	s := figSession()
	s.Benchmarks = []string{"libquantum"}
	for name, f := range map[string]func() (*Figure, error){
		"9a": s.Fig9a, "9b": s.Fig9b, "9c": s.Fig9c, "9d": s.Fig9d,
	} {
		fig, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fig.Tables[0].Header) != 5 { // workload + 4 sweep points
			t.Fatalf("%s has %d columns", name, len(fig.Tables[0].Header))
		}
	}
}

func TestPowerFigureDriver(t *testing.T) {
	s := figSession()
	s.Benchmarks = []string{"libquantum"}
	fig, err := s.PowerFigure()
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	if !strings.Contains(out, "energy") && !strings.Contains(out, "Energy") {
		t.Fatalf("power figure missing energy caption:\n%s", out)
	}
	// Every cell must be a parseable ratio around 1.
	row := fig.Tables[0].Rows[0]
	if len(row) != 5 {
		t.Fatalf("power row has %d cells", len(row))
	}
}
