package exp

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure is one regenerated table or figure of the paper.
type Figure struct {
	ID     string
	Title  string
	Tables []*stats.Table

	// Perf is attached by Session.Measured. It is intentionally NOT part
	// of Render: figure text is golden output.
	Perf *Perf
}

// Render returns the figure as text.
func (f *Figure) Render() string {
	out := fmt.Sprintf("### %s — %s\n\n", f.ID, f.Title)
	for _, t := range f.Tables {
		out += t.Render() + "\n"
	}
	return out
}

// singles returns the benchmark list a session's figures iterate: the
// session's Benchmarks override if set, else the full Table 2 catalog.
func (s *Session) singles() []string {
	if len(s.Benchmarks) > 0 {
		return s.Benchmarks
	}
	return workload.AllSingleNames()
}

// singleSets returns each single-programmed benchmark as its own set.
func (s *Session) singleSets() [][]string {
	var sets [][]string
	for _, n := range s.singles() {
		sets = append(sets, []string{n})
	}
	return sets
}

// mixSets returns the M1-M8 benchmark lists (or the session's Mixes
// override).
func (s *Session) mixSets() ([][]string, []string) {
	mixes := workload.Mixes()
	if len(s.Mixes) > 0 {
		mixes = nil
		for _, name := range s.Mixes {
			m, err := workload.LookupMix(name)
			if err == nil {
				mixes = append(mixes, m)
			}
		}
	}
	var sets [][]string
	var names []string
	for _, m := range mixes {
		sets = append(sets, m.Benchmarks)
		names = append(names, m.Name)
	}
	return sets, names
}

// multiConfig adapts the session config for 4-core runs.
func multiConfig(cfg config.Config) config.Config {
	cfg.Cores = 4
	return cfg
}

// comparisonDesigns are the five non-baseline designs of Figure 7.
var comparisonDesigns = []core.Design{core.SAS, core.CHARM, core.DAS, core.DASFM, core.FS}

// improvementFigure builds a Fig 7a/7d-style table: one row per
// workload set, one column per design, gmean last.
func (s *Session) improvementFigure(id, title string, cfg config.Config, sets [][]string, rowNames []string) (*Figure, error) {
	tbl := &stats.Table{
		Title:  title,
		Header: []string{"workload", "SAS-DRAM", "CHARM", "DAS-DRAM", "DAS-DRAM(FM)", "FS-DRAM"},
	}
	ratios := make(map[core.Design][]float64)
	for i, set := range sets {
		row := []string{rowNames[i]}
		base, err := s.Baseline(set)
		if err != nil {
			return nil, err
		}
		for _, d := range comparisonDesigns {
			res, err := s.Cached(cfg, d, set)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", rowNames[i], d, err)
			}
			ratio := res.Speedup(base)
			ratios[d] = append(ratios[d], ratio)
			row = append(row, fmt.Sprintf("%+.2f%%", (ratio-1)*100))
		}
		tbl.AddRow(row...)
	}
	gm := []string{"gmean"}
	for _, d := range comparisonDesigns {
		imp, err := stats.GmeanImprovementErr(ratios[d])
		if err != nil {
			return nil, fmt.Errorf("%s: %v gmean: %w", id, d, err)
		}
		gm = append(gm, fmt.Sprintf("%+.2f%%", imp))
	}
	tbl.AddRow(gm...)
	tbl.Caption = "Performance improvement over Standard (homogeneous) DRAM."
	return &Figure{ID: id, Title: title, Tables: []*stats.Table{tbl}}, nil
}

// FigureNames lists every name Figure dispatches, in presentation
// order. "tables" and "all" are the dasbench aliases expanded by the
// CLI, not dispatchable names, so they are absent here.
func FigureNames() []string {
	return []string{"table1", "table2", "area",
		"7a", "7b", "7c", "7d", "7e", "7f", "8", "9a", "9b", "9c", "9d",
		"power", "energy", "faults"}
}

// Figure dispatches a figure name to its driver. It is the single entry
// point shared by the CLI (dasbench -fig) and the serving layer
// (dasserve requests), so both expose exactly the same catalog.
func (s *Session) Figure(name string) (*Figure, error) {
	switch name {
	case "table1":
		return Table1(s.Cfg), nil
	case "table2":
		return Table2(), nil
	case "area":
		return AreaFigure(), nil
	case "7a":
		return s.Fig7a()
	case "7b":
		return s.Fig7b()
	case "7c":
		return s.Fig7c()
	case "7d":
		return s.Fig7d()
	case "7e":
		return s.Fig7e()
	case "7f":
		return s.Fig7f()
	case "8":
		return s.Fig8()
	case "9a":
		return s.Fig9a()
	case "9b":
		return s.Fig9b()
	case "9c":
		return s.Fig9c()
	case "9d":
		return s.Fig9d()
	case "power":
		return s.PowerFigure()
	case "energy":
		return s.EnergyFigure()
	case "faults":
		return s.FaultSweep()
	default:
		return nil, fmt.Errorf("unknown figure %q", name)
	}
}

// DesignFigure runs one design over one benchmark set (one core per
// benchmark) and renders it against the Standard baseline: the smallest
// servable unit of work, and the request shape dasserve caches most
// often.
func (s *Session) DesignFigure(design core.Design, benchmarks []string) (*Figure, error) {
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("exp: design run needs at least one benchmark")
	}
	base, err := s.Baseline(benchmarks)
	if err != nil {
		return nil, err
	}
	res, err := s.Cached(s.Cfg, design, benchmarks)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  fmt.Sprintf("%v over %s", design, wkey(benchmarks)),
		Header: []string{"core", "benchmark", "IPC", "improvement", "rb", "fast", "slow"},
	}
	rb, fast, slow := res.Access.Fractions()
	for i, c := range res.PerCore {
		imp := (c.IPC/base.PerCore[i].IPC - 1) * 100
		loc := []string{"", "", ""}
		if i == 0 { // access locations are system-wide, print once
			loc = []string{stats.Percent(rb), stats.Percent(fast), stats.Percent(slow)}
		}
		tbl.AddRow(fmt.Sprintf("%d", i), c.Benchmark,
			fmt.Sprintf("%.3f", c.IPC), fmt.Sprintf("%+.2f%%", imp),
			loc[0], loc[1], loc[2])
	}
	if design != core.Standard {
		tbl.AddRow("", "mean", "", fmt.Sprintf("%+.2f%%", res.Improvement(base)), "", "", "")
	}
	tbl.Caption = "Improvement is per-core IPC versus the Standard baseline of the same benchmarks."
	return &Figure{ID: "Run", Title: tbl.Title, Tables: []*stats.Table{tbl}}, nil
}

// Fig7a regenerates Figure 7a: single-programmed performance
// improvements.
func (s *Session) Fig7a() (*Figure, error) {
	return s.improvementFigure("Fig7a", "Single-programming performance improvements",
		s.Cfg, s.singleSets(), s.singles())
}

// Fig7d regenerates Figure 7d: multi-programmed performance
// improvements over the M1-M8 mixes.
func (s *Session) Fig7d() (*Figure, error) {
	sets, names := s.mixSets()
	return s.improvementFigure("Fig7d", "Multi-programming performance improvements",
		multiConfig(s.Cfg), sets, names)
}

// behaviourFigure builds a Fig 7b/7e-style table: MPKI, PPKM and
// footprint per workload under DAS-DRAM.
func (s *Session) behaviourFigure(id, title string, cfg config.Config, sets [][]string, rowNames []string) (*Figure, error) {
	tbl := &stats.Table{
		Title:  title,
		Header: []string{"workload", "MPKI", "PPKM", "footprint(MB)"},
	}
	for i, set := range sets {
		res, err := s.Cached(cfg, core.DAS, set)
		if err != nil {
			return nil, err
		}
		var mpki, ppkm, fp float64
		for _, c := range res.PerCore {
			mpki += c.MPKI
			ppkm += c.PPKM
			fp += c.FootprintMB
		}
		n := float64(len(res.PerCore))
		tbl.AddRow(rowNames[i], fmt.Sprintf("%.1f", mpki/n), fmt.Sprintf("%.1f", ppkm/n),
			fmt.Sprintf("%.0f", fp))
	}
	tbl.Caption = "Measured under DAS-DRAM; MPKI/PPKM are per-core means, footprint is the set total."
	return &Figure{ID: id, Title: title, Tables: []*stats.Table{tbl}}, nil
}

// Fig7b regenerates Figure 7b: single-programmed MPKI / PPKM /
// footprints.
func (s *Session) Fig7b() (*Figure, error) {
	return s.behaviourFigure("Fig7b", "Single-programming MPKI, PPKM and footprints",
		s.Cfg, s.singleSets(), s.singles())
}

// Fig7e regenerates Figure 7e: multi-programmed MPKI / PPKM /
// footprints.
func (s *Session) Fig7e() (*Figure, error) {
	sets, names := s.mixSets()
	return s.behaviourFigure("Fig7e", "Multi-programming MPKI, PPKM and footprints",
		multiConfig(s.Cfg), sets, names)
}

// locationFigure builds a Fig 7c/7f-style table: access-location
// distribution for a static design (SAS) and the dynamic design (DAS).
func (s *Session) locationFigure(id, title string, cfg config.Config, sets [][]string, rowNames []string) (*Figure, error) {
	tbl := &stats.Table{
		Title: title,
		Header: []string{"workload",
			"static rb", "static fast", "static slow",
			"dynamic rb", "dynamic fast", "dynamic slow"},
	}
	for i, set := range sets {
		sas, err := s.Cached(cfg, core.SAS, set)
		if err != nil {
			return nil, err
		}
		das, err := s.Cached(cfg, core.DAS, set)
		if err != nil {
			return nil, err
		}
		srb, sf, ss := sas.Access.Fractions()
		drb, df, ds := das.Access.Fractions()
		tbl.AddRow(rowNames[i],
			stats.Percent(srb), stats.Percent(sf), stats.Percent(ss),
			stats.Percent(drb), stats.Percent(df), stats.Percent(ds))
	}
	tbl.Caption = "Share of demand DRAM accesses served by the row buffer, fast level and slow level."
	return &Figure{ID: id, Title: title, Tables: []*stats.Table{tbl}}, nil
}

// Fig7c regenerates Figure 7c: single-programmed access locations.
func (s *Session) Fig7c() (*Figure, error) {
	return s.locationFigure("Fig7c", "Single-programming access locations (static vs dynamic)",
		s.Cfg, s.singleSets(), s.singles())
}

// Fig7f regenerates Figure 7f: multi-programmed access locations.
func (s *Session) Fig7f() (*Figure, error) {
	sets, names := s.mixSets()
	return s.locationFigure("Fig7f", "Multi-programming access locations (static vs dynamic)",
		multiConfig(s.Cfg), sets, names)
}

// FilterThresholds is the Figure 8 sweep.
var FilterThresholds = []int{1, 2, 4, 8}

// Fig8 regenerates Figure 8: filtering-policy sweep — performance
// improvement (8a), fast-level miss ratio (8b) and promotions per
// access (8c) per threshold.
func (s *Session) Fig8() (*Figure, error) {
	names := s.singles()
	perf := &stats.Table{Title: "Fig 8a: performance improvement", Header: []string{"workload"}}
	miss := &stats.Table{Title: "Fig 8b: fast-level miss ratio", Header: []string{"workload"}}
	prom := &stats.Table{Title: "Fig 8c: row promotions / memory access", Header: []string{"workload"}}
	for _, th := range FilterThresholds {
		col := fmt.Sprintf("thr=%d", th)
		perf.Header = append(perf.Header, col)
		miss.Header = append(miss.Header, col)
		prom.Header = append(prom.Header, col)
	}
	ratios := make(map[int][]float64)
	for _, name := range names {
		set := []string{name}
		base, err := s.Baseline(set)
		if err != nil {
			return nil, err
		}
		pRow, mRow, cRow := []string{name}, []string{name}, []string{name}
		for _, th := range FilterThresholds {
			cfg := s.Cfg
			cfg.FilterThreshold = th
			res, err := s.Cached(cfg, core.DAS, set)
			if err != nil {
				return nil, err
			}
			ratio := res.Speedup(base)
			ratios[th] = append(ratios[th], ratio)
			pRow = append(pRow, fmt.Sprintf("%+.2f%%", (ratio-1)*100))
			mRow = append(mRow, stats.Percent(res.Access.FastLevelMissRatio()))
			cRow = append(cRow, stats.Percent(res.PromPerAccess))
		}
		perf.AddRow(pRow...)
		miss.AddRow(mRow...)
		prom.AddRow(cRow...)
	}
	gm := []string{"gmean"}
	for _, th := range FilterThresholds {
		imp, err := stats.GmeanImprovementErr(ratios[th])
		if err != nil {
			return nil, fmt.Errorf("Fig8: threshold %d gmean: %w", th, err)
		}
		gm = append(gm, fmt.Sprintf("%+.2f%%", imp))
	}
	perf.AddRow(gm...)
	return &Figure{
		ID:     "Fig8",
		Title:  "Filtering policies for row promotion",
		Tables: []*stats.Table{perf, miss, prom},
	}, nil
}

// sweepFigure runs DAS over single benchmarks for each variant config.
func (s *Session) sweepFigure(id, title string, variants []config.Config, colNames []string) (*Figure, error) {
	names := s.singles()
	tbl := &stats.Table{Title: title, Header: append([]string{"workload"}, colNames...)}
	ratios := make([][]float64, len(variants))
	for _, name := range names {
		set := []string{name}
		base, err := s.Baseline(set)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for vi, cfg := range variants {
			res, err := s.Cached(cfg, core.DAS, set)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, colNames[vi], err)
			}
			ratio := res.Speedup(base)
			ratios[vi] = append(ratios[vi], ratio)
			row = append(row, fmt.Sprintf("%+.2f%%", (ratio-1)*100))
		}
		tbl.AddRow(row...)
	}
	gm := []string{"gmean"}
	for vi := range variants {
		imp, err := stats.GmeanImprovementErr(ratios[vi])
		if err != nil {
			return nil, fmt.Errorf("%s: variant %d gmean: %w", id, vi, err)
		}
		gm = append(gm, fmt.Sprintf("%+.2f%%", imp))
	}
	tbl.AddRow(gm...)
	return &Figure{ID: id, Title: title, Tables: []*stats.Table{tbl}}, nil
}

// TagCachePaperKB is the Figure 9a sweep in the paper's full-scale
// capacities; the harness scales them with simulated memory.
var TagCachePaperKB = []int{32, 64, 128, 256}

// Fig9a regenerates Figure 9a: translation cache capacity sensitivity.
func (s *Session) Fig9a() (*Figure, error) {
	scale := s.Cfg.MemoryScale()
	var variants []config.Config
	var cols []string
	for _, kb := range TagCachePaperKB {
		cfg := s.Cfg
		scaled := int(float64(kb) * scale)
		if scaled < 1 {
			scaled = 1
		}
		cfg.TagCacheKB = scaled
		variants = append(variants, cfg)
		cols = append(cols, fmt.Sprintf("%dKB(=%dKB@8GB)", scaled, kb))
	}
	return s.sweepFigure("Fig9a", "Translation cache capacities", variants, cols)
}

// GroupSizes is the Figure 9b sweep.
var GroupSizes = []int{8, 16, 32, 64}

// Fig9b regenerates Figure 9b: migration group size sensitivity.
func (s *Session) Fig9b() (*Figure, error) {
	var variants []config.Config
	var cols []string
	for _, g := range GroupSizes {
		cfg := s.Cfg
		cfg.GroupSize = g
		variants = append(variants, cfg)
		cols = append(cols, fmt.Sprintf("%d-row", g))
	}
	return s.sweepFigure("Fig9b", "Migration group sizes", variants, cols)
}

// FastRatios is the Figure 9c/9d sweep (denominators of the fast-level
// capacity ratio).
var FastRatios = []int{32, 16, 8, 4}

// fig9ratio builds Figure 9c (random) or 9d (LRU).
func (s *Session) fig9ratio(id, repl string) (*Figure, error) {
	var variants []config.Config
	var cols []string
	for _, d := range FastRatios {
		cfg := s.Cfg
		cfg.FastDenom = d
		cfg.Replacement = repl
		variants = append(variants, cfg)
		cols = append(cols, fmt.Sprintf("1/%d", d))
	}
	title := fmt.Sprintf("Fast-level capacity ratios, %s replacement", repl)
	return s.sweepFigure(id, title, variants, cols)
}

// Fig9c regenerates Figure 9c: fast-level ratios with random
// replacement.
func (s *Session) Fig9c() (*Figure, error) { return s.fig9ratio("Fig9c", "random") }

// Fig9d regenerates Figure 9d: fast-level ratios with LRU replacement.
func (s *Session) Fig9d() (*Figure, error) { return s.fig9ratio("Fig9d", "lru") }

// PowerFigure regenerates the Section 7.7 discussion as a table: the
// relative DRAM array-energy proxy of each design.
func (s *Session) PowerFigure() (*Figure, error) {
	names := s.singles()
	tbl := &stats.Table{
		Title:  "Relative DRAM access-energy proxy (Standard = 1.00)",
		Header: []string{"workload", "SAS-DRAM", "CHARM", "DAS-DRAM", "FS-DRAM"},
	}
	designs := []core.Design{core.SAS, core.CHARM, core.DAS, core.FS}
	for _, name := range names {
		set := []string{name}
		base, err := s.Baseline(set)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, d := range designs {
			res, err := s.Cached(s.Cfg, d, set)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.EnergyProxy/base.EnergyProxy))
		}
		tbl.AddRow(row...)
	}
	tbl.Caption = "Energy proxy: slow activate-restore cycle = 1, fast cycle = 0.45, column burst = 0.25, migration = 4 (Section 7.7)."
	return &Figure{ID: "Power", Title: "Power implications (Section 7.7)", Tables: []*stats.Table{tbl}}, nil
}

// energyDesigns is every design the energy figure compares, baseline
// first.
var energyDesigns = []core.Design{
	core.Standard, core.SAS, core.CHARM, core.DAS, core.DASFM, core.FS,
}

// energyDesignCols are the column headers matching energyDesigns.
var energyDesignCols = []string{
	"Standard", "SAS-DRAM", "CHARM", "DAS-DRAM", "DAS-DRAM(FM)", "FS-DRAM",
}

// EnergyFigure renders the perf-per-watt comparison of all six designs
// under the analytical energy model (internal/energy): instructions per
// microjoule of DRAM energy, energy-delay product relative to Standard,
// and a per-command pJ/instruction decomposition. Pure accounting over
// runs the other figures already share — rendering it never changes any
// command stream or figure byte.
func (s *Session) EnergyFigure() (*Figure, error) {
	names := s.singles()
	perWatt := &stats.Table{
		Title:  "Perf/watt: instructions per microjoule of DRAM energy",
		Header: append([]string{"workload"}, energyDesignCols...),
	}
	edp := &stats.Table{
		Title:  "Energy-delay product relative to Standard (lower is better)",
		Header: append([]string{"workload"}, energyDesignCols...),
	}
	ipuj := make(map[core.Design][]float64)
	edps := make(map[core.Design][]float64)
	// Per-design component accumulation (exact integer pJ) for the
	// decomposition table.
	sumE := make(map[core.Design]*energy.Breakdown)
	sumInstr := make(map[core.Design]uint64)
	for _, d := range energyDesigns {
		sumE[d] = &energy.Breakdown{}
	}
	for _, name := range names {
		set := []string{name}
		base, err := s.Baseline(set)
		if err != nil {
			return nil, err
		}
		baseEDP := float64(base.Energy.TotalPJ()) * base.SimulatedNS
		pRow, eRow := []string{name}, []string{name}
		for _, d := range energyDesigns {
			res, err := s.Cached(s.Cfg, d, set)
			if err != nil {
				return nil, fmt.Errorf("energy: %s/%v: %w", name, d, err)
			}
			uj := float64(res.Energy.TotalPJ()) / 1e6
			perUJ := 0.0
			if uj > 0 {
				perUJ = float64(res.InstrsTotal) / uj
			}
			rel := 0.0
			if baseEDP > 0 {
				rel = float64(res.Energy.TotalPJ()) * res.SimulatedNS / baseEDP
			}
			ipuj[d] = append(ipuj[d], perUJ)
			edps[d] = append(edps[d], rel)
			pRow = append(pRow, fmt.Sprintf("%.0f", perUJ))
			eRow = append(eRow, fmt.Sprintf("%.3f", rel))
			accumulateBreakdown(sumE[d], res.Energy)
			sumInstr[d] += res.InstrsTotal
		}
		perWatt.AddRow(pRow...)
		edp.AddRow(eRow...)
	}
	pGm, eGm := []string{"gmean"}, []string{"gmean"}
	for _, d := range energyDesigns {
		g, err := stats.GmeanErr(ipuj[d])
		if err != nil {
			return nil, fmt.Errorf("energy: %v instr/uJ gmean: %w", d, err)
		}
		pGm = append(pGm, fmt.Sprintf("%.0f", g))
		g, err = stats.GmeanErr(edps[d])
		if err != nil {
			return nil, fmt.Errorf("energy: %v EDP gmean: %w", d, err)
		}
		eGm = append(eGm, fmt.Sprintf("%.3f", g))
	}
	perWatt.AddRow(pGm...)
	edp.AddRow(eGm...)
	perWatt.Caption = "DRAM energy = per-command dynamic energy (bitline-length scaled) + background power over the simulated interval."
	edp.Caption = "EDP = total DRAM energy x simulated time, normalized to the Standard run of the same workload."

	decomp := &stats.Table{
		Title: "DRAM energy decomposition (pJ per instruction, summed over workloads)",
		Header: []string{"design", "act", "pre", "rd", "wr",
			"ref", "mig", "background", "total"},
	}
	for i, d := range energyDesigns {
		b := sumE[d]
		per := func(pj int64) string {
			if sumInstr[d] == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", float64(pj)/float64(sumInstr[d]))
		}
		decomp.AddRow(energyDesignCols[i],
			per(b.ActSlowPJ+b.ActFastPJ), per(b.PreSlowPJ+b.PreFastPJ),
			per(b.RdSlowPJ+b.RdFastPJ), per(b.WrSlowPJ+b.WrFastPJ),
			per(b.RefPJ), per(b.MigPJ), per(b.BackgroundPJ), per(b.TotalPJ()))
	}
	decomp.Caption = "Fast-subarray commands are cheaper per event (shorter bitlines); migrations and translation traffic add energy the latency figures do not show."
	return &Figure{
		ID:     "Energy",
		Title:  "Performance per watt (analytical energy model)",
		Tables: []*stats.Table{perWatt, edp, decomp},
	}, nil
}

// accumulateBreakdown adds b into dst field by field (exact integer pJ).
func accumulateBreakdown(dst *energy.Breakdown, b energy.Breakdown) {
	dst.ActSlowPJ += b.ActSlowPJ
	dst.ActFastPJ += b.ActFastPJ
	dst.PreSlowPJ += b.PreSlowPJ
	dst.PreFastPJ += b.PreFastPJ
	dst.RdSlowPJ += b.RdSlowPJ
	dst.RdFastPJ += b.RdFastPJ
	dst.WrSlowPJ += b.WrSlowPJ
	dst.WrFastPJ += b.WrFastPJ
	dst.RefPJ += b.RefPJ
	dst.MigPJ += b.MigPJ
	dst.BackgroundPJ += b.BackgroundPJ
}

// Table1 renders the system configuration (Table 1).
func Table1(cfg config.Config) *Figure {
	tbl := &stats.Table{Title: "System configuration", Header: []string{"component", "setting"}}
	tbl.AddRow("Processor", fmt.Sprintf("%d core(s), %.0f GHz, %d-wide, %d-entry ROB", cfg.Cores, cfg.CPUGHz, cfg.Width, cfg.ROB))
	tbl.AddRow("L1", fmt.Sprintf("%d KB, %d-way, %d cycles", cfg.L1KB, cfg.L1Assoc, cfg.L1Latency))
	tbl.AddRow("L2", fmt.Sprintf("%d KB, %d-way, +%d cycles", cfg.L2KB, cfg.L2Assoc, cfg.L2Latency))
	tbl.AddRow("LLC", fmt.Sprintf("%d KB shared, %d-way, +%d cycles", cfg.LLCKB, cfg.LLCAssoc, cfg.LLCLatency))
	tbl.AddRow("Controller", fmt.Sprintf("%d-entry window, open-page FR-FCFS", cfg.WindowSize))
	geom := cfg.Geometry()
	tbl.AddRow("DRAM", fmt.Sprintf("%d MB: %d channels x %d ranks x %d banks x %d rows x %d B rows",
		geom.Capacity()>>20, cfg.Channels, cfg.Ranks, cfg.Banks, cfg.RowsPerBank, geom.RowBytes()))
	tbl.AddRow("Timing (slow)", "tRCD 13.75 ns, tRC 48.75 ns (DDR3-1600)")
	tbl.AddRow("Timing (fast)", "tRCD 8.75 ns, tRC 25 ns")
	tbl.AddRow("Asym. DRAM", fmt.Sprintf("fast level 1/%d, %d-row groups, migration %.2f ns, tag cache %d KB, filter threshold %d, %s replacement",
		cfg.FastDenom, cfg.GroupSize, cfg.MigrationLatencyNS, cfg.TagCacheKB, cfg.FilterThreshold, cfg.Replacement))
	tbl.AddRow("Protocol", fmt.Sprintf("%d instructions/core, first %.0f%% warm-up", cfg.InstrPerCore, cfg.WarmupFrac*100))
	return &Figure{ID: "Table1", Title: "System configuration (Table 1)", Tables: []*stats.Table{tbl}}
}

// Table2 renders the workload list (Table 2).
func Table2() *Figure {
	single := &stats.Table{Title: "Single-programming workloads", Header: []string{"benchmark", "MPKI target", "footprint", "mixture"}}
	for _, p := range workload.Catalog() {
		mix := ""
		for _, c := range []struct {
			n string
			w float64
		}{{"local", p.LocalWeight}, {"stream", p.StreamWeight}, {"stride", p.StrideWeight}, {"hot", p.HotWeight}, {"chase", p.ChaseWeight}} {
			if c.w > 0 {
				mix += fmt.Sprintf("%s %.3f ", c.n, c.w)
			}
		}
		single.AddRow(p.Name, fmt.Sprintf("mem %.0f%%", p.MemFraction*100),
			fmt.Sprintf("%d MB", p.FootprintBytes>>20), mix)
	}
	multi := &stats.Table{Title: "Multi-programming workloads", Header: []string{"set", "benchmarks"}}
	for _, m := range workload.Mixes() {
		multi.AddRow(m.Name, fmt.Sprintf("%v", m.Benchmarks))
	}
	return &Figure{ID: "Table2", Title: "Target workloads (Table 2)", Tables: []*stats.Table{single, multi}}
}

// AreaFigure renders the Section 4.3 / 7.6 area numbers.
func AreaFigure() *Figure {
	tbl := &stats.Table{Title: "Die-area overheads", Header: []string{"design", "model", "paper"}}
	p := area.Default()
	tbl.AddRow("DAS-DRAM 1:2 reduced interleaving (fast ~1/8)", stats.Percent(p.Overhead()), "6.6%")
	if o, err := p.OverheadForCapacityRatio(4); err == nil {
		tbl.AddRow("DAS-DRAM fast = 1/4 capacity", stats.Percent(o), "11.3%")
	}
	if o, err := p.OverheadForCapacityRatio(16); err == nil {
		tbl.AddRow("DAS-DRAM fast = 1/16 capacity", stats.Percent(o), "-")
	}
	tbl.AddRow("TL-DRAM (128-row near segment)", stats.Percent(area.DefaultTLDRAM().Overhead()), "~24%")
	tbl.Caption = "Analytical model; the paper's 1/4 number grows sublinearly versus this linear-in-subarrays model."
	return &Figure{ID: "Area", Title: "Area overheads (Sections 4.3, 7.6)", Tables: []*stats.Table{tbl}}
}
