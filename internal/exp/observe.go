package exp

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/reqtrace"
)

// ObserveOptions selects what a session's runs record. The zero value
// records nothing; a Session with a nil Observe field (the default)
// builds completely uninstrumented systems, so the simulation hot path
// keeps its nil-telemetry fast path.
type ObserveOptions struct {
	// Metrics enables the per-run registry and its epoch timeline.
	Metrics bool
	// Trace enables Chrome trace-event recording (DRAM commands,
	// migrations, fault events on per-bank tracks).
	Trace bool
	// IntervalPS is the timeline epoch length in picoseconds of
	// simulated time (default DefaultIntervalPS). Snapshots are taken
	// from the host run loop at its existing observation stride, so the
	// effective boundary quantizes to that stride; recorded epoch times
	// are the actual simulated instants and stay deterministic.
	IntervalPS int64
	// ReqTraceN enables per-request flight recording: each core traces
	// one in ReqTraceN measured demand loads (1 = every load, 0 = off).
	// Which loads are sampled is derived from the workload seed and the
	// core id, so sampling is deterministic and never perturbs figures.
	ReqTraceN int
	// ShardProf merges the parallel engine's per-shard occupancy
	// profile (par.up.* / par.down.* wall-clock nanoseconds, epochs and
	// mailbox-depth counts) into the metrics snapshot. Off by default:
	// these are host wall-clock values, so enabling them intentionally
	// gives up the timeline's run-to-run byte identity (figure bytes
	// are unaffected either way). Requires Metrics; no-op on sequential
	// runs.
	ShardProf bool
}

// DefaultIntervalPS is the default timeline epoch: 100 µs of simulated
// time, a few dozen epochs for the default instruction quotas.
const DefaultIntervalPS = 100_000_000

// Observer is one run's telemetry bundle. Runs execute in parallel
// goroutines, so each owns a private registry/recorder/timeline; sinks
// merge completed observers sorted by run label, which is unique per
// (design, benchmarks, sweep-knobs) and keeps merged output independent
// of host scheduling.
type Observer struct {
	Label    string
	Reg      *telemetry.Registry
	Trace    *telemetry.TraceRecorder
	Timeline *telemetry.Timeline
	Req      *reqtrace.Recorder

	// RegMC and TraceMC are the memory-side shard's private instruments,
	// non-nil only when the system runs on the parallel engine: the down
	// shard fires events on its own OS thread, so the controller and
	// device must never share mutable instruments with the processor
	// side. Metric names are disjoint across the two registries and every
	// snapshot merges them sorted by name (telemetry.SnapshotAll), so
	// timeline and published output stay byte-identical to a sequential
	// run. Trace events have no such order-free merge — equal-timestamp
	// interleaving is an append-order artifact — so TraceMC exports as
	// its own Perfetto process, labeled "<run>/mc".
	RegMC   *telemetry.Registry
	TraceMC *telemetry.TraceRecorder

	shardProf  bool
	nextSnapPS int64
	// snapPS is the simulated time the latest snapshot was taken at, set
	// before polling the registries. Rate-derived samples (background
	// energy) read it instead of an engine clock so sequential and
	// parallel runs — whose memory-side engine may sit at a different
	// point within the same epoch barrier — snapshot identical values.
	snapPS int64
}

// newObserver builds the per-run bundle for the session's options. seed
// is the run's workload seed, from which reqtrace sampling offsets are
// derived.
func newObserver(label string, seed uint64, opt *ObserveOptions) *Observer {
	if opt == nil || (!opt.Metrics && !opt.Trace && opt.ReqTraceN <= 0) {
		return nil
	}
	o := &Observer{Label: label}
	interval := opt.IntervalPS
	if interval <= 0 {
		interval = DefaultIntervalPS
	}
	if opt.Metrics {
		o.Reg = telemetry.New()
		o.Timeline = &telemetry.Timeline{Label: label, IntervalPS: interval}
		o.nextSnapPS = interval
	}
	if opt.Trace {
		o.Trace = telemetry.NewTraceRecorder(label)
	}
	if opt.ReqTraceN > 0 {
		o.Req = reqtrace.NewRecorder(label, opt.ReqTraceN, seed)
	}
	o.shardProf = opt.ShardProf
	return o
}

// maybeSnap takes an epoch snapshot when simulated time has crossed the
// next boundary. Called from the host run loop only — never from engine
// events — so observation cannot perturb simulation ordering.
func (o *Observer) maybeSnap(nowPS int64) {
	if o == nil || o.Timeline == nil || nowPS < o.nextSnapPS {
		return
	}
	o.snapPS = nowPS
	o.Timeline.Snap(nowPS, o.Reg, o.RegMC)
	interval := o.Timeline.IntervalPS
	o.nextSnapPS = (nowPS/interval + 1) * interval
}

// finish takes the end-of-run snapshot.
func (o *Observer) finish(nowPS int64) {
	if o == nil {
		return
	}
	o.snapPS = nowPS
	if o.Timeline == nil {
		return
	}
	o.Timeline.Snap(nowPS, o.Reg, o.RegMC)
}

// AttachObserver instruments every component of the system with obs
// (nil = leave the system uninstrumented). Call between Build and Run.
func (s *System) AttachObserver(obs *Observer) {
	if obs == nil {
		return
	}
	s.obs = obs
	reg := obs.Reg
	// On the parallel engine the controller and device fire on the down
	// shard's OS thread: give them a private registry and trace recorder
	// so no instrument is mutated from two goroutines. Snapshots only
	// happen at full barriers (System.observe) or after the run, where
	// the channel handoff orders the down shard's writes before the read.
	regMC, traceMC := reg, obs.Trace
	if s.Par != nil {
		if obs.Reg != nil {
			obs.RegMC = telemetry.New()
		}
		if obs.Trace != nil {
			obs.TraceMC = telemetry.NewTraceRecorder(obs.Label + "/mc")
		}
		regMC, traceMC = obs.RegMC, obs.TraceMC
	}
	s.Dev.AttachTelemetry(regMC)
	s.Ctl.AttachTelemetry(regMC, traceMC)
	if regMC.Enabled() {
		// Background/standby energy is a rate (mW x elapsed ns = pJ), not
		// an event count, so it is derived from the snapshot's timestamp
		// rather than accumulated per command. The observer's snap clock —
		// not an engine clock — keeps the value byte-identical between
		// sequential and parallel runs: at an epoch barrier the memory-side
		// engine may legitimately sit at a different instant than the
		// observation point that stamps the timeline row.
		g := s.Dev.Geometry()
		ranks := g.Channels * g.Ranks
		em := s.Dev.EnergyModel()
		regMC.Sample("dram.energy_pj.background", func() int64 {
			return em.BackgroundPJ(ranks, obs.snapPS/int64(sim.Nanosecond))
		})
	}
	s.Mgr.AttachTelemetry(reg, obs.Trace)
	if inj := s.Mgr.Faults(); inj != nil {
		inj.AttachTelemetry(reg)
	}
	s.LLC.AttachTelemetry(reg)
	for _, c := range s.L2s {
		c.AttachTelemetry(reg)
	}
	for _, c := range s.L1s {
		c.AttachTelemetry(reg)
	}
	if reg.Enabled() {
		if par := s.Par; par != nil {
			reg.Sample("sim.events_executed", func() int64 { return int64(par.Executed()) })
		} else {
			reg.Sample("sim.events_executed", func() int64 { return int64(s.Eng.Executed()) })
		}
	}
	if par := s.Par; par != nil && obs.shardProf && reg.Enabled() {
		// Epoch-profiler occupancy, polled at snapshot time. Both shards'
		// profiles are safe to read from the host goroutine here:
		// snapshots happen at full epoch barriers or after the run, where
		// the barrier's channel receive orders the down shard's writes
		// before the read. Registered on the up-shard registry — sample
		// functions run on the host goroutine, never on the down shard's
		// OS thread.
		for i, side := range []string{"up", "down"} {
			i := i
			reg.Sample("par."+side+".busy_ns", func() int64 { return par.Prof(i).BusyNS })
			reg.Sample("par."+side+".wait_ns", func() int64 { return par.Prof(i).WaitNS })
			reg.Sample("par."+side+".barrier_ns", func() int64 { return par.Prof(i).BarrierNS })
			reg.Sample("par."+side+".epochs", func() int64 { return int64(par.Prof(i).Epochs) })
		}
	}
	if obs.Req != nil {
		if obs.Trace != nil {
			// Core request tracks are numbered after the controller's bank,
			// rank-refresh and cumulative-energy tracks (see mc's
			// bankTID/rankTID/energyTID).
			g := s.Dev.Geometry()
			base := g.Channels*g.Ranks*g.Banks + g.Channels*g.Ranks + 1
			obs.Req.AttachTrace(obs.Trace, base)
			for i := range s.Cores {
				obs.Trace.DefineTrack(base+i, fmt.Sprintf("core%d req", i))
			}
		}
		for _, c := range s.Cores {
			c.AttachReqTrace(obs.Req)
		}
	}
}

// observerSet collects completed observers across a session's parallel
// runs and renders the merged sinks.
type observerSet struct {
	mu   sync.Mutex
	list []*Observer
}

func (os *observerSet) add(o *Observer) {
	if o == nil {
		return
	}
	os.mu.Lock()
	defer os.mu.Unlock()
	os.list = append(os.list, o)
}

// Observers returns the completed observers of this session's fresh
// runs, in completion order (sinks sort by label themselves).
func (s *Session) Observers() []*Observer {
	s.observers.mu.Lock()
	defer s.observers.mu.Unlock()
	return append([]*Observer(nil), s.observers.list...)
}

// timelines extracts the non-nil timelines.
func (s *Session) timelines() []*telemetry.Timeline {
	var ts []*telemetry.Timeline
	for _, o := range s.Observers() {
		if o.Timeline != nil {
			ts = append(ts, o.Timeline)
		}
	}
	return ts
}

// WriteTimelineCSV writes the merged epoch timeline of every observed
// run as long-form CSV (run,epoch_ns,metric,value).
func (s *Session) WriteTimelineCSV(w io.Writer) error {
	return telemetry.EncodeTimelinesCSV(w, s.timelines())
}

// WriteTimelineJSON writes the merged epoch timeline as JSON.
func (s *Session) WriteTimelineJSON(w io.Writer) error {
	return telemetry.EncodeTimelinesJSON(w, s.timelines())
}

// WriteTrace writes every observed run's events as one Chrome
// trace-event JSON document (loadable in Perfetto / chrome://tracing).
func (s *Session) WriteTrace(w io.Writer) error {
	var recs []*telemetry.TraceRecorder
	for _, o := range s.Observers() {
		if o.Trace != nil {
			recs = append(recs, o.Trace)
		}
		if o.TraceMC != nil {
			recs = append(recs, o.TraceMC)
		}
	}
	return telemetry.EncodeTrace(w, recs)
}

// reqRecorders extracts the non-nil request-trace recorders.
func (s *Session) reqRecorders() []*reqtrace.Recorder {
	var recs []*reqtrace.Recorder
	for _, o := range s.Observers() {
		if o.Req != nil {
			recs = append(recs, o.Req)
		}
	}
	return recs
}

// WriteReqTraceCSV writes every observed run's latency-attribution
// waterfall as long-form CSV (run,component rows with sums, means,
// shares and quantiles).
func (s *Session) WriteReqTraceCSV(w io.Writer) error {
	return reqtrace.EncodeCSV(w, s.reqRecorders())
}

// WriteReqTraceJSON writes the attribution waterfalls as JSON.
func (s *Session) WriteReqTraceJSON(w io.Writer) error {
	return reqtrace.EncodeJSON(w, s.reqRecorders())
}

// PublishTo pushes every observed run's final snapshot into p (the
// debug HTTP endpoint's store).
func (s *Session) PublishTo(p *telemetry.Publisher) {
	for _, o := range s.Observers() {
		if o.Reg != nil {
			p.Publish(o.Label, telemetry.SnapshotAll(nil, o.Reg, o.RegMC))
		}
	}
}
