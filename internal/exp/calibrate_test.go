package exp

import (
	"os"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// TestCalibration prints per-benchmark behaviour at experiment scale.
// It is a tuning tool, skipped unless CALIBRATE=1.
func TestCalibration(t *testing.T) {
	if os.Getenv("CALIBRATE") != "1" {
		t.Skip("set CALIBRATE=1 to run the calibration sweep")
	}
	cfg := config.Scaled()
	cfg.InstrPerCore = 2_000_000
	s := NewSession(cfg)
	names := []string{"astar", "cactusADM", "GemsFDTD", "lbm", "leslie3d",
		"libquantum", "mcf", "milc", "omnetpp", "soplex"}
	for _, name := range names {
		base, err := s.Baseline([]string{name})
		if err != nil {
			t.Fatal(err)
		}
		das, imp, err := s.RunVs(cfg, core.DAS, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		fs, impFS, err := s.RunVs(cfg, core.FS, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		sas, impSAS, err := s.RunVs(cfg, core.SAS, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		rb, fast, slow := das.Access.Fractions()
		t.Logf("%-11s IPC=%.2f MPKI=%5.1f fp=%5.0fMB | DAS %+6.2f%% SAS %+6.2f%% FS %+6.2f%% | PPKM=%5.1f rb/f/s=%.2f/%.2f/%.2f tag=%.2f",
			name, base.PerCore[0].IPC, base.PerCore[0].MPKI, base.PerCore[0].FootprintMB,
			imp, impSAS, impFS, das.PerCore[0].PPKM, rb, fast, slow, das.TagHitRatio)
		_, _ = fs, sas
	}
}
