// Package exp assembles full systems (cores, caches, DAS manager, memory
// controller, DRAM) from a config.Config, runs them under the Section 6
// measurement protocol, and regenerates every table and figure of the
// paper's evaluation.
package exp

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/mc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// System is one fully wired simulation instance.
type System struct {
	Cfg    config.Config
	Design core.Design
	Eng    *sim.Engine
	// EngMC and Par are set on parallel runs (Cfg.Parallel >= 2): the
	// controller and device live on EngMC (the memory-side shard) and
	// Par couples the two engines; Eng then holds only the processor
	// side. Both are nil on sequential runs.
	EngMC  *sim.Engine
	Par    *sim.ParEngine
	Cores  []*cpu.Core
	L1s    []*cache.Cache
	L2s    []*cache.Cache
	LLC    *cache.Cache
	Mgr    *core.Manager
	Ctl    *mc.Controller
	Dev    *dram.Device

	names     []string
	remaining int
	warmupsTo int

	// obs is this run's telemetry bundle (nil = off; see AttachObserver).
	obs *Observer

	// live, when non-nil, is the owning session's streaming-progress
	// accumulator; lastLiveEv/lastLiveIn are this system's
	// already-folded totals (see progress.go).
	live       *liveProgress
	lastLiveEv uint64
	lastLiveIn uint64

	// Per-core counter snapshots: [core][0]=at warm-up, [1]=at quota.
	missSnap [][2]uint64
	promSnap [][2]uint64

	// pool, when non-nil, owns this machine's memory lifecycle: RunContext
	// leaves the engines attached (instead of releasing their storage to
	// the sim pools) so the whole system can be checked back in and reused
	// via Reset.
	pool *SystemPool
}

// Build wires a system running the named benchmarks, one per core.
// static supplies the profiled fast-row set (required for SAS/CHARM);
// profile enables row-heat recording (used on baseline runs).
func Build(cfg config.Config, design core.Design, benchmarks []string, static *core.StaticAssignment, profile bool) (*System, *core.RowProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(benchmarks) != cfg.Cores {
		return nil, nil, fmt.Errorf("exp: %d benchmarks for %d cores", len(benchmarks), cfg.Cores)
	}
	if design.Static() && static == nil {
		return nil, nil, fmt.Errorf("exp: %v requires a static assignment (run a Standard baseline first)", design)
	}
	eng := sim.NewEngine()
	dev, err := dram.New(cfg.DRAMConfig(design))
	if err != nil {
		return nil, nil, err
	}
	// On a parallel run the memory side (controller + device timing)
	// gets its own engine; everything the processor side schedules stays
	// on eng. Values above 2 behave identically: the decomposition has
	// exactly two domains (see sim/par_engine.go).
	engMC := eng
	var par *sim.ParEngine
	if cfg.Parallel >= 2 {
		engMC = sim.NewEngine()
	}
	mcCfg := mc.Config{
		WindowSize: cfg.WindowSize, WriteHigh: cfg.WriteHigh, WriteLow: cfg.WriteLow,
		StarvationLimit: sim.FromNS(cfg.StarvationLimitNS),
		ClosedPage:      cfg.ClosedPage,
	}
	ctl, err := mc.New(mcCfg, engMC, dev, cfg.Cores)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Parallel >= 2 {
		par = sim.NewParEngine(eng, engMC, dev.MinCrossDomainLatency()/2)
		ctl.SetShard(par.Shard(1))
	}
	mgrCfg, err := cfg.ManagerConfig(design)
	if err != nil {
		return nil, nil, err
	}
	mgr, err := core.NewManager(mgrCfg, eng, ctl, cfg.Cores)
	if err != nil {
		return nil, nil, err
	}
	if par != nil {
		mgr.SetShard(par.Shard(0))
	}
	if static != nil {
		mgr.SetStaticAssignment(static)
	}
	if fc := cfg.FaultConfig(); fc.Enabled() {
		inj, err := fault.NewInjector(fc)
		if err != nil {
			return nil, nil, err
		}
		mgr.SetFaults(inj)
	}
	if cfg.CheckInvariants {
		mgr.EnableInvariantChecks()
	}
	var prof *core.RowProfile
	if profile {
		prof = mgr.EnableProfiling()
	}
	cpuPeriod := sim.NewClockHz(cfg.CPUGHz * 1e9).Period()
	llc, err := cache.New(cache.Config{
		Name: "LLC", SizeBytes: cfg.LLCKB << 10, Assoc: cfg.LLCAssoc,
		BlockSize: cfg.BlockSize, Latency: sim.Time(cfg.LLCLatency) * cpuPeriod,
		MSHRs: cfg.LLCMSHRs,
	}, eng, mgr, cfg.Cores)
	if err != nil {
		return nil, nil, err
	}
	mgr.SetLLC(llc)
	sys := &System{
		Cfg: cfg, Design: design, Eng: eng,
		LLC: llc, Mgr: mgr, Ctl: ctl, Dev: dev,
		Par: par,
		names:     benchmarks,
		remaining: cfg.Cores,
		warmupsTo: cfg.Cores,
		missSnap:  make([][2]uint64, cfg.Cores),
		promSnap:  make([][2]uint64, cfg.Cores),
	}
	if par != nil {
		sys.EngMC = engMC
	}
	coreCfg := cpu.Config{
		ClockHz: cfg.CPUGHz * 1e9, Width: cfg.Width,
		ROB: cfg.ROB, StoreBuffer: cfg.StoreBuffer,
	}
	for i, name := range benchmarks {
		gen, err := MakeGenerator(cfg, name, i)
		if err != nil {
			return nil, nil, err
		}
		l2, err := cache.New(cache.Config{
			Name: fmt.Sprintf("L2-%d", i), SizeBytes: cfg.L2KB << 10, Assoc: cfg.L2Assoc,
			BlockSize: cfg.BlockSize, Latency: sim.Time(cfg.L2Latency) * cpuPeriod,
			MSHRs: cfg.L2MSHRs,
		}, eng, llc, 0)
		if err != nil {
			return nil, nil, err
		}
		l1, err := cache.New(cache.Config{
			Name: fmt.Sprintf("L1-%d", i), SizeBytes: cfg.L1KB << 10, Assoc: cfg.L1Assoc,
			BlockSize: cfg.BlockSize, Latency: sim.Time(cfg.L1Latency) * cpuPeriod,
			MSHRs: cfg.L1MSHRs,
		}, eng, l2, 0)
		if err != nil {
			return nil, nil, err
		}
		c, err := cpu.New(i, coreCfg, eng, gen, l1)
		if err != nil {
			return nil, nil, err
		}
		sys.L2s = append(sys.L2s, l2)
		sys.L1s = append(sys.L1s, l1)
		sys.Cores = append(sys.Cores, c)
	}
	return sys, prof, nil
}

// Reset rewinds a previously run system to the just-built state for
// cfg/design/benchmarks, reusing every retained allocation: engines
// rewind in place, the DRAM arrays, controller queues, caches, manager
// tables, and core structures all zero without reallocating. The
// machine shape — design, core count, geometry, cache organization,
// CPU pipeline, parallel mode — is pinned; Reset returns an error when
// cfg departs from it (the SystemPool keys checkouts so this does not
// happen on the pooled path). Sweepable knobs (timing sets, migration
// latency, management parameters, page policy, workloads, seeds, fault
// injection) all take effect exactly as a fresh Build would apply them.
// Per-run attachments (observer, live progress) are dropped; re-attach
// before running. Byte-identity with a fresh Build of the same
// arguments is pinned by TestPooledRunsByteIdentical.
func (s *System) Reset(cfg config.Config, design core.Design, benchmarks []string, static *core.StaticAssignment, profile bool) (*core.RowProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(benchmarks) != cfg.Cores {
		return nil, fmt.Errorf("exp: %d benchmarks for %d cores", len(benchmarks), cfg.Cores)
	}
	if design.Static() && static == nil {
		return nil, fmt.Errorf("exp: %v requires a static assignment (run a Standard baseline first)", design)
	}
	if design != s.Design {
		return nil, fmt.Errorf("exp: reset to design %v on a system built for %v", design, s.Design)
	}
	if cfg.Cores != len(s.Cores) {
		return nil, fmt.Errorf("exp: reset to %d cores on a %d-core system", cfg.Cores, len(s.Cores))
	}
	if (cfg.Parallel >= 2) != (s.Par != nil) {
		return nil, fmt.Errorf("exp: reset cannot change the execution engine (parallel %d on a machine built otherwise)", cfg.Parallel)
	}
	cpuPeriod := sim.NewClockHz(cfg.CPUGHz * 1e9).Period()
	if got, want := s.LLC.Config(), (cache.Config{
		Name: "LLC", SizeBytes: cfg.LLCKB << 10, Assoc: cfg.LLCAssoc,
		BlockSize: cfg.BlockSize, Latency: sim.Time(cfg.LLCLatency) * cpuPeriod,
		MSHRs: cfg.LLCMSHRs,
	}); got != want {
		return nil, fmt.Errorf("exp: reset cannot resize the cache hierarchy (LLC %+v -> %+v)", got, want)
	}
	s.Eng.Reset()
	if s.EngMC != nil {
		s.EngMC.Reset()
	}
	if err := s.Dev.Reset(cfg.DRAMConfig(design)); err != nil {
		return nil, err
	}
	if err := s.Ctl.Reset(mc.Config{
		WindowSize: cfg.WindowSize, WriteHigh: cfg.WriteHigh, WriteLow: cfg.WriteLow,
		StarvationLimit: sim.FromNS(cfg.StarvationLimitNS),
		ClosedPage:      cfg.ClosedPage,
	}); err != nil {
		return nil, err
	}
	if s.Par != nil {
		// The synchronization window derives from timing the reset may have
		// changed (migration-latency sweeps shrink it).
		s.Par.Reset(s.Dev.MinCrossDomainLatency() / 2)
		s.Ctl.SetShard(s.Par.Shard(1))
	}
	mgrCfg, err := cfg.ManagerConfig(design)
	if err != nil {
		return nil, err
	}
	if err := s.Mgr.Reset(mgrCfg); err != nil {
		return nil, err
	}
	if s.Par != nil {
		s.Mgr.SetShard(s.Par.Shard(0))
	}
	if static != nil {
		s.Mgr.SetStaticAssignment(static)
	}
	if fc := cfg.FaultConfig(); fc.Enabled() {
		inj, err := fault.NewInjector(fc)
		if err != nil {
			return nil, err
		}
		s.Mgr.SetFaults(inj)
	}
	if cfg.CheckInvariants {
		s.Mgr.EnableInvariantChecks()
	}
	var prof *core.RowProfile
	if profile {
		prof = s.Mgr.EnableProfiling()
	}
	s.LLC.Reset()
	s.Mgr.SetLLC(s.LLC)
	for i, name := range benchmarks {
		gen, err := MakeGenerator(cfg, name, i)
		if err != nil {
			return nil, err
		}
		s.L2s[i].Reset()
		s.L1s[i].Reset()
		s.Cores[i].Reset(gen)
	}
	s.Cfg = cfg
	s.names = benchmarks
	s.remaining = cfg.Cores
	s.warmupsTo = cfg.Cores
	s.obs = nil
	s.live = nil
	s.lastLiveEv, s.lastLiveIn = 0, 0
	for i := range s.missSnap {
		s.missSnap[i] = [2]uint64{}
		s.promSnap[i] = [2]uint64{}
	}
	return prof, nil
}

// free returns the engines' storage to the sim pools and severs the
// system from any machine pool. The system must not be run afterwards;
// use it on machines that will not be checked back in (failed runs,
// over-budget checkins).
func (s *System) free() {
	s.pool = nil
	s.Eng.Release()
	if s.EngMC != nil {
		s.EngMC.Release()
	}
}

// onWarmup snapshots per-core counters and, once every core has crossed
// its warm-up boundary, resets the shared statistics.
func (s *System) onWarmup(id int) {
	s.missSnap[id][0] = s.LLC.Stats.PerCoreMisses[id]
	s.promSnap[id][0] = perCorePromotion(s.Mgr, id)
	s.warmupsTo--
	if s.warmupsTo == 0 {
		// Shared-counter measurement window starts when the last core is
		// warm; per-core windows subtract their own snapshots.
		base := make([]uint64, len(s.Cores))
		for i := range base {
			base[i] = s.LLC.Stats.PerCoreMisses[i]
		}
		s.LLC.ResetStats()
		copy(s.LLC.Stats.PerCoreMisses, base) // keep per-core continuity
		if s.Par != nil {
			// The controller and device live on the memory-side shard;
			// cross the reset like any other controller call so it lands
			// at this exact position in the global event order.
			s.Par.Shard(0).PostSync(postResetMC, s.Ctl, s.Dev)
		} else {
			s.Ctl.ResetStats()
			s.Dev.ResetStats()
		}
		promBase := make([]uint64, len(s.Cores))
		for i := range promBase {
			promBase[i] = perCorePromotion(s.Mgr, i)
		}
		s.Mgr.ResetStats()
		copy(s.Mgr.Stats.PerCorePromotions, promBase)
	}
}

// postResetMC is the trampoline crossing the warm-up statistics reset
// to the memory-side shard.
func postResetMC(a, b any) {
	a.(*mc.Controller).ResetStats()
	b.(*dram.Device).ResetStats()
}

func perCorePromotion(m *core.Manager, id int) uint64 {
	if m.Stats.PerCorePromotions == nil {
		return 0
	}
	return m.Stats.PerCorePromotions[id]
}

// onQuota snapshots a core's end-of-window counters.
func (s *System) onQuota(id int) {
	s.missSnap[id][1] = s.LLC.Stats.PerCoreMisses[id]
	s.promSnap[id][1] = perCorePromotion(s.Mgr, id)
	s.remaining--
}

// watchdog builds the no-progress detector over this system: requests
// are outstanding whenever controller queues, migrations, translation
// fetches or core memory operations are in flight, and progress is any
// demand/meta/migration service or instruction retirement. Observation
// is host-driven (no simulation events), so enabling it never perturbs
// results.
func (s *System) watchdog() *sim.Watchdog {
	outstanding := func() int {
		r, w := s.Ctl.QueueDepths()
		n := r + w + s.Ctl.PendingMigrations() + s.Mgr.PendingTranslations()
		for _, c := range s.Cores {
			n += c.Outstanding()
		}
		return n
	}
	progress := func() uint64 {
		cs := &s.Ctl.Stats
		p := cs.Reads + cs.Writes + cs.MetaReads + cs.MetaWrites + cs.Migrations
		for _, c := range s.Cores {
			p += c.RetiredTotal()
		}
		return p
	}
	report := func() string {
		return s.Ctl.Describe() + s.Mgr.DescribePending()
	}
	return sim.NewWatchdog(sim.DefaultWatchdogWindow, outstanding, progress, report)
}

// observeEvery is how many engine steps pass between watchdog and
// manager-error observations (each observation is a handful of loads,
// so this keeps the overhead unmeasurable).
const observeEvery = 1 << 12

// parCheckEvery is how many epochs pass between full-barrier
// observations of a parallel run. Each barrier drains the two-epoch
// pipeline, so it trades observation latency against parallelism; at 64
// epochs (~0.5 µs simulated) observation wall-clock granularity is
// comparable to the sequential stride.
const parCheckEvery = 64

// Run executes the measurement protocol and collects results. It fails
// fast — with a structured error rather than corrupted results — on
// assembly mistakes (CheckReady), invariant violations recorded by the
// manager, deadlock (drained queue), and livelock (watchdog).
func (s *System) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: ctx is polled at the
// same host-driven observation stride as the watchdog (every observeEvery
// engine steps, a few microseconds of wall clock), so cancelling the
// context stops a run promptly without ever perturbing simulation state —
// the check happens between events, never inside one. A cancelled run
// returns context.Cause(ctx) wrapped with the simulated time reached.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	if err := s.Mgr.CheckReady(); err != nil {
		return nil, err
	}
	// Unpooled machines recycle their event queues' backing arrays into
	// the next run's engines; a pooled machine keeps its engines attached
	// so the whole system can be checked back in and rewound with Reset.
	if s.pool == nil {
		defer s.Eng.Release()
		if s.EngMC != nil {
			defer s.EngMC.Release()
		}
	}
	warmup := uint64(float64(s.Cfg.InstrPerCore) * s.Cfg.WarmupFrac)
	for _, c := range s.Cores {
		if err := c.Start(warmup, s.Cfg.InstrPerCore, s.onWarmup, s.onQuota); err != nil {
			return nil, err
		}
	}
	// Hard ceiling: no sane run needs an average of 50 ns per
	// instruction (IPC ~0.007); the watchdog below catches true stalls
	// long before this.
	limit := sim.Time(s.Cfg.InstrPerCore) * 50 * sim.Nanosecond
	wd := s.watchdog()
	if s.Par != nil {
		stopped, err := s.Par.Run(
			func() bool { return s.remaining == 0 },
			func(now sim.Time) error { return s.observe(ctx, now, wd, limit) },
			parCheckEvery)
		if err != nil {
			return nil, err
		}
		if !stopped {
			return nil, s.deadlockErr()
		}
	} else {
		steps := 0
		for s.remaining > 0 {
			if !s.Eng.Step() {
				return nil, s.deadlockErr()
			}
			steps++
			if steps&(observeEvery-1) != 0 {
				continue
			}
			if err := s.observe(ctx, s.Eng.Now(), wd, limit); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Mgr.Err(); err != nil {
		return nil, fmt.Errorf("exp: manager failed: %w", err)
	}
	s.syncLive(s.Eng.Now())
	s.obs.finish(int64(s.Eng.Now()))
	return s.collect(), nil
}

// observe is one host-driven observation: telemetry snapshot,
// cancellation, manager failure, watchdog and the hard time ceiling. On
// sequential runs it fires every observeEvery engine steps; on parallel
// runs, at every full epoch barrier (both shards quiescent, so reading
// any simulation state is safe).
func (s *System) observe(ctx context.Context, now sim.Time, wd *sim.Watchdog, limit sim.Time) error {
	s.syncLive(now)
	s.obs.maybeSnap(int64(now))
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("exp: run cancelled at t=%.0f ns: %w", now.NS(), context.Cause(ctx))
	}
	if err := s.Mgr.Err(); err != nil {
		return fmt.Errorf("exp: manager failed at t=%.0f ns: %w", now.NS(), err)
	}
	if err := wd.Observe(now); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	if now > limit {
		return fmt.Errorf("exp: watchdog: %d cores unfinished after %v ns simulated (livelock?)",
			s.remaining, now.NS())
	}
	return nil
}

// deadlockErr reports a drained event queue with cores unfinished.
func (s *System) deadlockErr() error {
	return fmt.Errorf("exp: event queue drained with %d cores unfinished (deadlock)\n%s",
		s.remaining, s.Ctl.Describe()+s.Mgr.DescribePending())
}

// CoreResult is one benchmark's measured behaviour.
type CoreResult struct {
	Benchmark   string
	IPC         float64
	Retired     uint64
	LLCMisses   uint64
	MPKI        float64
	Promotions  uint64
	PPKM        float64 // promotions per kilo-miss
	FootprintMB float64
}

// Result is one run's full measurement.
type Result struct {
	Design   core.Design
	PerCore  []CoreResult
	Access   stats.Dist // demand access locations (Fig 7c/7f/8b)
	DevStats dram.Stats

	Promotions       uint64
	PromPerAccess    float64 // promotions / demand accesses (Fig 8c)
	TagHitRatio      float64
	TableFetches     uint64
	FilterRejects    uint64
	AvgReadLatencyNS float64
	ReadLatHist      [6]uint64 // <50, <100, <200, <500, <1000, >=1000 ns
	EnergyProxy      float64   // relative DRAM access-energy estimate (§7.7)
	// Energy is the exact integer-picojoule decomposition of the
	// measurement window's DRAM energy, priced by internal/energy from the
	// device's per-class command counts plus background power over the
	// simulated interval. Pure accounting on counters the run already
	// keeps: it is always filled, needs no telemetry attachment, and can
	// never perturb timing. (EnergyProxy above is the frozen §7.7 coarse
	// relative estimate the power figure keeps rendering.)
	Energy      energy.Breakdown
	InstrsTotal uint64 // retired instructions summed over cores
	SimulatedNS float64
	Events      uint64

	// Faults aggregates the manager's degradation activity and Injected
	// the raw injector decisions; both are zero on a perfect device.
	Faults   core.FaultStats
	Injected fault.Stats
}

// collect derives the Result after all cores reached quota.
func (s *System) collect() *Result {
	r := &Result{Design: s.Design}
	for i, c := range s.Cores {
		misses := s.missSnap[i][1] - s.missSnap[i][0]
		proms := s.promSnap[i][1] - s.promSnap[i][0]
		kilo := float64(c.Stats.Retired) / 1000
		cr := CoreResult{
			Benchmark:   s.names[i],
			IPC:         c.IPC(),
			Retired:     c.Stats.Retired,
			LLCMisses:   misses,
			Promotions:  proms,
			FootprintMB: float64(c.Stats.UniquePages) * 4096 / (1 << 20),
		}
		if kilo > 0 {
			cr.MPKI = float64(misses) / kilo
		}
		if misses > 0 {
			cr.PPKM = float64(proms) / (float64(misses) / 1000)
		}
		r.PerCore = append(r.PerCore, cr)
	}
	cs := s.Ctl.Stats
	r.Access = stats.Dist{RowBuffer: cs.ServedRowBuffer, Fast: cs.ServedFast, Slow: cs.ServedSlow}
	r.DevStats = s.Dev.CollectStats()
	r.Promotions = s.Mgr.Stats.Promotions
	if total := cs.Reads + cs.Writes; total > 0 {
		r.PromPerAccess = float64(r.Promotions) / float64(total)
		r.AvgReadLatencyNS = cs.ReadLatencySum.NS() / float64(cs.Reads)
		r.ReadLatHist = cs.ReadLatHist
	}
	if tc := s.Mgr.TagCache(); tc != nil {
		r.TagHitRatio = tc.HitRatio()
	}
	r.TableFetches = s.Mgr.Stats.TableFetches
	if f := s.Mgr.Filter(); f != nil {
		r.FilterRejects = f.Rejects
	}
	r.EnergyProxy = energyProxy(r.DevStats)
	for _, c := range s.Cores {
		r.InstrsTotal += c.Stats.Retired
	}
	g := s.Dev.Geometry()
	r.Energy = s.Dev.EnergyModel().Breakdown(
		r.DevStats.EnergyCounts(), g.Channels*g.Ranks, int64(s.Eng.Now()/sim.Nanosecond))
	r.SimulatedNS = s.Eng.Now().NS()
	r.Events = s.Eng.Executed()
	if s.Par != nil {
		r.Events = s.Par.Executed()
	}
	r.Faults = s.Mgr.Stats.Faults
	if inj := s.Mgr.Faults(); inj != nil {
		r.Injected = inj.Stats
	}
	return r
}

// energyProxy estimates relative DRAM array energy (Section 7.7): a slow
// activate-restore-precharge cycle is the unit; a fast-subarray cycle
// costs ~45% of it (shorter bitlines move proportionally less charge),
// a column burst ~25%, a refresh ~8 bank cycles, and a migration swap
// two full row cycles in each of two subarrays.
func energyProxy(d dram.Stats) float64 {
	slowActs := float64(d.Activates - d.ActivatesFast)
	fastActs := float64(d.ActivatesFast)
	return slowActs*1.0 +
		fastActs*0.45 +
		float64(d.Reads+d.Writes)*0.25 +
		float64(d.Refreshes)*8.0 +
		float64(d.Migrations)*4.0
}

// Speedup returns this run's mean per-core IPC ratio against a baseline
// run of the same benchmarks (the paper's performance-improvement
// metric; for one core it reduces to the plain IPC ratio).
func (r *Result) Speedup(baseline *Result) float64 {
	if len(r.PerCore) != len(baseline.PerCore) {
		panic("exp: speedup against mismatched baseline")
	}
	ratios := make([]float64, len(r.PerCore))
	for i := range r.PerCore {
		ratios[i] = r.PerCore[i].IPC / baseline.PerCore[i].IPC
	}
	return stats.Mean(ratios)
}

// Improvement returns the percentage improvement over baseline.
func (r *Result) Improvement(baseline *Result) float64 {
	return (r.Speedup(baseline) - 1) * 100
}
