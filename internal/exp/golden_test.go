package exp

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden tests pin the figure text of small fixed-seed runs. A
// figure's rendered output is the determinism contract made visible:
// any engine, controller or workload change that alters event order —
// even without changing averages — shows up here as a byte diff.
// Regenerate deliberately with:
//
//	go test ./internal/exp -run TestGolden -update
//
// and justify the diff in the commit. The full-length counterpart
// (results_single.txt) is asserted by TestGoldenResultsSingleFull in
// golden_full_test.go (build tag golden_full; ~10-25 min).

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCompare diffs got against testdata/<name>, rewriting it under
// -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test -run TestGolden -update ./internal/exp`): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s: first divergence at line %d:\n got: %q\nwant: %q", path, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: length differs: got %d lines, want %d", path, len(gl), len(wl))
}

// TestGoldenFig7a pins a two-benchmark Figure 7a at the default seed:
// every design (SAS, CHARM, DAS, DAS-FM, FS) against the Standard
// baseline on the tiny configuration.
func TestGoldenFig7a(t *testing.T) {
	s := NewSession(tinyConfig())
	s.Benchmarks = []string{"mcf", "soplex"}
	fig, err := s.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_fig7a.txt", fig.Render())
}

// TestGoldenFaultSweep pins the fault-injection sweep (migration
// failures, weak rows, translation corruption), whose output also
// encodes the deterministic fault streams.
func TestGoldenFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep golden skipped in -short")
	}
	cfg := tinyConfig()
	cfg.InstrPerCore = 100_000
	s := NewSession(cfg)
	s.Benchmarks = []string{"mcf"}
	fig, err := s.FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_faults.txt", fig.Render())
}
