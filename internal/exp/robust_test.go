package exp

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// runOnce builds and runs one DAS system over mcf with cfg.
func runOnce(t *testing.T, cfg config.Config) *Result {
	t.Helper()
	sys, _, err := Build(cfg, core.DAS, []string{"mcf"}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterminismFaultFree verifies that two runs of the same workload
// with the same seed produce byte-identical results when no faults are
// injected.
func TestDeterminismFaultFree(t *testing.T) {
	cfg := tinyConfig()
	a := runOnce(t, cfg)
	b := runOnce(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-free runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestDeterminismWithFaults verifies reproducibility with every fault
// class active: same seed, same fault stream, byte-identical results —
// including the injected-fault counters themselves.
func TestDeterminismWithFaults(t *testing.T) {
	cfg := tinyConfig()
	cfg.WeakRowRate = 0.1
	cfg.MigFailRate = 0.25
	cfg.TagCorruptRate = 0.01
	cfg.TableCorruptRate = 0.01
	a := runOnce(t, cfg)
	b := runOnce(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulty runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Injected.MigFailures == 0 {
		t.Fatal("expected some injected migration failures at rate 0.25")
	}
}

// TestInvariantCheckerIsFree verifies the invariant checker observes but
// never perturbs: runs with and without it differ only in nothing.
func TestInvariantCheckerIsFree(t *testing.T) {
	on := tinyConfig()
	on.CheckInvariants = true
	off := tinyConfig()
	off.CheckInvariants = false
	a, b := runOnce(t, on), runOnce(t, off)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("invariant checker changed results:\n%+v\nvs\n%+v", a, b)
	}
}

// TestZeroRatesMatchPerfectDevice verifies that explicitly-zero fault
// rates take the exact fault-free path (no injector, no extra RNG use).
func TestZeroRatesMatchPerfectDevice(t *testing.T) {
	zero := tinyConfig()
	zero.WeakRowRate = 0
	zero.MigFailRate = 0
	zero.TagCorruptRate = 0
	zero.TableCorruptRate = 0
	zero.FaultSeed = 12345 // must be inert while all rates are zero
	a, b := runOnce(t, tinyConfig()), runOnce(t, zero)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("zero-rate run differs from perfect device:\n%+v\nvs\n%+v", a, b)
	}
}

// TestGracefulDegradationMigFail drives migration failure to certainty:
// every promotion attempt must be retried, abandoned, and its row pinned
// slow, until the circuit breaker judges the migration lane broken and
// promotion stops device-wide — after which DAS performs close to
// Standard DRAM (slow-only service plus translation overhead), with the
// run completing and the invariant checker silent.
func TestGracefulDegradationMigFail(t *testing.T) {
	cfg := tinyConfig()
	cfg.MigFailRate = 1.0
	res := runOnce(t, cfg)
	if res.Promotions != 0 {
		t.Fatalf("promotions committed despite certain failure: %d", res.Promotions)
	}
	if res.Faults.MigFailures == 0 || res.Faults.PinnedRows == 0 {
		t.Fatalf("expected failures and pinned rows, got %+v", res.Faults)
	}
	if res.Faults.MigRetries != res.Faults.PinnedRows*uint64(cfg.MigRetries) {
		t.Fatalf("retry accounting: %d retries for %d pinned rows (MigRetries=%d)",
			res.Faults.MigRetries, res.Faults.PinnedRows, cfg.MigRetries)
	}
	if res.Faults.MigBreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", res.Faults.MigBreakerTrips)
	}
	// Degraded DAS must land near the Standard baseline, not collapse.
	sys, _, err := Build(cfg, core.Standard, []string{"mcf"}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	std, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.PerCore[0].IPC / std.PerCore[0].IPC; ratio < 0.9 {
		t.Fatalf("degraded DAS at %.2fx Standard IPC, want >= 0.9x", ratio)
	}
}

// TestGracefulDegradationAllWeak fences every migration group (all fast
// rows weak): promotions must stop entirely and the run still completes.
func TestGracefulDegradationAllWeak(t *testing.T) {
	cfg := tinyConfig()
	cfg.WeakRowRate = 1.0
	res := runOnce(t, cfg)
	if res.Promotions != 0 {
		t.Fatalf("promotions into fully-weak fast subarrays: %d", res.Promotions)
	}
	if res.Faults.FencedGroups == 0 {
		t.Fatal("no groups fenced at weak rate 1.0")
	}
}

// TestGracefulDegradationTableCorrupt keeps the run live even when every
// translation-table fetch fails ECC: re-fetches are bounded, so forward
// progress is guaranteed.
func TestGracefulDegradationTableCorrupt(t *testing.T) {
	cfg := tinyConfig()
	cfg.TableCorruptRate = 1.0
	res := runOnce(t, cfg)
	if res.Faults.TableRefetches == 0 {
		t.Fatal("no table re-fetches at corruption rate 1.0")
	}
	if res.PerCore[0].IPC <= 0 {
		t.Fatal("run made no progress")
	}
}
