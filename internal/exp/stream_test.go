package exp

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
)

// The stream golden pins the exact DRAM command stream — every
// (time, command, channel, rank, bank, row) tuple at issue order — for a
// spread of small fixed-seed runs. This is a stronger check than the
// figure goldens: a figure can survive a reordering that cancels out in
// the averages, but the stream digest cannot. scripts/check.sh runs
// this test under both the default next-event scheduler and the
// mc_polltick per-cycle poller against the same committed file, which
// is the equivalence proof for the two controller scheduling modes.
// Regenerate (under the default build only) with:
//
//	go test ./internal/exp -run TestGoldenCommandStreams -update

// streamCase is one system variant whose command stream gets pinned.
type streamCase struct {
	name       string
	design     core.Design
	benchmarks []string
	seed       uint64
	closedPage bool
}

func streamCases() []streamCase {
	return []streamCase{
		{"standard/mcf", core.Standard, []string{"mcf"}, 42, false},
		{"das/mcf", core.DAS, []string{"mcf"}, 42, false},
		{"dasfm/libquantum", core.DASFM, []string{"libquantum"}, 7, false},
		{"fs/lbm/closed", core.FS, []string{"lbm"}, 42, true},
		{"sas/mcf", core.SAS, []string{"mcf"}, 42, false},
		{"charm/soplex", core.CHARM, []string{"soplex"}, 42, false},
		{"das/mcf+soplex", core.DAS, []string{"mcf", "soplex"}, 42, false},
	}
}

// streamDigest runs one case with a command log attached and returns the
// command count and the FNV-1a digest over the raw tuple stream.
// parallel selects the execution engine (0 = sequential); the digest
// must not depend on it (TestParallelEquivalence).
func streamDigest(t *testing.T, sc streamCase, parallel int) (uint64, uint64) {
	t.Helper()
	cfg := tinyConfig()
	cfg.InstrPerCore = 60_000
	cfg.Cores = len(sc.benchmarks)
	cfg.Seed = sc.seed
	cfg.ClosedPage = sc.closedPage
	cfg.Parallel = parallel

	var static *core.StaticAssignment
	if sc.design.Static() {
		prof, err := ProfilePass(cfg, sc.benchmarks)
		if err != nil {
			t.Fatal(err)
		}
		static = core.BuildStaticAssignment(prof, cfg.Geometry(), cfg.FastDenom)
	}
	sys, _, err := Build(cfg, sc.design, sc.benchmarks, static, false)
	if err != nil {
		t.Fatal(err)
	}

	h := fnv.New64a()
	var buf [48]byte
	var count uint64
	sys.Dev.SetCommandLog(func(at sim.Time, kind dram.CommandKind, channel, rank, bank, row int) {
		binary.LittleEndian.PutUint64(buf[0:], uint64(at))
		binary.LittleEndian.PutUint64(buf[8:], uint64(kind))
		binary.LittleEndian.PutUint64(buf[16:], uint64(int64(channel)))
		binary.LittleEndian.PutUint64(buf[24:], uint64(int64(rank)))
		binary.LittleEndian.PutUint64(buf[32:], uint64(int64(bank)))
		binary.LittleEndian.PutUint64(buf[40:], uint64(int64(row)))
		h.Write(buf[:])
		count++
	})
	if _, err := sys.Run(); err != nil {
		t.Fatalf("%s: %v", sc.name, err)
	}
	return count, h.Sum64()
}

// TestGoldenCommandStreams pins the command-stream digest of every
// stream case: all five managed designs plus the Standard baseline,
// open- and closed-page controllers, and a multi-programmed mix.
func TestGoldenCommandStreams(t *testing.T) {
	var b strings.Builder
	for _, sc := range streamCases() {
		n, sum := streamDigest(t, sc, 0)
		fmt.Fprintf(&b, "%-18s commands=%-7d fnv64a=%016x\n", sc.name, n, sum)
	}
	goldenCompare(t, "golden_streams.txt", b.String())
}
