package exp

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// tinyConfig returns a configuration small enough for unit tests: 64 MB
// of memory, short episodes.
func tinyConfig() config.Config {
	c := config.Scaled()
	c.RowsPerBank = 256 // 64 MB
	c.InstrPerCore = 200_000
	c.TagCacheKB = 4
	return c
}

func TestSmokeStandard(t *testing.T) {
	cfg := tinyConfig()
	sys, prof, err := Build(cfg, core.Standard, []string{"mcf"}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].IPC <= 0 {
		t.Fatalf("IPC not positive: %+v", res.PerCore[0])
	}
	if res.PerCore[0].MPKI <= 0 {
		t.Fatalf("expected LLC misses for mcf, got MPKI %v", res.PerCore[0].MPKI)
	}
	if prof.Rows() == 0 {
		t.Fatal("profile recorded no rows")
	}
	if res.Access.Slow == 0 {
		t.Fatal("standard DRAM should serve slow-level opens")
	}
	if res.Access.Fast != 0 {
		t.Fatal("standard DRAM must not touch fast subarrays")
	}
	t.Logf("standard: IPC=%.3f MPKI=%.1f footprint=%.1fMB events=%d simNS=%.0f",
		res.PerCore[0].IPC, res.PerCore[0].MPKI, res.PerCore[0].FootprintMB, res.Events, res.SimulatedNS)
}

func TestSmokeAllDesigns(t *testing.T) {
	cfg := tinyConfig()
	s := NewSession(cfg)
	base, err := s.Baseline([]string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range core.AllDesigns()[1:] {
		res, imp, err := s.RunVs(cfg, d, []string{"mcf"})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		t.Logf("%-14s IPC=%.3f improvement=%+.2f%% promotions=%d tagHit=%.2f",
			d, res.PerCore[0].IPC, imp, res.Promotions, res.TagHitRatio)
		if res.PerCore[0].IPC <= 0 {
			t.Fatalf("%v: non-positive IPC", d)
		}
		_ = base
	}
}
