package exp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Live progress: the session's in-flight counters. The existing
// events/instrs totals (EventsExecuted, InstrsRetired) are fed by
// countRun at run *end* — the benchmark suite depends on that
// end-of-run semantic — so streaming consumers get their own counters,
// advanced from the host observation points only: the sequential run
// loop's observeEvery stride and the parallel engine's full epoch
// barriers. No engine event ever touches them, so a subscribed
// progress stream cannot perturb simulation ordering (the same
// argument as the telemetry registry, enforced end to end by the
// byte-identity gates in check.sh).
type liveProgress struct {
	events atomic.Uint64
	instrs atomic.Uint64
	simPS  atomic.Int64 // high-water simulated time across in-flight runs
}

// LiveEvents reports engine events executed by this session including
// runs still in flight, updated at the observation stride. Monotonic.
func (s *Session) LiveEvents() uint64 { return s.live.events.Load() }

// LiveInstrs reports instructions retired by this session including
// runs still in flight, updated at the observation stride. Monotonic.
func (s *Session) LiveInstrs() uint64 { return s.live.instrs.Load() }

// LiveSimNS reports the furthest simulated time (ns) any of the
// session's runs has reached. Monotonic.
func (s *Session) LiveSimNS() float64 { return float64(s.live.simPS.Load()) / 1e3 }

// attachLive binds the session's live counters to one system; the
// system folds deltas in at every observation point.
func (s *System) attachLive(lp *liveProgress) { s.live = lp }

// syncLive folds this system's progress since the last observation into
// the session-wide live counters. Called from the host observation
// points only (never from engine events). Cores and engines are safe to
// read here: sequentially we are between events, in parallel we are at
// a full epoch barrier.
func (s *System) syncLive(now sim.Time) {
	if s.live == nil {
		return
	}
	ev := s.Eng.Executed()
	if s.Par != nil {
		ev = s.Par.Executed()
	}
	var in uint64
	for _, c := range s.Cores {
		in += c.RetiredTotal()
	}
	s.live.events.Add(ev - s.lastLiveEv)
	s.live.instrs.Add(in - s.lastLiveIn)
	s.lastLiveEv, s.lastLiveIn = ev, in
	// High-water mark: concurrent runs race to publish their frontier,
	// and the stream must never observe simulated time moving backwards.
	for {
		cur := s.live.simPS.Load()
		if int64(now) <= cur || s.live.simPS.CompareAndSwap(cur, int64(now)) {
			return
		}
	}
}

// InstrHorizon estimates the total instructions a figure will retire:
// fresh runs per workload set x cores per set x the per-core quota.
// It is an ETA denominator, not a contract — profiling prepasses and
// cross-figure run reuse make the true count drift a little — so
// consumers must treat progress/horizon as advisory. 0 means unknown
// (or free: the static tables).
func (s *Session) InstrHorizon(name string) uint64 {
	quota := s.Cfg.InstrPerCore
	nSingle := uint64(len(s.singles()))
	mixSets, _ := s.mixSets()
	nMix := uint64(len(mixSets))
	switch name {
	case "table1", "table2", "area":
		return 0
	case "7a":
		return nSingle * 6 * quota // baseline + 5 comparison designs
	case "7b":
		return nSingle * 1 * quota // DAS only
	case "7c":
		return nSingle * 2 * quota // SAS + DAS
	case "7d":
		return nMix * 6 * 4 * quota
	case "7e":
		return nMix * 1 * 4 * quota
	case "7f":
		return nMix * 2 * 4 * quota
	case "8":
		return nSingle * (uint64(len(FilterThresholds)) + 1) * quota
	case "9a", "9b":
		return nSingle * 5 * quota // 4 sweep points + baseline
	case "9c", "9d":
		return nSingle * 4 * quota
	case "power":
		return nSingle * 5 * quota // 4 designs + baseline
	case "faults":
		return nSingle * 8 * quota
	default:
		return 0
	}
}

// DesignInstrHorizon estimates the instructions a single-design run
// (serve's design requests, dasbench -design) will retire.
func (s *Session) DesignInstrHorizon(design core.Design, benchmarks []string) uint64 {
	quota := uint64(len(benchmarks)) * s.Cfg.InstrPerCore
	if design == core.Standard {
		return quota
	}
	return 2 * quota // baseline + design
}

// ShardUsage aggregates sim.ShardProf occupancy across a session's
// parallel runs. The telescoping invariant survives aggregation:
// BusyNS + WaitNS + BarrierNS == WallNS, exactly.
type ShardUsage struct {
	BusyNS    int64
	WaitNS    int64
	BarrierNS int64
	WallNS    int64
	Epochs    uint64
	Mbox      [sim.MboxDepthBuckets]uint64
}

func (u *ShardUsage) add(p sim.ShardProf) {
	u.BusyNS += p.BusyNS
	u.WaitNS += p.WaitNS
	u.BarrierNS += p.BarrierNS
	u.WallNS += p.WallNS
	u.Epochs += p.Epochs
	for i, c := range p.Mbox {
		u.Mbox[i] += c
	}
}

// StallFraction is the share of the shard's wall time not spent
// executing events: mailbox waits plus barrier drains. This is the
// number that explains a sub-1x parallel speedup.
func (u ShardUsage) StallFraction() float64 {
	if u.WallNS == 0 {
		return 0
	}
	return float64(u.WaitNS+u.BarrierNS) / float64(u.WallNS)
}

// ParProfile is the session-wide epoch-profiler aggregate.
type ParProfile struct {
	Runs int // parallel runs folded in
	Up   ShardUsage
	Down ShardUsage
}

// ShardProfile returns the aggregated occupancy profile of every
// parallel run this session completed (zero value when the session ran
// sequentially).
func (s *Session) ShardProfile() ParProfile {
	s.parMu.Lock()
	defer s.parMu.Unlock()
	return s.parProf
}

// foldPar accumulates a finished system's shard profiles into the
// session aggregate (no-op for sequential systems).
func (s *Session) foldPar(sys *System) {
	if sys.Par == nil {
		return
	}
	s.parMu.Lock()
	defer s.parMu.Unlock()
	s.parProf.Runs++
	s.parProf.Up.add(sys.Par.Prof(0))
	s.parProf.Down.add(sys.Par.Prof(1))
}

// ShardReport renders the session's aggregated epoch profile as a
// figure (dasbench -parshard-report). Nanosecond columns are exact
// accumulator values, so busy+wait+barrier can be checked against wall
// by eye or by script; percentages are derived. Returns an error when
// no parallel run contributed (the report would be vacuous).
func (s *Session) ShardReport() (*Figure, error) {
	p := s.ShardProfile()
	if p.Runs == 0 {
		return nil, fmt.Errorf("exp: no parallel runs profiled (need -parallel >= 2)")
	}
	tbl := &stats.Table{
		Title:  "Parallel-engine shard occupancy",
		Header: []string{"shard", "busy_ns", "wait_ns", "barrier_ns", "wall_ns", "busy", "stall", "epochs"},
	}
	pct := func(num, den int64) string {
		if den == 0 {
			return stats.Percent(0)
		}
		return stats.Percent(float64(num) / float64(den))
	}
	for _, row := range []struct {
		name string
		u    ShardUsage
	}{{"up (cores/caches/mgr)", p.Up}, {"down (mc/dram)", p.Down}} {
		u := row.u
		tbl.AddRow(row.name,
			fmt.Sprintf("%d", u.BusyNS), fmt.Sprintf("%d", u.WaitNS),
			fmt.Sprintf("%d", u.BarrierNS), fmt.Sprintf("%d", u.WallNS),
			pct(u.BusyNS, u.WallNS), stats.Percent(u.StallFraction()),
			fmt.Sprintf("%d", u.Epochs))
	}
	mbox := &stats.Table{
		Title:  "Outbound mailbox depth at epoch send",
		Header: []string{"shard", "depth 0", "depth 1", "depth 2+"},
	}
	for _, row := range []struct {
		name string
		u    ShardUsage
	}{{"up", p.Up}, {"down", p.Down}} {
		var tail uint64
		for _, c := range row.u.Mbox[2:] {
			tail += c
		}
		mbox.AddRow(row.name,
			fmt.Sprintf("%d", row.u.Mbox[0]), fmt.Sprintf("%d", row.u.Mbox[1]),
			fmt.Sprintf("%d", tail))
	}
	tbl.Caption = fmt.Sprintf(
		"Across %d parallel run(s): busy+wait+barrier sums exactly to wall per shard (telescoping laps). "+
			"Pipeline-stall fraction (up shard wait+barrier over wall): %s.",
		p.Runs, stats.Percent(p.Up.StallFraction()))
	mbox.Caption = "Depth 2 (full, cap-2 channel) at send means the peer is the bottleneck; depth 0 means this shard is."
	return &Figure{ID: "ParShard", Title: "Epoch profiler", Tables: []*stats.Table{tbl, mbox}}, nil
}
