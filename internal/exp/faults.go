package exp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
)

// Fault-sweep rates. Each sweep varies one fault class while the others
// stay zero, so every row isolates one degradation mechanism.
var (
	// MigFailSweepRates sweeps the probability that a migration fails
	// at completion (rate 1 forces every promotion to be abandoned
	// after its retries — the full-degradation endpoint).
	MigFailSweepRates = []float64{0, 0.01, 0.1, 0.5, 1}
	// WeakRowSweepRates sweeps the fraction of fast-subarray rows that
	// are weak (rate 1 fences every migration group).
	WeakRowSweepRates = []float64{0, 0.02, 0.1, 0.5, 1}
	// CorruptSweepRates sweeps tag-cache and translation-table
	// corruption together (both classes cost a re-fetch).
	CorruptSweepRates = []float64{0, 0.001, 0.01, 0.1}
)

// faultRow is one sweep point aggregated over the workload set.
type faultRow struct {
	improvement float64
	faults      core.FaultStats
	promotions  uint64
}

// faultPoint runs DAS-DRAM at one fault configuration over every
// single-programmed workload and aggregates the outcome.
func (s *Session) faultPoint(cfg config.Config) (*faultRow, error) {
	row := &faultRow{}
	var ratios []float64
	for _, set := range s.singleSets() {
		base, err := s.Baseline(set)
		if err != nil {
			return nil, err
		}
		res, err := s.Cached(cfg, core.DAS, set)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", set[0], err)
		}
		ratios = append(ratios, res.Speedup(base))
		row.promotions += res.Promotions
		f := &row.faults
		f.MigFailures += res.Faults.MigFailures
		f.MigRetries += res.Faults.MigRetries
		f.PinnedRows += res.Faults.PinnedRows
		f.FencedGroups += res.Faults.FencedGroups
		f.WeakServices += res.Faults.WeakServices
		f.TagCorruptions += res.Faults.TagCorruptions
		f.TableRefetches += res.Faults.TableRefetches
		f.MigBreakerTrips += res.Faults.MigBreakerTrips
	}
	imp, err := stats.GmeanImprovementErr(ratios)
	if err != nil {
		return nil, fmt.Errorf("fault-sweep gmean: %w", err)
	}
	row.improvement = imp
	return row, nil
}

// FaultSweep measures how DAS-DRAM's improvement over Standard DRAM
// degrades as device faults are injected into the management path: one
// sweep per fault class. Every run executes with the invariant checker
// and watchdog armed, so a rendered figure doubles as evidence that
// degradation was graceful (no violation, no hang) at every point.
func (s *Session) FaultSweep() (*Figure, error) {
	mig := &stats.Table{
		Title:  "Migration-failure sweep",
		Header: []string{"fail rate", "DAS vs Std", "failures", "retries", "pinned rows", "breaker trips", "promotions"},
	}
	for _, rate := range MigFailSweepRates {
		cfg := s.Cfg
		cfg.MigFailRate = rate
		row, err := s.faultPoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("mig-fail %v: %w", rate, err)
		}
		mig.AddRow(fmt.Sprintf("%.2f", rate), fmt.Sprintf("%+.2f%%", row.improvement),
			fmt.Sprint(row.faults.MigFailures), fmt.Sprint(row.faults.MigRetries),
			fmt.Sprint(row.faults.PinnedRows), fmt.Sprint(row.faults.MigBreakerTrips),
			fmt.Sprint(row.promotions))
	}
	mig.Caption = "Failed migrations retried then pinned slow; persistent failure trips the breaker and DAS degrades to ~Standard."

	weak := &stats.Table{
		Title:  "Weak-fast-row sweep",
		Header: []string{"weak rate", "DAS vs Std", "weak services", "fenced groups", "promotions"},
	}
	for _, rate := range WeakRowSweepRates {
		cfg := s.Cfg
		cfg.WeakRowRate = rate
		row, err := s.faultPoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("weak-row %v: %w", rate, err)
		}
		weak.AddRow(fmt.Sprintf("%.2f", rate), fmt.Sprintf("%+.2f%%", row.improvement),
			fmt.Sprint(row.faults.WeakServices), fmt.Sprint(row.faults.FencedGroups),
			fmt.Sprint(row.promotions))
	}
	weak.Caption = "Weak fast rows are sensed at slow timing and never receive promotions."

	corr := &stats.Table{
		Title:  "Translation-corruption sweep",
		Header: []string{"corrupt rate", "DAS vs Std", "tag drops", "table refetches", "promotions"},
	}
	for _, rate := range CorruptSweepRates {
		cfg := s.Cfg
		cfg.TagCorruptRate = rate
		cfg.TableCorruptRate = rate
		row, err := s.faultPoint(cfg)
		if err != nil {
			return nil, fmt.Errorf("corruption %v: %w", rate, err)
		}
		corr.AddRow(fmt.Sprintf("%.3f", rate), fmt.Sprintf("%+.2f%%", row.improvement),
			fmt.Sprint(row.faults.TagCorruptions), fmt.Sprint(row.faults.TableRefetches),
			fmt.Sprint(row.promotions))
	}
	corr.Caption = "Corrupt translation entries are re-fetched through the LLC, never followed."

	return &Figure{
		ID:     "Faults",
		Title:  "Graceful degradation under injected device faults",
		Tables: []*stats.Table{mig, weak, corr},
	}, nil
}
