package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// explainSession builds a fresh tiny session with every demand load
// traced and renders the Standard-vs-DAS explain report.
func explainSession(t *testing.T) (*Session, string) {
	t.Helper()
	s := NewSession(tinyConfig())
	s.Benchmarks = []string{"mcf", "libquantum"}
	s.Observe = &ObserveOptions{ReqTraceN: 1}
	fig, err := s.Explain(core.Standard, core.DAS)
	if err != nil {
		t.Fatal(err)
	}
	return s, fig.Render()
}

// TestExplainInvariantHoldsOnRealRuns is the end-to-end attribution
// gate: trace every measured demand load through real Standard and DAS
// runs and require that every sampled request decomposed exactly —
// Explain fails on any recorder with a components-sum-to-total
// violation, and the recorders must actually have seen traffic.
func TestExplainInvariantHoldsOnRealRuns(t *testing.T) {
	s, report := explainSession(t)

	recorders := 0
	for _, o := range s.Observers() {
		if o.Req == nil {
			continue
		}
		recorders++
		if o.Req.Requests() == 0 {
			t.Errorf("%s: recorder saw no requests", o.Label)
		}
		if v := o.Req.Violations(); v != 0 {
			t.Errorf("%s: %d invariant violation(s); first: %s", o.Label, v, o.Req.FirstViolation())
		}
		if v := o.Req.EnergyViolations(); v != 0 {
			t.Errorf("%s: %d energy violation(s); first: %s", o.Label, v, o.Req.FirstEnergyViolation())
		}
		if o.Req.EnergySumPJ() <= 0 {
			t.Errorf("%s: no energy attributed to traced requests", o.Label)
		}
	}
	// Two designs x two workloads.
	if recorders != 4 {
		t.Fatalf("recorders = %d, want 4", recorders)
	}

	for _, want := range []string{
		"Why Standard ≠ DAS-DRAM",
		"largest driver:",
		"workload", "migration", "conflict",
		"components sum exactly to total",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("explain report missing %q:\n%s", want, report)
		}
	}
}

// TestExplainDeterministic renders the report from two independent
// sessions: same config and seed, so the bytes must match exactly
// (results_explain.txt is committed and diffed).
func TestExplainDeterministic(t *testing.T) {
	_, first := explainSession(t)
	_, second := explainSession(t)
	if first != second {
		t.Fatalf("explain report not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestExplainRequiresTracing: without ReqTraceN the report cannot be
// built and the error must say so rather than producing empty tables.
func TestExplainRequiresTracing(t *testing.T) {
	s := NewSession(tinyConfig())
	s.Benchmarks = []string{"mcf"}
	if _, err := s.Explain(core.Standard, core.DAS); err == nil || !strings.Contains(err.Error(), "ReqTraceN") {
		t.Fatalf("Explain without tracing: err = %v", err)
	}
	s.Observe = &ObserveOptions{Metrics: true}
	if _, err := s.Explain(core.Standard, core.DAS); err == nil {
		t.Fatal("Explain with tracing off accepted")
	}
}

// TestReqTraceExportFromSession checks the session-level sink plumbing
// dasbench's -reqtrace-out uses: deterministic CSV with one block per
// run label, and JSON naming each run.
func TestReqTraceExportFromSession(t *testing.T) {
	s, _ := explainSession(t)
	var csv1, csv2, js bytes.Buffer
	if err := s.WriteReqTraceCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteReqTraceCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Fatal("request-trace CSV not deterministic across writes")
	}
	if !strings.Contains(csv1.String(), "run,requests,violations,energy_violations,component,sum_ns,mean_ns,share_pct,p50_ns,p95_ns,p99_ns,energy_pj,energy_mean_pj") {
		t.Fatalf("CSV header missing:\n%.300s", csv1.String())
	}
	for _, comp := range []string{"total", "cache", "queue", "service", "fill"} {
		if !strings.Contains(csv1.String(), ","+comp+",") {
			t.Errorf("CSV missing component %q", comp)
		}
	}
	if err := s.WriteReqTraceJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"run"`) || !strings.Contains(js.String(), `"components"`) {
		t.Fatalf("JSON export missing run/components fields:\n%.300s", js.String())
	}
}

// TestSamplingStrideReducesRequests: a sparser sampling stride must
// trace strictly fewer requests than tracing everything, while leaving
// the attribution machinery (and the invariant) intact.
func TestSamplingStrideReducesRequests(t *testing.T) {
	run := func(n int) uint64 {
		s := NewSession(tinyConfig())
		s.Benchmarks = []string{"mcf"}
		s.Observe = &ObserveOptions{ReqTraceN: n}
		if _, err := s.Baseline([]string{"mcf"}); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, o := range s.Observers() {
			if o.Req == nil {
				t.Fatalf("run with ReqTraceN=%d has no recorder", n)
			}
			if v := o.Req.Violations(); v != 0 {
				t.Fatalf("ReqTraceN=%d: %d violation(s): %s", n, v, o.Req.FirstViolation())
			}
			total += o.Req.Requests()
		}
		return total
	}
	every, sparse := run(1), run(16)
	if every == 0 || sparse == 0 {
		t.Fatalf("no requests traced: every=%d sparse=%d", every, sparse)
	}
	if sparse >= every {
		t.Fatalf("1-in-16 sampling traced %d requests, full tracing %d", sparse, every)
	}
}
