package exp

import (
	"testing"

	"repro/internal/core"
)

// TestLiveProgressTracksRun pins the streaming-progress counters: they
// advance during a run (not only at its end), land exactly on the
// end-of-run totals, and never run ahead of them. The figure bytes of a
// run with live counters attached must match an unattached run — live
// progress reads engine state at observation points and writes nothing
// back, so this is the perturbation-free gate at unit scale.
func TestLiveProgressTracksRun(t *testing.T) {
	cfg := tinyConfig()
	s := NewSession(cfg)
	res, err := s.Baseline([]string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.LiveEvents(), s.EventsExecuted(); got != want {
		t.Fatalf("LiveEvents = %d after run end, want %d (end-of-run total)", got, want)
	}
	// Live instrs count every retirement including warm-up; the
	// end-of-run counter holds the measured window only, so live must
	// land exactly on the full per-core quota and above the counter.
	if got, want := s.LiveInstrs(), cfg.InstrPerCore; got != want {
		t.Fatalf("LiveInstrs = %d after run end, want the full quota %d", got, want)
	}
	if s.LiveInstrs() < s.InstrsRetired() {
		t.Fatalf("LiveInstrs %d < measured-window total %d", s.LiveInstrs(), s.InstrsRetired())
	}
	if s.LiveSimNS() <= 0 {
		t.Fatal("LiveSimNS did not advance")
	}
	if res.Events == 0 {
		t.Fatal("run executed no events")
	}
}

// TestLiveProgressParallelMatchesSequential runs the same design
// sequentially and on the parallel engine: final live totals must be
// identical (the parallel engine's barrier observations feed the same
// counters), and the parallel session must hold a shard profile whose
// components telescope.
func TestLiveProgressParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	seqCfg := tinyConfig()
	seq := NewSession(seqCfg)
	if _, err := seq.Run(seqCfg, core.DAS, []string{"mcf"}); err != nil {
		t.Fatal(err)
	}

	parCfg := tinyConfig()
	parCfg.Parallel = 2
	par := NewSession(parCfg)
	if _, err := par.Run(parCfg, core.DAS, []string{"mcf"}); err != nil {
		t.Fatal(err)
	}

	if seq.LiveEvents() != par.LiveEvents() {
		t.Fatalf("live events diverge: sequential %d, parallel %d", seq.LiveEvents(), par.LiveEvents())
	}
	if seq.LiveInstrs() != par.LiveInstrs() {
		t.Fatalf("live instrs diverge: sequential %d, parallel %d", seq.LiveInstrs(), par.LiveInstrs())
	}

	if p := seq.ShardProfile(); p.Runs != 0 {
		t.Fatalf("sequential session recorded %d parallel runs", p.Runs)
	}
	p := par.ShardProfile()
	if p.Runs != 1 {
		t.Fatalf("parallel session recorded %d runs, want 1", p.Runs)
	}
	for _, u := range []ShardUsage{p.Up, p.Down} {
		if u.Epochs == 0 || u.WallNS <= 0 {
			t.Fatalf("empty shard usage: %+v", u)
		}
		if sum := u.BusyNS + u.WaitNS + u.BarrierNS; sum != u.WallNS {
			t.Fatalf("shard usage does not telescope: busy %d + wait %d + barrier %d != wall %d",
				u.BusyNS, u.WaitNS, u.BarrierNS, u.WallNS)
		}
	}
	fig, err := par.ShardReport()
	if err != nil {
		t.Fatal(err)
	}
	if fig.Render() == "" {
		t.Fatal("empty shard report")
	}
	if _, err := seq.ShardReport(); err == nil {
		t.Fatal("ShardReport on a sequential session should error")
	}
}

// TestInstrHorizonEstimates sanity-checks the ETA denominators: known
// figures scale with the session's workload lists and quota; static
// tables are free; design runs count baseline + design.
func TestInstrHorizonEstimates(t *testing.T) {
	cfg := tinyConfig()
	s := NewSession(cfg)
	s.Benchmarks = []string{"mcf", "lbm"}
	s.Mixes = []string{"M1"}
	q := cfg.InstrPerCore
	cases := map[string]uint64{
		"table2": 0,
		"7a":     2 * 6 * q,
		"7b":     2 * 1 * q,
		"7d":     1 * 6 * 4 * q,
		"power":  2 * 5 * q,
	}
	for name, want := range cases {
		if got := s.InstrHorizon(name); got != want {
			t.Errorf("InstrHorizon(%q) = %d, want %d", name, got, want)
		}
	}
	if got, want := s.DesignInstrHorizon(core.Standard, []string{"mcf"}), q; got != want {
		t.Errorf("DesignInstrHorizon(standard) = %d, want %d", got, want)
	}
	if got, want := s.DesignInstrHorizon(core.DAS, []string{"mcf", "lbm"}), 2*2*q; got != want {
		t.Errorf("DesignInstrHorizon(das) = %d, want %d", got, want)
	}
}
