package exp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// The parallel equivalence suite: the sharded engine (config.Parallel
// >= 2) must be indistinguishable from the sequential one at the
// strongest observable — the exact DRAM command stream — and at the
// user-facing one — rendered figure bytes. scripts/check.sh runs this
// under the default scheduler, mc_polltick and sim_refheap, so every
// (queue, scheduler, engine) combination is pinned to the same stream.

// TestParallelEquivalence asserts the FNV-1a command-stream digest of
// every stream case (all six designs, closed-page, a multicore mix) is
// byte-identical between the sequential engine and 2- and 4-shard
// parallel runs.
func TestParallelEquivalence(t *testing.T) {
	for _, sc := range streamCases() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seqN, seqSum := streamDigest(t, sc, 0)
			for _, p := range []int{2, 4} {
				n, sum := streamDigest(t, sc, p)
				if n != seqN || sum != seqSum {
					t.Errorf("parallel=%d diverged: commands=%d fnv64a=%016x, sequential commands=%d fnv64a=%016x",
						p, n, sum, seqN, seqSum)
				}
			}
		})
	}
}

// TestParallelFigureBytes renders Figure 7a with the sequential and the
// parallel engine from separate sessions and asserts identical bytes.
func TestParallelFigureBytes(t *testing.T) {
	render := func(parallel int) string {
		cfg := tinyConfig()
		cfg.Parallel = parallel
		s := NewSession(cfg)
		fig, err := s.Figure("7a")
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return fig.Render()
	}
	seq := render(0)
	for _, p := range []int{2, 4} {
		if par := render(p); par != seq {
			t.Errorf("figure 7a bytes differ between sequential and parallel=%d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				p, seq, par)
		}
	}
}

// TestParallelTelemetryBytes runs an observed figure both ways and
// asserts the merged metrics timeline is byte-identical: the down
// shard's private registry (Observer.RegMC) must merge into the same
// sorted snapshot the sequential single-registry run produces.
func TestParallelTelemetryBytes(t *testing.T) {
	render := func(parallel int) string {
		cfg := tinyConfig()
		cfg.Parallel = parallel
		s := NewSession(cfg)
		s.Observe = &ObserveOptions{Metrics: true}
		if _, err := s.Figure("7a"); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var b strings.Builder
		if err := s.WriteTimelineCSV(&b); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return b.String()
	}
	seq := render(0)
	if par := render(2); par != seq {
		t.Errorf("timeline CSV differs between sequential and parallel runs (%d vs %d bytes)", len(seq), len(par))
	}
}

// TestParallelResultEquivalence runs one multicore DAS case both ways
// and checks the collected Result matches field-for-field — including
// the executed event count, which the parallel engine sums across
// shards.
func TestParallelResultEquivalence(t *testing.T) {
	run := func(parallel int) *Result {
		cfg := tinyConfig()
		cfg.Cores = 2
		cfg.Parallel = parallel
		sys, _, err := Build(cfg, core.DAS, []string{"mcf", "soplex"}, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	seq := run(0)
	par := run(2)
	if got, want := fmt.Sprintf("%+v", par), fmt.Sprintf("%+v", seq); got != want {
		t.Errorf("results diverged:\nsequential: %s\nparallel:   %s", want, got)
	}
}
