package exp

import (
	"os"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

func TestCalibration10M(t *testing.T) {
	if os.Getenv("CALIBRATE") != "1" {
		t.Skip("set CALIBRATE=1 to run")
	}
	cfg := config.Scaled()
	cfg.InstrPerCore = 10_000_000
	s := NewSession(cfg)
	for _, name := range []string{"astar", "cactusADM", "GemsFDTD", "lbm", "leslie3d", "libquantum", "mcf", "milc", "omnetpp", "soplex"} {
		start := time.Now()
		base, err := s.Baseline([]string{name})
		if err != nil {
			t.Fatal(err)
		}
		das, imp, err := s.RunVs(cfg, core.DAS, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		_, impSAS, err := s.RunVs(cfg, core.SAS, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		_, impFS, err := s.RunVs(cfg, core.FS, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		_, impFM, err := s.RunVs(cfg, core.DASFM, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		rb, fast, slow := das.Access.Fractions()
		t.Logf("%-11s wall=%v IPC=%.2f MPKI=%4.1f | DAS %+6.2f%% FM %+6.2f%% SAS %+6.2f%% FS %+6.2f%% | PPKM=%5.1f rb/f/s=%.2f/%.2f/%.2f tag=%.2f",
			name, time.Since(start).Round(time.Second), base.PerCore[0].IPC, base.PerCore[0].MPKI,
			imp, impFM, impSAS, impFS, das.PerCore[0].PPKM, rb, fast, slow, das.TagHitRatio)
	}
}
