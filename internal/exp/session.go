package exp

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/core"
)

// Session caches Standard-DRAM baseline runs (and the row profiles they
// produce) so that every design and sweep point of a figure reuses the
// same baseline, exactly as the paper normalizes every bar to the same
// standard-DRAM run.
type Session struct {
	Cfg config.Config
	// Parallelism bounds concurrent runs (defaults to GOMAXPROCS).
	Parallelism int
	// Benchmarks restricts the single-programmed figures to a subset of
	// the Table 2 catalog (empty = all ten).
	Benchmarks []string
	// Mixes restricts the multi-programmed figures to a subset of M1-M8
	// (empty = all eight).
	Mixes []string

	// Observe, when non-nil, makes every fresh run record telemetry
	// (metrics timeline and/or Chrome trace) into a per-run Observer;
	// completed observers are collected for the session sinks (see
	// WriteTimelineCSV, WriteTrace). Nil (the default) builds fully
	// uninstrumented systems. Set before the first run.
	Observe *ObserveOptions

	// Pool overrides the machine pool fresh runs check out of (nil = the
	// package-level DefaultPool). A pooled run reuses a previously built
	// machine of the same shape via System.Reset — byte-identical to a
	// fresh Build — and returns it afterwards. Set before the first run.
	Pool *SystemPool

	// DisablePool forces every run to build a fresh machine and release
	// its storage afterwards (the pre-pool lifecycle). The byte-identity
	// suite and the benchmark harness's fresh-build reference use it.
	DisablePool bool

	// Ctx, when non-nil, is polled cooperatively by every run this
	// session performs (at the run loop's observation stride and between
	// parallel jobs), so cancelling it stops in-flight work promptly.
	// Set before the first run; nil means context.Background(). Note
	// that memoized entries record a cancellation error like any other
	// failure — a cancelled session is finished, not resumable, which is
	// exactly the service-core contract (one Session per job).
	Ctx context.Context

	mu        sync.Mutex
	baselines map[string]*baselineEntry
	results   map[string]*resultEntry
	observers observerSet

	// events totals engine events executed by this session's fresh runs
	// (cache hits add nothing), feeding the per-figure events/sec
	// reporting and the benchmark suite.
	events atomic.Uint64

	// instrs totals instructions retired by this session's fresh runs.
	// Unlike events it is invariant under scheduler changes (next-event
	// versus per-cycle polling executes the same retirement stream with
	// far fewer events), so instr/s is the benchmark throughput metric
	// that stays comparable across engine rewrites.
	instrs atomic.Uint64

	// energyPJ totals modeled DRAM energy (dynamic plus background,
	// exact integer picojoules) across this session's fresh runs, feeding
	// the benchmark suite's pJ/instr metric.
	energyPJ atomic.Int64

	// live is the streaming-progress view of the same totals, advanced
	// while runs are in flight (see progress.go). events/instrs above
	// keep their end-of-run semantics; live serves watchdogs and SSE.
	live liveProgress

	// parProf aggregates the parallel engine's per-shard occupancy
	// profiles across this session's runs (see progress.go).
	parMu   sync.Mutex
	parProf ParProfile
}

type resultEntry struct {
	once sync.Once
	res  *Result
	err  error
}

type baselineEntry struct {
	once sync.Once
	res  *Result
	err  error

	profOnce sync.Once
	profile  *core.RowProfile
	profErr  error

	statics map[int]*core.StaticAssignment // keyed by fast denominator
	staticM sync.Mutex
}

// NewSession creates a session over cfg.
func NewSession(cfg config.Config) *Session {
	return &Session{
		Cfg:         cfg,
		Parallelism: runtime.GOMAXPROCS(0),
		baselines:   make(map[string]*baselineEntry),
		results:     make(map[string]*resultEntry),
	}
}

// context returns the session's cancellation context (Background when
// none was set).
func (s *Session) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

func wkey(benchmarks []string) string { return strings.Join(benchmarks, "+") }

// cfgFor adapts the session config to a benchmark set: one core per
// benchmark (a set of four is a Table 2 mix on a 4-core system).
func (s *Session) cfgFor(benchmarks []string) config.Config {
	c := s.Cfg
	c.Cores = len(benchmarks)
	return c
}

// entry returns (creating once) the cache slot for a benchmark set.
func (s *Session) entry(benchmarks []string) *baselineEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.baselines[wkey(benchmarks)]
	if !ok {
		e = &baselineEntry{statics: make(map[int]*core.StaticAssignment)}
		s.baselines[wkey(benchmarks)] = e
	}
	return e
}

// EventsExecuted reports the total engine events executed by runs this
// session performed (memoized results count once, when they ran).
func (s *Session) EventsExecuted() uint64 { return s.events.Load() }

// InstrsRetired reports the total instructions retired by runs this
// session performed (memoized results count once, when they ran).
func (s *Session) InstrsRetired() uint64 { return s.instrs.Load() }

// EnergyPJ reports the total modeled DRAM energy (dynamic plus
// background, exact integer picojoules) of runs this session performed.
func (s *Session) EnergyPJ() int64 { return s.energyPJ.Load() }

// countRun folds one fresh run's totals into the session counters.
func (s *Session) countRun(res *Result) {
	if res == nil {
		return
	}
	s.events.Add(res.Events)
	var n uint64
	for _, c := range res.PerCore {
		n += c.Retired
	}
	s.instrs.Add(n)
	s.energyPJ.Add(res.Energy.TotalPJ())
}

// machinePool returns the pool fresh runs check out of (nil = off).
func (s *Session) machinePool() *SystemPool {
	if s.DisablePool {
		return nil
	}
	if s.Pool != nil {
		return s.Pool
	}
	return DefaultPool
}

// build acquires a machine for one run: a pooled machine of matching
// shape rewound in place when available, a fresh Build otherwise. The
// returned system is marked for checkin — pass it to finishRun once the
// run completes.
func (s *Session) build(cfg config.Config, design core.Design, benchmarks []string, static *core.StaticAssignment) (*System, error) {
	p := s.machinePool()
	if p != nil {
		if sys := p.Get(&cfg, design); sys != nil {
			if _, err := sys.Reset(cfg, design, benchmarks, static, false); err == nil {
				return sys, nil
			}
			// An invalid cfg (or a shape the key failed to pin) must not
			// re-pool a half-reset machine; recycle its storage and let the
			// fresh path report the error.
			sys.free()
		}
	}
	sys, _, err := Build(cfg, design, benchmarks, static, false)
	if err != nil {
		return nil, err
	}
	if p != nil {
		sys.pool = p
	}
	return sys, nil
}

// finishRun returns a pooled machine after its run: checked back in on
// success, storage-recycled on failure (a failed run may have died
// mid-event with arbitrary in-flight state; rebuilding is cheaper than
// proving such a machine rewindable).
func (s *Session) finishRun(sys *System, err error) {
	if p := sys.pool; p != nil {
		if err != nil {
			sys.free()
			return
		}
		p.Put(sys)
	}
}

// Baseline runs (once) the Standard design for the benchmark set.
func (s *Session) Baseline(benchmarks []string) (*Result, error) {
	e := s.entry(benchmarks)
	e.once.Do(func() {
		cfg := s.cfgFor(benchmarks)
		sys, err := s.build(cfg, core.Standard, benchmarks, nil)
		if err != nil {
			e.err = err
			return
		}
		obs := newObserver(resultKey(cfg, core.Standard, benchmarks), cfg.Seed, s.Observe)
		sys.AttachObserver(obs)
		sys.attachLive(&s.live)
		e.res, e.err = sys.RunContext(s.context())
		if e.err == nil {
			s.observers.add(obs)
			s.foldPar(sys)
		}
		s.finishRun(sys, e.err)
		s.countRun(e.res)
	})
	return e.res, e.err
}

// Profile returns (computing once) the offline long-window row profile
// for the benchmark set.
func (s *Session) Profile(benchmarks []string) (*core.RowProfile, error) {
	e := s.entry(benchmarks)
	e.profOnce.Do(func() {
		e.profile, e.profErr = ProfilePass(s.cfgFor(benchmarks), benchmarks)
	})
	return e.profile, e.profErr
}

// StaticAssignment returns (building once) the profiled fast-row set for
// the benchmark set at the given fast-level denominator.
func (s *Session) StaticAssignment(benchmarks []string, fastDenom int) (*core.StaticAssignment, error) {
	prof, err := s.Profile(benchmarks)
	if err != nil {
		return nil, err
	}
	e := s.entry(benchmarks)
	e.staticM.Lock()
	defer e.staticM.Unlock()
	if a, ok := e.statics[fastDenom]; ok {
		return a, nil
	}
	a := core.BuildStaticAssignment(prof, s.Cfg.Geometry(), fastDenom)
	e.statics[fastDenom] = a
	return a, nil
}

// Run executes one design over a benchmark set using cfg (which may be a
// sweep variant of the session config differing only in management
// parameters; the cached baseline remains valid because Standard DRAM
// ignores them).
func (s *Session) Run(cfg config.Config, design core.Design, benchmarks []string) (*Result, error) {
	cfg.Cores = len(benchmarks)
	var static *core.StaticAssignment
	if design.Static() {
		a, err := s.StaticAssignment(benchmarks, cfg.FastDenom)
		if err != nil {
			return nil, err
		}
		static = a
	}
	sys, err := s.build(cfg, design, benchmarks, static)
	if err != nil {
		return nil, err
	}
	obs := newObserver(resultKey(cfg, design, benchmarks), cfg.Seed, s.Observe)
	sys.AttachObserver(obs)
	sys.attachLive(&s.live)
	res, err := sys.RunContext(s.context())
	if err == nil {
		s.observers.add(obs)
		s.foldPar(sys)
	}
	s.finishRun(sys, err)
	s.countRun(res)
	return res, err
}

// resultKey identifies a run by its design, benchmarks, and every
// configuration knob a sweep can vary (including the fault knobs the
// robustness sweeps iterate).
func resultKey(cfg config.Config, design core.Design, benchmarks []string) string {
	return fmt.Sprintf("%v|%s|mig%v|fd%d|gs%d|tc%d|ft%d|rp%s|n%d|cp%v|fw%v|fm%v|fr%d|ftg%v|ftb%v|fs%d",
		design, wkey(benchmarks), cfg.MigrationLatencyNS, cfg.FastDenom,
		cfg.GroupSize, cfg.TagCacheKB, cfg.FilterThreshold, cfg.Replacement,
		cfg.InstrPerCore, cfg.ClosedPage,
		cfg.WeakRowRate, cfg.MigFailRate, cfg.MigRetries,
		cfg.TagCorruptRate, cfg.TableCorruptRate, cfg.FaultSeed)
}

// Cached runs (once) a design over benchmarks with cfg and memoizes the
// result, so figures sharing runs (e.g. 7a/7b/7c) reuse them.
func (s *Session) Cached(cfg config.Config, design core.Design, benchmarks []string) (*Result, error) {
	if design == core.Standard {
		return s.Baseline(benchmarks)
	}
	key := resultKey(cfg, design, benchmarks)
	s.mu.Lock()
	e, ok := s.results[key]
	if !ok {
		e = &resultEntry{}
		s.results[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.res, e.err = s.Run(cfg, design, benchmarks) })
	return e.res, e.err
}

// CachedVs is Cached plus the improvement over the Standard baseline.
func (s *Session) CachedVs(cfg config.Config, design core.Design, benchmarks []string) (*Result, float64, error) {
	base, err := s.Baseline(benchmarks)
	if err != nil {
		return nil, 0, err
	}
	res, err := s.Cached(cfg, design, benchmarks)
	if err != nil {
		return nil, 0, err
	}
	if design == core.Standard {
		return base, 0, nil
	}
	return res, res.Improvement(base), nil
}

// RunVs runs design and returns (result, improvement-vs-baseline%).
func (s *Session) RunVs(cfg config.Config, design core.Design, benchmarks []string) (*Result, float64, error) {
	base, err := s.Baseline(benchmarks)
	if err != nil {
		return nil, 0, err
	}
	if design == core.Standard {
		return base, 0, nil
	}
	res, err := s.Run(cfg, design, benchmarks)
	if err != nil {
		return nil, 0, err
	}
	return res, res.Improvement(base), nil
}

// job is one unit of parallel work.
type job func() error

// runAll executes jobs with bounded parallelism, returning the first
// error.
func (s *Session) runAll(jobs []job) error {
	par := s.Parallelism
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	errc := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Cancellation check at the job boundary: once the session
			// context dies, queued jobs fail fast instead of starting
			// fresh runs (in-flight runs notice via RunContext).
			if err := s.context().Err(); err != nil {
				errc <- err
				return
			}
			if err := j(); err != nil {
				errc <- err
			}
		}(j)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return fmt.Errorf("exp: %w", err)
		}
	}
	return nil
}

// Prewarm computes the baselines for all benchmark sets in parallel so
// subsequent figure runs parallelize fully.
func (s *Session) Prewarm(sets [][]string) error {
	jobs := make([]job, 0, len(sets))
	for _, set := range sets {
		set := set
		jobs = append(jobs, func() error {
			_, err := s.Baseline(set)
			return err
		})
	}
	return s.runAll(jobs)
}
