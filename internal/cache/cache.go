// Package cache implements set-associative write-back caches with MSHRs,
// used to build the three-level hierarchy of Table 1 (private L1 and L2,
// shared LLC). The hierarchy is non-inclusive and has no coherence
// protocol: workloads in this reproduction never share blocks between
// cores (each core owns a disjoint address range), matching the
// multi-programmed — not multi-threaded — evaluation of the paper.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	BlockSize int
	// Latency is the lookup latency of this level (charged on entry).
	// Per-level lookup latencies add up along the walk, so the defaults
	// elsewhere choose increments that reproduce Table 1's cumulative
	// hit latencies (4 / 12 / 20 CPU cycles).
	Latency sim.Time
	// MSHRs bounds outstanding misses; further misses queue behind them.
	MSHRs int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockSize <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: sizes must be positive", c.Name)
	}
	if c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache %s: block size must be a power of two, got %d", c.Name, c.BlockSize)
	}
	lines := c.SizeBytes / c.BlockSize
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by associativity %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count must be a power of two, got %d", c.Name, sets)
	}
	if c.Latency < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// line is one cache line's metadata (the simulator carries no data).
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// mshr tracks one outstanding fill and the requests waiting on it.
// Slots are recycled through the cache's free list with their fill
// request's completion bound once, so a steady-state miss allocates
// nothing: the pool high-water mark is the configured MSHR count (plus
// unbounded-by-config Meta fetches, in practice a handful).
type mshr struct {
	c         *Cache
	blockAddr uint64
	waiters   []*mem.Request
	fillReq   mem.Request
}

// filled completes the fill this slot tracks.
func (m *mshr) filled() { m.c.fill(m) }

// Stats counts cache activity. Misses are demand misses (writeback and
// coalesced accesses are tracked separately).
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Coalesced  uint64 // misses merged into an existing MSHR
	Writebacks uint64 // dirty evictions pushed to the next level
	WBForward  uint64 // writeback misses forwarded without allocation
	// PerCoreMisses is indexed by Request.Core when non-negative.
	PerCoreMisses []uint64
	// MetaMisses counts translation-table (Meta) misses.
	MetaMisses uint64
}

// Cache is one write-back, write-allocate cache level.
type Cache struct {
	cfg     Config
	eng     *sim.Engine
	lower   mem.Component
	sets    [][]line
	setMask uint64
	blkBits uint
	lruTick uint64

	mshrs    map[uint64]*mshr
	mshrPool []*mshr        // recycled MSHR slots
	pending  []*mem.Request // waiting for a free MSHR
	wbFree   []*wbSlot      // recycled writeback requests

	// tel is the live instrument set (nil = telemetry off, the default;
	// see AttachTelemetry).
	tel *cacheTelemetry

	Stats Stats
}

// New builds a cache in front of lower. cores sizes the per-core miss
// counters (0 disables them).
func New(cfg Config, eng *sim.Engine, lower mem.Component, cores int) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: nil lower level", cfg.Name)
	}
	lines := cfg.SizeBytes / cfg.BlockSize
	nsets := lines / cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		eng:     eng,
		lower:   lower,
		sets:    make([][]line, nsets),
		setMask: uint64(nsets - 1),
		mshrs:   make(map[uint64]*mshr),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for b := cfg.BlockSize; b > 1; b >>= 1 {
		c.blkBits++
	}
	if cores > 0 {
		c.Stats.PerCoreMisses = make([]uint64, cores)
	}
	return c, nil
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) blockAddr(addr uint64) uint64 { return addr >> c.blkBits << c.blkBits }
func (c *Cache) setIndex(block uint64) uint64 { return (block >> c.blkBits) & c.setMask }

// lookupEvent is the shared trampoline Access schedules through; with
// the (cache, request) pair carried as bound arguments, entering a
// level allocates nothing (a fresh closure here escaped once per access
// per level and dominated the simulator's allocation profile).
func lookupEvent(a, b any) { a.(*Cache).lookup(b.(*mem.Request)) }

// Access enters a request into this level after the lookup latency.
func (c *Cache) Access(req *mem.Request) {
	c.eng.ScheduleCall(c.cfg.Latency, lookupEvent, c, req)
}

// lookup performs the tag match after the access latency has elapsed.
func (c *Cache) lookup(req *mem.Request) {
	c.Stats.Accesses++
	block := c.blockAddr(req.Addr)
	set := c.sets[c.setIndex(block)]
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == block {
			c.Stats.Hits++
			c.lruTick++
			ln.lru = c.lruTick
			if req.Write {
				ln.dirty = true
			}
			req.Complete()
			return
		}
	}
	// Miss.
	if req.Writeback {
		// Dirty eviction from above that misses here: forward it down
		// without allocating. Fetch-on-writeback would waste bandwidth
		// on a block the upper level just evicted.
		c.Stats.WBForward++
		c.lower.Access(req)
		return
	}
	c.Stats.Misses++
	if req.Core >= 0 && req.Core < len(c.Stats.PerCoreMisses) {
		c.Stats.PerCoreMisses[req.Core]++
	}
	if req.Meta {
		c.Stats.MetaMisses++
	}
	if m, ok := c.mshrs[block]; ok {
		c.Stats.Coalesced++
		if req.Trace != nil {
			req.Trace.StampMerge(c.eng.Now())
		}
		m.waiters = append(m.waiters, req)
		return
	}
	// Meta (translation-table) fetches bypass the MSHR cap: demand misses
	// holding all MSHRs may themselves be waiting on this very fetch, so
	// queueing it would deadlock the hierarchy. Hardware gives the
	// controller's table fetches their own buffer for the same reason.
	if len(c.mshrs) >= c.cfg.MSHRs && !req.Meta {
		c.pending = append(c.pending, req)
		return
	}
	c.allocateMSHR(block, req)
}

// allocateMSHR starts a fill for block with req as first waiter,
// recycling a pooled slot when one is free.
func (c *Cache) allocateMSHR(block uint64, req *mem.Request) {
	var m *mshr
	if n := len(c.mshrPool); n > 0 {
		m = c.mshrPool[n-1]
		c.mshrPool = c.mshrPool[:n-1]
	} else {
		m = &mshr{c: c}
		m.fillReq.Done = m.filled
	}
	m.blockAddr = block
	m.waiters = append(m.waiters[:0], req)
	c.mshrs[block] = m
	m.fillReq.Addr = block
	m.fillReq.Core = req.Core
	m.fillReq.Meta = req.Meta
	m.fillReq.Issued = c.eng.Now()
	// The fill inherits the leader's span so the lower levels keep
	// stamping the same record; cleared again in fill before the slot is
	// recycled.
	m.fillReq.Trace = req.Trace
	if c.tel != nil {
		c.tel.mshrOcc.Observe(uint64(len(c.mshrs)))
	}
	c.lower.Access(&m.fillReq)
}

// fill installs the block and releases waiters when the lower level
// returns data, then recycles the slot (nothing below holds a
// reference to the fill request once its Done has fired).
func (c *Cache) fill(m *mshr) {
	if c.tel != nil {
		c.tel.fillLat.Observe(uint64((c.eng.Now() - m.fillReq.Issued) / sim.Nanosecond))
	}
	delete(c.mshrs, m.blockAddr)
	c.install(m.blockAddr, m.waiters)
	for _, w := range m.waiters {
		w.Complete()
	}
	c.drainPending()
	for i := range m.waiters {
		m.waiters[i] = nil
	}
	m.fillReq.Trace = nil
	c.mshrPool = append(c.mshrPool, m)
}

// wbSlot is one pooled writeback request. Its Done — bound once, like
// an MSHR's fill completion — is the recycle hook: a writeback is
// finished with everywhere the moment it completes (a lower-level hit
// stores and completes it; a forward all the way down is acked at the
// controller's posted-write enqueue), and every completion path runs on
// this cache's goroutine, so the freelist needs no lock.
type wbSlot struct {
	r      mem.Request
	c      *Cache
	doneFn func()
}

// recycle returns the slot to its cache's freelist.
func (s *wbSlot) recycle() {
	s.r.Trace = nil
	s.c.wbFree = append(s.c.wbFree, s)
}

// wbSlot pops a recycled writeback slot or mints one.
func (c *Cache) wbSlot() *wbSlot {
	if n := len(c.wbFree); n > 0 {
		s := c.wbFree[n-1]
		c.wbFree[n-1] = nil
		c.wbFree = c.wbFree[:n-1]
		return s
	}
	s := &wbSlot{c: c}
	s.doneFn = s.recycle
	return s
}

// install places block into its set, writing back the dirty victim.
func (c *Cache) install(block uint64, waiters []*mem.Request) {
	set := c.sets[c.setIndex(block)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && v.dirty {
		c.Stats.Writebacks++
		wb := c.wbSlot()
		wb.r = mem.Request{
			Addr:      v.tag,
			Write:     true,
			Writeback: true,
			Core:      -1,
			Issued:    c.eng.Now(),
			Done:      wb.doneFn,
		}
		c.lower.Access(&wb.r)
	}
	c.lruTick++
	dirty := false
	for _, w := range waiters {
		if w.Write {
			dirty = true
		}
	}
	*v = line{tag: block, valid: true, dirty: dirty, lru: c.lruTick}
}

// drainPending retries queued misses now that an MSHR freed up.
func (c *Cache) drainPending() {
	for len(c.pending) > 0 && len(c.mshrs) < c.cfg.MSHRs {
		req := c.pending[0]
		copy(c.pending, c.pending[1:])
		c.pending = c.pending[:len(c.pending)-1]
		block := c.blockAddr(req.Addr)
		if m, ok := c.mshrs[block]; ok {
			c.Stats.Coalesced++
			if req.Trace != nil {
				req.Trace.StampMerge(c.eng.Now())
			}
			m.waiters = append(m.waiters, req)
			continue
		}
		// Re-check the tags: an earlier fill may have brought the block in
		// while this request sat in the pending queue.
		set := c.sets[c.setIndex(block)]
		hit := false
		for i := range set {
			ln := &set[i]
			if ln.valid && ln.tag == block {
				c.lruTick++
				ln.lru = c.lruTick
				if req.Write {
					ln.dirty = true
				}
				req.Complete()
				hit = true
				break
			}
		}
		if !hit {
			c.allocateMSHR(block, req)
		}
	}
}

// Reset rewinds the cache to its just-constructed state for in-place
// reuse (exp.SystemPool): all lines invalidate, the LRU clock rewinds,
// outstanding MSHRs and queued misses drop, and statistics zero. The
// set arrays, MSHR map buckets, and recycled MSHR slots (whose fill
// completions bind this *Cache once) are all retained, so a reset
// allocates nothing. Telemetry detaches; re-attach per run.
func (c *Cache) Reset() {
	for i := range c.sets {
		set := c.sets[i]
		for j := range set {
			set[j] = line{}
		}
	}
	c.lruTick = 0
	for block, m := range c.mshrs {
		for i := range m.waiters {
			m.waiters[i] = nil
		}
		m.waiters = m.waiters[:0]
		m.fillReq.Trace = nil
		m.fillReq.Done = m.filled
		c.mshrPool = append(c.mshrPool, m)
		delete(c.mshrs, block)
	}
	clear(c.pending)
	c.pending = c.pending[:0]
	c.tel = nil
	c.ResetStats()
}

// Contains reports whether block-aligned addr is resident (test helper and
// used by property tests; not on the timing path).
func (c *Cache) Contains(addr uint64) bool {
	block := c.blockAddr(addr)
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// OutstandingMisses reports the number of live MSHRs (diagnostics).
func (c *Cache) OutstandingMisses() int { return len(c.mshrs) }

// ResetStats zeroes counters (warm-up boundary).
func (c *Cache) ResetStats() {
	perCore := c.Stats.PerCoreMisses
	c.Stats = Stats{}
	if perCore != nil {
		for i := range perCore {
			perCore[i] = 0
		}
		c.Stats.PerCoreMisses = perCore
	}
}
