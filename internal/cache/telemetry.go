package cache

import (
	"repro/internal/telemetry"
)

// cacheTelemetry is the cache's live instrument set (nil = off).
type cacheTelemetry struct {
	mshrOcc *telemetry.Histogram // live MSHRs right after each allocation
	fillLat *telemetry.Histogram // fill issue -> data return, ns
}

// AttachTelemetry registers this cache's instruments on reg, named by
// the cache's configured name. Hit/miss/access counts are sampled from
// the existing Stats at snapshot time (no hot-path cost); only the two
// measurements Stats cannot express — MSHR occupancy and fill latency —
// get live instruments. Call once at assembly time.
func (c *Cache) AttachTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	prefix := "cache." + c.cfg.Name + "."
	c.tel = &cacheTelemetry{
		mshrOcc: reg.Histogram(prefix + "mshr_occupancy"),
		fillLat: reg.Histogram(prefix + "fill_latency_ns"),
	}
	reg.Sample(prefix+"accesses", func() int64 { return int64(c.Stats.Accesses) })
	reg.Sample(prefix+"hits", func() int64 { return int64(c.Stats.Hits) })
	reg.Sample(prefix+"misses", func() int64 { return int64(c.Stats.Misses) })
	reg.Sample(prefix+"coalesced", func() int64 { return int64(c.Stats.Coalesced) })
	reg.Sample(prefix+"writebacks", func() int64 { return int64(c.Stats.Writebacks) })
	reg.Sample(prefix+"mshr_live", func() int64 { return int64(len(c.mshrs)) })
	reg.Sample(prefix+"mshr_pending", func() int64 { return int64(len(c.pending)) })
}
