package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// refCache is a trivially-correct fully-synchronous model of an
// LRU set-associative cache used as the oracle.
type refCache struct {
	sets      map[uint64][]uint64 // set -> blocks in LRU order (front = LRU)
	assoc     int
	setMask   uint64
	blockBits uint
}

func newRefCache(sets, assoc int) *refCache {
	return &refCache{
		sets: make(map[uint64][]uint64), assoc: assoc,
		setMask: uint64(sets - 1), blockBits: 6,
	}
}

func (r *refCache) access(addr uint64) bool {
	block := addr >> r.blockBits << r.blockBits
	set := (block >> r.blockBits) & r.setMask
	lst := r.sets[set]
	for i, b := range lst {
		if b == block {
			// refresh to MRU
			lst = append(append(append([]uint64{}, lst[:i]...), lst[i+1:]...), block)
			r.sets[set] = lst
			return true
		}
	}
	if len(lst) == r.assoc {
		lst = lst[1:]
	}
	r.sets[set] = append(lst, block)
	return false
}

// TestCacheMatchesReferenceModel drives random synchronous access
// sequences through the simulated cache and the oracle, comparing
// hit/miss verdicts. (Accesses are fully serialized so MSHR effects do
// not apply.)
func TestCacheMatchesReferenceModel(t *testing.T) {
	check := func(seq []uint16) bool {
		eng := sim.NewEngine()
		be := &backend{eng: eng, delay: 5}
		const sets, assoc = 4, 2
		c, err := New(Config{
			Name: "prop", SizeBytes: sets * assoc * 64, Assoc: assoc,
			BlockSize: 64, Latency: 1, MSHRs: 8,
		}, eng, be, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefCache(sets, assoc)
		for _, v := range seq {
			addr := uint64(v) << 6 // one block per value
			hitsBefore := c.Stats.Hits
			done := false
			c.Access(&mem.Request{Addr: addr, Core: 0, Done: func() { done = true }})
			eng.Run()
			if !done {
				return false
			}
			gotHit := c.Stats.Hits > hitsBefore
			if gotHit != ref.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheNeverLosesRequests floods the cache with random concurrent
// accesses and checks that every Done fires exactly once.
func TestCacheNeverLosesRequests(t *testing.T) {
	check := func(seq []uint16, writes []bool) bool {
		eng := sim.NewEngine()
		be := &backend{eng: eng, delay: 50}
		c, err := New(Config{
			Name: "flood", SizeBytes: 1 << 10, Assoc: 2,
			BlockSize: 64, Latency: 2, MSHRs: 3,
		}, eng, be, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := len(seq)
		done := 0
		for i, v := range seq {
			w := i < len(writes) && writes[i]
			c.Access(&mem.Request{Addr: uint64(v) << 4, Write: w, Core: 0, Done: func() { done++ }})
		}
		eng.Run()
		return done == want && c.OutstandingMisses() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
