package cache

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// backend records requests and completes reads after a fixed delay.
type backend struct {
	eng      *sim.Engine
	delay    sim.Time
	reads    []uint64
	writes   []uint64
	metaSeen int
}

func (b *backend) Access(req *mem.Request) {
	if req.Meta {
		b.metaSeen++
	}
	if req.Write {
		b.writes = append(b.writes, req.Addr)
		req.Complete()
		return
	}
	b.reads = append(b.reads, req.Addr)
	b.eng.Schedule(b.delay, req.Complete)
}

func newTestCache(t *testing.T, sizeKB, assoc, mshrs int) (*Cache, *backend, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	be := &backend{eng: eng, delay: 100}
	c, err := New(Config{
		Name: "test", SizeBytes: sizeKB << 10, Assoc: assoc,
		BlockSize: 64, Latency: 10, MSHRs: mshrs,
	}, eng, be, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c, be, eng
}

// access performs a blocking access and reports whether it completed.
func access(c *Cache, eng *sim.Engine, addr uint64, write bool, core int) bool {
	done := false
	c.Access(&mem.Request{Addr: addr, Write: write, Core: core, Done: func() { done = true }})
	eng.Run()
	return done
}

func TestMissThenHit(t *testing.T) {
	c, be, eng := newTestCache(t, 4, 2, 4)
	if !access(c, eng, 0x1000, false, 0) {
		t.Fatal("first access never completed")
	}
	if len(be.reads) != 1 {
		t.Fatalf("backend saw %d reads, want 1 (fill)", len(be.reads))
	}
	if !access(c, eng, 0x1000, false, 0) {
		t.Fatal("second access never completed")
	}
	if len(be.reads) != 1 {
		t.Fatal("hit went to backend")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestSameBlockDifferentWordsHit(t *testing.T) {
	c, be, eng := newTestCache(t, 4, 2, 4)
	access(c, eng, 0x1000, false, 0)
	access(c, eng, 0x1038, false, 0) // same 64B block
	if len(be.reads) != 1 {
		t.Fatal("block-local access missed")
	}
}

func TestMSHRCoalescing(t *testing.T) {
	c, be, eng := newTestCache(t, 4, 2, 4)
	done := 0
	for i := 0; i < 3; i++ {
		c.Access(&mem.Request{Addr: 0x2000 + uint64(i*8), Core: 0, Done: func() { done++ }})
	}
	eng.Run()
	if done != 3 {
		t.Fatalf("%d of 3 coalesced accesses completed", done)
	}
	if len(be.reads) != 1 {
		t.Fatalf("backend saw %d fills for one block, want 1", len(be.reads))
	}
	if c.Stats.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", c.Stats.Coalesced)
	}
}

func TestMSHRLimitQueues(t *testing.T) {
	c, be, eng := newTestCache(t, 64, 4, 2)
	done := 0
	for i := 0; i < 5; i++ {
		c.Access(&mem.Request{Addr: uint64(i) << 12, Core: 0, Done: func() { done++ }})
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("%d of 5 completed with MSHR pressure", done)
	}
	if len(be.reads) != 5 {
		t.Fatalf("backend saw %d fills, want 5", len(be.reads))
	}
}

func TestMetaBypassesMSHRLimit(t *testing.T) {
	c, _, eng := newTestCache(t, 64, 4, 1)
	// Occupy the only MSHR with a demand miss, then require a meta miss
	// to proceed anyway (the deadlock-avoidance path).
	demandDone, metaDone := false, false
	c.Access(&mem.Request{Addr: 0x10000, Core: 0, Done: func() { demandDone = true }})
	c.Access(&mem.Request{Addr: 0x20000, Core: -1, Meta: true, Done: func() { metaDone = true }})
	eng.Run()
	if !demandDone || !metaDone {
		t.Fatalf("demand=%v meta=%v", demandDone, metaDone)
	}
	if c.OutstandingMisses() != 0 {
		t.Fatal("MSHRs leaked")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// 2 sets x 1 way x 64B = direct-mapped 128B cache: easy conflicts.
	eng := sim.NewEngine()
	be := &backend{eng: eng, delay: 10}
	c, err := New(Config{Name: "tiny", SizeBytes: 128, Assoc: 1, BlockSize: 64, Latency: 1, MSHRs: 4}, eng, be, 0)
	if err != nil {
		t.Fatal(err)
	}
	access(c, eng, 0x000, true, 0)  // dirty fill of set 0
	access(c, eng, 0x080, false, 0) // conflicts with 0x000 (same set)
	if len(be.writes) != 1 || be.writes[0] != 0x000 {
		t.Fatalf("expected writeback of 0x000, got %v", be.writes)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	eng := sim.NewEngine()
	be := &backend{eng: eng, delay: 10}
	c, _ := New(Config{Name: "tiny", SizeBytes: 128, Assoc: 1, BlockSize: 64, Latency: 1, MSHRs: 4}, eng, be, 0)
	access(c, eng, 0x000, false, 0)
	access(c, eng, 0x080, false, 0)
	if len(be.writes) != 0 {
		t.Fatal("clean eviction wrote back")
	}
}

func TestWritebackMissForwardsWithoutAllocating(t *testing.T) {
	c, be, eng := newTestCache(t, 4, 2, 4)
	c.Access(&mem.Request{Addr: 0x5000, Write: true, Writeback: true, Core: -1})
	eng.Run()
	if len(be.writes) != 1 {
		t.Fatal("writeback miss not forwarded")
	}
	if c.Contains(0x5000) {
		t.Fatal("writeback miss allocated a line")
	}
	if c.Stats.WBForward != 1 {
		t.Fatalf("WBForward = %d", c.Stats.WBForward)
	}
}

func TestWritebackHitMarksDirty(t *testing.T) {
	eng := sim.NewEngine()
	be := &backend{eng: eng, delay: 10}
	c, _ := New(Config{Name: "tiny", SizeBytes: 128, Assoc: 1, BlockSize: 64, Latency: 1, MSHRs: 4}, eng, be, 0)
	access(c, eng, 0x000, false, 0) // clean resident
	c.Access(&mem.Request{Addr: 0x000, Write: true, Writeback: true, Core: -1})
	eng.Run()
	access(c, eng, 0x080, false, 0) // evict it
	if len(be.writes) != 1 {
		t.Fatal("writeback-hit did not dirty the line")
	}
}

func TestLRUReplacement(t *testing.T) {
	eng := sim.NewEngine()
	be := &backend{eng: eng, delay: 10}
	// one set, 2 ways
	c, _ := New(Config{Name: "lru", SizeBytes: 128, Assoc: 2, BlockSize: 64, Latency: 1, MSHRs: 4}, eng, be, 0)
	a, b2, c3 := uint64(0x000), uint64(0x080), uint64(0x100)
	access(c, eng, a, false, 0)
	access(c, eng, b2, false, 0)
	access(c, eng, a, false, 0)  // refresh A
	access(c, eng, c3, false, 0) // must evict B
	if !c.Contains(a) || c.Contains(b2) || !c.Contains(c3) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestPerCoreMissCounters(t *testing.T) {
	c, _, eng := newTestCache(t, 4, 2, 4)
	access(c, eng, 0x1000, false, 0)
	access(c, eng, 0x2000, false, 1)
	access(c, eng, 0x3000, false, 1)
	if c.Stats.PerCoreMisses[0] != 1 || c.Stats.PerCoreMisses[1] != 2 {
		t.Fatalf("per-core misses: %v", c.Stats.PerCoreMisses)
	}
}

func TestLatencyCharged(t *testing.T) {
	c, _, eng := newTestCache(t, 4, 2, 4)
	access(c, eng, 0x1000, false, 0) // fill
	start := eng.Now()
	var doneAt sim.Time
	c.Access(&mem.Request{Addr: 0x1000, Core: 0, Done: func() { doneAt = eng.Now() }})
	eng.Run()
	if doneAt-start != 10 {
		t.Fatalf("hit latency = %d, want 10", doneAt-start)
	}
}

func TestResetStats(t *testing.T) {
	c, _, eng := newTestCache(t, 4, 2, 4)
	access(c, eng, 0x1000, false, 0)
	c.ResetStats()
	if c.Stats.Misses != 0 || c.Stats.PerCoreMisses[0] != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Contains(0x1000) {
		t.Fatal("reset flushed cache contents")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	be := &backend{eng: eng}
	bad := []Config{
		{Name: "a", SizeBytes: 0, Assoc: 1, BlockSize: 64, MSHRs: 1},
		{Name: "b", SizeBytes: 128, Assoc: 1, BlockSize: 48, MSHRs: 1},
		{Name: "c", SizeBytes: 192, Assoc: 2, BlockSize: 64, MSHRs: 1}, // 3 lines not divisible
		{Name: "d", SizeBytes: 384, Assoc: 2, BlockSize: 64, MSHRs: 1}, // 3 sets not pow2
		{Name: "e", SizeBytes: 128, Assoc: 1, BlockSize: 64, MSHRs: 0},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, eng, be, 0); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
	if _, err := New(Config{Name: "n", SizeBytes: 128, Assoc: 1, BlockSize: 64, MSHRs: 1}, eng, nil, 0); err == nil {
		t.Error("nil lower level accepted")
	}
}
