// Package trace records and replays memory-instruction traces in a
// compact varint-delta binary format, so synthetic workloads can be
// captured once and replayed deterministically (or replaced by traces
// converted from external tools).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/workload"
)

// magic identifies the trace format ("DASTRC1\n").
var magic = [8]byte{'D', 'A', 'S', 'T', 'R', 'C', '1', '\n'}

// Record flags.
const (
	flagMem       = 1 << 0
	flagWrite     = 1 << 1
	flagDependent = 1 << 2
	// flagGap marks a run of non-memory instructions; the gap length
	// follows as a varint instead of an address delta.
	flagGap = 1 << 3
)

// Writer serializes instructions. Non-memory instructions are run-length
// encoded; memory addresses are zig-zag deltas against the previous
// address, which compresses strided and streaming patterns well.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	gap      uint64
	count    uint64
	buf      [binary.MaxVarintLen64 + 1]byte
	err      error
}

// NewWriter wraps w and writes the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Append adds one instruction.
func (t *Writer) Append(in workload.Instr) error {
	if t.err != nil {
		return t.err
	}
	t.count++
	if !in.Mem {
		t.gap++
		return nil
	}
	if err := t.flushGap(); err != nil {
		return err
	}
	flags := byte(flagMem)
	if in.Write {
		flags |= flagWrite
	}
	if in.Dependent {
		flags |= flagDependent
	}
	t.buf[0] = flags
	delta := int64(in.Addr) - int64(t.lastAddr)
	n := binary.PutVarint(t.buf[1:], delta)
	t.lastAddr = in.Addr
	_, t.err = t.w.Write(t.buf[:1+n])
	return t.err
}

// flushGap emits a pending non-memory run.
func (t *Writer) flushGap() error {
	if t.gap == 0 {
		return nil
	}
	t.buf[0] = flagGap
	n := binary.PutUvarint(t.buf[1:], t.gap)
	t.gap = 0
	_, t.err = t.w.Write(t.buf[:1+n])
	return t.err
}

// Count reports instructions appended so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush completes the trace (call before closing the underlying file).
func (t *Writer) Flush() error {
	if err := t.flushGap(); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader decodes a trace.
type Reader struct {
	r        *bufio.Reader
	lastAddr uint64
	gapLeft  uint64
}

// NewReader validates the header and prepares for decoding.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("trace: bad magic (not a DASTRC1 trace)")
	}
	return &Reader{r: br}, nil
}

// Next decodes one instruction; it returns io.EOF at end of trace.
func (t *Reader) Next(in *workload.Instr) error {
	*in = workload.Instr{}
	if t.gapLeft > 0 {
		t.gapLeft--
		return nil
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		return err
	}
	if flags&flagGap != 0 {
		gap, err := binary.ReadUvarint(t.r)
		if err != nil {
			return fmt.Errorf("trace: truncated gap: %w", err)
		}
		if gap == 0 {
			return errors.New("trace: zero-length gap")
		}
		t.gapLeft = gap - 1
		return nil
	}
	if flags&flagMem == 0 {
		return fmt.Errorf("trace: invalid record flags %#x", flags)
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		return fmt.Errorf("trace: truncated address: %w", err)
	}
	t.lastAddr = uint64(int64(t.lastAddr) + delta)
	in.Mem = true
	in.Write = flags&flagWrite != 0
	in.Dependent = flags&flagDependent != 0
	in.Addr = t.lastAddr
	return nil
}

// Replayer adapts a fully-loaded trace into a workload.Generator,
// looping when it reaches the end so cores never run dry.
type Replayer struct {
	name   string
	instrs []workload.Instr
	pos    int
	// Loops counts wrap-arounds.
	Loops int
}

// NewReplayer reads the whole trace from r into memory.
func NewReplayer(name string, r io.Reader) (*Replayer, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rep := &Replayer{name: name}
	var in workload.Instr
	for {
		err := tr.Next(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rep.instrs = append(rep.instrs, in)
	}
	if len(rep.instrs) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return rep, nil
}

// Name implements workload.Generator.
func (r *Replayer) Name() string { return r.name }

// Len returns the trace length in instructions.
func (r *Replayer) Len() int { return len(r.instrs) }

// Next implements workload.Generator.
func (r *Replayer) Next(in *workload.Instr) {
	*in = r.instrs[r.pos]
	r.pos++
	if r.pos == len(r.instrs) {
		r.pos = 0
		r.Loops++
	}
}

// Capture runs gen for n instructions, writing them to w.
func Capture(gen workload.Generator, n uint64, w io.Writer) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	var in workload.Instr
	for i := uint64(0); i < n; i++ {
		gen.Next(&in)
		if err := tw.Append(in); err != nil {
			return err
		}
	}
	return tw.Flush()
}
