package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func roundtrip(t *testing.T, instrs []workload.Instr) []workload.Instr {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instrs {
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []workload.Instr
	var in workload.Instr
	for {
		err := r.Next(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	return out
}

func TestRoundtripBasic(t *testing.T) {
	instrs := []workload.Instr{
		{},
		{Mem: true, Addr: 0x1000},
		{},
		{},
		{Mem: true, Write: true, Addr: 0x2040},
		{Mem: true, Dependent: true, Addr: 0x8},
		{},
	}
	got := roundtrip(t, instrs)
	if len(got) != len(instrs) {
		t.Fatalf("roundtrip length %d, want %d", len(got), len(instrs))
	}
	for i := range instrs {
		if got[i] != instrs[i] {
			t.Fatalf("instr %d: got %+v, want %+v", i, got[i], instrs[i])
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	check := func(addrs []uint32, flags []uint8) bool {
		var instrs []workload.Instr
		for i, a := range addrs {
			f := uint8(0)
			if i < len(flags) {
				f = flags[i]
			}
			in := workload.Instr{}
			if f&1 != 0 {
				in.Mem = true
				in.Addr = uint64(a)
				in.Write = f&2 != 0
				in.Dependent = f&4 != 0 && !in.Write
			}
			instrs = append(instrs, in)
		}
		got := roundtrip(t, instrs)
		if len(got) != len(instrs) {
			return false
		}
		for i := range instrs {
			if got[i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE-----"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestGapRunLengthEncoding(t *testing.T) {
	// 1000 non-memory instructions + 1 memory op should encode in a few
	// bytes, proving run-length compression works.
	var instrs []workload.Instr
	for i := 0; i < 1000; i++ {
		instrs = append(instrs, workload.Instr{})
	}
	instrs = append(instrs, workload.Instr{Mem: true, Addr: 42})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range instrs {
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if buf.Len() > 32 {
		t.Fatalf("1001 instructions took %d bytes; gap RLE broken", buf.Len())
	}
	got := roundtrip(t, instrs)
	if len(got) != 1001 || !got[1000].Mem || got[1000].Addr != 42 {
		t.Fatal("gap roundtrip wrong")
	}
}

func TestReplayerLoops(t *testing.T) {
	instrs := []workload.Instr{
		{Mem: true, Addr: 1 << 6},
		{},
		{Mem: true, Write: true, Addr: 2 << 6},
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range instrs {
		w.Append(in)
	}
	w.Flush()
	rep, err := NewReplayer("loop", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 3 || rep.Name() != "loop" {
		t.Fatalf("replayer len %d name %s", rep.Len(), rep.Name())
	}
	var in workload.Instr
	for i := 0; i < 7; i++ {
		rep.Next(&in)
		if in != instrs[i%3] {
			t.Fatalf("replay %d: %+v", i, in)
		}
	}
	if rep.Loops != 2 {
		t.Fatalf("loops = %d, want 2", rep.Loops)
	}
}

func TestEmptyTraceRejectedByReplayer(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	if _, err := NewReplayer("empty", &buf); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestCaptureFromGenerator(t *testing.T) {
	p := workload.Profile{
		Name: "cap", MemFraction: 0.4, WriteFraction: 0.2,
		FootprintBytes: 4 << 20, LocalWeight: 0.5, StreamWeight: 0.5,
	}
	gen, err := workload.NewSynthetic(p, workload.Region{Base: 0, Bytes: 8 << 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Capture(gen, 10000, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer("cap", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 10000 {
		t.Fatalf("captured %d instructions, want 10000", rep.Len())
	}
	// The replay must equal a fresh generator's stream.
	fresh, _ := workload.NewSynthetic(p, workload.Region{Base: 0, Bytes: 8 << 20}, 1)
	var a, b workload.Instr
	for i := 0; i < 10000; i++ {
		rep.Next(&a)
		fresh.Next(&b)
		if a != b {
			t.Fatalf("replay diverges at %d", i)
		}
	}
}

func TestTruncatedTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(workload.Instr{Mem: true, Addr: 0x123456789})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	var in workload.Instr
	if err := r.Next(&in); err == nil {
		t.Fatal("truncated record read successfully")
	}
}
