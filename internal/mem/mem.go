// Package mem defines the request type and component interface that tie
// the memory hierarchy together: cores issue requests into caches, caches
// forward misses to lower levels, and the lowest level is the DAS-DRAM
// manager + memory controller.
package mem

import (
	"repro/internal/sim"
	"repro/internal/telemetry/reqtrace"
)

// Request is one cache-block-sized memory access travelling down the
// hierarchy. Requests are created by a core (demand access), by a cache
// (writeback), or by the DAS manager (translation-table access).
type Request struct {
	// Addr is the physical byte address; components align it down to
	// their block size as needed.
	Addr uint64
	// Write marks stores and writebacks.
	Write bool
	// Writeback marks dirty-eviction traffic. Caches forward writeback
	// misses downward without allocating (no fetch-on-writeback).
	Writeback bool
	// Meta marks metadata traffic (DAS translation-table accesses) so
	// statistics can separate it from demand traffic.
	Meta bool
	// Core is the index of the originating core, or -1 for traffic with
	// no core attribution (e.g. translation fetches).
	Core int
	// Issued is when the request entered the hierarchy.
	Issued sim.Time
	// Done is invoked exactly once when the request completes (data
	// returned for reads; accepted/posted for writes). May be nil.
	Done func()
	// Trace is the request's flight-recorder span when this request was
	// sampled by reqtrace; nil (the common case) means untraced. Owned by
	// the issuing core: components stamp stage transitions through it but
	// never finish or recycle it.
	Trace *reqtrace.Span
}

// Complete fires the Done callback if present.
func (r *Request) Complete() {
	if r.Done != nil {
		r.Done()
	}
}

// Component is anything that can accept a memory request. Access never
// blocks the caller; completion is signalled through Request.Done. An
// overloaded component queues internally, which models backpressure as
// added latency.
type Component interface {
	Access(req *Request)
}
