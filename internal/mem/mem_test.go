package mem

import "testing"

func TestCompleteFiresDoneOnce(t *testing.T) {
	n := 0
	r := &Request{Addr: 0x40, Done: func() { n++ }}
	r.Complete()
	if n != 1 {
		t.Fatalf("Done fired %d times", n)
	}
}

func TestCompleteNilDone(t *testing.T) {
	r := &Request{Addr: 0x40}
	r.Complete() // must not panic
}
