# Tier-1 gate (what the roadmap requires to stay green):
#   make test
# Tier-1+ gate (pre-merge: adds vet, the race detector, determinism
# cross-checks, fuzz/bench smokes, and a fault-injection run of the
# management path):
#   make check
# Benchmark suite (engine micro-benchmarks + per-figure miniatures);
# writes BENCH_latest.json for comparison against BENCH_baseline.json:
#   make bench
# Regression gate alone (also part of make check): BenchmarkFig7a vs
# the checked-in baseline, failing on >10% wall ns/op rise, >10%
# instr/s drop, or >10% allocs/op rise:
#   make bench-compare
# Cross-design attribution report (where each request's nanoseconds go
# and why standard != das); regenerates the committed results_explain.txt:
#   make explain
# Perf-per-watt report (instructions/uJ, EDP and the pJ/instr energy
# decomposition across all six designs); regenerates the committed
# results_energy.txt:
#   make energy

GO ?= go

.PHONY: build test check vet bench bench-compare explain energy clean

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

check:
	sh scripts/check.sh

bench:
	{ $(GO) test -run '^$$' -bench '^BenchmarkEngine' -benchmem -benchtime 200000x ./internal/sim ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkFig' -benchmem -benchtime 3x . ; } \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_latest.json

bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkFig7a$$' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -compare BENCH_baseline.json

explain:
	$(GO) run ./cmd/dasbench -explain standard,das -benchmarks mcf,soplex \
		-instr 200000 -out results_explain.txt

energy:
	$(GO) run ./cmd/dasbench -energy -benchmarks mcf,soplex \
		-instr 200000 -out results_energy.txt

clean:
	$(GO) clean ./...
