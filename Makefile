# Tier-1 gate (what the roadmap requires to stay green):
#   make test
# Tier-1+ gate (pre-merge: adds vet, the race detector, and a fault-
# injection smoke run of the management path):
#   make check

GO ?= go

.PHONY: build test check vet clean

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

check:
	sh scripts/check.sh

clean:
	$(GO) clean ./...
