// Latency explorer: drive the DRAM device and memory controller directly
// (no CPU or caches) to measure raw access latency under different
// fast-subarray timing sets, and relate each to its die-area cost — the
// Section 3/4 trade-off that motivates asymmetric subarrays. This is the
// lowest-level use of the library's public simulation API.
package main

import (
	"fmt"
	"log"

	"repro/internal/area"
	"repro/internal/dram"
	"repro/internal/mc"
	"repro/internal/sim"
	"repro/internal/timing"
)

// measure issues n dependent row-miss reads of class cls and returns the
// average request latency in nanoseconds.
func measure(params timing.Params, cls dram.RowClass, n int) float64 {
	eng := sim.NewEngine()
	dev, err := dram.New(dram.Config{
		Geometry: dram.Default8GB(),
		Slow:     timing.DDR31600Slow(),
		Fast:     params,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := mc.New(mc.DefaultConfig(), eng, dev, 1)
	if err != nil {
		log.Fatal(err)
	}

	geom := dev.Geometry()
	var total sim.Time
	done := 0
	var issue func()
	issue = func() {
		if done == n {
			return
		}
		// A new row every request: worst-case row-miss latency.
		coord := geom.Decode(uint64(done) * geom.RowBytes() * uint64(geom.Channels*2))
		start := eng.Now()
		ctl.Enqueue(&mc.Request{
			Coord: coord,
			Class: cls,
			Core:  0,
			Done: func(mc.ServiceKind) {
				total += eng.Now() - start
				done++
				issue() // dependent chain: next read starts on completion
			},
		})
	}
	issue()
	// Refresh management keeps the event queue alive indefinitely, so
	// step until the read chain completes rather than draining.
	for done < n && eng.Step() {
	}
	return total.NS() / float64(n)
}

func main() {
	log.SetFlags(0)
	const reads = 2000

	slowLat := measure(timing.DDR31600Slow(), dram.RowSlow, reads)
	fmt.Printf("commodity rows (512-cell bitline): %.1f ns/dependent read\n\n", slowLat)
	fmt.Println("fast-subarray design space (shorter bitlines -> lower tRCD/tRC, more area):")
	fmt.Printf("%-22s %-10s %-10s %-10s %s\n", "variant", "tRCD(ns)", "tRC(ns)", "lat(ns)", "area overhead @1:2")

	type variant struct {
		name       string
		trcd, tras int64 // cycles
		cells      int
	}
	for _, v := range []variant{
		{"256-cell bitline", 9, 18, 256},
		{"128-cell (paper)", 7, 13, 128},
		{"64-cell bitline", 6, 10, 64},
		{"32-cell (RLDRAM-ish)", 5, 8, 32},
	} {
		p := timing.DDR31600Fast()
		p.TRCD = v.trcd
		p.TRAS = v.tras
		p.TRP = v.trcd
		p.TRC = v.tras + v.trcd
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
		lat := measure(p, dram.RowFast, reads)
		ap := area.Default()
		ap.FastBitlineCells = v.cells
		fmt.Printf("%-22s %-10.2f %-10.2f %-10.1f %.2f%%\n",
			v.name, float64(v.trcd)*1.25, float64(v.tras+v.trcd)*1.25, lat, ap.Overhead()*100)
	}
	fmt.Println("\nSpeed-up saturates below 128 cells while area keeps rising — the")
	fmt.Println("Section 4.3 argument for the paper's 128-cell fast subarrays.")
}
