// Multiprogram: run a four-core multi-programmed mix (Table 2's M5) on
// every memory design and print per-core and system-level results, the
// workflow behind Figures 7d-7f. (M5's summed hot sets fit the scaled
// fast level; heavy mixes like M1 exercise the capacity-contention
// regime discussed in EXPERIMENTS.md.)
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	mix, err := workload.LookupMix("M5")
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Scaled()
	cfg.Cores = 4
	cfg.InstrPerCore = 2_000_000

	session := exp.NewSession(cfg)
	baseline, err := session.Baseline(mix.Benchmarks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mix %s: %v\n\n", mix.Name, mix.Benchmarks)
	fmt.Println("baseline (standard DRAM) per-core:")
	for _, c := range baseline.PerCore {
		fmt.Printf("  core %-11s IPC %.3f  MPKI %5.1f  footprint %4.0f MB\n",
			c.Benchmark, c.IPC, c.MPKI, c.FootprintMB)
	}

	fmt.Println("\ndesign comparison:")
	for _, design := range []core.Design{core.SAS, core.CHARM, core.DAS, core.DASFM, core.FS} {
		res, improvement, err := session.RunVs(cfg, design, mix.Benchmarks)
		if err != nil {
			log.Fatal(err)
		}
		rb, fast, slow := res.Access.Fractions()
		fmt.Printf("  %-14s %+6.2f%%  (rb %.0f%% / fast %.0f%% / slow %.0f%%, %d promotions)\n",
			design, improvement, rb*100, fast*100, slow*100, res.Promotions)
	}
}
