// Quickstart: simulate one benchmark on standard homogeneous DRAM and on
// DAS-DRAM, and print the performance improvement — the minimal use of
// the experiment API.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)

	// Episode-scaled Table 1 system (1 GB DRAM, 4 MB LLC, 1/8 fast
	// level); shorten the run so the example finishes in seconds.
	cfg := config.Scaled()
	cfg.InstrPerCore = 2_000_000

	session := exp.NewSession(cfg)
	benchmark := []string{"mcf"}

	baseline, err := session.Baseline(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	das, improvement, err := session.RunVs(cfg, core.DAS, benchmark)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark:            %s\n", benchmark[0])
	fmt.Printf("standard DRAM IPC:    %.3f (MPKI %.1f)\n",
		baseline.PerCore[0].IPC, baseline.PerCore[0].MPKI)
	fmt.Printf("DAS-DRAM IPC:         %.3f\n", das.PerCore[0].IPC)
	fmt.Printf("improvement:          %+.2f%%\n", improvement)
	fmt.Printf("row promotions:       %d (%.1f per kilo-miss)\n",
		das.Promotions, das.PerCore[0].PPKM)
	rb, fast, slow := das.Access.Fractions()
	fmt.Printf("access locations:     %.1f%% row buffer, %.1f%% fast, %.1f%% slow\n",
		rb*100, fast*100, slow*100)
	fmt.Printf("tag cache hit ratio:  %.1f%%\n", das.TagHitRatio*100)
}
