// Policy tuning: sweep the DAS-DRAM management knobs — promotion filter
// threshold and fast-level replacement policy — on one benchmark,
// reproducing in miniature the trade-off studies of Sections 7.3/7.6.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)

	cfg := config.Scaled()
	cfg.InstrPerCore = 2_000_000
	benchmark := []string{"GemsFDTD"}
	session := exp.NewSession(cfg)

	fmt.Println("== promotion filter thresholds (Section 7.3) ==")
	for _, threshold := range []int{1, 2, 4, 8} {
		variant := cfg
		variant.FilterThreshold = threshold
		res, improvement, err := session.RunVs(variant, core.DAS, benchmark)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("threshold %d: %+6.2f%%  promotions/access %.3f%%  fast-level miss ratio %.1f%%  filtered %d\n",
			threshold, improvement, res.PromPerAccess*100,
			res.Access.FastLevelMissRatio()*100, res.FilterRejects)
	}

	fmt.Println("\n== replacement policies (Section 7.6) ==")
	for _, policy := range []string{"lru", "random", "sequential", "counter"} {
		variant := cfg
		variant.Replacement = policy
		_, improvement, err := session.RunVs(variant, core.DAS, benchmark)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s: %+6.2f%%\n", policy, improvement)
	}
}
