// Command dastrace captures synthetic workload streams into the binary
// trace format, re-encodes existing traces, and inspects them.
//
//	dastrace -capture mcf -n 1000000 -o mcf.trc
//	dastrace -replay mcf.trc -o copy.trc
//	dastrace -inspect mcf.trc
//
// A -replay of a capture must reproduce it byte for byte (the format is
// deterministic in the instruction stream); the CLI round-trip test
// pins that property.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/exp"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dastrace: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command: flag parsing and dispatch
// with all human-readable output on stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dastrace", flag.ContinueOnError)
	var (
		capture = fs.String("capture", "", "benchmark name to capture (see -list)")
		n       = fs.Uint64("n", 1_000_000, "instructions to capture")
		out     = fs.String("o", "", "output trace file (required with -capture/-replay)")
		replay  = fs.String("replay", "", "trace file to re-encode through the replayer")
		inspect = fs.String("inspect", "", "trace file to summarize")
		list    = fs.Bool("list", false, "list available benchmarks")
		seed    = fs.Uint64("seed", 0, "override workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, p := range workload.Catalog() {
			fmt.Fprintf(stdout, "%-12s footprint %5d MB, %2.0f%% memory instructions\n",
				p.Name, p.FootprintBytes>>20, p.MemFraction*100)
		}
		return nil
	case *capture != "":
		if *out == "" {
			return fmt.Errorf("-capture requires -o")
		}
		cfg := config.Scaled()
		if *seed > 0 {
			cfg.Seed = *seed
		}
		gen, err := exp.MakeGenerator(cfg, *capture, 0)
		if err != nil {
			return err
		}
		if err := captureTo(gen, *n, *out); err != nil {
			return err
		}
		st, _ := os.Stat(*out)
		fmt.Fprintf(stdout, "captured %d instructions of %s to %s (%d bytes, %.2f B/instr)\n",
			*n, *capture, *out, st.Size(), float64(st.Size())/float64(*n))
		return nil
	case *replay != "":
		if *out == "" {
			return fmt.Errorf("-replay requires -o")
		}
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		rep, err := trace.NewReplayer(*replay, f)
		f.Close()
		if err != nil {
			return err
		}
		if err := captureTo(rep, uint64(rep.Len()), *out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "re-encoded %d instructions from %s to %s\n", rep.Len(), *replay, *out)
		return nil
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		return summarize(f, stdout)
	default:
		fs.Usage()
		return fmt.Errorf("no mode selected")
	}
}

// captureTo writes n instructions from gen into a fresh trace file.
func captureTo(gen workload.Generator, n uint64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Capture(gen, n, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summarize prints aggregate statistics of a trace.
func summarize(r io.Reader, stdout io.Writer) error {
	tr, err := trace.NewReader(r)
	if err != nil {
		return err
	}
	var in workload.Instr
	var total, mem, writes, dependent uint64
	var minAddr, maxAddr uint64
	pages := make(map[uint64]struct{})
	minAddr = ^uint64(0)
	for {
		err := tr.Next(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		if !in.Mem {
			continue
		}
		mem++
		if in.Write {
			writes++
		}
		if in.Dependent {
			dependent++
		}
		if in.Addr < minAddr {
			minAddr = in.Addr
		}
		if in.Addr > maxAddr {
			maxAddr = in.Addr
		}
		pages[in.Addr>>12] = struct{}{}
	}
	fmt.Fprintf(stdout, "instructions: %d\n", total)
	fmt.Fprintf(stdout, "memory ops:   %d (%.1f%%), %d writes, %d dependent loads\n",
		mem, 100*float64(mem)/float64(total), writes, dependent)
	fmt.Fprintf(stdout, "address span: [%#x, %#x]\n", minAddr, maxAddr)
	fmt.Fprintf(stdout, "4K pages touched: %d (%.1f MB)\n", len(pages), float64(len(pages))/256)
	return nil
}
