// Command dastrace captures synthetic workload streams into the binary
// trace format and inspects existing traces.
//
//	dastrace -capture mcf -n 1000000 -o mcf.trc
//	dastrace -inspect mcf.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/exp"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dastrace: ")

	var (
		capture = flag.String("capture", "", "benchmark name to capture (see -list)")
		n       = flag.Uint64("n", 1_000_000, "instructions to capture")
		out     = flag.String("o", "", "output trace file (required with -capture)")
		inspect = flag.String("inspect", "", "trace file to summarize")
		list    = flag.Bool("list", false, "list available benchmarks")
		seed    = flag.Uint64("seed", 0, "override workload seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, p := range workload.Catalog() {
			fmt.Printf("%-12s footprint %5d MB, %2.0f%% memory instructions\n",
				p.Name, p.FootprintBytes>>20, p.MemFraction*100)
		}
	case *capture != "":
		if *out == "" {
			log.Fatal("-capture requires -o")
		}
		cfg := config.Scaled()
		if *seed > 0 {
			cfg.Seed = *seed
		}
		gen, err := exp.MakeGenerator(cfg, *capture, 0)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Capture(gen, *n, f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		st, _ := os.Stat(*out)
		log.Printf("captured %d instructions of %s to %s (%d bytes, %.2f B/instr)",
			*n, *capture, *out, st.Size(), float64(st.Size())/float64(*n))
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		summarize(f)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// summarize prints aggregate statistics of a trace.
func summarize(r io.Reader) {
	tr, err := trace.NewReader(r)
	if err != nil {
		log.Fatal(err)
	}
	var in workload.Instr
	var total, mem, writes, dependent uint64
	var minAddr, maxAddr uint64
	pages := make(map[uint64]struct{})
	minAddr = ^uint64(0)
	for {
		err := tr.Next(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		total++
		if !in.Mem {
			continue
		}
		mem++
		if in.Write {
			writes++
		}
		if in.Dependent {
			dependent++
		}
		if in.Addr < minAddr {
			minAddr = in.Addr
		}
		if in.Addr > maxAddr {
			maxAddr = in.Addr
		}
		pages[in.Addr>>12] = struct{}{}
	}
	fmt.Printf("instructions: %d\n", total)
	fmt.Printf("memory ops:   %d (%.1f%%), %d writes, %d dependent loads\n",
		mem, 100*float64(mem)/float64(total), writes, dependent)
	fmt.Printf("address span: [%#x, %#x]\n", minAddr, maxAddr)
	fmt.Printf("4K pages touched: %d (%.1f MB)\n", len(pages), float64(len(pages))/256)
}
