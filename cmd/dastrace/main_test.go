package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCaptureReplayRoundTrip drives the CLI end to end: capture a
// synthetic workload, re-encode it through -replay, and require the two
// trace files to be byte-identical and their -inspect summaries equal.
// The trace format is deterministic in the instruction stream, so any
// divergence means an encode/decode asymmetry.
func TestCaptureReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.trc")
	copy := filepath.Join(dir, "copy.trc")

	var out bytes.Buffer
	if err := run([]string{"-capture", "mcf", "-n", "50000", "-o", orig}, &out); err != nil {
		t.Fatalf("capture: %v", err)
	}
	if !strings.Contains(out.String(), "captured 50000 instructions") {
		t.Fatalf("capture output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-replay", orig, "-o", copy}, &out); err != nil {
		t.Fatalf("replay: %v", err)
	}

	a, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(copy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip not byte-identical: %d vs %d bytes", len(a), len(b))
	}

	var insOrig, insCopy bytes.Buffer
	if err := run([]string{"-inspect", orig}, &insOrig); err != nil {
		t.Fatalf("inspect orig: %v", err)
	}
	if err := run([]string{"-inspect", copy}, &insCopy); err != nil {
		t.Fatalf("inspect copy: %v", err)
	}
	if insOrig.String() != insCopy.String() {
		t.Fatalf("inspect output differs:\n%s\nvs\n%s", insOrig.String(), insCopy.String())
	}
	if !strings.Contains(insOrig.String(), "instructions: 50000") {
		t.Fatalf("inspect summary wrong:\n%s", insOrig.String())
	}
}

// TestSeedChangesCapture guards the -seed flag: a different workload
// seed must produce a different instruction stream.
func TestSeedChangesCapture(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "s1.trc")
	p2 := filepath.Join(dir, "s2.trc")
	var out bytes.Buffer
	if err := run([]string{"-capture", "mcf", "-n", "20000", "-seed", "7", "-o", p1}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-capture", "mcf", "-n", "20000", "-seed", "8", "-o", p2}, &out); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(p1)
	b, _ := os.ReadFile(p2)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-capture", "mcf"}, &out); err == nil {
		t.Error("capture without -o accepted")
	}
	if err := run([]string{"-replay", "nope.trc"}, &out); err == nil {
		t.Error("replay without -o accepted")
	}
	if err := run([]string{"-inspect", filepath.Join(t.TempDir(), "missing.trc")}, &out); err == nil {
		t.Error("inspect of missing file accepted")
	}
}
