// Command dasserve exposes the deterministic DAS simulator as an HTTP
// service. POST a figure or design request to /run and the body comes
// back as the same byte-stable text dasbench would print; identical
// requests are deduplicated in flight and served from an exact result
// cache thereafter.
//
// Robustness is the point of the binary: a bounded worker pool and
// admission queue (full queue → 429 + Retry-After, never unbounded
// memory), per-job deadlines, a no-progress watchdog, panic isolation
// (a crashing job is a structured 500; its siblings and the server
// survive), and graceful drain on SIGINT/SIGTERM.
//
// Examples:
//
//	dasserve -addr :8077
//	dasserve -addr 127.0.0.1:0 -addr-file /tmp/dasserve.addr -workers 2
//	curl -s -X POST localhost:8077/run -d '{"figure":"table2"}'
//	curl -s -X POST localhost:8077/run -d '{"design":"das","benchmarks":["mcf"]}'
//	curl -s localhost:8077/jobs
//	curl -s -X POST localhost:8077/key -d '{"figure":"7b"}'   # -> {"key":...}
//	curl -N localhost:8077/jobs/<key>/events                  # SSE progress
//	curl -s localhost:8077/metrics                            # Prometheus
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dasserve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8077", "listen address (host:0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file (for scripts using :0)")
		workers  = flag.Int("workers", serve.DefaultWorkers, "concurrent simulation jobs")
		queue    = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth; beyond it requests are shed with 429")
		jobTO    = flag.Duration("job-timeout", serve.DefaultJobTimeout, "per-job deadline (0 = none)")
		watchdog = flag.Duration("watchdog", serve.DefaultWatchdogWindow, "cancel a job after this long without simulation progress (0 = off)")
		retryAft = flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint attached to shed responses")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, wait this long for in-flight jobs before cancelling them")
		cfgPath  = flag.String("config", "", "JSON base config requests layer over (default: episode-scaled Table 1)")
		fullScal = flag.Bool("full-scale", false, "use the full 8 GB Table 1 memory as the base config")
		instr    = flag.Uint64("instr", 0, "base instructions per core (0 = config default)")
		seed     = flag.Uint64("seed", 0, "base workload seed override")
		parallel = flag.Int("parallel", 0, "shard each simulated machine across OS threads (0/1 = sequential, >=2 = processor/memory shards; results are byte-identical and share cache entries)")
		debugAt  = flag.String("debug", "", "also serve the telemetry debug endpoint (/metrics, /debug/pprof) on this address")
		logJSON  = flag.Bool("log-json", false, "log one JSON object per job transition (admitted/start/done/failed/shed) instead of free text")
		poolMB   = flag.Int64("pool-mb", 0, "machine-pool byte budget in MB: jobs reuse built simulation machines up to this much standing memory (0 = default budget, <0 = pooling off)")
	)
	flag.Parse()

	cfg := config.Scaled()
	if *fullScal {
		cfg = config.Default()
	}
	if *cfgPath != "" {
		c, err := config.Load(*cfgPath)
		if err != nil {
			return err
		}
		cfg = c
	}
	if *instr > 0 {
		cfg.InstrPerCore = *instr
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel
	if err := cfg.Validate(); err != nil {
		return err
	}

	opts := serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTO,
		WatchdogWindow: *watchdog,
		RetryAfter:     *retryAft,
		Base:           cfg,
		Logf:           log.Printf,
	}
	switch {
	case *poolMB < 0:
		opts.PoolBytes = -1
	case *poolMB > 0:
		opts.PoolBytes = *poolMB << 20
	}
	if *logJSON {
		opts.Log = func(ev serve.LogEvent) {
			line, err := json.Marshal(ev)
			if err != nil {
				log.Printf("log-json: %v", err)
				return
			}
			log.Print(string(line))
		}
	}
	srv := serve.New(opts)

	var pub *telemetry.Publisher
	if *debugAt != "" {
		pub = telemetry.NewPublisher()
		dbgAddr, err := pub.Serve(*debugAt)
		if err != nil {
			return err
		}
		log.Printf("debug endpoint on http://%s/metrics", dbgAddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s (%d workers, queue %d)", ln.Addr(), *workers, *queue)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stopSig() // a second signal kills the process the default way

	// Drain: stop admitting, let jobs finish inside the deadline, then
	// cancel cooperatively; only then tear down the HTTP listener so
	// waiting clients get their (possibly cancelled) responses.
	log.Printf("signal received; draining (deadline %v)", *drainTO)
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTO)
	defer dcancel()
	drainErr := srv.Shutdown(dctx)
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}

	// Flush telemetry: publish the final server snapshot, then the
	// idempotent Publisher.Shutdown (harmless when -debug is off).
	pub.Publish("dasserve", srv.Snapshot())
	if err := pub.Shutdown(context.Background()); err != nil {
		log.Printf("debug shutdown: %v", err)
	}
	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		log.Printf("drain: in-flight jobs cancelled at deadline")
	} else {
		log.Printf("drained cleanly")
	}
	return nil
}
