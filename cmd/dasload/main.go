// Command dasload is an open-loop load generator for dasserve. It fires
// -n POST /run requests at an arrival rate that ramps up over -ramp,
// cycling through the request bodies given as arguments (so n > #bodies
// guarantees duplicates that exercise the server's singleflight and
// cache), retrying shed and transient failures with capped exponential
// backoff plus jitter, honoring Retry-After.
//
// After the burst it can verify cache semantics: -verify re-requests
// every distinct body twice, asserting the second response is an X-Cache
// hit and both bodies are byte-identical; -assert-hits N requires the
// server's cache-hit counter (from /jobs) to have reached N.
//
// Observability checks ride along: every attempt's latency is recorded
// and reported as p50/p95/p99 per outcome class (miss, hit, coalesced,
// 429, 5xx, error); -follow subscribes to the first body's SSE progress
// stream during the burst and asserts monotonic frames and a clean
// close; -check-metrics scrapes /metrics and validates the Prometheus
// exposition.
//
// Examples:
//
//	dasload -addr localhost:8077 -n 32 '{"figure":"table2"}'
//	dasload -addr localhost:8077 -n 24 -rate 50 -verify -assert-hits 1 \
//	    -follow -check-metrics '{"design":"das","benchmarks":["mcf"]}' @req.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dasload: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "localhost:8077", "dasserve address, or @file to read it from an -addr-file")
		n          = flag.Int("n", 16, "total requests to send")
		rate       = flag.Float64("rate", 20, "steady-state arrival rate, requests/second (open loop)")
		ramp       = flag.Duration("ramp", 2*time.Second, "ramp the arrival rate linearly from 0 to -rate over this long")
		maxInfl    = flag.Int("max-inflight", 64, "client-side cap on concurrent requests")
		retries    = flag.Int("retries", 8, "max retries per request on 429/5xx")
		backoff    = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, full jitter)")
		backoffCap = flag.Duration("backoff-cap", 5*time.Second, "retry backoff ceiling")
		reqTO      = flag.Duration("timeout", 15*time.Minute, "per-attempt HTTP timeout")
		seed       = flag.Int64("seed", 1, "jitter seed")
		verify     = flag.Bool("verify", false, "after the burst, re-request each distinct body twice and assert cache hits return byte-identical responses")
		assertHits = flag.Int("assert-hits", -1, "require the server's serve.cache.hits counter to be at least this (-1 = don't check)")
		follow     = flag.Bool("follow", false, "subscribe to the first body's SSE progress stream during the burst and assert monotonic frames and a clean close")
		followMin  = flag.Int("follow-min", 1, "with -follow, require at least this many progress frames")
		checkMetr  = flag.Bool("check-metrics", false, "after the burst, scrape /metrics and validate the Prometheus exposition")
	)
	flag.Parse()

	bodies, err := loadBodies(flag.Args())
	if err != nil {
		return err
	}
	base, err := baseURL(*addr)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: *reqTO}
	lats := newLatencies()

	var followc chan followResult
	if *follow {
		followc = make(chan followResult, 1)
		go func() { followc <- followStream(client, base, bodies[0]) }()
	}

	type outcome struct {
		ok      bool
		status  int
		retries int
		cache   string
		err     error
	}
	results := make(chan outcome, *n)
	sem := make(chan struct{}, *maxInfl)
	start := time.Now()
	for i := 0; i < *n; i++ {
		// Open-loop arrival: the sender never waits for responses, only
		// for the (ramped) inter-arrival gap and the in-flight cap.
		time.Sleep(interArrival(time.Since(start), *rate, *ramp))
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			body := bodies[i%len(bodies)]
			st, cache, tries, _, err := post(client, base, body, *retries, *backoff, *backoffCap, rng, lats)
			results <- outcome{ok: err == nil && st == http.StatusOK, status: st, retries: tries, cache: cache, err: err}
		}(i)
	}

	var ok, failed, totalRetries int
	byCache := map[string]int{}
	for i := 0; i < *n; i++ {
		r := <-results
		totalRetries += r.retries
		if r.ok {
			ok++
			byCache[r.cache]++
		} else {
			failed++
			if r.err != nil {
				log.Printf("request failed: %v", r.err)
			} else {
				log.Printf("request failed: HTTP %d after %d retries", r.status, r.retries)
			}
		}
	}
	fmt.Printf("dasload: %d ok / %d failed in %v (%d retries; miss=%d coalesced=%d hit=%d)\n",
		ok, failed, time.Since(start).Round(time.Millisecond),
		totalRetries, byCache["miss"], byCache["coalesced"], byCache["hit"])
	fmt.Print(lats.report())
	fmt.Print(poolReport(client, base))
	if failed > 0 {
		return fmt.Errorf("%d requests failed", failed)
	}

	if *follow {
		fr := <-followc
		if fr.err != nil {
			return fmt.Errorf("follow: %w", fr.err)
		}
		fmt.Printf("dasload: followed %s: %d monotonic frames, clean close (final state %s)\n",
			fr.key, fr.frames, fr.state)
		if fr.frames < *followMin {
			return fmt.Errorf("follow: %d frames, want at least %d", fr.frames, *followMin)
		}
	}

	if *verify {
		if err := verifyCache(client, base, bodies); err != nil {
			return err
		}
		fmt.Printf("dasload: verify ok (%d bodies byte-identical on cache hit)\n", len(bodies))
	}
	if *assertHits >= 0 {
		hits, err := cacheHits(client, base)
		if err != nil {
			return err
		}
		if hits < float64(*assertHits) {
			return fmt.Errorf("serve.cache.hits = %.0f, want >= %d", hits, *assertHits)
		}
		fmt.Printf("dasload: cache hits %.0f >= %d\n", hits, *assertHits)
	}
	if *checkMetr {
		n, err := validateMetrics(client, base)
		if err != nil {
			return fmt.Errorf("check-metrics: %w", err)
		}
		fmt.Printf("dasload: /metrics exposition valid (%d families)\n", n)
	}
	return nil
}

// latencies collects per-attempt response times keyed by outcome class:
// the X-Cache disposition for 200s (miss/coalesced/hit), "429", "5xx",
// "4xx" or "error" otherwise.
type latencies struct {
	mu      sync.Mutex
	byClass map[string][]float64 // milliseconds
}

func newLatencies() *latencies { return &latencies{byClass: map[string][]float64{}} }

func (l *latencies) add(class string, d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.byClass[class] = append(l.byClass[class], float64(d.Nanoseconds())/1e6)
	l.mu.Unlock()
}

// classify maps one attempt's result to its outcome class.
func classify(status int, cache string, err error) string {
	switch {
	case err != nil:
		return "error"
	case status == http.StatusOK:
		if cache == "" {
			return "ok"
		}
		return cache
	case status == http.StatusTooManyRequests:
		return "429"
	case status >= 500:
		return "5xx"
	default:
		return "4xx"
	}
}

// report renders the client-side latency table: count and p50/p95/p99
// per class, classes sorted for stable output.
func (l *latencies) report() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.byClass) == 0 {
		return ""
	}
	classes := make([]string, 0, len(l.byClass))
	for c := range l.byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	b.WriteString("dasload: attempt latency by outcome class (ms):\n")
	fmt.Fprintf(&b, "  %-10s %6s %9s %9s %9s\n", "class", "n", "p50", "p95", "p99")
	quantile := func(xs []float64, q float64) string {
		v, err := stats.PercentileErr(xs, q)
		if err != nil {
			return "-" // no samples in this class: undefined, not 0 ms
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, c := range classes {
		xs := l.byClass[c]
		fmt.Fprintf(&b, "  %-10s %6d %9s %9s %9s\n", c, len(xs),
			quantile(xs, 0.50), quantile(xs, 0.95), quantile(xs, 0.99))
	}
	return b.String()
}

type followResult struct {
	key    string
	frames int
	state  string
	err    error
}

// progressFrame mirrors serve.ProgressFrame's wire shape.
type progressFrame struct {
	Seq    int     `json:"seq"`
	State  string  `json:"state"`
	Events uint64  `json:"events"`
	Instrs uint64  `json:"instrs"`
	SimNS  float64 `json:"sim_ns"`
}

// followStream learns body's canonical key from /key, subscribes to its
// SSE progress stream (retrying 404 until the job is admitted), and
// consumes frames until the server's done event, verifying the stream's
// monotonicity contract along the way.
func followStream(client *http.Client, base, body string) followResult {
	resp, err := client.Post(base+"/key", "application/json", strings.NewReader(body))
	if err != nil {
		return followResult{err: err}
	}
	var keyResp struct {
		Key string `json:"key"`
	}
	err = json.NewDecoder(resp.Body).Decode(&keyResp)
	resp.Body.Close()
	if err != nil {
		return followResult{err: fmt.Errorf("/key: %w", err)}
	}
	if resp.StatusCode != http.StatusOK || keyResp.Key == "" {
		return followResult{err: fmt.Errorf("/key: HTTP %d", resp.StatusCode)}
	}
	res := followResult{key: keyResp.Key}

	// The job only becomes subscribable on admission; poll through the
	// burst's ramp-up.
	deadline := time.Now().Add(time.Minute)
	var stream *http.Response
	for {
		stream, err = client.Get(base + "/jobs/" + keyResp.Key + "/events")
		if err != nil {
			res.err = err
			return res
		}
		if stream.StatusCode == http.StatusOK {
			break
		}
		stream.Body.Close()
		if stream.StatusCode != http.StatusNotFound || time.Now().After(deadline) {
			res.err = fmt.Errorf("subscribe: HTTP %d", stream.StatusCode)
			return res
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer stream.Body.Close()

	var prev progressFrame
	clean := false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: done" {
			clean = true
			break
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var f progressFrame
		if err := json.Unmarshal([]byte(data), &f); err != nil {
			res.err = fmt.Errorf("frame %q: %w", data, err)
			return res
		}
		if res.frames > 0 && (f.Seq != prev.Seq+1 || f.Events < prev.Events ||
			f.Instrs < prev.Instrs || f.SimNS < prev.SimNS) {
			res.err = fmt.Errorf("stream not monotonic: %+v -> %+v", prev, f)
			return res
		}
		prev = f
		res.frames++
		res.state = f.State
	}
	if err := sc.Err(); err != nil {
		res.err = err
		return res
	}
	if !clean {
		res.err = fmt.Errorf("stream ended after %d frames without the done event", res.frames)
	}
	return res
}

// validateMetrics scrapes /metrics and runs the self-contained
// exposition validator, returning the family count.
func validateMetrics(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if err := telemetry.ValidateExposition(data); err != nil {
		return 0, err
	}
	return strings.Count(string(data), "# TYPE "), nil
}

// loadBodies resolves the request bodies from args: literal JSON, or
// @path to read a file.
func loadBodies(args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("need at least one JSON request body argument (or @file)")
	}
	out := make([]string, 0, len(args))
	for _, a := range args {
		if strings.HasPrefix(a, "@") {
			data, err := os.ReadFile(a[1:])
			if err != nil {
				return nil, err
			}
			a = string(data)
		}
		if !json.Valid([]byte(a)) {
			return nil, fmt.Errorf("request body is not valid JSON: %q", a)
		}
		out = append(out, a)
	}
	return out, nil
}

// baseURL turns -addr (possibly @addr-file) into an http base URL.
func baseURL(addr string) (string, error) {
	if strings.HasPrefix(addr, "@") {
		data, err := os.ReadFile(addr[1:])
		if err != nil {
			return "", err
		}
		addr = strings.TrimSpace(string(data))
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/"), nil
}

// interArrival is the open-loop gap at elapsed time t: the configured
// rate scaled by the ramp fraction (linear from 0, with a floor so the
// very first requests still flow).
func interArrival(t time.Duration, rate float64, ramp time.Duration) time.Duration {
	if rate <= 0 {
		return 0
	}
	frac := 1.0
	if ramp > 0 && t < ramp {
		frac = float64(t) / float64(ramp)
		if frac < 0.1 {
			frac = 0.1
		}
	}
	return time.Duration(float64(time.Second) / (rate * frac))
}

// post sends one request, retrying 429 and 5xx with capped exponential
// backoff and full jitter, honoring Retry-After when the server sends
// one. It returns the final status, the X-Cache disposition, the retry
// count and the response body. Every attempt (including retried ones)
// records its latency into lats under its outcome class.
func post(client *http.Client, base, body string, retries int, backoff, ceil time.Duration, rng *rand.Rand, lats *latencies) (status int, cache string, tries int, data []byte, err error) {
	for attempt := 0; ; attempt++ {
		attemptStart := time.Now()
		var resp *http.Response
		resp, err = client.Post(base+"/run", "application/json", strings.NewReader(body))
		var retryAfter time.Duration
		if err == nil {
			data, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
			cache = resp.Header.Get("X-Cache")
			lats.add(classify(status, cache, err), time.Since(attemptStart))
			if err == nil && status == http.StatusOK {
				return status, cache, attempt, data, nil
			}
			if !retryable(status) || attempt >= retries {
				return status, cache, attempt, data, err
			}
			if ra, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil {
				retryAfter = time.Duration(ra) * time.Second
			}
		} else {
			lats.add(classify(0, "", err), time.Since(attemptStart))
			if attempt >= retries {
				return 0, "", attempt, nil, err
			}
		}
		delay := backoff << attempt
		if delay > ceil || delay <= 0 {
			delay = ceil
		}
		delay = time.Duration(rng.Int63n(int64(delay) + 1)) // full jitter
		if delay < retryAfter {
			delay = retryAfter
		}
		time.Sleep(delay)
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// verifyCache re-requests every distinct body twice, back to back, and
// asserts (a) the second response is served from the cache and (b) the
// two bodies are byte-identical — the service's exactness contract.
func verifyCache(client *http.Client, base string, bodies []string) error {
	seen := map[string]bool{}
	for _, b := range bodies {
		if seen[b] {
			continue
		}
		seen[b] = true
		rng := rand.New(rand.NewSource(0))
		_, _, _, first, err := post(client, base, b, 4, 100*time.Millisecond, time.Second, rng, nil)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		_, cache, _, second, err := post(client, base, b, 4, 100*time.Millisecond, time.Second, rng, nil)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if cache != "hit" {
			return fmt.Errorf("verify: second request for %q was %q, want cache hit", b, cache)
		}
		if string(first) != string(second) {
			return fmt.Errorf("verify: cached response for %q differs from the first (%d vs %d bytes)", b, len(first), len(second))
		}
	}
	return nil
}

// poolReport scrapes /jobs and renders the server-side machine-pool
// line: how often jobs ran on recycled simulation machines and the
// pool's high-water standing memory. Empty when the server predates the
// pool, runs with pooling disabled, or the scrape fails (the load
// report must not fail over an optional stat).
func poolReport(client *http.Client, base string) string {
	resp, err := client.Get(base + "/jobs")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var jobs struct {
		Pool *struct {
			HitRate        float64 `json:"hit_rate"`
			Hits           uint64  `json:"hits"`
			Misses         uint64  `json:"misses"`
			Drops          uint64  `json:"drops"`
			HighWaterBytes int64   `json:"high_water_bytes"`
		} `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil || jobs.Pool == nil {
		return ""
	}
	p := jobs.Pool
	return fmt.Sprintf("dasload: server machine pool: hit rate %.1f%% (%d hits / %d misses, %d drops), high water %.1f MB\n",
		p.HitRate*100, p.Hits, p.Misses, p.Drops, float64(p.HighWaterBytes)/(1<<20))
}

// cacheHits reads the server's hit counter from /jobs.
func cacheHits(client *http.Client, base string) (float64, error) {
	resp, err := client.Get(base + "/jobs")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var jobs struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return 0, fmt.Errorf("/jobs: %w", err)
	}
	return jobs.Metrics["serve.cache.hits"], nil
}
