// Command dasbench regenerates the tables and figures of the paper's
// evaluation (Section 7). Without flags it prints the configuration
// tables; select experiments with -fig.
//
// Examples:
//
//	dasbench -fig 7a              # single-programming improvements
//	dasbench -fig all -out results.txt
//	dasbench -fig 7d -instr 2000000
//	dasbench -fig 7a -cpuprofile cpu.pprof -memprofile mem.pprof
//	dasbench -explain standard,das -out results_explain.txt
//	dasbench -energy -out results_energy.txt
//
// Figure text goes to stdout (and -out) and is byte-stable: it is the
// golden artifact asserted by internal/exp's regression tests. All
// diagnostics — per-figure wall-clock, events/sec and allocation
// footers — go to stderr only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dasbench: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		figs     = flag.String("fig", "tables", "comma-separated figures: 7a,7b,7c,7d,7e,7f,8,9a,9b,9c,9d,power,energy,area,table1,table2,faults,all,tables")
		energyF  = flag.Bool("energy", false, "append the perf-per-watt figure (instructions/uJ, EDP vs Standard, pJ/instr decomposition) to the selected figures")
		instr    = flag.Uint64("instr", 0, "instructions per core (0 = config default)")
		cfgPath  = flag.String("config", "", "JSON config file (default: episode-scaled Table 1)")
		fullScal = flag.Bool("full-scale", false, "use the full 8 GB Table 1 memory instead of the episode-scaled 1 GB")
		outPath  = flag.String("out", "", "write output to file instead of stdout")
		seed     = flag.Uint64("seed", 0, "override workload seed")
		csvDir   = flag.String("csv-dir", "", "also write each figure's tables as CSV files (plus perf.csv) into this directory")
		benchSel = flag.String("benchmarks", "", "comma-separated benchmark subset for single-programmed figures")
		mixSel   = flag.String("mixes", "", "comma-separated mix subset (M1..M8) for multi-programmed figures")
		parallel = flag.Int("parallel", 0, "shard each simulated machine across OS threads (0/1 = sequential, >=2 = processor/memory shards; output is byte-identical)")
		nopool   = flag.Bool("nopool", false, "build a fresh machine per run instead of reusing pooled ones (output is byte-identical either way; this flag exists so scripts can prove it)")
		parShard = flag.Bool("parshard-report", false, "after the figures, print the parallel engine's per-shard busy/wait/barrier occupancy and pipeline-stall fraction (requires -parallel >= 2)")

		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile (pprof) covering all selected figures to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (pprof) taken after all figures to this file")
		traceFile = flag.String("trace", "", "write a runtime execution trace covering all selected figures to this file")

		// Telemetry (off by default; enabling it never changes figure
		// output — golden and determinism tests run with it on).
		metricsOut  = flag.String("metrics-out", "", "write per-run epoch metric timelines to this file (.json = JSON, anything else = CSV)")
		timelineOut = flag.String("timeline", "", "write simulated DRAM/migration/fault events as Chrome trace-event JSON (load in Perfetto or chrome://tracing) to this file")
		epochMS     = flag.Float64("timeline-interval", 0.1, "metric snapshot epoch in simulated milliseconds")
		httpAddr    = flag.String("http", "", "serve a debug endpoint (completed-run /metrics, /debug/vars, /debug/pprof) on this address, e.g. :8080")
		reqTraceN   = flag.Int("reqtrace", 0, "trace one in N measured demand loads per core through the hierarchy (0 = off; never changes figure output)")
		reqTraceOut = flag.String("reqtrace-out", "", "write per-run latency-attribution waterfalls to this file (.json = JSON, anything else = CSV)")
		explainSel  = flag.String("explain", "", "two designs 'A,B' (e.g. standard,das): run both with request tracing and print a ranked why-A≠B attribution report")

		// Fault injection (DAS management path; all rates zero = perfect
		// device). The -fig faults sweep varies these itself.
		faultWeak    = flag.Float64("fault-weak", 0, "fraction of fast-subarray rows that are weak (served at slow timing, never promoted into)")
		faultMigFail = flag.Float64("fault-migfail", 0, "probability an in-flight migration fails and is retried")
		faultTag     = flag.Float64("fault-tag", 0, "probability a tag-cache hit is parity-corrupt and re-fetched")
		faultTable   = flag.Float64("fault-table", 0, "probability a fetched table block fails ECC and is re-fetched")
		faultRetries = flag.Int("fault-retries", -1, "failed-migration retries before pinning the row slow (-1 = config default)")
		faultSeed    = flag.Uint64("fault-seed", 0, "fault-stream seed (0 = derive from workload seed)")
		invariants   = flag.Bool("invariants", true, "verify management invariants after every committed swap")
	)
	flag.Parse()

	cfg := config.Scaled()
	if *fullScal {
		cfg = config.Default()
	}
	if *cfgPath != "" {
		c, err := config.Load(*cfgPath)
		if err != nil {
			return err
		}
		cfg = c
	}
	if *instr > 0 {
		cfg.InstrPerCore = *instr
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	cfg.WeakRowRate = *faultWeak
	cfg.MigFailRate = *faultMigFail
	cfg.TagCorruptRate = *faultTag
	cfg.TableCorruptRate = *faultTable
	if *faultRetries >= 0 {
		cfg.MigRetries = *faultRetries
	}
	if *faultSeed > 0 {
		cfg.FaultSeed = *faultSeed
	}
	cfg.CheckInvariants = *invariants
	cfg.Parallel = *parallel
	if err := cfg.Validate(); err != nil {
		return err
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transients
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	s := exp.NewSession(cfg)
	s.DisablePool = *nopool
	if *benchSel != "" {
		s.Benchmarks = strings.Split(*benchSel, ",")
	}
	if *mixSel != "" {
		s.Mixes = strings.Split(*mixSel, ",")
	}
	var explainA, explainB core.Design
	if *explainSel != "" {
		// Parse up front so a bad design pair fails before any figure runs.
		var err error
		if explainA, explainB, err = parseExplain(*explainSel); err != nil {
			return err
		}
	}
	traceEvery := *reqTraceN
	if *explainSel != "" && traceEvery <= 0 {
		traceEvery = 1 // -explain needs the flight recorder; default to every load
	}
	if *metricsOut != "" || *timelineOut != "" || *httpAddr != "" || traceEvery > 0 {
		s.Observe = &exp.ObserveOptions{
			Metrics:    *metricsOut != "" || *httpAddr != "",
			Trace:      *timelineOut != "",
			IntervalPS: int64(*epochMS * 1e9),
			ReqTraceN:  traceEvery,
		}
	}
	var pub *telemetry.Publisher
	if *httpAddr != "" {
		pub = telemetry.NewPublisher()
		addr, err := pub.Serve(*httpAddr)
		if err != nil {
			return err
		}
		log.Printf("debug endpoint: http://%s/", addr)
		defer pub.Shutdown(context.Background())
	}

	// Ctrl-C / SIGTERM cancels the in-flight figure promptly: the session
	// context is polled inside every run at the observation stride, so a
	// signal aborts mid-simulation instead of waiting for the figure to
	// finish, and the sink writers further down still run, flushing
	// whatever completed instead of dropping it. A second signal kills
	// the process via the default handler (stop() reinstalls it).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	s.Ctx = ctx

	wanted := strings.Split(*figs, ",")
	if *figs == "all" {
		wanted = []string{"table1", "table2", "area", "7a", "7b", "7c", "7d", "7e", "7f", "8", "9a", "9b", "9c", "9d", "power"}
	} else if *figs == "tables" {
		wanted = []string{"table1", "table2", "area"}
	}
	if *explainSel != "" && !flagVisited("fig") {
		wanted = nil // -explain alone skips the default tables
	}
	if *energyF {
		// Deliberately not part of "all": the committed results_*.txt
		// goldens predate the energy model and must stay byte-identical.
		if !flagVisited("fig") && *explainSel == "" {
			wanted = nil // -energy alone skips the default tables
		}
		wanted = append(wanted, "energy")
	}

	perfCSV := "figure,wall_seconds,events,events_per_sec,alloc_bytes,alloc_objects\n"
	for _, name := range wanted {
		if ctx.Err() != nil {
			log.Print("interrupted; flushing sinks")
			break
		}
		name = strings.TrimSpace(strings.ToLower(name))
		fig, err := s.Measured(func() (*exp.Figure, error) { return s.Figure(name) })
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Printf("%s: interrupted mid-figure; flushing sinks", name)
				break
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprint(out, fig.Render())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, fig); err != nil {
				return err
			}
		}
		log.Printf("%s: %s", fig.ID, fig.Perf)
		perfCSV += fmt.Sprintf("%s,%.3f,%d,%.0f,%d,%d\n",
			fig.ID, fig.Perf.Wall.Seconds(), fig.Perf.Events,
			fig.Perf.EventsPerSec(), fig.Perf.AllocBytes, fig.Perf.AllocObjects)
		if pub != nil {
			s.PublishTo(pub)
		}
	}
	if *explainSel != "" && ctx.Err() == nil {
		fig, err := s.Measured(func() (*exp.Figure, error) { return s.Explain(explainA, explainB) })
		if err != nil && errors.Is(err, context.Canceled) {
			log.Print("explain: interrupted; flushing sinks")
		} else if err != nil {
			return fmt.Errorf("explain: %w", err)
		} else {
			fmt.Fprint(out, fig.Render())
			if *csvDir != "" {
				if err := writeCSVs(*csvDir, fig); err != nil {
					return err
				}
			}
			log.Printf("%s: %s", fig.ID, fig.Perf)
			perfCSV += fmt.Sprintf("%s,%.3f,%d,%.0f,%d,%d\n",
				fig.ID, fig.Perf.Wall.Seconds(), fig.Perf.Events,
				fig.Perf.EventsPerSec(), fig.Perf.AllocBytes, fig.Perf.AllocObjects)
			if pub != nil {
				s.PublishTo(pub)
			}
		}
	}
	if *parShard {
		// The session folds every parallel run's epoch profile as it
		// completes, so the report covers all figures above.
		fig, err := s.ShardReport()
		if err != nil {
			return fmt.Errorf("parshard-report: %w", err)
		}
		fmt.Fprint(out, fig.Render())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, fig); err != nil {
				return err
			}
		}
	}
	if *csvDir != "" {
		if err := os.WriteFile(filepath.Join(*csvDir, "perf.csv"), []byte(perfCSV), 0o644); err != nil {
			return err
		}
	}
	if *reqTraceOut != "" {
		if err := writeSink(*reqTraceOut, func(w io.Writer) error {
			if strings.HasSuffix(*reqTraceOut, ".json") {
				return s.WriteReqTraceJSON(w)
			}
			return s.WriteReqTraceCSV(w)
		}); err != nil {
			return fmt.Errorf("reqtrace-out: %w", err)
		}
	}
	if *metricsOut != "" {
		if err := writeSink(*metricsOut, func(w io.Writer) error {
			if strings.HasSuffix(*metricsOut, ".json") {
				return s.WriteTimelineJSON(w)
			}
			return s.WriteTimelineCSV(w)
		}); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	if *timelineOut != "" {
		if err := writeSink(*timelineOut, s.WriteTrace); err != nil {
			return fmt.Errorf("timeline: %w", err)
		}
	}
	return nil
}

// flagVisited reports whether the named flag was set on the command line.
func flagVisited(name string) bool {
	seen := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			seen = true
		}
	})
	return seen
}

// parseExplain parses the -explain "A,B" design pair.
func parseExplain(sel string) (core.Design, core.Design, error) {
	parts := strings.Split(sel, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("explain: want two designs 'A,B', got %q", sel)
	}
	da, err := core.ParseDesign(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("explain: %w", err)
	}
	db, err := core.ParseDesign(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("explain: %w", err)
	}
	return da, db, nil
}

// writeSink creates path and streams one telemetry sink into it.
func writeSink(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSVs dumps each of a figure's tables as <dir>/<figID>[-i].csv.
func writeCSVs(dir string, fig *exp.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tbl := range fig.Tables {
		name := fig.ID
		if len(fig.Tables) > 1 {
			name = fmt.Sprintf("%s-%d", fig.ID, i+1)
		}
		path := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
