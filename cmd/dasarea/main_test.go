package main

import (
	"strings"
	"testing"
)

// TestRunDefaultReport round-trips the CLI: default flags must render
// the area numbers and the energy table from one shared geometry, with
// the fast column strictly cheaper for the bitline-scaled commands.
func TestRunDefaultReport(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"fast bitline 128 cells, slow bitline 512 cells",
		"die-area overhead:",
		"per-command energy (8192 B rows, 64 B blocks):",
		"ACT (sense+restore)",
		"PRE (equalize)",
		"RD (burst)",
		"WR (burst)",
		"REF (per rank)",
		"MIG (row swap)",
		"background power:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Pin the default-geometry ACT row: these are the exact values the
	// simulator meters with (energy.TestKnownValues pins the model; this
	// pins the CLI rendering of it).
	if !strings.Contains(got, "ACT (sense+restore)         15099       3774") {
		t.Errorf("ACT energy row changed:\n%s", got)
	}
}

// TestRunFlagsChangeGeometry: sweeping flags must flow into both the
// area and energy models.
func TestRunFlagsChangeGeometry(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fast-bitline", "64", "-row-bytes", "4096", "-sweep"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "fast bitline 64 cells") {
		t.Errorf("fast-bitline flag ignored:\n%s", got)
	}
	if !strings.Contains(got, "per-command energy (4096 B rows, 64 B blocks):") {
		t.Errorf("row-bytes flag did not reach the energy table:\n%s", got)
	}
	if !strings.Contains(got, "capacity-ratio sweep:") {
		t.Errorf("sweep flag ignored:\n%s", got)
	}
}

// TestRunRejectsBadGeometry: validation errors surface instead of
// printing a table from garbage.
func TestRunRejectsBadGeometry(t *testing.T) {
	if err := run([]string{"-fast-bitline", "-1"}, &strings.Builder{}); err == nil {
		t.Fatal("negative bitline accepted")
	}
	if err := run([]string{"-block-bytes", "16384"}, &strings.Builder{}); err == nil {
		t.Fatal("block larger than row accepted")
	}
}
