// Command dasarea evaluates the analytical die-area model of Sections
// 3-4: overhead of asymmetric-subarray designs for a given fast-bitline
// length and fast-level capacity ratio, plus the TL-DRAM comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/area"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dasarea: ")

	var (
		fastCells = flag.Int("fast-bitline", 128, "cells per fast-subarray bitline")
		slowCells = flag.Int("slow-bitline", 512, "cells per slow-subarray bitline")
		ratio     = flag.Float64("fast-per-slow", 0.5, "fast subarrays per slow subarray (0.5 = the paper's 1:2 reduced interleaving)")
		sweep     = flag.Bool("sweep", false, "sweep fast-level capacity ratios 1/32..1/2")
	)
	flag.Parse()

	p := area.Default()
	p.FastBitlineCells = *fastCells
	p.SlowBitlineCells = *slowCells
	p.FastSubarraysPerSlow = *ratio
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fast bitline %d cells, slow bitline %d cells, %.2f fast subarrays per slow\n",
		p.FastBitlineCells, p.SlowBitlineCells, p.FastSubarraysPerSlow)
	fmt.Printf("fast-level capacity ratio: %.4f (1/%.1f)\n", p.FastCapacityRatio(), 1/p.FastCapacityRatio())
	fmt.Printf("die-area overhead:         %.2f%%\n", p.Overhead()*100)
	fmt.Printf("TL-DRAM comparison:        %.2f%%\n", area.DefaultTLDRAM().Overhead()*100)

	if *sweep {
		fmt.Println("\ncapacity-ratio sweep:")
		for _, d := range []int{32, 16, 8, 4, 2} {
			o, err := p.OverheadForCapacityRatio(d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  fast = 1/%-3d -> %.2f%% overhead\n", d, o*100)
		}
	}
}
