// Command dasarea evaluates the analytical physical-design models of
// Sections 3-4: the die-area overhead of asymmetric-subarray designs
// for a given fast-bitline length and fast-level capacity ratio (plus
// the TL-DRAM comparison), and the per-command energy table the same
// geometry implies (internal/energy prices both simulators' metering
// from these numbers, so this is the single place to inspect them).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/area"
	"repro/internal/energy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dasarea: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable core: parses args, writes the report to w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dasarea", flag.ContinueOnError)
	var (
		fastCells  = fs.Int("fast-bitline", 128, "cells per fast-subarray bitline")
		slowCells  = fs.Int("slow-bitline", 512, "cells per slow-subarray bitline")
		ratio      = fs.Float64("fast-per-slow", 0.5, "fast subarrays per slow subarray (0.5 = the paper's 1:2 reduced interleaving)")
		sweep      = fs.Bool("sweep", false, "sweep fast-level capacity ratios 1/32..1/2")
		rowBytes   = fs.Int("row-bytes", 8192, "row (page) size in bytes for the energy table")
		blockBytes = fs.Int("block-bytes", 64, "cache-block (burst) size in bytes for the energy table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := area.Default()
	p.FastBitlineCells = *fastCells
	p.SlowBitlineCells = *slowCells
	p.FastSubarraysPerSlow = *ratio
	if err := p.Validate(); err != nil {
		return err
	}

	fmt.Fprintf(w, "fast bitline %d cells, slow bitline %d cells, %.2f fast subarrays per slow\n",
		p.FastBitlineCells, p.SlowBitlineCells, p.FastSubarraysPerSlow)
	fmt.Fprintf(w, "fast-level capacity ratio: %.4f (1/%.1f)\n", p.FastCapacityRatio(), 1/p.FastCapacityRatio())
	fmt.Fprintf(w, "die-area overhead:         %.2f%%\n", p.Overhead()*100)
	fmt.Fprintf(w, "TL-DRAM comparison:        %.2f%%\n", area.DefaultTLDRAM().Overhead()*100)

	m, err := energy.NewModel(p, *rowBytes, *blockBytes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nper-command energy (%d B rows, %d B blocks):\n", *rowBytes, *blockBytes)
	fmt.Fprintf(w, "  %-22s %10s %10s\n", "command", "slow (pJ)", "fast (pJ)")
	fmt.Fprintf(w, "  %-22s %10d %10d\n", "ACT (sense+restore)", m.ActPJ[energy.ClassSlow], m.ActPJ[energy.ClassFast])
	fmt.Fprintf(w, "  %-22s %10d %10d\n", "PRE (equalize)", m.PrePJ[energy.ClassSlow], m.PrePJ[energy.ClassFast])
	fmt.Fprintf(w, "  %-22s %10d %10d\n", "RD (burst)", m.RdPJ[energy.ClassSlow], m.RdPJ[energy.ClassFast])
	fmt.Fprintf(w, "  %-22s %10d %10d\n", "WR (burst)", m.WrPJ[energy.ClassSlow], m.WrPJ[energy.ClassFast])
	fmt.Fprintf(w, "  %-22s %10d\n", "REF (per rank)", m.RefPJ)
	fmt.Fprintf(w, "  %-22s %10d\n", "MIG (row swap)", m.MigPJ)
	fmt.Fprintf(w, "  background power:      %d mW/rank (1 mW x 1 ns = 1 pJ exactly)\n", m.BackgroundMW)

	if *sweep {
		fmt.Fprintln(w, "\ncapacity-ratio sweep:")
		for _, d := range []int{32, 16, 8, 4, 2} {
			o, err := p.OverheadForCapacityRatio(d)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  fast = 1/%-3d -> %.2f%% overhead\n", d, o*100)
		}
	}
	return nil
}
