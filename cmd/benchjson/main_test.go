package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFig7a-8   3   1601899961 ns/op   1579711 events/s   250338037 B/op   9295340 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkFig7a" || b.Iterations != 3 {
		t.Fatalf("name/iters = %s/%d", b.Name, b.Iterations)
	}
	if b.Metrics["events/s"] != 1579711 || b.Metrics["allocs/op"] != 9295340 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if _, ok := parseBenchLine("BenchmarkBroken --- FAIL"); ok {
		t.Fatal("FAIL line parsed as benchmark")
	}
}

func TestLoadBaselinePrefersPost(t *testing.T) {
	raw := []byte(`{
		"context": {"cpu": "TestCPU"},
		"pre":  {"benchmarks": [{"name": "B", "iterations": 1, "metrics": {"events/s": 100}}]},
		"post": {"benchmarks": [{"name": "B", "iterations": 1, "metrics": {"events/s": 200}}]}
	}`)
	doc, err := loadBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["cpu"] != "TestCPU" {
		t.Fatalf("context = %v", doc.Context)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Metrics["events/s"] != 200 {
		t.Fatalf("did not pick post benchmarks: %+v", doc.Benchmarks)
	}
	flat := []byte(`{"context": {}, "benchmarks": [{"name": "B", "iterations": 1, "metrics": {"ns/op": 5}}]}`)
	if doc, err = loadBaseline(flat); err != nil || len(doc.Benchmarks) != 1 {
		t.Fatalf("flat shape: %v, %+v", err, doc)
	}
	if _, err := loadBaseline([]byte(`{"context": {}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

func TestReadBaselineMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	_, err := readBaseline(path)
	if err == nil {
		t.Fatal("missing baseline accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, path) || !strings.Contains(msg, "does not exist") {
		t.Fatalf("missing-baseline error does not name the file and condition: %q", msg)
	}
	if !strings.Contains(msg, "make bench") {
		t.Fatalf("missing-baseline error does not say how to regenerate: %q", msg)
	}
}

func TestReadBaselineMalformed(t *testing.T) {
	cases := map[string]string{
		"not JSON at all":   "]]]",
		"wrong shape":       `{"context": {}}`, // parses but holds no benchmarks
		"truncated capture": `{"context": {}, "benchmarks": [{"name":`,
	}
	for label, content := range cases {
		path := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := readBaseline(path)
		if err == nil {
			t.Fatalf("%s: malformed baseline accepted", label)
		}
		msg := err.Error()
		if !strings.Contains(msg, path) || !strings.Contains(msg, "malformed") {
			t.Fatalf("%s: error does not name the file and condition: %q", label, msg)
		}
		if !strings.Contains(msg, "benchjson emits") {
			t.Fatalf("%s: error does not describe the expected shape: %q", label, msg)
		}
	}
	// A good file must still load through the same path.
	path := filepath.Join(t.TempDir(), "base.json")
	good := `{"context": {}, "benchmarks": [{"name": "B", "iterations": 1, "metrics": {"ns/op": 5}}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if doc, err := readBaseline(path); err != nil || len(doc.Benchmarks) != 1 {
		t.Fatalf("valid baseline rejected: %v, %+v", err, doc)
	}
}

func mkDoc(cpu string, nsop, ips, allocs float64) document {
	return document{
		Context: map[string]string{"cpu": cpu},
		Benchmarks: []benchmark{{
			Name:       "BenchmarkFig7a",
			Iterations: 3,
			Metrics: map[string]float64{
				"ns/op": nsop, "instr/s": ips, "allocs/op": allocs,
				"events/s": ips * 2,
			},
		}},
	}
}

// compareDefault runs compare at the default 10% tolerance.
func compareDefault(t *testing.T, cur, base document) ([]string, int) {
	t.Helper()
	minEPS, maxAllocs, err := thresholds(0.10)
	if err != nil {
		t.Fatal(err)
	}
	return compare(cur, base, minEPS, maxAllocs)
}

func TestCompareGates(t *testing.T) {
	base := mkDoc("cpu-x", 1000, 1000, 100)

	// Within thresholds on the same CPU: clean.
	if report, n := compareDefault(t, mkDoc("cpu-x", 1050, 950, 105), base); n != 0 {
		t.Fatalf("in-threshold run flagged: %v", report)
	}
	// Wall latency rise beyond 10%: regression.
	if report, n := compareDefault(t, mkDoc("cpu-x", 1150, 1000, 100), base); n != 1 || !strings.Contains(strings.Join(report, "\n"), "ns/op") {
		t.Fatalf("ns/op rise not gated: n=%d %v", n, report)
	}
	// Throughput drop beyond 10%: regression.
	if report, n := compareDefault(t, mkDoc("cpu-x", 1000, 850, 100), base); n != 1 || !strings.Contains(strings.Join(report, "\n"), "instr/s") {
		t.Fatalf("instr/s drop not gated: n=%d %v", n, report)
	}
	// events/s is informational: a collapse there alone never gates.
	cur := mkDoc("cpu-x", 1000, 1000, 100)
	cur.Benchmarks[0].Metrics["events/s"] = 1
	report, n := compareDefault(t, cur, base)
	if n != 0 || !strings.Contains(strings.Join(report, "\n"), "informational") {
		t.Fatalf("events/s drop gated or unreported: n=%d %v", n, report)
	}
	// Allocation rise beyond 10%: regression, even across CPUs.
	if _, n := compareDefault(t, mkDoc("cpu-y", 10, 10, 120), base); n != 1 {
		t.Fatalf("alloc rise across CPUs: n=%d, want 1", n)
	}
	// Different CPU: wall-clock gates skipped with notes, allocs still
	// gated.
	report, n = compareDefault(t, mkDoc("cpu-y", 9999, 10, 100), base)
	if n != 0 {
		t.Fatalf("cross-CPU wall-clock gated: %v", report)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "skipping ns/op") || !strings.Contains(joined, "skipping instr/s") {
		t.Fatalf("no skip notes: %v", report)
	}
	// Nothing matched at all: that itself is a failure.
	empty := document{Context: map[string]string{"cpu": "cpu-x"}}
	if _, n := compareDefault(t, empty, base); n != 1 {
		t.Fatalf("empty run passed: n=%d", n)
	}
}

// TestCompareBytesGate pins the B/op gate: allocated bytes regress like
// allocation counts — machine-independently — and baselines captured
// before the gate existed (no B/op metric) stay compatible.
func TestCompareBytesGate(t *testing.T) {
	withBytes := func(doc document, bop float64) document {
		doc.Benchmarks[0].Metrics["B/op"] = bop
		return doc
	}
	base := withBytes(mkDoc("cpu-x", 1000, 1000, 100), 1_000_000)

	// Within 10%: clean, and the report mentions the metric.
	report, n := compareDefault(t, withBytes(mkDoc("cpu-x", 1000, 1000, 100), 1_050_000), base)
	if n != 0 {
		t.Fatalf("in-threshold B/op flagged: %v", report)
	}
	if !strings.Contains(strings.Join(report, "\n"), "B/op") {
		t.Fatalf("B/op not reported: %v", report)
	}
	// Beyond 10%: regression.
	report, n = compareDefault(t, withBytes(mkDoc("cpu-x", 1000, 1000, 100), 1_200_000), base)
	if n != 1 || !strings.Contains(strings.Join(report, "\n"), "REGRESSION B/op") {
		t.Fatalf("B/op rise not gated: n=%d %v", n, report)
	}
	// The gate is machine-independent: it fires across CPUs too.
	if _, n := compareDefault(t, withBytes(mkDoc("cpu-y", 10, 10, 100), 1_200_000), base); n != 1 {
		t.Fatalf("B/op rise across CPUs: n=%d, want 1", n)
	}
	// A pre-gate baseline without B/op never gates the metric.
	if report, n := compareDefault(t, withBytes(mkDoc("cpu-x", 1000, 1000, 100), 9e9),
		mkDoc("cpu-x", 1000, 1000, 100)); n != 0 {
		t.Fatalf("missing-baseline B/op gated: %v", report)
	}
	// Tolerance applies to B/op like the other ceilings.
	minEPS, maxAllocs, err := thresholds(0.30)
	if err != nil {
		t.Fatal(err)
	}
	if report, n := compare(withBytes(mkDoc("cpu-x", 1000, 1000, 100), 1_200_000), base, minEPS, maxAllocs); n != 0 {
		t.Fatalf("30%% tolerance still gated B/op: %v", report)
	}
}

func TestThresholds(t *testing.T) {
	minEPS, maxAllocs, err := thresholds(0.10)
	if err != nil || minEPS != 0.90 || maxAllocs != 1.10 {
		t.Fatalf("thresholds(0.10) = %v, %v, %v", minEPS, maxAllocs, err)
	}
	// Zero tolerance is valid: any change at all regresses.
	if minEPS, maxAllocs, err = thresholds(0); err != nil || minEPS != 1 || maxAllocs != 1 {
		t.Fatalf("thresholds(0) = %v, %v, %v", minEPS, maxAllocs, err)
	}
	// Invalid values: negative, >= 1 (would gate nothing or allow zero
	// throughput), NaN and infinities.
	for _, tol := range []float64{-0.1, 1, 1.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, _, err := thresholds(tol); err == nil {
			t.Fatalf("thresholds(%v) accepted", tol)
		}
	}
}

func TestCompareTolerance(t *testing.T) {
	base := mkDoc("cpu-x", 1000, 1000, 100)
	cur := mkDoc("cpu-x", 1150, 850, 115) // +15% ns/op, -15% instr/s, +15% allocs

	// Default 10%: all three gated metrics regress.
	if report, n := compareDefault(t, cur, base); n != 3 {
		t.Fatalf("10%% tolerance: n=%d, want 3: %v", n, report)
	}
	// Loosened to 20%: all pass.
	minEPS, maxAllocs, err := thresholds(0.20)
	if err != nil {
		t.Fatal(err)
	}
	if report, n := compare(cur, base, minEPS, maxAllocs); n != 0 {
		t.Fatalf("20%% tolerance: n=%d, want 0: %v", n, report)
	}
	// Tightened to 0%: even a within-10% drift regresses.
	minEPS, maxAllocs, err = thresholds(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := compare(mkDoc("cpu-x", 1001, 999, 101), base, minEPS, maxAllocs); n != 3 {
		t.Fatalf("0%% tolerance: n=%d, want 3", n)
	}
}
