// Command benchjson converts `go test -bench` text output, read from
// stdin, into a stable JSON document. `make bench` pipes through it to
// produce BENCH_latest.json; the checked-in BENCH_baseline.json holds
// documents captured the same way before and after the event-engine
// rewrite.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_latest.json
//
// Each benchmark line becomes {name, iterations, metrics}, where
// metrics maps unit → value for every value/unit pair on the line
// (ns/op, B/op, allocs/op, and any b.ReportMetric custom units). The
// goos/goarch/cpu header lines are collected into "context".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Context    map[string]string `json:"context"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

// gomaxprocsSuffix is the "-8" style suffix go test appends to
// benchmark names; stripped so documents compare across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	outPath := flag.String("out", "", "write JSON to this file instead of stdout")
	flag.Parse()

	doc := document{Context: map[string]string{}, Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			// pkg repeats per package; keep the first of each key.
			if _, seen := doc.Context[k]; !seen {
				doc.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *outPath)
		return
	}
	os.Stdout.Write(enc)
}

// parseBenchLine parses "BenchmarkName-8  3  123 ns/op  4 B/op ..." into
// a benchmark record; reports false for lines that don't parse (e.g.
// "BenchmarkX ... FAIL").
func parseBenchLine(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       gomaxprocsSuffix.ReplaceAllString(f[0], ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
