// Command benchjson converts `go test -bench` text output, read from
// stdin, into a stable JSON document. `make bench` pipes through it to
// produce BENCH_latest.json; the checked-in BENCH_baseline.json holds
// documents captured the same way before and after the event-engine
// rewrite.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_latest.json
//
// Each benchmark line becomes {name, iterations, metrics}, where
// metrics maps unit → value for every value/unit pair on the line
// (ns/op, B/op, allocs/op, and any b.ReportMetric custom units). The
// goos/goarch/cpu header lines are collected into "context".
//
// With -compare BASELINE.json the parsed run is instead checked against
// a baseline document (either the flat {context, benchmarks} shape or
// BENCH_baseline.json's nested {pre, post} shape, in which case "post"
// is the reference). The command exits nonzero if any benchmark present
// in both documents regresses: wall ns/op rising more than -tolerance
// (default 10%), instr/s dropping more than that, or allocs/op or B/op
// rising more than that. Wall-clock metrics (ns/op, instr/s) are only
// gated when the baseline was captured on the same CPU; allocation
// counts and bytes are machine-independent and always gated. events/s is reported but never
// gated: next-event scheduling deliberately executes fewer engine
// events for the same simulation, so the metric does not compare across
// scheduler generations.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Context    map[string]string `json:"context"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

// gomaxprocsSuffix is the "-8" style suffix go test appends to
// benchmark names; stripped so documents compare across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	outPath := flag.String("out", "", "write JSON to this file instead of stdout")
	comparePath := flag.String("compare", "", "compare stdin's benchmarks against this baseline JSON and exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.10, "regression tolerance for -compare as a fraction (0.10 = events/s may drop 10%, allocs/op may rise 10%)")
	flag.Parse()

	doc := document{Context: map[string]string{}, Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			// pkg repeats per package; keep the first of each key.
			if _, seen := doc.Context[k]; !seen {
				doc.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})

	if *comparePath != "" {
		minEPS, maxAllocs, err := thresholds(*tolerance)
		if err != nil {
			log.Fatal(err)
		}
		base, err := readBaseline(*comparePath)
		if err != nil {
			log.Fatal(err)
		}
		report, regressions := compare(doc, base, minEPS, maxAllocs)
		for _, line := range report {
			fmt.Fprintln(os.Stderr, "benchjson: "+line)
		}
		if regressions > 0 {
			log.Fatalf("%d benchmark regression(s) vs %s", regressions, *comparePath)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s\n", *comparePath)
		return
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *outPath)
		return
	}
	os.Stdout.Write(enc)
}

// readBaseline loads the -compare baseline, turning the two ways it can
// be unusable — file missing/unreadable and content malformed — into
// actionable messages instead of raw I/O or JSON errors, so a broken CI
// gate says what to do, not just what failed.
func readBaseline(path string) (document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return document{}, fmt.Errorf(
				"baseline %s does not exist: capture one with 'make bench' (writes BENCH_latest.json) and check it in as the baseline", path)
		}
		return document{}, fmt.Errorf("baseline %s unreadable: %w", path, err)
	}
	doc, err := loadBaseline(raw)
	if err != nil {
		return document{}, fmt.Errorf(
			"baseline %s malformed: %v (want the {context, benchmarks} or {context, pre, post} JSON shape benchjson emits)", path, err)
	}
	return doc, nil
}

// loadBaseline parses a baseline document. It accepts both the flat
// {context, benchmarks} shape benchjson emits and BENCH_baseline.json's
// nested {context, pre, post} shape; for the latter, "post" (the
// current engine's acceptance numbers) is the reference set.
func loadBaseline(raw []byte) (document, error) {
	var file struct {
		Context    map[string]string `json:"context"`
		Benchmarks []benchmark       `json:"benchmarks"`
		Post       *struct {
			Benchmarks []benchmark `json:"benchmarks"`
		} `json:"post"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return document{}, err
	}
	doc := document{Context: file.Context, Benchmarks: file.Benchmarks}
	if file.Post != nil {
		doc.Benchmarks = file.Post.Benchmarks
	}
	if len(doc.Benchmarks) == 0 {
		return document{}, fmt.Errorf("no benchmarks in baseline")
	}
	return doc, nil
}

// thresholds derives the regression gates from a tolerance fraction:
// throughput may fall to (1-tol) of the baseline, allocations may rise
// to (1+tol). A tolerance that is not a finite value in [0, 1) cannot
// express a gate (1.0 would allow throughput to reach zero) and is
// rejected.
func thresholds(tol float64) (minThroughputRatio, maxAllocRatio float64, err error) {
	// NaN fails every comparison, so test for the valid range directly.
	if !(tol >= 0 && tol < 1) {
		return 0, 0, fmt.Errorf("tolerance must be in [0, 1), got %v", tol)
	}
	return 1 - tol, 1 + tol, nil
}

// compare checks cur against base benchmark-by-benchmark and returns a
// human-readable report plus the number of gated regressions. Only
// benchmarks present in both documents are gated. Gated metrics: wall
// ns/op (may not rise past the ceiling), instr/s (may not drop below
// the floor), allocs/op (ceiling). The wall-clock gates are skipped
// (with a note) when the two documents were captured on different CPUs,
// since neither latency nor throughput transfers across machines;
// allocation counts always gate. events/s is informational only.
// minThroughputRatio/maxAllocRatio come from thresholds.
func compare(cur, base document, minThroughputRatio, maxAllocRatio float64) (report []string, regressions int) {
	sameCPU := cur.Context["cpu"] != "" && cur.Context["cpu"] == base.Context["cpu"]
	baseByName := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}
	// gauge describes one gated metric: lowerIsBetter picks which side of
	// the tolerance band regresses, wallClock marks it same-CPU-only.
	type gauge struct {
		unit          string
		lowerIsBetter bool
		wallClock     bool
	}
	gauges := []gauge{
		{"ns/op", true, true},
		{"instr/s", false, true},
		{"allocs/op", true, false},
		// Bytes allocated per op gates like allocs/op: the count is a
		// property of the code, not the host, so it always compares. It
		// keeps the machine pool honest — a Reset path that silently
		// rebuilds would pass the wall-clock gates on a fast machine but
		// not this one.
		{"B/op", true, false},
	}
	matched := 0
	for _, b := range cur.Benchmarks {
		ref, ok := baseByName[b.Name]
		if !ok {
			continue
		}
		matched++
		for _, g := range gauges {
			refV, ok := ref.Metrics[g.unit]
			if !ok || refV <= 0 {
				continue
			}
			v, ok := b.Metrics[g.unit]
			if !ok {
				continue
			}
			if g.wallClock && !sameCPU {
				report = append(report, fmt.Sprintf("%s: skipping %s gate (baseline cpu %q != current %q)",
					b.Name, g.unit, base.Context["cpu"], cur.Context["cpu"]))
				continue
			}
			if g.lowerIsBetter {
				if v > refV*maxAllocRatio {
					regressions++
					report = append(report, fmt.Sprintf("%s: REGRESSION %s %.0f > %.0f (%.1f%% of baseline %.0f, ceiling %.0f%%)",
						b.Name, g.unit, v, refV*maxAllocRatio, 100*v/refV, refV, 100*maxAllocRatio))
				} else {
					report = append(report, fmt.Sprintf("%s: %s %.0f vs baseline %.0f (%.1f%%) ok",
						b.Name, g.unit, v, refV, 100*v/refV))
				}
				continue
			}
			if v < refV*minThroughputRatio {
				regressions++
				report = append(report, fmt.Sprintf("%s: REGRESSION %s %.0f < %.0f (%.1f%% of baseline %.0f, floor %.0f%%)",
					b.Name, g.unit, v, refV*minThroughputRatio, 100*v/refV, refV, 100*minThroughputRatio))
			} else {
				report = append(report, fmt.Sprintf("%s: %s %.0f vs baseline %.0f (%.1f%%) ok",
					b.Name, g.unit, v, refV, 100*v/refV))
			}
		}
		if refEPS, ok := ref.Metrics["events/s"]; ok && refEPS > 0 {
			if eps, ok := b.Metrics["events/s"]; ok {
				report = append(report, fmt.Sprintf("%s: events/s %.0f vs baseline %.0f (%.1f%%) informational",
					b.Name, eps, refEPS, 100*eps/refEPS))
			}
		}
		// parallel_speedup (sharded-engine wall ratio) is informational
		// like events/s: it measures host core availability, not the
		// simulator, and single-CPU machines legitimately report <= 1.
		if refSU, ok := ref.Metrics["parallel_speedup"]; ok && refSU > 0 {
			if su, ok := b.Metrics["parallel_speedup"]; ok {
				report = append(report, fmt.Sprintf("%s: parallel_speedup %.2f vs baseline %.2f informational",
					b.Name, su, refSU))
			}
		}
		// pJ/instr is the modeled DRAM energy per simulated instruction —
		// a property of the energy model, not the host, so it is never
		// gated; baselines captured before the energy model simply lack it.
		if refE, ok := ref.Metrics["pJ/instr"]; ok && refE > 0 {
			if e, ok := b.Metrics["pJ/instr"]; ok {
				report = append(report, fmt.Sprintf("%s: pJ/instr %.1f vs baseline %.1f informational",
					b.Name, e, refE))
			}
		}
	}
	if matched == 0 {
		regressions++
		report = append(report, "no benchmarks matched the baseline (did the bench run fail?)")
	}
	return report, regressions
}

// parseBenchLine parses "BenchmarkName-8  3  123 ns/op  4 B/op ..." into
// a benchmark record; reports false for lines that don't parse (e.g.
// "BenchmarkX ... FAIL").
func parseBenchLine(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       gomaxprocsSuffix.ReplaceAllString(f[0], ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
