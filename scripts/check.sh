#!/bin/sh
# check.sh is the tier-1+ gate: everything the repo's own tests require
# (build + tests) plus the race detector, the engine determinism
# cross-checks, fuzz and benchmark smokes, and a short fault-injection
# run proving the DAS management path degrades gracefully end to end.
# CI and pre-merge runs should pass this, not just `go test ./...`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
# Full suite under the race detector; this is also the concurrency gate
# for the telemetry publisher (concurrent Publish/snapshot/Shutdown),
# the exp observer attach/flush paths, the machine pool's concurrent
# checkout cycle, and the dasserve core (internal/serve: singleflight,
# shedding, drain, panic isolation). The explicit timeout is headroom
# over go test's 10m default: the exp byte-identity suites near it
# under the race detector on a slow box, and a timeout there would
# read as a test failure.
go test -race -timeout 30m ./...

echo "== engine cross-check: container/heap reference queue (-tags sim_refheap)"
# The reference queue is the pre-rewrite implementation kept behind a
# build tag; the sim suite (including FuzzScheduleOrder's corpus and the
# golden tests' upstream invariants) must pass against it unchanged.
go test -tags sim_refheap ./internal/sim

echo "== controller cross-check: per-cycle polling scheduler (-tags mc_polltick)"
# The pre-rewrite polling scheduler is kept behind a build tag as the
# next-event scheduler's reference; the controller and experiment
# suites (including TestGoldenCommandStreams, whose committed digests
# were generated under the default next-event build) must pass against
# it unchanged — that is the identical-command-stream proof.
go test -tags mc_polltick ./internal/mc ./internal/exp

echo "== figure determinism: wheel vs reference-heap engines, next-event vs polling controller"
# Same figure, byte-compared across both queue implementations and both
# controller schedulers: the (at, seq) firing order — not the queue
# layout or the tick schedule — must decide simulation results.
tmp_quad=$(mktemp) tmp_ref=$(mktemp) tmp_obs=$(mktemp) tmp_sink=$(mktemp)
trap 'rm -f "$tmp_quad" "$tmp_ref" "$tmp_obs" "$tmp_sink"' EXIT
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 >"$tmp_quad" 2>/dev/null
go run -tags sim_refheap ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 >"$tmp_ref" 2>/dev/null
cmp "$tmp_quad" "$tmp_ref"
go run -tags mc_polltick ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 >"$tmp_ref" 2>/dev/null
cmp "$tmp_quad" "$tmp_ref"

echo "== parallel-engine byte identity: sequential vs sharded machine"
# The same figure once more on the channel-sharded parallel engine (two
# OS threads under the conservative epoch protocol): rendered bytes must
# match the sequential run exactly, at 2 and at 4 requested shards. The
# command-stream digests behind this identity are gated per design by
# TestParallelEquivalence in the suite above.
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 -parallel 2 >"$tmp_ref" 2>/dev/null
cmp "$tmp_quad" "$tmp_ref"
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 -parallel 4 >"$tmp_ref" 2>/dev/null
cmp "$tmp_quad" "$tmp_ref"

echo "== machine-pool byte identity: pooled vs fresh-build machines"
# The baseline run above reused pooled machines (the default); the same
# figure with -nopool builds every machine from scratch. Byte-equal
# output is the System.Reset contract: a rewound machine is
# indistinguishable from a new one. The command-stream digests behind
# this are gated per design by TestPooledRunsByteIdentical.
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 -nopool >"$tmp_ref" 2>/dev/null
cmp "$tmp_quad" "$tmp_ref"

echo "== telemetry determinism: observed run renders identical figures"
# Same figure with the full telemetry stack enabled (metrics timeline +
# trace export): the rendered figure must be byte-identical to the
# uninstrumented run, proving observation never perturbs simulation.
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 \
    -metrics-out "$tmp_sink" -timeline "$tmp_sink.trace" >"$tmp_obs" 2>/dev/null
cmp "$tmp_quad" "$tmp_obs"
test -s "$tmp_sink" && test -s "$tmp_sink.trace"
rm -f "$tmp_sink.trace"

echo "== request-trace determinism: sampled tracing renders identical figures"
# Same figure again with the per-request flight recorder sampling 1-in-7
# demand loads: sampling derives from seed+core only (no engine events,
# no RNG draws), so the rendered figure must stay byte-identical and the
# attribution sink must be non-empty.
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 \
    -reqtrace 7 -reqtrace-out "$tmp_sink.req" >"$tmp_obs" 2>/dev/null
cmp "$tmp_quad" "$tmp_obs"
test -s "$tmp_sink.req"

echo "== energy conservation: attributed picojoules telescope per run"
# The attribution CSV carries an integer-picojoule double-entry ledger:
# for every traced run the component rows' energy_pj must sum to the
# total row's energy_pj with exact integer ==, and the per-request
# energy_violations counter must be zero. Trailing-field offsets are
# used because run labels may be quoted and contain commas.
awk -F',' 'NR == 1 { next }
    $(NF-8) == "total" {
        if (seen && sum != total) bad = 1
        if ($(NF-9) + 0 != 0) bad = 1
        total = $(NF-1) + 0; sum = 0; seen++
        next
    }
    { sum += $(NF-1) }
    END { if (seen == 0 || sum != total) bad = 1; exit bad }' "$tmp_sink.req" ||
    { echo "reqtrace: component energy_pj rows do not sum to total (or energy violations > 0)"; exit 1; }
rm -f "$tmp_sink.req"

echo "== energy report (dasbench -energy): perf-per-watt across all designs"
# The perf-per-watt report must render deterministically (sequential vs
# two-shard parallel engine), and enabling it alongside a figure must
# leave that figure's bytes untouched — energy metering is pure
# accounting, never a timing input.
go run ./cmd/dasbench -energy -benchmarks mcf -instr 200000 >"$tmp_ref" 2>/dev/null
grep -q "Perf/watt: instructions per microjoule" "$tmp_ref"
go run ./cmd/dasbench -energy -benchmarks mcf -instr 200000 -parallel 2 >"$tmp_obs" 2>/dev/null
cmp "$tmp_ref" "$tmp_obs"
go run ./cmd/dasbench -fig 7a -energy -benchmarks mcf,soplex -instr 200000 >"$tmp_obs" 2>/dev/null
head -n "$(wc -l <"$tmp_quad")" "$tmp_obs" | cmp - "$tmp_quad"
grep -q "Perf/watt: instructions per microjoule" "$tmp_obs"

echo "== explain smoke (dasbench -explain standard,das)"
# Full attribution pipeline end to end: Explain fails if any traced
# request violates the components-sum-to-total invariant, so a clean
# exit is the invariant check over real Standard and DAS runs.
go run ./cmd/dasbench -explain standard,das -benchmarks mcf -instr 200000 >/dev/null

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz FuzzScheduleOrder -fuzztime 10s ./internal/sim
go test -run '^$' -fuzz FuzzEpochBarrier -fuzztime 10s ./internal/sim
go test -run '^$' -fuzz FuzzConfigJSON -fuzztime 10s ./internal/config

echo "== benchmark smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./... >/dev/null

echo "== bench regression gate (benchjson -compare vs BENCH_baseline.json)"
# BenchmarkFig7a and its pooled-sweep variant at the baseline's
# iteration count, gated against the checked-in acceptance numbers:
# wall ns/op may not rise more than 10% and instr/s may not drop more
# than 10% (both skipped automatically on a different CPU); allocs/op
# and B/op may not rise more than 10% (gated everywhere — these pin the
# machine pool and the request-slot recycling: a Reset path that
# silently rebuilt, or a recycler that stopped recycling, fails here on
# any machine). events/s is reported but informational — next-event
# scheduling changes the event count per simulated instruction.
go test -run '^$' -bench '^BenchmarkFig7a' -benchmem -benchtime 3x . |
    go run ./cmd/benchjson -compare BENCH_baseline.json

echo "== fault-sweep smoke (dasbench -fig faults)"
# Tiny instruction budget: exercises every sweep point — including the
# rate-1.0 full-degradation endpoints — with invariants and the watchdog
# armed, in well under a minute.
go run ./cmd/dasbench -fig faults -benchmarks mcf -instr 200000 >/dev/null

echo "== parshard smoke (dasbench -parshard-report: epoch profiler)"
# A two-shard run must produce the shard-occupancy report, and its
# busy/wait/barrier columns must telescope exactly to wall per shard
# (DESIGN.md §5.3, "Epoch profiler").
go run ./cmd/dasbench -fig 7b -benchmarks mcf -instr 200000 \
    -parallel 2 -parshard-report >"$tmp_sink.parshard"
grep -q "Parallel-engine shard occupancy" "$tmp_sink.parshard"
# Occupancy rows: shard (label)  busy_ns wait_ns barrier_ns wall_ns ...
awk '/\(cores\/caches\/mgr\)|\(mc\/dram\)/ {
        rows++; if ($6 + 0 == 0 || $3 + $4 + $5 != $6) bad = 1
     }
     END { exit (bad || rows != 2) }' "$tmp_sink.parshard" ||
    { echo "parshard: busy+wait+barrier != wall"; exit 1; }
rm -f "$tmp_sink.parshard"

echo "== server smoke (dasserve + dasload: dedup, exactness, streaming, drain)"
# Start dasserve on an ephemeral port, fire a duplicate-heavy dasload
# burst, then assert the robustness contract end to end: at least one
# request was served from the exact-result cache (-assert-hits against
# /jobs), repeated requests return byte-identical bodies (-verify), a
# concurrent SSE subscription to a real job yields at least one
# monotonic progress frame and closes cleanly (-follow), the live
# /metrics endpoint passes the self-contained exposition validator
# (-check-metrics), and SIGTERM drains cleanly (dasserve exits 0). The
# server binary is built with the race detector so the smoke also
# covers the worker pool, the SSE subscriber paths and the parallel
# engine's shard goroutines under real HTTP traffic.
go build -race -o "$tmp_sink.serve" ./cmd/dasserve
go build -o "$tmp_sink.load" ./cmd/dasload
rm -f "$tmp_sink.addr"
"$tmp_sink.serve" -addr 127.0.0.1:0 -addr-file "$tmp_sink.addr" \
    -instr 200000 -workers 2 -log-json 2>/dev/null &
serve_pid=$!
for _ in $(seq 100); do test -s "$tmp_sink.addr" && break; sleep 0.1; done
test -s "$tmp_sink.addr"
"$tmp_sink.load" -addr @"$tmp_sink.addr" -n 12 -rate 50 -ramp 0 \
    -verify -assert-hits 1 -follow -follow-min 1 -check-metrics \
    '{"design":"das","benchmarks":["mcf"]}' '{"figure":"table2"}'
kill -TERM "$serve_pid"
wait "$serve_pid"
rm -f "$tmp_sink.serve" "$tmp_sink.load" "$tmp_sink.addr" "$tmp_sink.cfg"

echo "check.sh: all gates passed"
