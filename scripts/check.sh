#!/bin/sh
# check.sh is the tier-1+ gate: everything the repo's own tests require
# (build + tests) plus the race detector and a short fault-injection
# smoke run proving the DAS management path degrades gracefully end to
# end. CI and pre-merge runs should pass this, not just `go test ./...`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fault-sweep smoke (dasbench -fig faults)"
# Tiny instruction budget: exercises every sweep point — including the
# rate-1.0 full-degradation endpoints — with invariants and the watchdog
# armed, in well under a minute.
go run ./cmd/dasbench -fig faults -benchmarks mcf -instr 200000 >/dev/null

echo "check.sh: all gates passed"
