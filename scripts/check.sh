#!/bin/sh
# check.sh is the tier-1+ gate: everything the repo's own tests require
# (build + tests) plus the race detector, the engine determinism
# cross-checks, fuzz and benchmark smokes, and a short fault-injection
# run proving the DAS management path degrades gracefully end to end.
# CI and pre-merge runs should pass this, not just `go test ./...`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== engine cross-check: container/heap reference queue (-tags sim_refheap)"
# The reference queue is the pre-rewrite implementation kept behind a
# build tag; the sim suite (including FuzzScheduleOrder's corpus and the
# golden tests' upstream invariants) must pass against it unchanged.
go test -tags sim_refheap ./internal/sim

echo "== figure determinism: value-heap vs reference-heap engines"
# Same figure, both queue implementations, byte-compared: the (at, seq)
# firing order — not the queue layout — must decide simulation results.
tmp_quad=$(mktemp) tmp_ref=$(mktemp)
trap 'rm -f "$tmp_quad" "$tmp_ref"' EXIT
go run ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 >"$tmp_quad" 2>/dev/null
go run -tags sim_refheap ./cmd/dasbench -fig 7a -benchmarks mcf,soplex -instr 200000 >"$tmp_ref" 2>/dev/null
cmp "$tmp_quad" "$tmp_ref"

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz FuzzScheduleOrder -fuzztime 10s ./internal/sim
go test -run '^$' -fuzz FuzzConfigJSON -fuzztime 10s ./internal/config

echo "== benchmark smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./... >/dev/null

echo "== fault-sweep smoke (dasbench -fig faults)"
# Tiny instruction budget: exercises every sweep point — including the
# rate-1.0 full-degradation endpoints — with invariants and the watchdog
# armed, in well under a minute.
go run ./cmd/dasbench -fig faults -benchmarks mcf -instr 200000 >/dev/null

echo "check.sh: all gates passed"
