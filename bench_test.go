// Package repro's top-level benchmarks regenerate, one per table/figure,
// miniature versions of every experiment in the paper's evaluation
// (Section 7). Each benchmark reports paper-shape metrics (improvement
// percentages, promotion rates, hit distributions) alongside Go's timing
// so `go test -bench` doubles as a quick-look harness; `cmd/dasbench`
// runs the full-length versions.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/area"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// benchConfig is small enough to keep one benchmark iteration around a
// second on a laptop core while exercising every mechanism.
func benchConfig() config.Config {
	c := config.Scaled()
	c.RowsPerBank = 512 // 128 MB
	c.InstrPerCore = 300_000
	c.TagCacheKB = 4
	return c
}

// metricName maps a design to a whitespace-free metric label.
func metricName(d core.Design) string {
	switch d {
	case core.SAS:
		return "SAS"
	case core.CHARM:
		return "CHARM"
	case core.DAS:
		return "DAS"
	case core.DASFM:
		return "DAS-FM"
	case core.FS:
		return "FS"
	default:
		return "Std"
	}
}

// runImprovement measures one design over one benchmark and returns the
// improvement percentage.
func runImprovement(b *testing.B, s *exp.Session, cfg config.Config, d core.Design, set []string) float64 {
	b.Helper()
	_, imp, err := s.CachedVs(cfg, d, set)
	if err != nil {
		b.Fatal(err)
	}
	return imp
}

// BenchmarkTable1Baseline measures the Standard-DRAM configuration of
// Table 1 (episode-scaled): the baseline every figure normalizes to.
func BenchmarkTable1Baseline(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		res, err := s.Baseline([]string{"mcf"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PerCore[0].IPC, "IPC")
		b.ReportMetric(res.PerCore[0].MPKI, "MPKI")
	}
}

// BenchmarkTable2Workloads drives every Table 2 generator through a
// functional pass (the workload substrate alone).
func BenchmarkTable2Workloads(b *testing.B) {
	cfg := benchConfig()
	var in workload.Instr
	for i := 0; i < b.N; i++ {
		n := 0
		for idx, name := range workload.AllSingleNames() {
			gen, err := exp.MakeGenerator(cfg, name, idx%cfg.Cores)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 100_000; k++ {
				gen.Next(&in)
				if in.Mem {
					n++
				}
			}
		}
		b.ReportMetric(float64(n), "memops")
	}
}

// BenchmarkFig7a regenerates Figure 7a in miniature: single-programmed
// improvements of every design. This is the acceptance benchmark for
// engine-hot-path work: alongside the paper-shape %imp metrics (which
// must not move) it reports simulated instructions/sec, events/sec and
// allocations (compare against BENCH_baseline.json). instr/s is the
// gated throughput metric: the retirement stream is invariant under
// scheduler changes, whereas next-event scheduling deliberately
// executes fewer engine events per run, which makes events/s
// incomparable across scheduling rewrites (informational only).
func BenchmarkFig7a(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	var events, instrs uint64
	var energyPJ int64
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, d := range []core.Design{core.SAS, core.CHARM, core.DAS, core.DASFM, core.FS} {
			imp := runImprovement(b, s, cfg, d, []string{"mcf"})
			b.ReportMetric(imp, fmt.Sprintf("%%imp-%s", metricName(d)))
		}
		events += s.EventsExecuted()
		instrs += s.InstrsRetired()
		energyPJ += s.EnergyPJ()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
		b.ReportMetric(float64(instrs)/secs, "instr/s")
	}
	// Modeled DRAM energy per simulated instruction: informational like
	// events/s (tracks the energy model, not the host), but a free canary
	// for accidental energy-accounting drift across engine changes.
	if instrs > 0 {
		b.ReportMetric(float64(energyPJ)/float64(instrs), "pJ/instr")
	}
}

// BenchmarkFig7aPooledSweep is BenchmarkFig7a at guaranteed steady
// state of the machine pool: a warm-up sweep outside the timer fills a
// private pool, so every timed iteration checks machines out and
// rewinds them in place (System.Reset) instead of building. The gap
// between this benchmark's allocs/op and a -nopool run is the
// tentpole's win; pool-hit-rate ~1.0 confirms the iterations really
// ran pooled. Paper-shape metrics are reported by BenchmarkFig7a and
// must be bit-identical here (the byte-identity suite gates that).
func BenchmarkFig7aPooledSweep(b *testing.B) {
	cfg := benchConfig()
	pool := exp.NewSystemPool(0)
	sweep := func() {
		s := exp.NewSession(cfg)
		s.Pool = pool
		for _, d := range []core.Design{core.SAS, core.CHARM, core.DAS, core.DASFM, core.FS} {
			runImprovement(b, s, cfg, d, []string{"mcf"})
		}
	}
	sweep() // warm the pool: every timed sweep runs fully pooled
	warm := pool.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
	b.StopTimer()
	// Hit rate over the timed window only: the warm-up sweep's misses
	// (it built the machines) are its cost, not the steady state's.
	st := pool.Stats()
	hits, misses := st.Hits-warm.Hits, st.Misses-warm.Misses
	if n := hits + misses; n > 0 {
		b.ReportMetric(float64(hits)/float64(n), "pool-hit-rate")
	}
	pool.Drain()
}

// BenchmarkFig7b regenerates Figure 7b's metrics (MPKI/PPKM/footprint)
// under DAS-DRAM.
func BenchmarkFig7b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		res, err := s.Cached(cfg, core.DAS, []string{"mcf"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PerCore[0].MPKI, "MPKI")
		b.ReportMetric(res.PerCore[0].PPKM, "PPKM")
		b.ReportMetric(res.PerCore[0].FootprintMB, "footprintMB")
	}
}

// BenchmarkFig7c regenerates Figure 7c: access-location split, static
// versus dynamic.
func BenchmarkFig7c(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		sas, err := s.Cached(cfg, core.SAS, []string{"mcf"})
		if err != nil {
			b.Fatal(err)
		}
		das, err := s.Cached(cfg, core.DAS, []string{"mcf"})
		if err != nil {
			b.Fatal(err)
		}
		_, sasFast, _ := sas.Access.Fractions()
		_, dasFast, _ := das.Access.Fractions()
		b.ReportMetric(sasFast*100, "%fast-static")
		b.ReportMetric(dasFast*100, "%fast-dynamic")
	}
}

// BenchmarkFig7d regenerates Figure 7d in miniature: a multi-programmed
// mix on every design.
func BenchmarkFig7d(b *testing.B) {
	cfg := benchConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 120_000
	mix, err := workload.LookupMix("M5")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, d := range []core.Design{core.SAS, core.DAS, core.FS} {
			imp := runImprovement(b, s, cfg, d, mix.Benchmarks)
			b.ReportMetric(imp, fmt.Sprintf("%%imp-%s", metricName(d)))
		}
	}
}

// BenchmarkFig7dParallel times the Figure 7d mix on the sequential
// engine and on the two-shard parallel engine (config.Parallel = 2) and
// reports the wall-clock ratio as parallel_speedup. The metric is
// informational and never gated: on a single-CPU host the two shard
// goroutines time-slice one core and the ratio sits at or below 1, and
// even on wide hosts the ratio is bounded by the memory-side share of
// the event load. Byte-identity between the two engines — the property
// that matters — is gated by the equivalence suite instead.
func BenchmarkFig7dParallel(b *testing.B) {
	cfg := benchConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 120_000
	mix, err := workload.LookupMix("M5")
	if err != nil {
		b.Fatal(err)
	}
	run := func(parallel int) time.Duration {
		c := cfg
		c.Parallel = parallel
		sys, _, err := exp.Build(c, core.DAS, mix.Benchmarks, nil, false)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		seq += run(0)
		par += run(2)
	}
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "parallel_speedup")
		b.ReportMetric(par.Seconds()*1e3/float64(b.N), "ms/parallel-run")
		b.ReportMetric(seq.Seconds()*1e3/float64(b.N), "ms/sequential-run")
	}
}

// BenchmarkFig7e regenerates Figure 7e's mix behaviour metrics.
func BenchmarkFig7e(b *testing.B) {
	cfg := benchConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 120_000
	mix, _ := workload.LookupMix("M1")
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		res, err := s.Cached(cfg, core.DAS, mix.Benchmarks)
		if err != nil {
			b.Fatal(err)
		}
		var mpki float64
		for _, c := range res.PerCore {
			mpki += c.MPKI
		}
		b.ReportMetric(mpki/4, "MPKI")
		b.ReportMetric(res.PromPerAccess*100, "%prom/access")
	}
}

// BenchmarkFig7f regenerates Figure 7f: mix access locations.
func BenchmarkFig7f(b *testing.B) {
	cfg := benchConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 120_000
	mix, _ := workload.LookupMix("M8")
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		das, err := s.Cached(cfg, core.DAS, mix.Benchmarks)
		if err != nil {
			b.Fatal(err)
		}
		_, fast, slow := das.Access.Fractions()
		b.ReportMetric(fast*100, "%fast")
		b.ReportMetric(slow*100, "%slow")
	}
}

// BenchmarkFig8 regenerates Figure 8 in miniature: the filter-threshold
// sweep.
func BenchmarkFig8(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, th := range exp.FilterThresholds {
			v := cfg
			v.FilterThreshold = th
			imp := runImprovement(b, s, v, core.DAS, []string{"soplex"})
			b.ReportMetric(imp, fmt.Sprintf("%%imp-thr%d", th))
		}
	}
}

// BenchmarkFig9a regenerates Figure 9a in miniature: tag-cache capacity.
func BenchmarkFig9a(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, kb := range []int{1, 2, 4, 8} {
			v := cfg
			v.TagCacheKB = kb
			imp := runImprovement(b, s, v, core.DAS, []string{"mcf"})
			b.ReportMetric(imp, fmt.Sprintf("%%imp-%dKB", kb))
		}
	}
}

// BenchmarkFig9b regenerates Figure 9b in miniature: migration group
// sizes.
func BenchmarkFig9b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, g := range exp.GroupSizes {
			v := cfg
			v.GroupSize = g
			imp := runImprovement(b, s, v, core.DAS, []string{"soplex"})
			b.ReportMetric(imp, fmt.Sprintf("%%imp-g%d", g))
		}
	}
}

// BenchmarkFig9c regenerates Figure 9c in miniature: fast-level ratios
// with random replacement.
func BenchmarkFig9c(b *testing.B) {
	benchFig9Ratio(b, "random")
}

// BenchmarkFig9d regenerates Figure 9d in miniature: fast-level ratios
// with LRU replacement.
func BenchmarkFig9d(b *testing.B) {
	benchFig9Ratio(b, "lru")
}

func benchFig9Ratio(b *testing.B, repl string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, d := range exp.FastRatios {
			v := cfg
			v.FastDenom = d
			v.Replacement = repl
			imp := runImprovement(b, s, v, core.DAS, []string{"mcf"})
			b.ReportMetric(imp, fmt.Sprintf("%%imp-1/%d", d))
		}
	}
}

// BenchmarkPowerProxy regenerates the Section 7.7 energy comparison.
func BenchmarkPowerProxy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		base, err := s.Baseline([]string{"soplex"})
		if err != nil {
			b.Fatal(err)
		}
		das, err := s.Cached(cfg, core.DAS, []string{"soplex"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(das.EnergyProxy/base.EnergyProxy, "rel-energy")
	}
}

// BenchmarkAreaModel regenerates the Section 4.3/7.6 area numbers (it is
// analytical, so this mostly guards against regressions).
func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := area.Default()
		o8 := p.Overhead()
		o4, err := p.OverheadForCapacityRatio(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(o8*100, "%area-1:2")
		b.ReportMetric(o4*100, "%area-1/4")
	}
}

// BenchmarkPagePolicyAblation compares the Table 1 open-page policy to a
// closed-page controller (an ablation of the row-buffer-locality
// assumption behind Figure 7c's row-buffer share).
func BenchmarkPagePolicyAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		open := runImprovement(b, s, cfg, core.FS, []string{"libquantum"})
		closed := cfg
		closed.ClosedPage = true
		cl := runImprovement(b, s, closed, core.FS, []string{"libquantum"})
		b.ReportMetric(open, "%imp-open")
		b.ReportMetric(cl, "%imp-closed")
	}
}

// BenchmarkMigrationLatencySweep is an ablation bench: how the headline
// DAS result depends on the migration-cell design's latency (DESIGN.md's
// "lightweight migration is the enabling mechanism" claim).
func BenchmarkMigrationLatencySweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(cfg)
		for _, lat := range []float64{0, 73.125, 146.25, 292.5, 585} {
			v := cfg
			v.MigrationLatencyNS = lat
			imp := runImprovement(b, s, v, core.DAS, []string{"soplex"})
			b.ReportMetric(imp, fmt.Sprintf("%%imp-%.0fns", lat))
		}
	}
}
